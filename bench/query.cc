// Micro-benchmarks for the archive-store read path and the queryd serving
// layer on top of it. `run_bench.sh` merges the JSON output into
// BENCH_micro.json.
//
// The numbers to look for:
//   BM_StorePointLookup/meters:N  -- hot current-table lookups; the
//     per-call cost is dominated by the staleness stat() on current.log,
//     so it should stay flat as the fleet grows.
//   BM_StoreRangeScan/level:L     -- per-meter scan of the whole retained
//     window; level:0 is the native read, level:3 adds prefix truncation.
//     items_per_second counts symbols delivered.
//   BM_StoreAggregate/meters:N/edges:E -- fleet histogram over the window.
//     edges:0 is partition-aligned, so every partition is served from
//     rollup rows alone (no segment reads); edges:1 is a ragged window
//     whose two edge partitions fall back to segment scans. The gap
//     between the two rows is what the rollup tables buy.
//   BM_QuerydPoint / BM_QuerydRange / BM_QuerydAggregate -- the same three
//     queries end to end through a loopback queryd (framing, CRC32C,
//     session state machine, epoll loop); items_per_second is queries/s
//     on one connection.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/io.h"
#include "core/archive_store.h"
#include "core/codec.h"
#include "core/symbolic_series.h"
#include "net/query_client.h"
#include "net/query_server.h"

namespace smeter {
namespace {

constexpr int kNativeLevel = 8;
constexpr int64_t kStepSeconds = 1800;
constexpr int kDays = 3;
constexpr size_t kWindowsPerDay =
    static_cast<size_t>(kSecondsPerDay / kStepSeconds);
constexpr size_t kWindowsPerMeter = kDays * kWindowsPerDay;
constexpr Timestamp kWindowEnd = kDays * kSecondsPerDay;

SymbolicSeries BenchSeries(uint64_t seed) {
  SymbolicSeries series(kNativeLevel);
  uint64_t x = seed * 2654435761ull + 99991;
  Timestamp t = 0;
  for (size_t i = 0; i < kWindowsPerMeter; ++i, t += kStepSeconds) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    Symbol symbol = Symbol::Gap(kNativeLevel);
    if (i % 23 != 9) {
      Result<Symbol> value = Symbol::Create(
          kNativeLevel,
          static_cast<uint32_t>((x >> 33) % (1u << kNativeLevel)));
      SMETER_CHECK(value.ok());
      symbol = *value;
    }
    SMETER_CHECK(series.Append({t, symbol}).ok());
  }
  return series;
}

// A built store over a synthetic fleet, constructed once per meter count
// and shared across benchmarks; directories are removed at process exit.
class StoreFixture {
 public:
  static StoreFixture& Get(size_t meters) {
    static std::map<size_t, std::unique_ptr<StoreFixture>> fixtures;
    std::unique_ptr<StoreFixture>& slot = fixtures[meters];
    if (!slot) slot.reset(new StoreFixture(meters));
    return *slot;
  }

  ~StoreFixture() {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  const std::string& store_dir() const { return store_dir_; }
  size_t meters() const { return meters_; }

  static std::string MeterName(size_t i) {
    return "bench_meter_" + std::to_string(i);
  }

 private:
  explicit StoreFixture(size_t meters) : meters_(meters) {
    namespace fs = std::filesystem;
    root_ = (fs::temp_directory_path() /
             ("smeter_bench_query_" + std::to_string(::getpid()) + "_" +
              std::to_string(meters)))
                .string();
    const std::string archive_dir = root_ + "/archive";
    store_dir_ = root_ + "/store";
    std::error_code ec;
    fs::remove_all(root_, ec);
    SMETER_CHECK(fs::create_directories(archive_dir));
    for (size_t m = 0; m < meters_; ++m) {
      Result<std::string> blob =
          PackSymbolicSeriesFramed(BenchSeries(m + 1));
      SMETER_CHECK(blob.ok());
      SMETER_CHECK(io::AtomicWriteFile(
                       archive_dir + "/" + MeterName(m) + ".symbols", *blob)
                       .ok());
    }
    Result<StoreBuildReport> report =
        BuildArchiveStore(archive_dir, store_dir_);
    SMETER_CHECK(report.ok());
    SMETER_CHECK(report->meters == meters_);
  }

  size_t meters_;
  std::string root_;
  std::string store_dir_;
};

void BM_StorePointLookup(benchmark::State& state) {
  StoreFixture& fixture = StoreFixture::Get(
      static_cast<size_t>(state.range(0)));
  Result<std::unique_ptr<ArchiveStore>> store =
      ArchiveStore::Open(fixture.store_dir());
  SMETER_CHECK(store.ok());
  size_t i = 0;
  for (auto _ : state) {
    Result<PointValue> point =
        (*store)->Latest(StoreFixture::MeterName(i++ % fixture.meters()));
    SMETER_CHECK(point.ok());
    benchmark::DoNotOptimize(point->symbol);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StorePointLookup)->ArgNames({"meters"})->Arg(64)->Arg(512);

void BM_StoreRangeScan(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  StoreFixture& fixture = StoreFixture::Get(64);
  Result<std::unique_ptr<ArchiveStore>> store =
      ArchiveStore::Open(fixture.store_dir());
  SMETER_CHECK(store.ok());
  size_t i = 0;
  size_t symbols = 0;
  for (auto _ : state) {
    Result<RangeScanResult> scan = (*store)->Scan(
        StoreFixture::MeterName(i++ % fixture.meters()),
        TimeRange{0, kWindowEnd}, level, kWindowsPerMeter);
    SMETER_CHECK(scan.ok());
    SMETER_CHECK(scan->symbols.size() == kWindowsPerMeter);
    symbols = scan->symbols.size();
    benchmark::DoNotOptimize(scan->symbols.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(symbols));
}
BENCHMARK(BM_StoreRangeScan)->ArgNames({"level"})->Arg(0)->Arg(3);

void BM_StoreAggregate(benchmark::State& state) {
  StoreFixture& fixture = StoreFixture::Get(
      static_cast<size_t>(state.range(0)));
  const bool ragged = state.range(1) != 0;
  // Aligned: every partition is fully inside the window -> rollup rows
  // only. Ragged: both edge partitions are partial -> segment scans.
  const TimeRange range =
      ragged ? TimeRange{5 * kStepSeconds, kWindowEnd - 7 * kStepSeconds}
             : TimeRange{0, kWindowEnd};
  Result<std::unique_ptr<ArchiveStore>> store =
      ArchiveStore::Open(fixture.store_dir());
  SMETER_CHECK(store.ok());
  uint64_t windows = 0;
  for (auto _ : state) {
    Result<FleetAggregate> aggregate = (*store)->Aggregate(range, 3);
    SMETER_CHECK(aggregate.ok());
    SMETER_CHECK(aggregate->meters == fixture.meters());
    SMETER_CHECK(ragged ? aggregate->scanned_partitions > 0
                        : aggregate->scanned_partitions == 0);
    windows = aggregate->windows;
    benchmark::DoNotOptimize(aggregate->histogram.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(windows));
}
BENCHMARK(BM_StoreAggregate)
    ->ArgNames({"meters", "edges"})
    ->ArgsProduct({{64, 512}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

// --------------------------------------------------------------------------
// End-to-end serving: a loopback queryd over the 64-meter fixture store,
// one blocking client issuing synchronous queries.

struct RunningQueryd {
  explicit RunningQueryd(const std::string& store_dir) {
    net::QueryServerOptions options;
    options.store_dir = store_dir;
    options.idle_timeout_ms = 60'000;
    Result<std::unique_ptr<net::QueryServer>> created =
        net::QueryServer::Create(std::move(options));
    SMETER_CHECK(created.ok());
    server = std::move(*created);
    thread = std::thread([this] {
      Status run = server->Run();
      SMETER_CHECK(run.ok());
    });
  }

  ~RunningQueryd() {
    server->RequestDrain();
    thread.join();
  }

  std::unique_ptr<net::QueryClient> Connect() {
    net::QueryClientOptions options;
    options.port = server->port();
    Result<std::unique_ptr<net::QueryClient>> client =
        net::QueryClient::Connect(std::move(options));
    SMETER_CHECK(client.ok());
    return std::move(*client);
  }

  std::unique_ptr<net::QueryServer> server;
  std::thread thread;
};

void BM_QuerydPoint(benchmark::State& state) {
  StoreFixture& fixture = StoreFixture::Get(64);
  RunningQueryd queryd(fixture.store_dir());
  std::unique_ptr<net::QueryClient> client = queryd.Connect();
  size_t i = 0;
  for (auto _ : state) {
    Result<net::PointResultPayload> point =
        client->Point(StoreFixture::MeterName(i++ % fixture.meters()));
    SMETER_CHECK(point.ok());
    SMETER_CHECK(point->status == net::WireStatus::kOk);
    benchmark::DoNotOptimize(point->symbol);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QuerydPoint)->Unit(benchmark::kMicrosecond);

void BM_QuerydRange(benchmark::State& state) {
  StoreFixture& fixture = StoreFixture::Get(64);
  RunningQueryd queryd(fixture.store_dir());
  std::unique_ptr<net::QueryClient> client = queryd.Connect();
  size_t i = 0;
  for (auto _ : state) {
    Result<net::RangeResultPayload> range = client->Range(
        StoreFixture::MeterName(i++ % fixture.meters()),
        TimeRange{0, kWindowEnd}, 3,
        static_cast<uint32_t>(kWindowsPerMeter));
    SMETER_CHECK(range.ok());
    SMETER_CHECK(range->status == net::WireStatus::kOk);
    SMETER_CHECK(range->symbols.size() == kWindowsPerMeter);
    benchmark::DoNotOptimize(range->symbols.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kWindowsPerMeter));
}
BENCHMARK(BM_QuerydRange)->Unit(benchmark::kMicrosecond);

void BM_QuerydAggregate(benchmark::State& state) {
  StoreFixture& fixture = StoreFixture::Get(64);
  RunningQueryd queryd(fixture.store_dir());
  std::unique_ptr<net::QueryClient> client = queryd.Connect();
  for (auto _ : state) {
    Result<net::AggregateResultPayload> aggregate =
        client->Aggregate(TimeRange{0, kWindowEnd}, 3);
    SMETER_CHECK(aggregate.ok());
    SMETER_CHECK(aggregate->status == net::WireStatus::kOk);
    SMETER_CHECK(aggregate->meters == fixture.meters());
    benchmark::DoNotOptimize(aggregate->histogram.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QuerydAggregate)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace smeter

// run_bench.sh refuses to record numbers unless this compiled-in marker
// says release (see net_ingest.cc for why google-benchmark's own
// library_build_type cannot be trusted here).
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("smeter_build_type", "release");
#else
  benchmark::AddCustomContext("smeter_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
