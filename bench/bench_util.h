// Shared harness pieces for the experiment benches: the standard synthetic
// fleet (the REDD stand-in), classifier factories by Weka-style name, and
// the classification-experiment runner used by Figures 5-7 and Table 1.

#ifndef SMETER_BENCH_BENCH_UTIL_H_
#define SMETER_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/time_series.h"
#include "data/features.h"
#include "data/generator.h"
#include "ml/evaluation.h"

namespace smeter::bench {

// Fleet scale used by the classification experiments. REDD spans 1-2
// months; 24 days keeps every bench under a couple of minutes while giving
// each house ~20 qualifying days.
inline constexpr int kDefaultFleetDays = 24;
inline constexpr uint64_t kFleetSeed = 2013;  // EDBT 2013
inline constexpr size_t kNumHouses = 6;

// Generator options for the standard fleet (house index 4 is the sparse
// "house 5" of the paper).
data::GeneratorOptions PaperFleetOptions(int days, uint64_t seed = kFleetSeed);

// The standard 6-house fleet.
std::vector<TimeSeries> PaperFleet(int days = kDefaultFleetDays,
                                   uint64_t seed = kFleetSeed);

// "RandomForest", "J48", "NaiveBayes", or "Logistic" — tuned as the
// experiments use them. Aborts on an unknown name (programmer error).
ml::ClassifierFactory MakeClassifierFactory(const std::string& name);

// The paper's configuration label, e.g. "median 1h 16s".
std::string ConfigLabel(SeparatorMethod method, int64_t window_seconds,
                        int level);
// "1h 16s" without the method prefix.
std::string AggLabel(int64_t window_seconds, int level);

struct ClassificationRun {
  double weighted_f1 = 0.0;
  double processing_seconds = 0.0;
  size_t num_instances = 0;
};

// Builds the symbolic dataset for `options` over `fleet` and runs a
// stratified 10-fold cross-validation of `classifier_name`.
Result<ClassificationRun> RunSymbolicClassification(
    const std::vector<TimeSeries>& fleet,
    const data::ClassificationOptions& options,
    const std::string& classifier_name, uint64_t cv_seed = 1);

// Raw-value (numeric-attribute) variant.
Result<ClassificationRun> RunRawClassification(
    const std::vector<TimeSeries>& fleet,
    const data::ClassificationOptions& options,
    const std::string& classifier_name, uint64_t cv_seed = 1);

// Prints "name = value" metadata lines in a uniform format.
void PrintBenchHeader(const std::string& title,
                      const std::vector<std::string>& notes);

// --- Forecasting (Figures 8 and 9) ----------------------------------------

inline constexpr size_t kForecastLag = 12;       // 12 previous symbols
inline constexpr int kForecastLevel = 4;         // alphabet of 16
inline constexpr size_t kTrainHours = 7 * 24;    // one week of history
inline constexpr size_t kForecastHours = 24;     // predict the next day

// Extracts the first span of `hours` consecutive hourly means with at most
// 5% missing hours from a raw trace; isolated missing hours are filled by
// linear interpolation (meter outages hit real data too). Errors if no
// such span exists.
Result<std::vector<double>> ContiguousHourly(const TimeSeries& trace,
                                             size_t hours);

// The paper's symbolic forecasting protocol on an hourly series of
// kTrainHours + kForecastHours values: encode with a table learned from
// `table_training` (the house's historical raw data), reduce to
// next-symbol classification with kForecastLag lag attributes, train
// `classifier_name` on the week, forecast the next day, decode symbols as
// range centers, and return the MAE in watts.
Result<double> SymbolicForecastMae(const std::vector<double>& hourly,
                                   const std::vector<double>& table_training,
                                   SeparatorMethod method,
                                   const std::string& classifier_name);

// The raw-value baseline: epsilon-SVR (RBF) over the same lag windows.
Result<double> SvrForecastMae(const std::vector<double>& hourly);

// Prints the Figure 8/9 table: per house (skipping the sparse house 5),
// the raw-SVR MAE and the symbolic MAE under each encoding method with
// `classifier_name` as the next-symbol predictor.
void RunForecastFigure(const std::string& classifier_name);

// The Figure 5/6/7 sweep: for each separator method x {1 h, 15 min} x
// {2, 4, 8, 16} symbols prints "config  F-measure  processing-time", then
// the raw 1 h / 15 min baselines. `global_table` selects the single-table
// ("+") variant of Figure 7.
void RunFigureSweep(const std::vector<TimeSeries>& fleet,
                    const std::string& classifier_name, bool global_table);

}  // namespace smeter::bench

#endif  // SMETER_BENCH_BENCH_UTIL_H_
