// Design-choice ablations called out in DESIGN.md:
//  1. reconstruction semantics — range center (the paper's forecasting
//     semantics) vs range mean (the paper's lookup-table construction);
//  2. resolution ladder — round-trip error vs alphabet size per method;
//  3. on-the-fly table rebuild (Section 4) — reconstruction error across a
//     simulated seasonal shift, with and without drift-triggered rebuilds.

#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/encoder.h"
#include "core/online_encoder.h"
#include "core/reconstruction.h"
#include "core/utility.h"

namespace smeter::bench {
namespace {

void ReconstructionSemantics(const TimeSeries& hourly) {
  std::printf("-- reconstruction semantics: MAE [W] of decode(encode(x)) --\n");
  std::printf("%-16s %-8s %-14s %-14s\n", "method", "symbols",
              "range-center", "range-mean");
  std::vector<double> values = hourly.Values();
  for (SeparatorMethod method :
       {SeparatorMethod::kUniform, SeparatorMethod::kMedian,
        SeparatorMethod::kDistinctMedian}) {
    for (int level : {2, 4}) {
      LookupTableOptions options;
      options.method = method;
      options.level = level;
      LookupTable table = LookupTable::Build(values, options).value();
      ReconstructionError center =
          RoundTripError(hourly, table, ReconstructionMode::kRangeCenter)
              .value();
      ReconstructionError mean =
          RoundTripError(hourly, table, ReconstructionMode::kRangeMean)
              .value();
      std::printf("%-16s %-8d %-14.1f %-14.1f\n",
                  SeparatorMethodName(method).c_str(), 1 << level, center.mae,
                  mean.mae);
    }
  }
}

void ResolutionLadder(const TimeSeries& hourly) {
  std::printf("\n-- resolution ladder: range-mean MAE [W] vs alphabet --\n");
  std::printf("%-16s", "method");
  for (int level = 1; level <= 6; ++level) {
    std::printf(" k=%-7d", 1 << level);
  }
  std::printf("\n");
  std::vector<double> values = hourly.Values();
  for (SeparatorMethod method :
       {SeparatorMethod::kUniform, SeparatorMethod::kMedian,
        SeparatorMethod::kDistinctMedian}) {
    std::printf("%-16s", SeparatorMethodName(method).c_str());
    for (int level = 1; level <= 6; ++level) {
      LookupTableOptions options;
      options.method = method;
      options.level = level;
      LookupTable table = LookupTable::Build(values, options).value();
      ReconstructionError err =
          RoundTripError(hourly, table, ReconstructionMode::kRangeMean)
              .value();
      std::printf(" %-9.1f", err.mae);
    }
    std::printf("\n");
  }
}

void UtilityDrivenSegmentation(const TimeSeries& hourly) {
  std::printf("\n-- Section 4: utility-driven segmentation (Lloyd-Max) --\n");
  std::printf("%-16s %-12s %-12s\n", "method", "RMS err [W]",
              "entropy-ish");
  std::vector<double> values = hourly.Values();
  auto report = [&](const std::string& name, const LookupTable& table) {
    double mse =
        MeanSquaredDistortion(table, values, ReconstructionMode::kRangeMean)
            .value();
    // Fraction of non-empty buckets as a crude balance indicator.
    size_t used = 0;
    for (size_t c : table.bucket_counts()) {
      if (c > 0) ++used;
    }
    std::printf("%-16s %-12.1f %zu/%u buckets used\n", name.c_str(),
                std::sqrt(mse), used, table.alphabet_size());
  };
  LookupTableOptions options;
  options.level = 4;
  options.method = SeparatorMethod::kUniform;
  report("uniform", LookupTable::Build(values, options).value());
  options.method = SeparatorMethod::kMedian;
  report("median", LookupTable::Build(values, options).value());
  LloydMaxOptions lm;
  lm.level = 4;
  report("lloyd-max", BuildLloydMaxTable(values, lm).value());
  std::printf("(lloyd-max minimizes distortion; median maximizes entropy — "
              "two utility targets, Section 4)\n");
}

// A trace whose consumption doubles halfway through ("seasonal change" /
// "an additional family member", Section 4).
TimeSeries ShiftedTrace() {
  std::vector<TimeSeries> fleet = PaperFleet(8);
  TimeSeries shifted;
  for (const Sample& s : fleet[0]) {
    double scale = s.timestamp >= 4 * kSecondsPerDay ? 2.5 : 1.0;
    (void)shifted.Append({s.timestamp, s.value * scale});
  }
  return shifted;
}

double OnlineReconstructionMae(const TimeSeries& trace, bool with_drift) {
  OnlineEncoderOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = 4;
  options.warmup_seconds = 2 * kSecondsPerDay;
  options.window_seconds = 900;
  if (with_drift) {
    DriftOptions drift;
    drift.window_size = 192;  // two days of 15-min symbols
    drift.min_samples = 96;
    drift.psi_threshold = 0.25;
    options.drift = drift;
    options.rebuild_history_windows = 192;
  }
  OnlineEncoder encoder = OnlineEncoder::Create(options).value();

  // Ground truth: the batch window aggregates, keyed by window-end
  // timestamp (identical aggregation rules to the online encoder).
  TimeSeries aggregates =
      VerticalSegmentByWindow(trace, options.window_seconds, options.window)
          .value();
  std::map<Timestamp, double> truth;
  for (const Sample& s : aggregates) truth[s.timestamp] = s.value;

  // Replay the stream; decode each symbol against the table version that
  // produced it.
  std::vector<LookupTable> tables;
  double abs_error = 0.0;
  size_t count = 0;
  auto handle = [&](const std::vector<EncoderEvent>& events) {
    for (const EncoderEvent& e : events) {
      if (e.type == EncoderEvent::Type::kTableReady) {
        tables.push_back(*encoder.table());
        continue;
      }
      const LookupTable& table =
          tables[static_cast<size_t>(e.table_version) - 1];
      double decoded =
          table.Reconstruct(e.symbol.symbol, ReconstructionMode::kRangeMean)
              .value();
      auto it = truth.find(e.symbol.timestamp);
      if (it == truth.end()) continue;
      abs_error += std::abs(decoded - it->second);
      ++count;
    }
  };
  for (const Sample& s : trace) {
    handle(encoder.Push(s).value());
  }
  handle(encoder.Flush().value());
  std::printf("   tables built: %zu\n", tables.size());
  return count == 0 ? -1.0 : abs_error / static_cast<double>(count);
}

void DriftAblation() {
  std::printf("\n-- Section 4: on-the-fly table rebuild under a 2.5x "
              "consumption shift --\n");
  TimeSeries trace = ShiftedTrace();
  std::printf("static table (no rebuild):\n");
  double static_mae = OnlineReconstructionMae(trace, /*with_drift=*/false);
  std::printf("   reconstruction MAE = %.1f W\n", static_mae);
  std::printf("drift-triggered rebuild (PSI > 0.25):\n");
  double adaptive_mae = OnlineReconstructionMae(trace, /*with_drift=*/true);
  std::printf("   reconstruction MAE = %.1f W\n", adaptive_mae);
  std::printf("adaptive / static MAE = %.2f (< 1 means rebuilding helps)\n",
              adaptive_mae / static_mae);
}

void Run() {
  PrintBenchHeader("Ablations: reconstruction semantics, resolution, drift",
                   {"house 1 hourly data, 12 days"});
  std::vector<TimeSeries> fleet = PaperFleet(12);
  TimeSeries hourly =
      VerticalSegmentByWindow(fleet[0], kSecondsPerHour, {}).value();
  ReconstructionSemantics(hourly);
  ResolutionLadder(hourly);
  UtilityDrivenSegmentation(hourly);
  DriftAblation();
}

}  // namespace
}  // namespace smeter::bench

int main() {
  smeter::bench::Run();
  return 0;
}
