// Section 2.3: compression ratio of the symbolic representation. The paper
// quotes ~680 kB/day of raw doubles at 1 Hz vs 384 bit/day for 16 symbols
// at 15-minute aggregation — three orders of magnitude. This bench sweeps
// the (window, alphabet) grid and adds the amortized lookup-table cost for
// a real serialized table.

#include <cstdio>

#include "bench_util.h"
#include "core/compression.h"
#include "core/lookup_table.h"

namespace smeter::bench {
namespace {

void Run() {
  PrintBenchHeader(
      "Section 2.3: compression ratio sweep",
      {"raw: 64-bit doubles at 1 Hz = 86400 samples/day (~675 kB)",
       "symbolic: log2(k) bits per window + amortized lookup table",
       "table amortized over 30 days using its real serialized size"});

  // A real table, to charge its true wire size.
  std::vector<TimeSeries> fleet = PaperFleet(3);
  std::vector<double> training =
      fleet[0].Slice({0, 2 * kSecondsPerDay}).Values();
  LookupTableOptions table_options;
  table_options.method = SeparatorMethod::kMedian;
  table_options.level = 4;
  LookupTable table = LookupTable::Build(training, table_options).value();
  int64_t table_bits = static_cast<int64_t>(table.Serialize().size()) * 8;

  std::printf("%-10s %-8s %-16s %-18s %-10s\n", "window", "symbols",
              "raw [bits/day]", "symbolic [bits/day]", "ratio");
  for (int64_t window : {int64_t{60}, int64_t{900}, kSecondsPerHour}) {
    for (int level : {1, 2, 3, 4}) {
      CompressionModelOptions options;
      options.window_seconds = window;
      options.symbol_bits = level;
      options.table_bits = table_bits;
      options.table_amortization_days = 30.0;
      CompressionReport report = EvaluateCompression(options).value();
      std::string window_label =
          window == kSecondsPerHour ? "1h" : std::to_string(window / 60) + "m";
      std::printf("%-10s %-8d %-16.0f %-18.1f %-10.0f\n",
                  window_label.c_str(), 1 << level, report.raw_bits_per_day,
                  report.symbolic_bits_per_day, report.ratio);
    }
  }

  // The paper's headline configuration, without table amortization.
  CompressionModelOptions headline;
  headline.window_seconds = 900;
  headline.symbol_bits = 4;
  CompressionReport report = EvaluateCompression(headline).value();
  std::printf(
      "\npaper headline: 16 symbols @ 15 min -> %.0f bit/day vs %.0f kB/day "
      "raw (ratio %.0fx, \"three orders of magnitude\")\n",
      report.symbolic_bits_per_day, report.raw_bits_per_day / 8.0 / 1024.0,
      report.ratio);
  std::printf("serialized level-4 median table: %lld bits (amortized %.1f "
              "bit/day over 30 days)\n",
              static_cast<long long>(table_bits),
              static_cast<double>(table_bits) / 30.0);
}

}  // namespace
}  // namespace smeter::bench

int main() {
  smeter::bench::Run();
  return 0;
}
