// Table 1: F-measure for every encoding x aggregation x alphabet size,
// under Random Forest, J48, Naive Bayes, and Logistic; the "+" columns use
// a single lookup table for all houses. Raw rows close the table (the 1 s
// raw row runs on a reduced day count to stay tractable — 86 400 numeric
// attributes — and skips Logistic, as the paper did for memory reasons).

#include <cstdio>

#include "bench_util.h"

namespace smeter::bench {
namespace {

constexpr const char* kPerHouseClassifiers[] = {"RandomForest", "J48",
                                                "NaiveBayes", "Logistic"};
constexpr const char* kGlobalClassifiers[] = {"Logistic", "RandomForest",
                                              "J48", "NaiveBayes"};

void PrintRow(const std::vector<TimeSeries>& fleet, SeparatorMethod method,
              int64_t window, int level) {
  std::printf("%-26s", ConfigLabel(method, window, level).c_str());
  data::ClassificationOptions options;
  options.day.window_seconds = window;
  options.method = method;
  options.level = level;
  for (const char* classifier : kPerHouseClassifiers) {
    Result<ClassificationRun> run =
        RunSymbolicClassification(fleet, options, classifier);
    std::printf(" %-6.2f", run.ok() ? run->weighted_f1 : -1.0);
  }
  options.global_table = true;
  for (const char* classifier : kGlobalClassifiers) {
    Result<ClassificationRun> run =
        RunSymbolicClassification(fleet, options, classifier);
    std::printf(" %-6.2f", run.ok() ? run->weighted_f1 : -1.0);
  }
  std::printf("\n");
  std::fflush(stdout);
}

void PrintRawRow(const std::vector<TimeSeries>& fleet, int64_t window,
                 const char* label, bool skip_logistic) {
  std::printf("%-26s", label);
  data::ClassificationOptions options;
  options.day.window_seconds = window;
  // Raw rows: the per-house and "+" columns coincide (no lookup table is
  // involved), which the paper's Table 1 also shows.
  std::vector<double> cells;
  for (const char* classifier : kPerHouseClassifiers) {
    if (skip_logistic && std::string(classifier) == "Logistic") {
      cells.push_back(-1.0);
      continue;
    }
    Result<ClassificationRun> run =
        RunRawClassification(fleet, options, classifier);
    cells.push_back(run.ok() ? run->weighted_f1 : -1.0);
  }
  for (double f1 : cells) {
    if (f1 < 0.0) {
      std::printf(" %-6s", "-*");
    } else {
      std::printf(" %-6.2f", f1);
    }
  }
  // "+" columns: Logistic+, RandomForest+, J48+, NaiveBayes+ == plain.
  double plus[] = {cells[3], cells[0], cells[1], cells[2]};
  for (double f1 : plus) {
    if (f1 < 0.0) {
      std::printf(" %-6s", "-*");
    } else {
      std::printf(" %-6.2f", f1);
    }
  }
  std::printf("\n");
  std::fflush(stdout);
}

void Run() {
  PrintBenchHeader(
      "Table 1: F-measure per method/aggregation/alphabet and classifier",
      {"columns: RF, J48, NB, Logistic, then the single-lookup-table "
       "variants Logistic+, RF+, J48+, NB+",
       "6 synthetic houses, 24 days (raw 1 s rows: 10 days), 10-fold CV",
       "-* = not computed (paper: Logistic on raw 1 s exceeded the Java "
       "heap; here: 86 400-dimensional dense optimization, skipped)"});

  std::vector<TimeSeries> fleet = PaperFleet();
  std::printf("%-26s %-6s %-6s %-6s %-6s %-6s %-6s %-6s %-6s\n", "config",
              "RF", "J48", "NB", "Logist", "Logis+", "RF+", "J48+", "NB+");

  for (SeparatorMethod method :
       {SeparatorMethod::kDistinctMedian, SeparatorMethod::kMedian,
        SeparatorMethod::kUniform}) {
    for (int64_t window : {kSecondsPerHour, int64_t{900}}) {
      for (int level : {1, 2, 3, 4}) {
        PrintRow(fleet, method, window, level);
      }
    }
  }
  PrintRawRow(fleet, kSecondsPerHour, "raw 1h", /*skip_logistic=*/false);
  PrintRawRow(fleet, 900, "raw 15m", /*skip_logistic=*/false);

  // Raw 1-second vectors: reduced duration for tractability.
  std::vector<TimeSeries> short_fleet = PaperFleet(10);
  PrintRawRow(short_fleet, 1, "raw 1sec (10 days)", /*skip_logistic=*/true);
}

}  // namespace
}  // namespace smeter::bench

int main() {
  smeter::bench::Run();
  return 0;
}
