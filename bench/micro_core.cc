// Micro-benchmarks (google-benchmark) for the core encoding path: the
// sensor-side cost story behind Section 2's "analytics on top of it become
// very expensive" motivation.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/encoder.h"
#include "core/online_encoder.h"
#include "core/quantile.h"
#include "core/codec.h"
#include "core/sax.h"

namespace smeter {
namespace {

std::vector<double> BenchValues(size_t n) {
  Rng rng(42);
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) values.push_back(rng.LogNormal(5.0, 1.0));
  return values;
}

LookupTable BenchTable(int level) {
  LookupTableOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = level;
  return LookupTable::Build(BenchValues(10000), options).value();
}

void BM_TableBuild(benchmark::State& state) {
  std::vector<double> values = BenchValues(static_cast<size_t>(state.range(0)));
  LookupTableOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LookupTable::Build(values, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TableBuild)->Arg(1000)->Arg(86400);

void BM_Encode(benchmark::State& state) {
  LookupTable table = BenchTable(static_cast<int>(state.range(0)));
  TimeSeries series = TimeSeries::FromValues(BenchValues(86400));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Encode(series, table));
  }
  state.SetItemsProcessed(state.iterations() * 86400);
}
BENCHMARK(BM_Encode)->Arg(1)->Arg(4)->Arg(8);

void BM_EncodeSingleValue(benchmark::State& state) {
  LookupTable table = BenchTable(4);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Encode(rng.Uniform(0.0, 1000.0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeSingleValue);

void BM_OnlineEncoderPush(benchmark::State& state) {
  OnlineEncoderOptions options;
  options.warmup_seconds = 900;
  options.window_seconds = 900;
  OnlineEncoder encoder = OnlineEncoder::Create(options).value();
  Rng rng(11);
  Timestamp t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Push({t++, rng.LogNormal(5.0, 1.0)}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OnlineEncoderPush);

void BM_VerticalSegment(benchmark::State& state) {
  TimeSeries series = TimeSeries::FromValues(BenchValues(86400));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        VerticalSegmentByWindow(series, state.range(0), {}));
  }
  state.SetItemsProcessed(state.iterations() * 86400);
}
BENCHMARK(BM_VerticalSegment)->Arg(900)->Arg(3600);

void BM_EqualFrequencySeparators(benchmark::State& state) {
  std::vector<double> values = BenchValues(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EqualFrequencySeparators(values, 15));
  }
}
BENCHMARK(BM_EqualFrequencySeparators)->Arg(10000)->Arg(172800);

void BM_SaxEncodeDay(benchmark::State& state) {
  TimeSeries series = TimeSeries::FromValues(BenchValues(86400));
  SaxOptions options;
  options.level = 4;
  options.paa_frame = 900;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SaxEncode(series, options));
  }
  state.SetItemsProcessed(state.iterations() * 86400);
}
BENCHMARK(BM_SaxEncodeDay);

void BM_PackDay(benchmark::State& state) {
  LookupTable table = BenchTable(4);
  TimeSeries raw = TimeSeries::FromValues(BenchValues(86400));
  PipelineOptions pipeline;
  pipeline.window_seconds = 900;
  SymbolicSeries day = EncodePipeline(raw, table, pipeline).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PackSymbolicSeries(day));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(day.size()));
}
BENCHMARK(BM_PackDay);

void BM_UnpackDay(benchmark::State& state) {
  LookupTable table = BenchTable(4);
  TimeSeries raw = TimeSeries::FromValues(BenchValues(86400));
  PipelineOptions pipeline;
  pipeline.window_seconds = 900;
  SymbolicSeries day = EncodePipeline(raw, table, pipeline).value();
  std::string blob = PackSymbolicSeries(day).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(UnpackSymbolicSeries(blob));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(day.size()));
}
BENCHMARK(BM_UnpackDay);

void BM_RunningStatsAdd(benchmark::State& state) {
  Rng rng(13);
  RunningStats stats;
  for (auto _ : state) {
    stats.Add(rng.LogNormal(5.0, 1.0));
  }
  benchmark::DoNotOptimize(stats.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunningStatsAdd);

}  // namespace
}  // namespace smeter

BENCHMARK_MAIN();
