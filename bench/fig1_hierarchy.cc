// Figure 1: construction of variable-length symbols by recursive division
// of the real value range. Prints the nested separator sets and the symbol
// tree for house 1's lookup tables under each method.

#include <cstdio>

#include "bench_util.h"
#include "core/lookup_table.h"

namespace smeter::bench {
namespace {

void PrintTableHierarchy(const LookupTable& table) {
  for (int level = 1; level <= table.level(); ++level) {
    std::printf("  level %d (k=%2u): ", level, 1u << level);
    std::vector<double> seps = table.SeparatorsAtLevel(level).value();
    std::printf("separators [W]:");
    for (double s : seps) std::printf(" %8.1f", s);
    std::printf("\n");
    std::printf("                symbols:      ");
    for (uint32_t i = 0; i < (1u << level); ++i) {
      Symbol symbol = Symbol::Create(level, i).value();
      std::printf(" %*s", 8, symbol.ToBits().c_str());
    }
    std::printf("\n");
  }
}

void Run() {
  PrintBenchHeader(
      "Figure 1: recursive range division into variable-length symbols",
      {"house 1, separators learned from the first two days of 1 Hz data",
       "level-l separators are a subset of level-(l+1): the binary tree "
       "of Figure 1"});

  std::vector<TimeSeries> fleet = PaperFleet(4);
  std::vector<double> training =
      fleet[0].Slice({0, 2 * kSecondsPerDay}).Values();

  for (SeparatorMethod method :
       {SeparatorMethod::kUniform, SeparatorMethod::kMedian,
        SeparatorMethod::kDistinctMedian}) {
    LookupTableOptions options;
    options.method = method;
    options.level = 3;
    LookupTable table = LookupTable::Build(training, options).value();
    std::printf("\nmethod = %s (domain %.1f .. %.1f W)\n",
                SeparatorMethodName(method).c_str(), table.domain_min(),
                table.domain_max());
    PrintTableHierarchy(table);
  }
}

}  // namespace
}  // namespace smeter::bench

int main() {
  smeter::bench::Run();
  return 0;
}
