// Micro-benchmarks for the ingestion wire path: frame encode/decode,
// symbol-batch payload codec, and the full per-meter session state machine
// (HELLO -> TABLE -> batches -> GOODBYE) at archive-realistic batch sizes.
// `run_bench.sh` merges the JSON output into BENCH_micro.json.
//
// The numbers to look for:
//   BM_EncodeFrame / BM_DecodeFrame -- raw framing + CRC32C cost per frame;
//     bytes_per_second is the wire throughput ceiling of one connection.
//   BM_SymbolBatchCodec             -- typed payload pack/parse round-trip.
//   BM_SessionIngest                -- items_processed counts symbols, so
//     items_per_second is the single-thread ceiling on symbols ingested
//     through the full protocol state machine (seq/cadence checks, gap
//     accounting) before the durable sink even starts.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/sync.h"
#include "core/lookup_table.h"
#include "net/session.h"
#include "net/wire.h"

namespace smeter::net {
namespace {

constexpr int kLevel = 4;
constexpr size_t kBatchSymbols = 64;   // loadgen default ballpark
constexpr size_t kBatchesPerDay = 48;  // one day at 30-min windows is 48
                                       // windows; stream a week per session
constexpr size_t kBatches = 7 * kBatchesPerDay / kBatchSymbols + 6;

std::string BenchTableBlob() {
  std::vector<double> training;
  training.reserve(512);
  for (int i = 0; i < 512; ++i) training.push_back(0.5 * i);
  LookupTableOptions options;
  options.level = kLevel;
  options.method = SeparatorMethod::kMedian;
  Result<LookupTable> table = LookupTable::Build(training, options);
  SMETER_CHECK(table.ok());
  return table->Serialize();
}

SymbolBatchPayload BenchBatch(uint64_t seq, int64_t start) {
  SymbolBatchPayload batch;
  batch.seq = seq;
  batch.start_timestamp = start;
  batch.step_seconds = 1800;
  batch.level = kLevel;
  batch.symbols.reserve(kBatchSymbols);
  for (size_t i = 0; i < kBatchSymbols; ++i) {
    batch.symbols.push_back(
        (i % 17 == 0) ? kWireGapSymbol
                      : static_cast<uint16_t>((seq + i) % (1u << kLevel)));
  }
  return batch;
}

void BM_EncodeFrame(benchmark::State& state) {
  const SymbolBatchPayload batch = BenchBatch(1, 0);
  size_t bytes = 0;
  for (auto _ : state) {
    Frame frame = MakeSymbolBatch(batch);
    std::string encoded = EncodeFrame(frame);
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchSymbols));
}
BENCHMARK(BM_EncodeFrame);

void BM_DecodeFrame(benchmark::State& state) {
  const std::string encoded = EncodeFrame(MakeSymbolBatch(BenchBatch(1, 0)));
  for (auto _ : state) {
    DecodeResult result = DecodeFrame(encoded);
    SMETER_CHECK(result.outcome == DecodeResult::Outcome::kFrame);
    benchmark::DoNotOptimize(result.frame.payload.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(encoded.size()));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchSymbols));
}
BENCHMARK(BM_DecodeFrame);

void BM_SymbolBatchCodec(benchmark::State& state) {
  const Frame frame = MakeSymbolBatch(BenchBatch(1, 0));
  for (auto _ : state) {
    Result<SymbolBatchPayload> parsed = ParseSymbolBatch(frame);
    SMETER_CHECK(parsed.ok());
    benchmark::DoNotOptimize(parsed->symbols.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchSymbols));
}
BENCHMARK(BM_SymbolBatchCodec);

void BM_SessionIngest(benchmark::State& state) {
  const std::string table_blob = BenchTableBlob();
  // Pre-encode the whole conversation once; the benchmark measures the
  // server side (decode + state machine), not the client's builders.
  std::vector<std::string> conversation;
  conversation.push_back(EncodeFrame(MakeHello({kProtocolVersion, "bench", ""})));
  conversation.push_back(EncodeFrame(MakeTableAnnounce({1, table_blob})));
  uint64_t gaps = 0, valid = 0;
  int64_t start = 0;
  for (size_t b = 1; b <= kBatches; ++b) {
    SymbolBatchPayload batch = BenchBatch(b, start);
    start += static_cast<int64_t>(batch.symbols.size()) * batch.step_seconds;
    for (uint16_t s : batch.symbols) {
      if (s == kWireGapSymbol) ++gaps; else ++valid;
    }
    conversation.push_back(EncodeFrame(MakeSymbolBatch(batch)));
  }
  conversation.push_back(EncodeFrame(MakeGoodbye({valid, 0, gaps})));

  for (auto _ : state) {
    Session session((SessionOptions()));
    // The benchmark thread is the session's single writer.
    ScopedThreadRole writer(session.writer_role());
    std::vector<Frame> replies;
    for (const std::string& bytes : conversation) {
      DecodeResult result = DecodeFrame(bytes);
      SMETER_CHECK(result.outcome == DecodeResult::Outcome::kFrame);
      replies.clear();
      session.OnFrame(result.frame, &replies);
      benchmark::DoNotOptimize(replies.size());
    }
    SMETER_CHECK(session.state() == Session::State::kComplete);
    Result<SymbolicSeries> series = session.TakeSeries();
    SMETER_CHECK(series.ok());
    benchmark::DoNotOptimize(series->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatches * kBatchSymbols));
  state.counters["batches"] = static_cast<double>(kBatches);
}
BENCHMARK(BM_SessionIngest);

}  // namespace
}  // namespace smeter::net

BENCHMARK_MAIN();
