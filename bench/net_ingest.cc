// Micro-benchmarks for the ingestion wire path: frame encode/decode,
// symbol-batch payload codec, and the full per-meter session state machine
// (HELLO -> TABLE -> batches -> GOODBYE) at archive-realistic batch sizes.
// `run_bench.sh` merges the JSON output into BENCH_micro.json.
//
// The numbers to look for:
//   BM_EncodeFrame / BM_DecodeFrame -- raw framing + CRC32C cost per frame;
//     bytes_per_second is the wire throughput ceiling of one connection.
//   BM_SymbolBatchCodec             -- typed payload pack/parse round-trip.
//   BM_SessionIngest                -- items_processed counts symbols, so
//     items_per_second is the single-thread ceiling on symbols ingested
//     through the full protocol state machine (seq/cadence checks, gap
//     accounting) before the durable sink even starts.

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/sync.h"
#include "core/lookup_table.h"
#include "net/ingest_server.h"
#include "net/session.h"
#include "net/wire.h"

namespace smeter::net {
namespace {

constexpr int kLevel = 4;
constexpr size_t kBatchSymbols = 64;   // loadgen default ballpark
constexpr size_t kBatchesPerDay = 48;  // one day at 30-min windows is 48
                                       // windows; stream a week per session
constexpr size_t kBatches = 7 * kBatchesPerDay / kBatchSymbols + 6;

std::string BenchTableBlob() {
  std::vector<double> training;
  training.reserve(512);
  for (int i = 0; i < 512; ++i) training.push_back(0.5 * i);
  LookupTableOptions options;
  options.level = kLevel;
  options.method = SeparatorMethod::kMedian;
  Result<LookupTable> table = LookupTable::Build(training, options);
  SMETER_CHECK(table.ok());
  return table->Serialize();
}

SymbolBatchPayload BenchBatch(uint64_t seq, int64_t start) {
  SymbolBatchPayload batch;
  batch.seq = seq;
  batch.start_timestamp = start;
  batch.step_seconds = 1800;
  batch.level = kLevel;
  batch.symbols.reserve(kBatchSymbols);
  for (size_t i = 0; i < kBatchSymbols; ++i) {
    batch.symbols.push_back(
        (i % 17 == 0) ? kWireGapSymbol
                      : static_cast<uint16_t>((seq + i) % (1u << kLevel)));
  }
  return batch;
}

void BM_EncodeFrame(benchmark::State& state) {
  const SymbolBatchPayload batch = BenchBatch(1, 0);
  size_t bytes = 0;
  for (auto _ : state) {
    Frame frame = MakeSymbolBatch(batch);
    std::string encoded = EncodeFrame(frame);
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchSymbols));
}
BENCHMARK(BM_EncodeFrame);

void BM_DecodeFrame(benchmark::State& state) {
  const std::string encoded = EncodeFrame(MakeSymbolBatch(BenchBatch(1, 0)));
  for (auto _ : state) {
    DecodeResult result = DecodeFrame(encoded);
    SMETER_CHECK(result.outcome == DecodeResult::Outcome::kFrame);
    benchmark::DoNotOptimize(result.frame.payload.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(encoded.size()));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchSymbols));
}
BENCHMARK(BM_DecodeFrame);

void BM_SymbolBatchCodec(benchmark::State& state) {
  const Frame frame = MakeSymbolBatch(BenchBatch(1, 0));
  for (auto _ : state) {
    Result<SymbolBatchPayload> parsed = ParseSymbolBatch(frame);
    SMETER_CHECK(parsed.ok());
    benchmark::DoNotOptimize(parsed->symbols.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchSymbols));
}
BENCHMARK(BM_SymbolBatchCodec);

void BM_SessionIngest(benchmark::State& state) {
  const std::string table_blob = BenchTableBlob();
  // Pre-encode the whole conversation once; the benchmark measures the
  // server side (decode + state machine), not the client's builders.
  std::vector<std::string> conversation;
  conversation.push_back(EncodeFrame(MakeHello({kProtocolVersion, "bench", ""})));
  conversation.push_back(EncodeFrame(MakeTableAnnounce({1, table_blob})));
  uint64_t gaps = 0, valid = 0;
  int64_t start = 0;
  for (size_t b = 1; b <= kBatches; ++b) {
    SymbolBatchPayload batch = BenchBatch(b, start);
    start += static_cast<int64_t>(batch.symbols.size()) * batch.step_seconds;
    for (uint16_t s : batch.symbols) {
      if (s == kWireGapSymbol) ++gaps; else ++valid;
    }
    conversation.push_back(EncodeFrame(MakeSymbolBatch(batch)));
  }
  conversation.push_back(EncodeFrame(MakeGoodbye({valid, 0, gaps})));

  for (auto _ : state) {
    Session session((SessionOptions()));
    // The benchmark thread is the session's single writer.
    ScopedThreadRole writer(session.writer_role());
    std::vector<Frame> replies;
    for (const std::string& bytes : conversation) {
      DecodeResult result = DecodeFrame(bytes);
      SMETER_CHECK(result.outcome == DecodeResult::Outcome::kFrame);
      replies.clear();
      session.OnFrame(result.frame, &replies);
      benchmark::DoNotOptimize(replies.size());
    }
    SMETER_CHECK(session.state() == Session::State::kComplete);
    Result<SymbolicSeries> series = session.TakeSeries();
    SMETER_CHECK(series.ok());
    benchmark::DoNotOptimize(series->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatches * kBatchSymbols));
  state.counters["batches"] = static_cast<double>(kBatches);
}
BENCHMARK(BM_SessionIngest);

// ---------------------------------------------------------------------------
// Sharded end-to-end ingest: a real loopback IngestServer with
// threads = range(0) shards, driven by range(1) persistent TCP connections
// that carry a fixed 64-meter fleet back-to-back (keep-alive sessions).
// Every SYMBOL_BATCH waits for its BATCH_ACK, so the recorded samples are
// genuine request->ack round trips under the chosen concurrency; the
// ack_p50_us / ack_p99_us counters summarize them and items_per_second is
// the AGGREGATE symbols/s across all shards. On a single-core host the
// shard sweep collapses to serial throughput (the shard threads time-slice
// one CPU) — the matrix still exercises acceptor spreading, meter-hash
// handoff, and per-shard manifest striping end to end.

constexpr size_t kShardFleet = 64;    // meters per iteration
constexpr size_t kShardBatches = 4;   // SYMBOL_BATCH frames per meter

// Minimal blocking framed client (the loadgen MeterClient shape, inlined
// here so the bench binary only needs smeter_net).
class BenchClient {
 public:
  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    const int enable = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  bool SendFrame(const Frame& frame) {
    const std::string bytes = EncodeFrame(frame);
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      return false;
    }
    return true;
  }

  bool RecvFrame(Frame* out) {
    for (;;) {
      DecodeResult decoded = DecodeFrame(in_);
      if (decoded.outcome == DecodeResult::Outcome::kFrame) {
        in_.erase(0, decoded.consumed);
        *out = std::move(decoded.frame);
        return true;
      }
      if (decoded.outcome == DecodeResult::Outcome::kError) return false;
      char chunk[16 * 1024];
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n > 0) {
        in_.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n == 0 || errno != EINTR) return false;
    }
  }

 private:
  int fd_ = -1;
  std::string in_;
};

void BM_ShardedIngest(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const size_t conns = static_cast<size_t>(state.range(1));
  const std::string table_blob = BenchTableBlob();

  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("smeter_bench_ingest_" + std::to_string(::getpid()) + "_" +
       std::to_string(shards) + "_" + std::to_string(conns));
  std::error_code ec;
  fs::remove_all(dir, ec);

  IngestServerOptions options;
  options.archive_dir = dir.string();
  options.threads = shards;
  options.idle_timeout_ms = 60'000;
  Result<std::unique_ptr<IngestServer>> server =
      IngestServer::Create(options);
  SMETER_CHECK(server.ok());
  const uint16_t port = (*server)->port();
  std::thread server_thread([&] {
    Status run = (*server)->Run();
    SMETER_CHECK(run.ok());
  });

  // Unique meter ids per iteration so every session persists fresh instead
  // of short-circuiting on the duplicate check.
  static std::atomic<uint64_t> round_counter{0};

  std::mutex merge_mutex;
  std::vector<double> ack_us;  // all batch->ack round trips, microseconds
  uint64_t failures = 0;

  for (auto _ : state) {
    const uint64_t round = round_counter.fetch_add(1);
    std::vector<std::thread> workers;
    workers.reserve(conns);
    for (size_t c = 0; c < conns; ++c) {
      workers.emplace_back([&, c, round] {
        std::vector<double> local_us;
        uint64_t local_failures = 0;
        BenchClient client;
        if (!client.Connect(port)) {
          local_failures += kShardFleet / conns + 1;
        } else {
          using Clock = std::chrono::steady_clock;
          for (size_t m = c; m < kShardFleet; m += conns) {
            const std::string meter = "bench_" + std::to_string(round) +
                                      "_" + std::to_string(m);
            bool ok =
                client.SendFrame(MakeHello({kProtocolVersion, meter, ""}));
            Frame reply;
            ok = ok && client.RecvFrame(&reply) &&
                 reply.type == FrameType::kHelloAck;
            ok = ok && client.SendFrame(MakeTableAnnounce({1, table_blob}));
            ok = ok && client.RecvFrame(&reply) &&
                 reply.type == FrameType::kTableAck;
            uint64_t gaps = 0, valid = 0;
            int64_t start = 0;
            for (size_t b = 1; ok && b <= kShardBatches; ++b) {
              SymbolBatchPayload batch = BenchBatch(b, start);
              start += static_cast<int64_t>(batch.symbols.size()) *
                       batch.step_seconds;
              for (uint16_t s : batch.symbols) {
                if (s == kWireGapSymbol) ++gaps; else ++valid;
              }
              const auto t0 = Clock::now();
              ok = client.SendFrame(MakeSymbolBatch(batch)) &&
                   client.RecvFrame(&reply) &&
                   reply.type == FrameType::kBatchAck;
              if (ok) {
                local_us.push_back(
                    std::chrono::duration<double, std::micro>(Clock::now() -
                                                              t0)
                        .count());
              }
            }
            ok = ok && client.SendFrame(MakeGoodbye({valid, 0, gaps}));
            ok = ok && client.RecvFrame(&reply) &&
                 reply.type == FrameType::kGoodbyeAck;
            if (!ok) {
              ++local_failures;
              break;  // connection state is unknown; stop this worker
            }
          }
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        ack_us.insert(ack_us.end(), local_us.begin(), local_us.end());
        failures += local_failures;
      });
    }
    for (std::thread& worker : workers) worker.join();
  }

  (*server)->RequestDrain();
  server_thread.join();
  fs::remove_all(dir, ec);

  SMETER_CHECK(failures == 0);
  std::sort(ack_us.begin(), ack_us.end());
  auto percentile = [&](double p) {
    if (ack_us.empty()) return 0.0;
    const size_t index = std::min(
        ack_us.size() - 1, static_cast<size_t>(p * (ack_us.size() - 1)));
    return ack_us[index];
  };
  state.counters["ack_p50_us"] = percentile(0.50);
  state.counters["ack_p99_us"] = percentile(0.99);
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["connections"] = static_cast<double>(conns);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kShardFleet * kShardBatches *
                                               kBatchSymbols));
}
BENCHMARK(BM_ShardedIngest)
    ->ArgNames({"shards", "conns"})
    ->ArgsProduct({{1, 2, 4, 8}, {1, 4, 16, 64}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.2);

}  // namespace
}  // namespace smeter::net

// run_bench.sh refuses to record numbers unless this compiled-in marker
// says release: the Debian-packaged benchmark *library* is assert-enabled
// (its own library_build_type always reads "debug"), so the marker has to
// come from the translation unit whose kernels are actually being timed.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("smeter_build_type", "release");
#else
  benchmark::AddCustomContext("smeter_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
