// Figure 5: Naive Bayes F-measure and processing time over symbolic and
// raw data — {distinctmedian, median, uniform} x {1 h, 15 min} x
// {2, 4, 8, 16} symbols, plus raw 1 h / 15 min baselines, 10-fold CV.

#include "bench_util.h"

int main() {
  using namespace smeter::bench;
  PrintBenchHeader(
      "Figure 5: Naive Bayes over symbolic and raw data",
      {"6 synthetic houses (REDD stand-in), 24 days, per-house lookup "
       "tables from the first two days",
       "stratified 10-fold cross-validation; F-measure = weighted F1"});
  std::vector<smeter::TimeSeries> fleet = PaperFleet();
  RunFigureSweep(fleet, "NaiveBayes", /*global_table=*/false);
  return 0;
}
