// Figure 6: Random Forest F-measure and processing time over symbolic and
// raw data, same sweep as Figure 5.

#include "bench_util.h"

int main() {
  using namespace smeter::bench;
  PrintBenchHeader(
      "Figure 6: Random Forest over symbolic and raw data",
      {"6 synthetic houses, 24 days, per-house lookup tables, 50 trees",
       "stratified 10-fold cross-validation; F-measure = weighted F1"});
  std::vector<smeter::TimeSeries> fleet = PaperFleet();
  RunFigureSweep(fleet, "RandomForest", /*global_table=*/false);
  return 0;
}
