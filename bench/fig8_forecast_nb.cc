// Figure 8: MAE of next-day hourly load forecasting with Naive Bayes over
// symbols (distinctmedian / median / uniform, alphabet 16, 12 lag
// symbols), against epsilon-SVR on raw values. House 5 (index 4) is
// skipped — not enough data — exactly as in the paper.

#include "bench_util.h"

int main() {
  using namespace smeter::bench;
  PrintBenchHeader(
      "Figure 8: forecasting MAE [W], Naive Bayes next-symbol vs raw SVR",
      {"1 week hourly training, next-day test, 12 lag symbols, alphabet 16",
       "symbol semantics = center of its range (Section 3.2)"});
  RunForecastFigure("NaiveBayes");
  return 0;
}
