#include "bench_util.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <cstdlib>
#include <memory>

#include "app/forecaster.h"
#include "core/vertical.h"
#include "ml/decision_tree.h"
#include "ml/logistic.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "ml/svr.h"

namespace smeter::bench {

data::GeneratorOptions PaperFleetOptions(int days, uint64_t seed) {
  data::GeneratorOptions options;
  options.num_houses = kNumHouses;
  options.duration_seconds = days * kSecondsPerDay;
  options.outages_per_day = 0.4;
  options.outage_mean_seconds = 2400.0;
  options.sparse_house = 4;  // the paper's data-starved house 5
  options.seed = seed;
  return options;
}

std::vector<TimeSeries> PaperFleet(int days, uint64_t seed) {
  Result<std::vector<TimeSeries>> fleet =
      data::GenerateFleet(PaperFleetOptions(days, seed));
  if (!fleet.ok()) {
    std::fprintf(stderr, "fleet generation failed: %s\n",
                 fleet.status().ToString().c_str());
    std::abort();
  }
  return std::move(fleet.value());
}

ml::ClassifierFactory MakeClassifierFactory(const std::string& name) {
  if (name == "RandomForest") {
    return [] {
      ml::RandomForestOptions options;
      options.num_trees = 50;
      return std::make_unique<ml::RandomForest>(options);
    };
  }
  if (name == "J48") {
    return [] { return std::make_unique<ml::DecisionTree>(); };
  }
  if (name == "NaiveBayes") {
    return [] { return std::make_unique<ml::NaiveBayes>(); };
  }
  if (name == "Logistic") {
    return [] {
      ml::LogisticOptions options;
      options.max_iterations = 150;
      return std::make_unique<ml::Logistic>(options);
    };
  }
  std::fprintf(stderr, "unknown classifier: %s\n", name.c_str());
  std::abort();
}

std::string AggLabel(int64_t window_seconds, int level) {
  std::string window = window_seconds == kSecondsPerHour
                           ? "1h"
                           : std::to_string(window_seconds / 60) + "m";
  if (window_seconds == 1) window = "1sec";
  return window + " " + std::to_string(1 << level) + "s";
}

std::string ConfigLabel(SeparatorMethod method, int64_t window_seconds,
                        int level) {
  return SeparatorMethodName(method) + " " + AggLabel(window_seconds, level);
}

namespace {

Result<ClassificationRun> RunOnDataset(const ml::Dataset& dataset,
                                       const std::string& classifier_name,
                                       uint64_t cv_seed) {
  Result<ml::CrossValidationResult> cv = ml::CrossValidate(
      MakeClassifierFactory(classifier_name), dataset, 10, cv_seed);
  if (!cv.ok()) return cv.status();
  ClassificationRun run;
  run.weighted_f1 = cv->metrics.WeightedF1();
  run.processing_seconds = cv->processing_seconds;
  run.num_instances = dataset.num_instances();
  return run;
}

}  // namespace

Result<ClassificationRun> RunSymbolicClassification(
    const std::vector<TimeSeries>& fleet,
    const data::ClassificationOptions& options,
    const std::string& classifier_name, uint64_t cv_seed) {
  Result<ml::Dataset> dataset =
      data::BuildSymbolicClassificationDataset(fleet, options);
  if (!dataset.ok()) return dataset.status();
  return RunOnDataset(dataset.value(), classifier_name, cv_seed);
}

Result<ClassificationRun> RunRawClassification(
    const std::vector<TimeSeries>& fleet,
    const data::ClassificationOptions& options,
    const std::string& classifier_name, uint64_t cv_seed) {
  Result<ml::Dataset> dataset =
      data::BuildRawClassificationDataset(fleet, options);
  if (!dataset.ok()) return dataset.status();
  return RunOnDataset(dataset.value(), classifier_name, cv_seed);
}

Result<std::vector<double>> ContiguousHourly(const TimeSeries& trace,
                                             size_t hours) {
  WindowOptions window;
  window.min_coverage = 0.0;  // any samples at all yield an hourly mean
  Result<TimeSeries> hourly =
      VerticalSegmentByWindow(trace, kSecondsPerHour, window);
  if (!hourly.ok()) return hourly.status();
  const TimeSeries& h = hourly.value();
  if (h.empty()) return FailedPreconditionError("empty trace");

  // Lay the values onto the full hourly grid (NaN = missing hour).
  Timestamp grid_start = h.front().timestamp;
  size_t grid_size = static_cast<size_t>(
      (h.back().timestamp - grid_start) / kSecondsPerHour + 1);
  if (grid_size < hours) {
    return FailedPreconditionError("trace shorter than requested window");
  }
  std::vector<double> grid(grid_size,
                           std::numeric_limits<double>::quiet_NaN());
  for (const Sample& s : h) {
    grid[static_cast<size_t>((s.timestamp - grid_start) / kSecondsPerHour)] =
        s.value;
  }

  // Find the first span with few enough missing hours (sliding count).
  const size_t max_missing = hours / 20;  // 5%
  size_t missing = 0;
  for (size_t i = 0; i < grid_size; ++i) {
    if (std::isnan(grid[i])) ++missing;
    if (i + 1 < hours) continue;
    if (i >= hours && std::isnan(grid[i - hours])) --missing;
    if (missing > max_missing) continue;

    std::vector<double> out(grid.begin() + static_cast<long>(i + 1 - hours),
                            grid.begin() + static_cast<long>(i + 1));
    // Fill the missing hours by linear interpolation between the nearest
    // known neighbours (ends fall back to the nearest known value).
    for (size_t j = 0; j < out.size(); ++j) {
      if (!std::isnan(out[j])) continue;
      size_t prev = j;
      while (prev > 0 && std::isnan(out[prev])) --prev;
      size_t next = j;
      while (next + 1 < out.size() && std::isnan(out[next])) ++next;
      if (std::isnan(out[prev]) && std::isnan(out[next])) continue;
      if (std::isnan(out[prev])) {
        out[j] = out[next];
      } else if (std::isnan(out[next])) {
        out[j] = out[prev];
      } else {
        double frac = static_cast<double>(j - prev) /
                      static_cast<double>(next - prev);
        out[j] = out[prev] + frac * (out[next] - out[prev]);
      }
    }
    return out;
  }
  return FailedPreconditionError("no hourly span of " +
                                 std::to_string(hours) +
                                 " hours with enough data");
}

Result<double> SymbolicForecastMae(const std::vector<double>& hourly,
                                   const std::vector<double>& table_training,
                                   SeparatorMethod method,
                                   const std::string& classifier_name) {
  const size_t total = kTrainHours + kForecastHours;
  if (hourly.size() != total) {
    return InvalidArgumentError("hourly series must hold 8 days");
  }
  app::ForecasterOptions options;
  options.method = method;
  options.level = kForecastLevel;
  options.lag = kForecastLag;
  app::SymbolicForecaster forecaster(MakeClassifierFactory(classifier_name),
                                     options);
  std::vector<double> history(hourly.begin(), hourly.begin() + kTrainHours);
  std::vector<double> next_day(hourly.begin() + kTrainHours, hourly.end());
  SMETER_RETURN_IF_ERROR(
      forecaster.TrainWithTableData(table_training, history));
  return forecaster.EvaluateMae(history, next_day);
}

Result<double> SvrForecastMae(const std::vector<double>& hourly) {
  const size_t total = kTrainHours + kForecastHours;
  if (hourly.size() != total) {
    return InvalidArgumentError("hourly series must hold 8 days");
  }
  std::vector<std::vector<double>> x_train, x_test;
  std::vector<double> y_train, y_test;
  SMETER_RETURN_IF_ERROR(data::BuildLagMatrix(hourly, kForecastLag, 0,
                                              kTrainHours, &x_train,
                                              &y_train));
  SMETER_RETURN_IF_ERROR(data::BuildLagMatrix(hourly, kForecastLag,
                                              kTrainHours, total, &x_test,
                                              &y_test));
  ml::SvrOptions options;
  options.c = 10.0;
  ml::Svr svr(options);
  SMETER_RETURN_IF_ERROR(svr.Train(x_train, y_train));
  double abs_error = 0.0;
  for (size_t i = 0; i < x_test.size(); ++i) {
    Result<double> predicted = svr.Predict(x_test[i]);
    if (!predicted.ok()) return predicted.status();
    abs_error += std::abs(predicted.value() - y_test[i]);
  }
  return abs_error / static_cast<double>(x_test.size());
}

void RunForecastFigure(const std::string& classifier_name) {
  std::vector<TimeSeries> fleet = PaperFleet(12);
  std::printf("%-10s %-10s %-16s %-10s %-10s\n", "house", "raw(SVR)",
              "distinctmedian", "median", "uniform");
  for (size_t house = 0; house < fleet.size(); ++house) {
    if (house == 4) {
      std::printf("%-10s (skipped: not enough data)\n", "house 5");
      continue;
    }
    Result<std::vector<double>> hourly =
        ContiguousHourly(fleet[house], kTrainHours + kForecastHours);
    if (!hourly.ok()) {
      std::printf("house %zu    failed: %s\n", house + 1,
                  hourly.status().ToString().c_str());
      continue;
    }
    // Tables are calibrated on the house's historical raw data (first two
    // days), as in the classification experiments.
    std::vector<double> table_training =
        fleet[house].Slice({0, 2 * kSecondsPerDay}).Values();

    Result<double> raw = SvrForecastMae(hourly.value());
    std::printf("house %-4zu %-10.1f", house + 1,
                raw.ok() ? raw.value() : -1.0);
    for (SeparatorMethod method :
         {SeparatorMethod::kDistinctMedian, SeparatorMethod::kMedian,
          SeparatorMethod::kUniform}) {
      Result<double> mae = SymbolicForecastMae(
          hourly.value(), table_training, method, classifier_name);
      std::printf(" %-*.1f",
                  method == SeparatorMethod::kDistinctMedian ? 16 : 10,
                  mae.ok() ? mae.value() : -1.0);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
}

void RunFigureSweep(const std::vector<TimeSeries>& fleet,
                    const std::string& classifier_name, bool global_table) {
  std::printf("%-26s %-10s %-14s\n", "config", "F-measure",
              "time [seconds]");
  for (SeparatorMethod method :
       {SeparatorMethod::kDistinctMedian, SeparatorMethod::kMedian,
        SeparatorMethod::kUniform}) {
    for (int64_t window : {kSecondsPerHour, int64_t{900}}) {
      for (int level : {1, 2, 3, 4}) {
        data::ClassificationOptions options;
        options.day.window_seconds = window;
        options.method = method;
        options.level = level;
        options.global_table = global_table;
        Result<ClassificationRun> run =
            RunSymbolicClassification(fleet, options, classifier_name);
        if (!run.ok()) {
          std::printf("%-26s failed: %s\n",
                      ConfigLabel(method, window, level).c_str(),
                      run.status().ToString().c_str());
          continue;
        }
        std::printf("%-26s %-10.3f %-14.4f\n",
                    ConfigLabel(method, window, level).c_str(),
                    run->weighted_f1, run->processing_seconds);
      }
    }
  }
  for (int64_t window : {kSecondsPerHour, int64_t{900}}) {
    data::ClassificationOptions options;
    options.day.window_seconds = window;
    Result<ClassificationRun> run =
        RunRawClassification(fleet, options, classifier_name);
    std::string label =
        std::string("raw ") + (window == kSecondsPerHour ? "1h" : "15m");
    if (!run.ok()) {
      std::printf("%-26s failed: %s\n", label.c_str(),
                  run.status().ToString().c_str());
      continue;
    }
    std::printf("%-26s %-10.3f %-14.4f\n", label.c_str(), run->weighted_f1,
                run->processing_seconds);
  }
}

void PrintBenchHeader(const std::string& title,
                      const std::vector<std::string>& notes) {
  std::printf("== %s ==\n", title.c_str());
  for (const std::string& note : notes) {
    std::printf("#  %s\n", note.c_str());
  }
}

}  // namespace smeter::bench
