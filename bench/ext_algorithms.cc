// Extension bench: the paper argues its symbolic representation "is not
// linked to any specific classifier. Hence, all algorithms supporting
// nominal values can be applied." This bench widens the evidence beyond
// Table 1's four classifiers: k-NN (Hamming distance on symbols), the
// ZeroR floor, unsupervised k-modes segmentation scored by adjusted Rand
// index against the true houses, and iSAX-style nearest-neighbour search
// over day words.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/symbolic_index.h"
#include "data/day_splitter.h"
#include "ml/baseline.h"
#include "ml/kmodes.h"
#include "ml/knn.h"

namespace smeter::bench {
namespace {

void ClassifierZoo(const std::vector<TimeSeries>& fleet,
                   const ml::Dataset& dataset) {
  (void)fleet;
  std::printf("-- supervised: more nominal-capable algorithms (median 1h "
              "16s, 10-fold CV) --\n");
  std::printf("%-22s %-10s %-8s\n", "algorithm", "F-measure", "kappa");
  struct Entry {
    const char* name;
    ml::ClassifierFactory factory;
  };
  ml::KnnOptions knn1;
  knn1.k = 1;
  ml::KnnOptions knn5;
  knn5.k = 5;
  knn5.distance_weighted = true;
  std::vector<Entry> entries;
  entries.push_back({"ZeroR (floor)",
                     [] { return std::make_unique<ml::ZeroR>(); }});
  entries.push_back(
      {"1-NN (Hamming)",
       [knn1] { return std::make_unique<ml::Knn>(knn1); }});
  entries.push_back(
      {"5-NN (weighted)",
       [knn5] { return std::make_unique<ml::Knn>(knn5); }});
  entries.push_back({"NaiveBayes", MakeClassifierFactory("NaiveBayes")});
  for (const Entry& entry : entries) {
    Result<ml::CrossValidationResult> cv =
        ml::CrossValidate(entry.factory, dataset, 10, 1);
    if (!cv.ok()) {
      std::printf("%-22s failed: %s\n", entry.name,
                  cv.status().ToString().c_str());
      continue;
    }
    std::printf("%-22s %-10.3f %-8.3f\n", entry.name,
                cv->metrics.WeightedF1(), cv->metrics.Kappa());
  }
}

void UnsupervisedSegmentation(const ml::Dataset& dataset) {
  std::printf("\n-- unsupervised: k-modes customer segmentation on symbols "
              "--\n");
  std::vector<size_t> truth;
  for (size_t r = 0; r < dataset.num_instances(); ++r) {
    truth.push_back(dataset.ClassOf(r).value());
  }
  for (size_t k : {3u, 6u, 9u}) {
    ml::KModesOptions options;
    options.k = k;
    options.seed = 7;
    ml::KModes km(options);
    Status status = km.Fit(dataset);
    if (!status.ok()) {
      std::printf("k=%zu failed: %s\n", k, status.ToString().c_str());
      continue;
    }
    double ari = ml::AdjustedRandIndex(km.assignments(), truth).value();
    std::printf("k=%zu: cost %.0f, adjusted Rand index vs true houses "
                "%.3f\n", k, km.cost(), ari);
  }
}

void IndexDemo(const std::vector<TimeSeries>& fleet) {
  std::printf("\n-- iSAX-style day search: nearest neighbours of house 1's "
              "last day --\n");
  // Day words of six 4-hour symbols over a global table, so words from
  // different houses share coarse buckets and distances are comparable.
  data::ClassificationOptions options;
  options.day.window_seconds = 4 * kSecondsPerHour;
  options.global_table = true;
  options.level = 4;
  std::vector<LookupTable> tables =
      data::BuildHouseTables(fleet, options).value();
  SymbolicIndex::Options index_options;
  index_options.prune_level = 1;
  SymbolicIndex index =
      SymbolicIndex::Create(tables[0], 6, index_options).value();

  // id encodes (house, day); the last complete day of house 1 is queried.
  std::vector<Symbol> query;
  uint64_t query_id = 0;
  for (size_t h = 0; h < fleet.size(); ++h) {
    std::vector<data::DayVector> days =
        data::BuildDayVectors(fleet[h], options.day).value();
    for (size_t d = 0; d < days.size(); ++d) {
      if (days[d].windows_present < 6) continue;
      std::vector<Symbol> word;
      for (double v : days[d].values) word.push_back(tables[0].Encode(v));
      uint64_t id = h * 1000 + d;
      if (h == 0) {
        query = word;  // keep overwriting: ends with the last full day
        query_id = id;
      }
      (void)index.Insert(id, std::move(word));
    }
  }
  std::printf("indexed %zu day-words in %zu coarse buckets\n", index.size(),
              index.num_buckets());
  std::vector<IndexMatch> top = index.NearestNeighbors(query, 6).value();
  std::printf("query: house 1 day %llu; buckets examined: %zu/%zu\n",
              static_cast<unsigned long long>(query_id % 1000),
              index.last_buckets_examined(), index.num_buckets());
  size_t same_house = 0;
  for (const IndexMatch& match : top) {
    uint64_t house = match.id / 1000;
    if (house == 0 && match.id != query_id) ++same_house;
    std::printf("  house %llu day %3llu  distance %.1f\n",
                static_cast<unsigned long long>(house + 1),
                static_cast<unsigned long long>(match.id % 1000),
                match.distance);
  }
  std::printf("%zu of the 5 non-self neighbours are house 1's own days "
              "(similar days may legitimately come from similar houses)\n",
              same_house);
}

void Run() {
  PrintBenchHeader(
      "Extensions: other nominal-value algorithms on the symbolic data",
      {"the paper: \"all algorithms supporting nominal values can be "
       "applied\""});
  std::vector<TimeSeries> fleet = PaperFleet();
  data::ClassificationOptions options;
  options.day.window_seconds = kSecondsPerHour;
  options.method = SeparatorMethod::kMedian;
  options.level = 4;
  ml::Dataset dataset =
      data::BuildSymbolicClassificationDataset(fleet, options).value();
  ClassifierZoo(fleet, dataset);
  UnsupervisedSegmentation(dataset);
  IndexDemo(fleet);
}

}  // namespace
}  // namespace smeter::bench

int main() {
  smeter::bench::Run();
  return 0;
}
