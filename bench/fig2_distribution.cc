// Figure 2: distribution of power levels with 1-second sampling. The paper
// shows a log-normal-shaped histogram over 0..2400 W; this bench streams
// the synthetic fleet's 1 Hz samples into the same 100 W bins and reports
// the skewness evidence (median far below mean, long right tail).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/quantile.h"
#include "data/generator.h"

namespace smeter::bench {
namespace {

constexpr double kBinWidth = 100.0;
constexpr int kNumBins = 24;  // 0..2400 W, as in the paper's x-axis

void Run() {
  PrintBenchHeader(
      "Figure 2: distribution of 1 Hz power levels (log-normal shape)",
      {"all 6 houses, 14 days, 100 W bins (paper: 0..2400 W)",
       "expect: heavy mass at low power, long right tail"});

  std::vector<size_t> bins(kNumBins + 1, 0);  // last bin: >= 2400 W
  RunningStats stats;
  data::GeneratorOptions options = PaperFleetOptions(14);
  for (size_t house = 0; house < options.num_houses; ++house) {
    Status status = data::ForEachHouseSample(
        house, options, [&](const Sample& s) {
          int bin = static_cast<int>(s.value / kBinWidth);
          if (bin < 0) bin = 0;
          if (bin > kNumBins) bin = kNumBins;
          ++bins[static_cast<size_t>(bin)];
          stats.Add(s.value);
        });
    if (!status.ok()) {
      std::printf("generation failed: %s\n", status.ToString().c_str());
      return;
    }
  }

  size_t max_count = 0;
  for (size_t c : bins) max_count = std::max(max_count, c);
  std::printf("%-12s %-12s %s\n", "power [W]", "count", "");
  for (int b = 0; b <= kNumBins; ++b) {
    std::string label =
        b == kNumBins ? ">= 2400"
                      : std::to_string(b * 100) + "-" +
                            std::to_string((b + 1) * 100);
    int bar = static_cast<int>(60.0 * static_cast<double>(bins[b]) /
                               static_cast<double>(max_count));
    std::printf("%-12s %-12zu %s\n", label.c_str(), bins[b],
                std::string(static_cast<size_t>(bar), '#').c_str());
  }

  double median = stats.Median().value();
  std::printf("\nsamples  = %zu\n", stats.count());
  std::printf("mean     = %.1f W\n", stats.mean());
  std::printf("median   = %.1f W\n", median);
  std::printf("p99      = %.1f W\n", stats.RunningQuantile(0.99).value());
  std::printf("max      = %.1f W\n", stats.max());
  std::printf("mean/median = %.2f (>1 indicates the right-skewed, "
              "log-normal-like shape of the paper's Figure 2)\n",
              stats.mean() / median);
}

}  // namespace
}  // namespace smeter::bench

int main() {
  smeter::bench::Run();
  return 0;
}
