// Micro-benchmarks for the parallel batch layer: SoA batch kernels vs the
// per-sample scalar path, fleet encoding across thread-pool sizes, and
// parallel vs serial forest training. `run_bench.sh` turns the JSON output
// into BENCH_micro.json.
//
// Note on thread scaling: the fleet/forest numbers only show speedup on
// multi-core hosts; on a single-core container every pool size degenerates
// to serial throughput (the caller lane does all the work) plus a little
// scheduling overhead, which is itself worth measuring.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/batch_encoder.h"
#include "core/encoder.h"
#include "core/fleet_encoder.h"
#include "ml/random_forest.h"

namespace smeter {
namespace {

constexpr size_t kDaySamples = 86400;  // one day at the paper's 1 Hz

std::vector<double> BenchValues(size_t n, uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) values.push_back(rng.LogNormal(5.0, 1.0));
  return values;
}

LookupTable BenchTable(int level) {
  LookupTableOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = level;
  return LookupTable::Build(BenchValues(10000), options).value();
}

// The pre-batch per-sample path, exactly what Encode() used to do: one
// scalar lower_bound lookup, one validated SymbolicSeries::Append (level
// check, timestamp-order check, unreserved push_back) per reading.
void BM_EncodeScalar(benchmark::State& state) {
  LookupTable table = BenchTable(static_cast<int>(state.range(0)));
  TimeSeries series = TimeSeries::FromValues(BenchValues(kDaySamples));
  for (auto _ : state) {
    SymbolicSeries out(table.level());
    for (const Sample& s : series) {
      Status append = out.Append({s.timestamp, table.Encode(s.value)});
      benchmark::DoNotOptimize(append);
    }
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kDaySamples));
}
BENCHMARK(BM_EncodeScalar)->Arg(4)->Arg(8);

// Just the scalar table lookup into a preallocated array — isolates the
// descent-kernel speedup from the Result/Append overhead above.
void BM_EncodeScalarLookup(benchmark::State& state) {
  LookupTable table = BenchTable(static_cast<int>(state.range(0)));
  std::vector<double> values = BenchValues(kDaySamples);
  std::vector<Symbol> out(values.size(), Symbol());
  for (auto _ : state) {
    for (size_t i = 0; i < values.size(); ++i) out[i] = table.Encode(values[i]);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kDaySamples));
}
BENCHMARK(BM_EncodeScalarLookup)->Arg(4)->Arg(8);

void BM_EncodeBatch(benchmark::State& state) {
  LookupTable table = BenchTable(static_cast<int>(state.range(0)));
  std::vector<double> values = BenchValues(kDaySamples);
  std::vector<Symbol> out(values.size(), Symbol());
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeBatch(table, values, out.data()));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kDaySamples));
}
BENCHMARK(BM_EncodeBatch)->Arg(4)->Arg(8);

void BM_DecodeBatch(benchmark::State& state) {
  LookupTable table = BenchTable(4);
  std::vector<Symbol> symbols =
      EncodeBatch(table, BenchValues(kDaySamples)).value();
  std::vector<double> out(symbols.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeBatch(table, symbols,
                                         ReconstructionMode::kRangeCenter,
                                         out.data()));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kDaySamples));
}
BENCHMARK(BM_DecodeBatch);

// Full fleet pipeline (per-household table build + vertical windows +
// encode) sharded across state.range(0) threads.
void BM_FleetEncode(benchmark::State& state) {
  constexpr size_t kHouses = 8;
  constexpr size_t kSamplesPerHouse = 21600;  // 6 h at 1 Hz
  std::vector<TimeSeries> fleet;
  for (size_t h = 0; h < kHouses; ++h) {
    fleet.push_back(
        TimeSeries::FromValues(BenchValues(kSamplesPerHouse, 100 + h)));
  }
  FleetEncodeOptions options;
  options.table.level = 4;
  options.pipeline.window_seconds = 60;
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeFleet(fleet, options, &pool));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kHouses * kSamplesPerHouse));
}
BENCHMARK(BM_FleetEncode)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

ml::Dataset BenchBlobs(size_t per_class) {
  ml::Dataset d =
      ml::Dataset::Create("blobs",
                          {ml::Attribute::Numeric("x"),
                           ml::Attribute::Numeric("y"),
                           ml::Attribute::Nominal("class", {"a", "b"})},
                          2)
          .value();
  Rng rng(17);
  for (size_t i = 0; i < per_class; ++i) {
    (void)d.Add({rng.Gaussian(0.0, 1.0), rng.Gaussian(0.0, 1.0), 0.0});
    (void)d.Add({rng.Gaussian(4.0, 1.0), rng.Gaussian(4.0, 1.0), 1.0});
  }
  return d;
}

// Forest training across pool sizes; Arg(0) is the serial (no pool) path.
// Bags and seeds are pre-drawn, so every variant grows the same forest.
void BM_ForestTrain(benchmark::State& state) {
  ml::Dataset d = BenchBlobs(300);
  ml::RandomForestOptions options;
  options.num_trees = 16;
  options.seed = 3;
  ThreadPool pool(state.range(0) == 0 ? 1 : static_cast<size_t>(state.range(0)));
  options.pool = state.range(0) == 0 ? nullptr : &pool;
  for (auto _ : state) {
    ml::RandomForest forest(options);
    benchmark::DoNotOptimize(forest.Train(d));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(options.num_trees));
}
BENCHMARK(BM_ForestTrain)->Arg(0)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace smeter

BENCHMARK_MAIN();
