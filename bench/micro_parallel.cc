// Micro-benchmarks for the parallel batch layer: SoA batch kernels vs the
// per-sample scalar path, fleet encoding across thread-pool sizes, and
// parallel vs serial forest training. `run_bench.sh` turns the JSON output
// into BENCH_micro.json.
//
// Note on thread scaling: the fleet/forest numbers only show speedup on
// multi-core hosts; on a single-core container every pool size degenerates
// to serial throughput (the caller lane does all the work) plus a little
// scheduling overhead, which is itself worth measuring.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/io.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/batch_encoder.h"
#include "core/codec.h"
#include "core/encoder.h"
#include "core/fleet_encoder.h"
#include "ml/random_forest.h"

namespace smeter {
namespace {

constexpr size_t kDaySamples = 86400;  // one day at the paper's 1 Hz

std::vector<double> BenchValues(size_t n, uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) values.push_back(rng.LogNormal(5.0, 1.0));
  return values;
}

LookupTable BenchTable(int level) {
  LookupTableOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = level;
  return LookupTable::Build(BenchValues(10000), options).value();
}

// The pre-batch per-sample path, exactly what Encode() used to do: one
// scalar lower_bound lookup, one validated SymbolicSeries::Append (level
// check, timestamp-order check, unreserved push_back) per reading.
void BM_EncodeScalar(benchmark::State& state) {
  LookupTable table = BenchTable(static_cast<int>(state.range(0)));
  TimeSeries series = TimeSeries::FromValues(BenchValues(kDaySamples));
  for (auto _ : state) {
    SymbolicSeries out(table.level());
    for (const Sample& s : series) {
      Status append = out.Append({s.timestamp, table.Encode(s.value)});
      benchmark::DoNotOptimize(append);
    }
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kDaySamples));
}
BENCHMARK(BM_EncodeScalar)->Arg(4)->Arg(8);

// Just the scalar table lookup into a preallocated array — isolates the
// descent-kernel speedup from the Result/Append overhead above.
void BM_EncodeScalarLookup(benchmark::State& state) {
  LookupTable table = BenchTable(static_cast<int>(state.range(0)));
  std::vector<double> values = BenchValues(kDaySamples);
  std::vector<Symbol> out(values.size(), Symbol());
  for (auto _ : state) {
    for (size_t i = 0; i < values.size(); ++i) out[i] = table.Encode(values[i]);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kDaySamples));
}
BENCHMARK(BM_EncodeScalarLookup)->Arg(4)->Arg(8);

void BM_EncodeBatch(benchmark::State& state) {
  LookupTable table = BenchTable(static_cast<int>(state.range(0)));
  std::vector<double> values = BenchValues(kDaySamples);
  std::vector<Symbol> out(values.size(), Symbol());
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeBatch(table, values, out.data()));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kDaySamples));
}
BENCHMARK(BM_EncodeBatch)->Arg(4)->Arg(8);

void BM_DecodeBatch(benchmark::State& state) {
  LookupTable table = BenchTable(4);
  std::vector<Symbol> symbols =
      EncodeBatch(table, BenchValues(kDaySamples)).value();
  std::vector<double> out(symbols.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeBatch(table, symbols,
                                         ReconstructionMode::kRangeCenter,
                                         out.data()));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kDaySamples));
}
BENCHMARK(BM_DecodeBatch);

// Full fleet pipeline (per-household table build + vertical windows +
// encode) sharded across state.range(0) threads.
void BM_FleetEncode(benchmark::State& state) {
  constexpr size_t kHouses = 8;
  constexpr size_t kSamplesPerHouse = 21600;  // 6 h at 1 Hz
  std::vector<TimeSeries> fleet;
  for (size_t h = 0; h < kHouses; ++h) {
    fleet.push_back(
        TimeSeries::FromValues(BenchValues(kSamplesPerHouse, 100 + h)));
  }
  FleetEncodeOptions options;
  options.table.level = 4;
  options.pipeline.window_seconds = 60;
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeFleet(fleet, options, &pool));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kHouses * kSamplesPerHouse));
}
BENCHMARK(BM_FleetEncode)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

ml::Dataset BenchBlobs(size_t per_class) {
  ml::Dataset d =
      ml::Dataset::Create("blobs",
                          {ml::Attribute::Numeric("x"),
                           ml::Attribute::Numeric("y"),
                           ml::Attribute::Nominal("class", {"a", "b"})},
                          2)
          .value();
  Rng rng(17);
  for (size_t i = 0; i < per_class; ++i) {
    (void)d.Add({rng.Gaussian(0.0, 1.0), rng.Gaussian(0.0, 1.0), 0.0});
    (void)d.Add({rng.Gaussian(4.0, 1.0), rng.Gaussian(4.0, 1.0), 1.0});
  }
  return d;
}

// Forest training across pool sizes; Arg(0) is the serial (no pool) path.
// Bags and seeds are pre-drawn, so every variant grows the same forest.
void BM_ForestTrain(benchmark::State& state) {
  ml::Dataset d = BenchBlobs(300);
  ml::RandomForestOptions options;
  options.num_trees = 16;
  options.seed = 3;
  ThreadPool pool(state.range(0) == 0 ? 1 : static_cast<size_t>(state.range(0)));
  options.pool = state.range(0) == 0 ? nullptr : &pool;
  for (auto _ : state) {
    ml::RandomForest forest(options);
    benchmark::DoNotOptimize(forest.Train(d));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(options.num_trees));
}
BENCHMARK(BM_ForestTrain)->Arg(0)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- durable-storage kernels ------------------------------------------------

// CRC32C throughput: the per-byte price every atomic write, manifest
// append, and fsck scan now pays. BM_Crc32c is the dispatched entry
// (SSE4.2 where the CPU has it); the software variant pins the slice-by-8
// fallback so the hardware speedup is visible in the report.
std::string BenchBytes(size_t n) {
  Rng rng(23);
  std::string data(n, '\0');
  for (char& c : data) c = static_cast<char>(rng.UniformInt(256));
  return data;
}

void BM_Crc32c(benchmark::State& state) {
  const std::string data = BenchBytes(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::Crc32c(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Crc32c);

void BM_Crc32cSoftware(benchmark::State& state) {
  const std::string data = BenchBytes(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::Crc32cSoftware(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Crc32cSoftware);

// Wire-format cost of the checksummed v3 framing vs the legacy pack: a
// year of 15-minute symbols at level 4. The wire_overhead_pct counter is
// the v3 size premium over the v1 blob (sync markers, block headers,
// CRCs); the time delta is the checksum cost on the write path.
SymbolicSeries BenchSymbolSeries(size_t n, int level) {
  Rng rng(7);
  SymbolicSeries series(level);
  for (size_t i = 0; i < n; ++i) {
    Symbol s = Symbol::Create(level, static_cast<uint32_t>(rng.UniformInt(
                                         1u << level)))
                   .value();
    (void)series.Append({static_cast<Timestamp>(i) * 900, s});
  }
  return series;
}

constexpr size_t kYearSlots = 96 * 365;

void BM_PackLegacy(benchmark::State& state) {
  SymbolicSeries series = BenchSymbolSeries(kYearSlots, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PackSymbolicSeries(series));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kYearSlots));
}
BENCHMARK(BM_PackLegacy);

void BM_PackFramed(benchmark::State& state) {
  SymbolicSeries series = BenchSymbolSeries(kYearSlots, 4);
  const size_t legacy_size = PackSymbolicSeries(series).value().size();
  const size_t framed_size = PackSymbolicSeriesFramed(series).value().size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PackSymbolicSeriesFramed(series));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kYearSlots));
  state.counters["wire_overhead_pct"] =
      100.0 * (static_cast<double>(framed_size) -
               static_cast<double>(legacy_size)) /
      static_cast<double>(legacy_size);
}
BENCHMARK(BM_PackFramed);

// Read-side verification cost: unpack re-checks the header and every
// block CRC on the framed blob.
void BM_UnpackFramed(benchmark::State& state) {
  SymbolicSeries series = BenchSymbolSeries(kYearSlots, 4);
  const std::string blob = PackSymbolicSeriesFramed(series).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(UnpackSymbolicSeries(blob));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kYearSlots));
}
BENCHMARK(BM_UnpackFramed);

}  // namespace
}  // namespace smeter

// run_bench.sh refuses to record numbers unless this compiled-in marker
// says release: the Debian-packaged benchmark *library* is assert-enabled
// (its own library_build_type always reads "debug"), so the marker has to
// come from the translation unit whose kernels are actually being timed.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("smeter_build_type", "release");
#else
  benchmark::AddCustomContext("smeter_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
