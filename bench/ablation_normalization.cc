// Figure 3 ablation: per-house z-normalization (as SAX prescribes) erases
// consumption magnitude, merging big and small consumers; the paper's
// unnormalized, house-calibrated tables keep them apart.
//
// Part 1 reproduces the figure's thought experiment with two scaled
// profiles. Part 2 quantifies it: day-classification F-measure with SAX
// encoding vs the paper's median encoding on the same fleet.

#include <cstdio>

#include "bench_util.h"
#include "core/encoder.h"
#include "core/sax.h"
#include "data/day_splitter.h"

namespace smeter::bench {
namespace {

void ScaledProfilesDemo() {
  std::printf("-- part 1: two consumers with the same shape, 10x scale --\n");
  // One day of a simple two-level profile, 1 Hz.
  std::vector<double> small, big;
  for (int t = 0; t < 6 * 3600; ++t) {
    double base = (t / 3600) % 2 == 0 ? 100.0 : 400.0;
    small.push_back(base);
    big.push_back(10.0 * base);
  }
  TimeSeries small_series = TimeSeries::FromValues(small);
  TimeSeries big_series = TimeSeries::FromValues(big);

  SaxOptions sax;
  sax.level = 2;
  sax.paa_frame = 3600;
  std::string sax_small =
      SaxEncode(small_series, sax).value().ToBitString();
  std::string sax_big = SaxEncode(big_series, sax).value().ToBitString();
  std::printf("SAX (z-normalized):  small = %s\n", sax_small.c_str());
  std::printf("                     big   = %s   -> %s\n", sax_big.c_str(),
              sax_small == sax_big ? "IDENTICAL (Figure 3's A~C, B~D)"
                                   : "distinct");

  // The paper's approach: one shared (global) median table, no
  // normalization: magnitudes survive.
  std::vector<double> pooled = small;
  pooled.insert(pooled.end(), big.begin(), big.end());
  LookupTableOptions table_options;
  table_options.method = SeparatorMethod::kMedian;
  table_options.level = 2;
  LookupTable table = LookupTable::Build(pooled, table_options).value();
  PipelineOptions pipeline;
  pipeline.window_seconds = 3600;
  std::string sym_small =
      EncodePipeline(small_series, table, pipeline).value().ToBitString();
  std::string sym_big =
      EncodePipeline(big_series, table, pipeline).value().ToBitString();
  std::printf("median (no z-norm):  small = %s\n", sym_small.c_str());
  std::printf("                     big   = %s   -> %s\n", sym_big.c_str(),
              sym_small == sym_big ? "identical"
                                   : "DISTINCT (magnitude preserved)");
}

// Encodes the fleet's day vectors with classic SAX (z-normalized per day)
// and runs the same NB day-classification as the symbolic pipeline.
Result<double> SaxClassificationF1(const std::vector<TimeSeries>& fleet) {
  const int level = 4;
  std::vector<std::string> names;
  for (uint32_t i = 0; i < (1u << level); ++i) {
    names.push_back(Symbol::Create(level, i).value().ToBits());
  }
  std::vector<ml::Attribute> attributes;
  for (int w = 0; w < 24; ++w) {
    attributes.push_back(
        ml::Attribute::Nominal("w" + std::to_string(w), names));
  }
  std::vector<std::string> houses;
  for (size_t h = 0; h < fleet.size(); ++h) {
    houses.push_back("house" + std::to_string(h + 1));
  }
  attributes.push_back(ml::Attribute::Nominal("house", houses));
  Result<ml::Dataset> dataset =
      ml::Dataset::Create("sax-days", attributes, 24);
  if (!dataset.ok()) return dataset.status();

  data::DayVectorOptions day;
  day.window_seconds = kSecondsPerHour;
  for (size_t h = 0; h < fleet.size(); ++h) {
    Result<std::vector<data::DayVector>> days =
        data::BuildDayVectors(fleet[h], day);
    if (!days.ok()) return days.status();
    for (const data::DayVector& dv : *days) {
      if (dv.windows_present < 24) continue;  // SAX needs a complete day
      TimeSeries day_series = TimeSeries::FromValues(dv.values);
      SaxOptions sax;
      sax.level = level;
      sax.paa_frame = 1;  // already aggregated to hours
      Result<SymbolicSeries> word = SaxEncode(day_series, sax);
      if (!word.ok()) continue;  // constant day: z-norm undefined
      std::vector<double> row;
      for (const SymbolicSample& s : word.value()) {
        row.push_back(static_cast<double>(s.symbol.index()));
      }
      row.push_back(static_cast<double>(h));
      SMETER_RETURN_IF_ERROR(dataset->Add(std::move(row)));
    }
  }
  Result<ml::CrossValidationResult> cv = ml::CrossValidate(
      MakeClassifierFactory("NaiveBayes"), dataset.value(), 10, 1);
  if (!cv.ok()) return cv.status();
  return cv->metrics.WeightedF1();
}

void Run() {
  PrintBenchHeader(
      "Figure 3 ablation: SAX normalization vs the paper's encodings",
      {"why SAX's per-series z-normalization is wrong for smart meters"});
  ScaledProfilesDemo();

  std::printf("\n-- part 2: day classification, SAX word vs median symbols "
              "(NB, 1h, 16 symbols, 10-fold CV) --\n");
  std::vector<TimeSeries> fleet = PaperFleet();
  Result<double> sax_f1 = SaxClassificationF1(fleet);
  data::ClassificationOptions options;
  options.day.window_seconds = kSecondsPerHour;
  options.method = SeparatorMethod::kMedian;
  options.level = 4;
  Result<ClassificationRun> median_run =
      RunSymbolicClassification(fleet, options, "NaiveBayes");
  std::printf("SAX (z-norm, Gaussian table) F-measure: %.3f\n",
              sax_f1.ok() ? sax_f1.value() : -1.0);
  std::printf("median (house-calibrated)    F-measure: %.3f\n",
              median_run.ok() ? median_run->weighted_f1 : -1.0);
}

}  // namespace
}  // namespace smeter::bench

int main() {
  smeter::bench::Run();
  return 0;
}
