// Figure 4: accumulative mean / median / median-of-distinct-values of
// house 1 over three consecutive days of 1 Hz data (one day = 86 400 s).
// The paper's point: the statistics converge after about one day, so two
// days of history suffice to calibrate the separators.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/quantile.h"
#include "data/generator.h"

namespace smeter::bench {
namespace {

void Run() {
  PrintBenchHeader(
      "Figure 4: accumulative statistics of house 1 over three days",
      {"series printed every 4 hours of stream time",
       "convergence after ~day 1 justifies the two-day warm-up"});

  data::GeneratorOptions options = PaperFleetOptions(3);
  options.outages_per_day = 0.0;  // Figure 4 is about the statistics

  RunningStats stats;
  std::printf("%-14s %-12s %-12s %-16s\n", "time [s]", "mean [W]",
              "median [W]", "distinctmedian [W]");
  Timestamp next_report = 0;
  Status status = data::ForEachHouseSample(0, options, [&](const Sample& s) {
    stats.Add(s.value);
    if (s.timestamp >= next_report) {
      std::printf("%-14lld %-12.1f %-12.1f %-16.1f\n",
                  static_cast<long long>(s.timestamp), stats.mean(),
                  stats.Median().value(), stats.DistinctMedian().value());
      next_report += 4 * kSecondsPerHour;
    }
  });
  if (!status.ok()) {
    std::printf("generation failed: %s\n", status.ToString().c_str());
    return;
  }
  std::printf("%-14lld %-12.1f %-12.1f %-16.1f\n",
              static_cast<long long>(3 * kSecondsPerDay), stats.mean(),
              stats.Median().value(), stats.DistinctMedian().value());

  // Convergence check: statistics after day 1 vs after day 3.
  RunningStats day1;
  options.duration_seconds = kSecondsPerDay;
  (void)data::ForEachHouseSample(0, options,
                                 [&](const Sample& s) { day1.Add(s.value); });
  double drift = std::abs(day1.Median().value() - stats.Median().value()) /
                 stats.Median().value();
  std::printf("\nmedian(day 1) vs median(day 3): %.1f%% apart "
              "(paper: statistics start to converge after day one)\n",
              100.0 * drift);
}

}  // namespace
}  // namespace smeter::bench

int main() {
  smeter::bench::Run();
  return 0;
}
