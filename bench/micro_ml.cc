// Micro-benchmarks (google-benchmark) for the classifier substrate on the
// day-vector workload shape (96 nominal attributes, 16 categories, 6
// classes) — the "processing time" axis of Figures 5-7.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "ml/decision_tree.h"
#include "ml/logistic.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "ml/svr.h"

namespace smeter::ml {
namespace {

// A synthetic stand-in for the symbolic day-vector dataset: 96 nominal
// attributes of 16 categories, classes distinguishable by shifted
// category distributions.
Dataset DayVectorLikeDataset(size_t instances_per_class, size_t classes) {
  std::vector<Attribute> attributes;
  std::vector<std::string> categories;
  for (int c = 0; c < 16; ++c) categories.push_back(std::to_string(c));
  for (int w = 0; w < 96; ++w) {
    attributes.push_back(
        Attribute::Nominal("w" + std::to_string(w), categories));
  }
  std::vector<std::string> labels;
  for (size_t c = 0; c < classes; ++c) {
    labels.push_back("h" + std::to_string(c));
  }
  attributes.push_back(Attribute::Nominal("house", labels));
  Dataset d = Dataset::Create("bench", attributes, 96).value();
  Rng rng(3);
  for (size_t c = 0; c < classes; ++c) {
    for (size_t i = 0; i < instances_per_class; ++i) {
      std::vector<double> row;
      for (int w = 0; w < 96; ++w) {
        double center = static_cast<double>((c * 3 + static_cast<size_t>(w) / 24) % 16);
        double v = center + rng.Gaussian(0.0, 2.0);
        row.push_back(std::clamp(v, 0.0, 15.0));
      }
      for (double& v : row) v = std::floor(v);
      row.push_back(static_cast<double>(c));
      (void)d.Add(std::move(row));
    }
  }
  return d;
}

const Dataset& BenchDataset() {
  static const Dataset* dataset = new Dataset(DayVectorLikeDataset(25, 6));
  return *dataset;
}

template <typename ClassifierT>
void TrainBench(benchmark::State& state, ClassifierT make) {
  const Dataset& d = BenchDataset();
  for (auto _ : state) {
    auto classifier = make();
    Status status = classifier->Train(d);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
    benchmark::DoNotOptimize(classifier);
  }
}

void BM_NaiveBayesTrain(benchmark::State& state) {
  TrainBench(state, [] { return std::make_unique<NaiveBayes>(); });
}
BENCHMARK(BM_NaiveBayesTrain);

void BM_J48Train(benchmark::State& state) {
  TrainBench(state, [] { return std::make_unique<DecisionTree>(); });
}
BENCHMARK(BM_J48Train);

void BM_RandomForestTrain(benchmark::State& state) {
  TrainBench(state, [] {
    RandomForestOptions options;
    options.num_trees = 50;
    return std::make_unique<RandomForest>(options);
  });
}
BENCHMARK(BM_RandomForestTrain);

void BM_LogisticTrain(benchmark::State& state) {
  TrainBench(state, [] {
    LogisticOptions options;
    options.max_iterations = 50;
    return std::make_unique<Logistic>(options);
  });
}
BENCHMARK(BM_LogisticTrain);

void BM_NaiveBayesPredict(benchmark::State& state) {
  const Dataset& d = BenchDataset();
  NaiveBayes nb;
  (void)nb.Train(d);
  size_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nb.Predict(d.row(r)));
    r = (r + 1) % d.num_instances();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NaiveBayesPredict);

void BM_RandomForestPredict(benchmark::State& state) {
  const Dataset& d = BenchDataset();
  RandomForestOptions options;
  options.num_trees = 50;
  RandomForest forest(options);
  (void)forest.Train(d);
  size_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Predict(d.row(r)));
    r = (r + 1) % d.num_instances();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomForestPredict);

void BM_SvrTrain(benchmark::State& state) {
  // The Figure 8/9 shape: 156 rows of 12 lag features.
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 156; ++i) {
    std::vector<double> row;
    for (int j = 0; j < 12; ++j) row.push_back(rng.LogNormal(5.0, 1.0));
    x.push_back(row);
    y.push_back(rng.LogNormal(5.0, 1.0));
  }
  SvrOptions options;
  options.c = 10.0;
  for (auto _ : state) {
    Svr svr(options);
    Status status = svr.Train(x, y);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
    benchmark::DoNotOptimize(svr);
  }
}
BENCHMARK(BM_SvrTrain);

}  // namespace
}  // namespace smeter::ml

BENCHMARK_MAIN();
