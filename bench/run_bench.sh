#!/usr/bin/env bash
# Builds the release preset and runs the parallel micro-benchmarks,
# leaving google-benchmark's JSON report in BENCH_micro.json at the repo
# root. Usage: bench/run_bench.sh [extra benchmark args...]
#
# The acceptance numbers to look for:
#   BM_EncodeBatch vs BM_EncodeScalar  -- SoA kernel speedup (single thread)
#   BM_FleetEncode/1..8                -- household sharding across the pool
#   BM_ForestTrain/0 vs /2 /4         -- serial vs pooled forest training
#   BM_Crc32c vs BM_Crc32cSoftware    -- hardware CRC32C dispatch speedup
#   BM_PackFramed vs BM_PackLegacy    -- checksummed v3 write cost; its
#                                        wire_overhead_pct counter is the
#                                        v3 size premium over the v1 blob
#   BM_SessionIngest                  -- symbols/s through the full wire
#                                        protocol state machine (the
#                                        single-connection ingest ceiling)
#   BM_ShardedIngest/shards:S/conns:C -- aggregate symbols/s through a real
#                                        loopback ingestd at S epoll shards
#                                        driven by C persistent connections;
#                                        ack_p50_us / ack_p99_us are the
#                                        batch->ack round-trip percentiles
#   BM_StoreAggregate/meters:N/edges:0 vs edges:1
#                                     -- fleet aggregate served from rollup
#                                        rows alone (partition-aligned
#                                        window) vs with edge-partition
#                                        segment scans; the gap is what the
#                                        pre-computed rollups buy
#   BM_QuerydPoint/Range/Aggregate    -- per-query latency end to end
#                                        through a loopback queryd (one
#                                        connection, synchronous)
#
# Query-bench methodology: each store benchmark runs against a synthetic
# fixture store (N meters x 3 daily partitions of level-8 symbols at
# 30-minute cadence, deterministic LCG data, built once per process via
# BuildArchiveStore), so numbers are comparable run to run. The queryd
# rows include real framing + CRC32C + epoll round trips on loopback;
# subtract the matching BM_Store* row to estimate pure serving overhead.
# On single-core hosts the thread-count sweeps collapse to serial
# throughput; the per-sample kernel speedup is machine-independent. The
# BM_ShardedIngest shard axis collapses the same way (S shard threads
# time-slicing one CPU cannot beat S=1) — the >=4x aggregate scaling at 8
# shards only shows on a host with >=8 cores.
#
# The report is refused unless the smeter code under test was built in
# release mode (NDEBUG): debug-build numbers are garbage. The check reads
# the "smeter_build_type" context key each bench binary embeds at compile
# time, so it cannot drift from what actually ran. (google-benchmark's own
# "library_build_type" is NOT used: Debian ships an assert-enabled
# libbenchmark, so that field reads "debug" even when every timed smeter
# kernel is -O2 + NDEBUG.)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

cmake --preset release >/dev/null
cmake --build build-release --target micro_parallel --target net_ingest \
  --target query -j"$(nproc)"

build-release/bench/micro_parallel \
  --benchmark_out="${repo_root}/BENCH_micro.json" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  "$@"

build-release/bench/net_ingest \
  --benchmark_out="${repo_root}/BENCH_net.json" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  "$@"

build-release/bench/query \
  --benchmark_out="${repo_root}/BENCH_query.json" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  "$@"

# Merge the net-ingest and query benchmarks into the single
# BENCH_micro.json report, refusing any report whose benchmark library was
# not a release build.
python3 - "${repo_root}/BENCH_micro.json" "${repo_root}/BENCH_net.json" \
  "${repo_root}/BENCH_query.json" <<'PY'
import json, sys
micro_path, extra_paths = sys.argv[1], sys.argv[2:]
with open(micro_path) as f:
    micro = json.load(f)
extras = []
for path in extra_paths:
    with open(path) as f:
        extras.append((path, json.load(f)))
for path, report in [(micro_path, micro)] + extras:
    build_type = report.get("context", {}).get("smeter_build_type")
    if build_type != "release":
        sys.exit(
            f"{path}: smeter_build_type is {build_type!r}, not 'release' "
            "-- refusing to record debug-build numbers; run via "
            "bench/run_bench.sh so the release preset is used")
for _, report in extras:
    micro["benchmarks"].extend(report["benchmarks"])
with open(micro_path, "w") as f:
    json.dump(micro, f, indent=2)
PY
rm -f "${repo_root}/BENCH_net.json" "${repo_root}/BENCH_query.json"

echo "wrote ${repo_root}/BENCH_micro.json"
