#!/usr/bin/env bash
# Builds the release preset and runs the parallel micro-benchmarks,
# leaving google-benchmark's JSON report in BENCH_micro.json at the repo
# root. Usage: bench/run_bench.sh [extra benchmark args...]
#
# The acceptance numbers to look for:
#   BM_EncodeBatch vs BM_EncodeScalar  -- SoA kernel speedup (single thread)
#   BM_FleetEncode/1..8                -- household sharding across the pool
#   BM_ForestTrain/0 vs /2 /4         -- serial vs pooled forest training
#   BM_Crc32c vs BM_Crc32cSoftware    -- hardware CRC32C dispatch speedup
#   BM_PackFramed vs BM_PackLegacy    -- checksummed v3 write cost; its
#                                        wire_overhead_pct counter is the
#                                        v3 size premium over the v1 blob
# On single-core hosts the thread-count sweeps collapse to serial
# throughput; the per-sample kernel speedup is machine-independent.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

cmake --preset release >/dev/null
cmake --build build-release --target micro_parallel -j"$(nproc)"

build-release/bench/micro_parallel \
  --benchmark_out="${repo_root}/BENCH_micro.json" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  "$@"

echo "wrote ${repo_root}/BENCH_micro.json"
