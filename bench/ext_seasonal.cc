// Extension bench for Section 4's seasonal-change scenario: "to study the
// effect of seasonal change, one can consider to use Irish CER dataset
// which has more than one year measurement."
//
// We simulate 18 months of CER-style half-hourly data with a +/-35%
// seasonal consumption swing and compare three sensor-side policies:
//   (a) a static table from two winter days (the paper's default warm-up);
//   (b) a static table from a representative full year;
//   (c) drift-triggered rebuilds (PSI > 0.25).
// Reported: reconstruction MAE of the symbol stream and tables shipped.

#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/online_encoder.h"
#include "core/reconstruction.h"
#include "data/cer.h"
#include "data/generator.h"

namespace smeter::bench {
namespace {

constexpr int64_t kHalfHour = 1800;
constexpr int kDays = 548;  // ~18 months

TimeSeries SeasonalTrace() {
  data::GeneratorOptions options;
  options.num_houses = 1;
  options.duration_seconds = kDays * kSecondsPerDay;
  options.sample_period_seconds = kHalfHour;  // CER cadence
  options.outages_per_day = 0.0;
  options.sparse_house = 99;
  options.seasonal_amplitude = 0.35;
  options.seed = 365;
  return data::GenerateHouseSeries(0, options).value();
}

struct PolicyResult {
  double mae = 0.0;
  int tables = 0;
};

PolicyResult RunPolicy(const TimeSeries& trace, int64_t warmup_seconds,
                       bool with_drift) {
  OnlineEncoderOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = 4;
  options.warmup_seconds = warmup_seconds;
  options.window_seconds = kHalfHour;
  options.window.sample_period_seconds = kHalfHour;
  if (with_drift) {
    DriftOptions drift;
    drift.window_size = 48 * 28;  // four weeks of half-hour symbols
    drift.min_samples = 48 * 7;
    drift.psi_threshold = 0.25;
    options.drift = drift;
    options.rebuild_history_windows = 48 * 28;
  }
  OnlineEncoder encoder = OnlineEncoder::Create(options).value();

  std::map<Timestamp, double> truth;
  for (const Sample& s : trace) truth[s.timestamp + kHalfHour] = s.value;

  std::vector<LookupTable> tables;
  double abs_error = 0.0;
  size_t count = 0;
  auto handle = [&](const std::vector<EncoderEvent>& events) {
    for (const EncoderEvent& e : events) {
      if (e.type == EncoderEvent::Type::kTableReady) {
        tables.push_back(*encoder.table());
        continue;
      }
      const LookupTable& table =
          tables[static_cast<size_t>(e.table_version) - 1];
      double decoded =
          table.Reconstruct(e.symbol.symbol, ReconstructionMode::kRangeMean)
              .value();
      auto it = truth.find(e.symbol.timestamp);
      if (it == truth.end()) continue;
      abs_error += std::abs(decoded - it->second);
      ++count;
    }
  };
  for (const Sample& s : trace) handle(encoder.Push(s).value());
  handle(encoder.Flush().value());

  PolicyResult result;
  result.mae = count == 0 ? -1.0 : abs_error / static_cast<double>(count);
  result.tables = static_cast<int>(tables.size());
  return result;
}

void Run() {
  PrintBenchHeader(
      "Section 4 extension: seasonal change over CER-length data",
      {"548 days of half-hourly data, +/-35% seasonal consumption swing",
       "compares static two-day calibration vs yearly vs drift rebuilds"});

  TimeSeries trace = SeasonalTrace();
  std::printf("trace: %zu half-hour samples over %d days\n", trace.size(),
              kDays);

  // CER interop check: round-trip through the CER file format.
  std::string cer = data::FormatCer({{1001, trace}}).value();
  auto reloaded = data::ParseCer(cer).value();
  std::printf("CER round-trip: %zu meters, %zu samples (format OK)\n",
              reloaded.size(), reloaded[0].second.size());

  // MAE is measured over each policy's post-warm-up symbol stream.
  std::printf("\n%-34s %-12s %-8s\n", "policy", "MAE [W]", "tables");
  PolicyResult two_days = RunPolicy(trace, 2 * kSecondsPerDay, false);
  std::printf("%-34s %-12.1f %-8d\n", "static, 2-day winter warm-up",
              two_days.mae, two_days.tables);
  PolicyResult full_year = RunPolicy(trace, 365 * kSecondsPerDay, false);
  std::printf("%-34s %-12.1f %-8d  (scored on the final %d days only)\n",
              "static, 1-year warm-up", full_year.mae, full_year.tables,
              kDays - 365);
  PolicyResult adaptive = RunPolicy(trace, 2 * kSecondsPerDay, true);
  std::printf("%-34s %-12.1f %-8d\n", "drift-triggered rebuilds (PSI)",
              adaptive.mae, adaptive.tables);

  std::printf("\nexpected shape: a single table calibrated in one season "
              "mis-covers the others (Section 4's motivation); tracking the "
              "season with periodic rebuilds cuts reconstruction error by "
              "several-fold at the cost of re-sending the (tiny) table.\n");
}

}  // namespace
}  // namespace smeter::bench

int main() {
  smeter::bench::Run();
  return 0;
}
