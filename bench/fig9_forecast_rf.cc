// Figure 9: MAE of next-day hourly load forecasting with Random Forest as
// the next-symbol predictor, against epsilon-SVR on raw values. Same
// protocol as Figure 8.

#include "bench_util.h"

int main() {
  using namespace smeter::bench;
  PrintBenchHeader(
      "Figure 9: forecasting MAE [W], Random Forest next-symbol vs raw SVR",
      {"1 week hourly training, next-day test, 12 lag symbols, alphabet 16",
       "symbol semantics = center of its range (Section 3.2)"});
  RunForecastFigure("RandomForest");
  return 0;
}
