// Figure 7: Random Forest over symbolic data encoded with a SINGLE lookup
// table learned from all houses pooled (instead of one table per house),
// plus the raw baselines. The paper uses this to isolate how much of the
// classification signal comes from the house-specific separators.

#include "bench_util.h"

int main() {
  using namespace smeter::bench;
  PrintBenchHeader(
      "Figure 7: Random Forest with a single (global) lookup table",
      {"6 synthetic houses, 24 days, one table from all houses' history",
       "stratified 10-fold cross-validation; F-measure = weighted F1"});
  std::vector<smeter::TimeSeries> fleet = PaperFleet();
  RunFigureSweep(fleet, "RandomForest", /*global_table=*/true);
  return 0;
}
