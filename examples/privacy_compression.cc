// Privacy and numerosity (Sections 1 and 2.3): what symbolization hides
// and what it saves.
//
// The paper motivates symbols twice over: (a) detailed 1 Hz measurements
// expose appliance-level behaviour (privacy risk), and (b) raw storage is
// three orders of magnitude larger. This example quantifies both: the
// kettle spike that is obvious in the raw trace collapses into a coarse
// symbol, an expert 2-symbol low/high table hides almost everything, and
// the storage table shows the §2.3 ratios.

#include <cmath>
#include <cstdio>

#include "core/codec.h"
#include "core/compression.h"
#include "core/encoder.h"
#include "core/entropy.h"
#include "core/privacy.h"
#include "data/generator.h"

int main() {
  using namespace smeter;

  data::GeneratorOptions gen;
  gen.num_houses = 1;
  gen.duration_seconds = 3 * kSecondsPerDay;
  gen.outages_per_day = 0.0;
  gen.sparse_house = 99;
  gen.seed = 5;
  TimeSeries trace = data::GenerateHouseSeries(0, gen).value();
  TimeSeries history = trace.Slice({0, 2 * kSecondsPerDay});
  TimeSeries today = trace.Slice({2 * kSecondsPerDay, 3 * kSecondsPerDay});

  LookupTableOptions table_options;
  table_options.method = SeparatorMethod::kMedian;
  table_options.level = 4;
  LookupTable table =
      LookupTable::Build(history.Values(), table_options).value();

  // Appliance-signature visibility (core/privacy.h): what fraction of the
  // appliance switch events — the signal NILM attacks use — survives into
  // the symbol stream at each aggregation window.
  std::printf("appliance-event visibility through the symbols (>250 W jumps):\n");
  for (int64_t window : {int64_t{60}, int64_t{900}, kSecondsPerHour}) {
    PipelineOptions pipeline;
    pipeline.window_seconds = window;
    SymbolicSeries symbols = EncodePipeline(today, table, pipeline).value();
    EventObscurityOptions obscurity;
    obscurity.jump_threshold_watts = 250.0;  // include mid-size appliances
    obscurity.window_seconds = window;
    EventObscurityReport report =
        EvaluateEventObscurity(today, symbols, obscurity).value();
    double entropy = ConditionalEntropyBits(symbols).value();
    std::printf("  @ %4lld s windows: %zu of %zu events visible (%.0f%%), "
                "next-symbol uncertainty %.2f bits\n",
                static_cast<long long>(window), report.visible_events,
                report.raw_events, 100.0 * report.visibility, entropy);
  }

  // What actually crosses the wire: the day packed with the bit codec.
  PipelineOptions pipeline;
  pipeline.window_seconds = 900;
  SymbolicSeries day_symbols = EncodePipeline(today, table, pipeline).value();
  std::string wire = PackSymbolicSeries(day_symbols).value();
  std::printf("\npacked day on the wire: %zu bytes (%lld payload bits + "
              "26-byte header) vs %zu bytes raw\n",
              wire.size(),
              static_cast<long long>(
                  PackedPayloadBits(day_symbols.size(), day_symbols.level())),
              today.size() * 8);

  // The expert table of Section 3.2: two symbols, low/high.
  LookupTable low_high =
      LookupTable::FromSeparators({600.0}, 0.0, 6000.0).value();
  SymbolicSeries coarse = EncodePipeline(today, low_high, pipeline).value();
  std::printf("\nexpert low/high table (threshold 600 W), today's 96 "
              "windows:\n  %s\n", coarse.ToBitString().c_str());
  std::printf("  entropy: %.2f of 1 bit — the server learns little beyond "
              "\"when is this home active\"\n",
              SymbolEntropyBits(coarse).value());

  // Storage accounting (Section 2.3).
  std::printf("\nstorage per day (one meter):\n");
  std::printf("  %-28s %12s %10s\n", "representation", "bits/day", "ratio");
  CompressionModelOptions raw_model;
  raw_model.window_seconds = 900;
  raw_model.symbol_bits = 4;
  CompressionReport headline = EvaluateCompression(raw_model).value();
  std::printf("  %-28s %12.0f %10s\n", "raw doubles @ 1 Hz",
              headline.raw_bits_per_day, "1x");
  for (int level : {4, 1}) {
    for (int64_t window : {int64_t{900}, kSecondsPerHour}) {
      CompressionModelOptions model;
      model.window_seconds = window;
      model.symbol_bits = level;
      CompressionReport report = EvaluateCompression(model).value();
      std::string label = std::to_string(1 << level) + " symbols @ " +
                          (window == 900 ? "15 min" : "1 h");
      std::printf("  %-28s %12.0f %9.0fx\n", label.c_str(),
                  report.symbolic_bits_per_day, report.ratio);
    }
  }
  return 0;
}
