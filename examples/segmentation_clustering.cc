// Unsupervised customer segmentation — the task Section 3.1 motivates
// ("identifying customers having a similar consumption profile") — run as
// true clustering over the symbolic day vectors with k-modes, and scored
// against the known house identities with the adjusted Rand index.

#include <cstdio>
#include <map>

#include "data/features.h"
#include "data/generator.h"
#include "ml/kmodes.h"

int main() {
  using namespace smeter;

  data::GeneratorOptions gen;
  gen.num_houses = 6;
  gen.duration_seconds = 21 * kSecondsPerDay;
  gen.seed = 4;
  std::vector<TimeSeries> fleet = data::GenerateFleet(gen).value();

  // Symbols with a single global table: clustering should group similar
  // *consumption profiles*, so all houses must share one code book (with
  // per-house tables every house would look uniformly coded).
  data::ClassificationOptions options;
  options.day.window_seconds = kSecondsPerHour;
  options.method = SeparatorMethod::kMedian;
  options.level = 3;
  options.global_table = true;
  ml::Dataset days =
      data::BuildSymbolicClassificationDataset(fleet, options).value();
  std::printf("clustering %zu symbolic day vectors (24 x 8-symbol)\n",
              days.num_instances());

  std::vector<size_t> truth;
  for (size_t r = 0; r < days.num_instances(); ++r) {
    truth.push_back(days.ClassOf(r).value());
  }

  for (size_t k : {2u, 4u, 6u, 8u}) {
    ml::KModesOptions km_options;
    km_options.k = k;
    km_options.restarts = 8;
    km_options.seed = 11;
    ml::KModes km(km_options);
    if (Status s = km.Fit(days); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    double ari = ml::AdjustedRandIndex(km.assignments(), truth).value();
    std::printf("\nk=%zu: Hamming cost %.0f, ARI vs houses %.3f\n", k,
                km.cost(), ari);

    // Cluster composition (how many days of each house per cluster).
    std::map<std::pair<size_t, size_t>, size_t> composition;
    for (size_t r = 0; r < truth.size(); ++r) {
      ++composition[{km.assignments()[r], truth[r]}];
    }
    for (size_t c = 0; c < k; ++c) {
      std::printf("  cluster %zu:", c);
      for (size_t h = 0; h < fleet.size(); ++h) {
        auto it = composition.find({c, h});
        size_t count = it == composition.end() ? 0 : it->second;
        if (count > 0) std::printf(" house%zu x%zu", h + 1, count);
      }
      std::printf("\n");
    }
  }

  std::printf("\nk = #houses should score the highest ARI: days of the same "
              "household cluster together from symbols alone.\n");
  return 0;
}
