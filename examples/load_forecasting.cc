// Short-term residential load forecasting (Section 3.2): predict the next
// day's hourly consumption of one house from one week of history, with the
// forecast cast as next-symbol classification, and compare against
// epsilon-SVR on the raw values.

#include <cmath>
#include <cstdio>

#include "core/encoder.h"
#include "core/reconstruction.h"
#include "data/features.h"
#include "data/generator.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "ml/svr.h"

namespace {

constexpr size_t kLag = 12;
constexpr size_t kTrainHours = 7 * 24;
constexpr size_t kTotalHours = 8 * 24;
constexpr int kLevel = 4;  // alphabet of 16

}  // namespace

int main() {
  using namespace smeter;

  data::GeneratorOptions gen;
  gen.num_houses = 1;
  gen.duration_seconds = 8 * kSecondsPerDay;
  gen.outages_per_day = 0.0;
  gen.sparse_house = 99;
  gen.seed = 99;
  TimeSeries raw = data::GenerateHouseSeries(0, gen).value();
  TimeSeries hourly_series =
      VerticalSegmentByWindow(raw, kSecondsPerHour, {}).value();
  std::vector<double> hourly = hourly_series.Values();
  std::printf("hourly series: %zu values (train %zu, test %zu)\n",
              hourly.size(), kTrainHours, kTotalHours - kTrainHours);

  // --- symbolic forecasting ---
  std::vector<double> training(hourly.begin(), hourly.begin() + kTrainHours);
  LookupTableOptions table_options;
  table_options.method = SeparatorMethod::kMedian;
  table_options.level = kLevel;
  LookupTable table = LookupTable::Build(training, table_options).value();

  std::vector<uint32_t> symbols;
  for (double v : hourly) symbols.push_back(table.Encode(v).index());

  ml::Dataset train =
      data::MakeSymbolicLagDataset(symbols, kLag, kLevel, 0, kTrainHours)
          .value();
  ml::Dataset test = data::MakeSymbolicLagDataset(symbols, kLag, kLevel,
                                                  kTrainHours, kTotalHours)
                         .value();

  auto forecast_with = [&](ml::Classifier& classifier) {
    Status status = classifier.Train(train);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return -1.0;
    }
    double abs_error = 0.0;
    std::printf("  hour  truth[W]  forecast[W]  symbol\n");
    for (size_t r = 0; r < test.num_instances(); ++r) {
      size_t predicted = classifier.Predict(test.row(r)).value();
      Symbol s = Symbol::Create(kLevel, static_cast<uint32_t>(predicted))
                     .value();
      double value =
          table.Reconstruct(s, ReconstructionMode::kRangeCenter).value();
      double truth = hourly[kTrainHours + r];
      if (r % 6 == 0) {  // print a sample of the day
        std::printf("  %4zu  %8.1f  %11.1f  %s\n", r, truth, value,
                    s.ToBits().c_str());
      }
      abs_error += std::abs(value - truth);
    }
    return abs_error / static_cast<double>(test.num_instances());
  };

  std::printf("\n== symbolic, Naive Bayes ==\n");
  ml::NaiveBayes nb;
  double nb_mae = forecast_with(nb);

  std::printf("\n== symbolic, Random Forest ==\n");
  ml::RandomForestOptions rf_options;
  rf_options.num_trees = 50;
  ml::RandomForest rf(rf_options);
  double rf_mae = forecast_with(rf);

  // --- raw-value baseline: epsilon-SVR ---
  std::vector<std::vector<double>> x_train, x_test;
  std::vector<double> y_train, y_test;
  (void)data::BuildLagMatrix(hourly, kLag, 0, kTrainHours, &x_train, &y_train);
  (void)data::BuildLagMatrix(hourly, kLag, kTrainHours, kTotalHours, &x_test,
                             &y_test);
  ml::SvrOptions svr_options;
  svr_options.c = 10.0;
  ml::Svr svr(svr_options);
  if (Status s = svr.Train(x_train, y_train); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  double svr_abs = 0.0;
  for (size_t i = 0; i < x_test.size(); ++i) {
    svr_abs += std::abs(svr.Predict(x_test[i]).value() - y_test[i]);
  }
  double svr_mae = svr_abs / static_cast<double>(x_test.size());

  std::printf("\n== next-day MAE ==\n");
  std::printf("raw epsilon-SVR:        %8.1f W (%zu support vectors)\n",
              svr_mae, svr.num_support_vectors());
  std::printf("symbolic Naive Bayes:   %8.1f W\n", nb_mae);
  std::printf("symbolic Random Forest: %8.1f W\n", rf_mae);
  std::printf("\nthe paper's claim: symbolic forecasting is comparable to "
              "raw-value forecasting despite only seeing 4-bit symbols.\n");
  return 0;
}
