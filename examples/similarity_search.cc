// Similarity search over symbolic day profiles with the iSAX-style index:
// "find days like this one" across a fleet — the kind of query the paper's
// related work (iSAX) targets, run directly on the privacy-preserving
// symbols instead of raw data.

#include <cstdio>

#include "core/symbolic_index.h"
#include "data/day_splitter.h"
#include "data/features.h"
#include "data/generator.h"

int main() {
  using namespace smeter;

  data::GeneratorOptions gen;
  gen.num_houses = 6;
  gen.duration_seconds = 21 * kSecondsPerDay;
  gen.seed = 77;
  std::vector<TimeSeries> fleet = data::GenerateFleet(gen).value();

  // One shared table so distances are comparable across houses; day words
  // of six 4-hour symbols.
  data::ClassificationOptions options;
  options.day.window_seconds = 4 * kSecondsPerHour;
  options.method = SeparatorMethod::kMedian;
  options.level = 4;
  options.global_table = true;
  LookupTable table =
      data::BuildHouseTables(fleet, options).value().front();

  SymbolicIndex::Options index_options;
  index_options.prune_level = 2;
  SymbolicIndex index =
      SymbolicIndex::Create(table, 6, index_options).value();

  std::vector<Symbol> query;
  uint64_t query_id = 0;
  for (size_t h = 0; h < fleet.size(); ++h) {
    std::vector<data::DayVector> days =
        data::BuildDayVectors(fleet[h], options.day).value();
    for (size_t d = 0; d < days.size(); ++d) {
      if (days[d].windows_present < 6) continue;
      std::vector<Symbol> word;
      for (double v : days[d].values) word.push_back(table.Encode(v));
      uint64_t id = h * 1000 + d;
      if (h == 2 && d == 10) {  // an arbitrary mid-fleet query day
        query = word;
        query_id = id;
      }
      (void)index.Insert(id, std::move(word));
    }
  }
  std::printf("indexed %zu day-words from %zu houses in %zu buckets\n",
              index.size(), fleet.size(), index.num_buckets());
  if (query.empty()) {
    std::fprintf(stderr, "query day missing from the fleet\n");
    return 1;
  }

  std::printf("\nquery: house 3 day 10 -> word %s\n",
              [&] {
                std::string bits;
                for (const Symbol& s : query) {
                  if (!bits.empty()) bits += ' ';
                  bits += s.ToBits();
                }
                return bits;
              }()
                  .c_str());

  std::vector<IndexMatch> top = index.NearestNeighbors(query, 8).value();
  std::printf("examined %zu of %zu buckets (lower-bound pruning)\n",
              index.last_buckets_examined(), index.num_buckets());
  std::printf("\n%-10s %-6s %-12s\n", "house", "day", "distance [W]");
  for (const IndexMatch& match : top) {
    if (match.id == query_id) continue;
    std::printf("house %-4llu %-6llu %-12.1f\n",
                static_cast<unsigned long long>(match.id / 1000 + 1),
                static_cast<unsigned long long>(match.id % 1000),
                match.distance);
  }

  std::printf("\nrange query: all days within 100 W of the query\n");
  std::vector<IndexMatch> close = index.RangeQuery(query, 100.0).value();
  std::printf("  %zu days (including the query itself)\n", close.size());
  return 0;
}
