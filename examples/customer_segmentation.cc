// Customer segmentation (Section 3.1): classify which house produced each
// day of consumption, using only the symbolic representation.
//
// Demonstrates: fleet generation, per-house lookup tables, nominal day
// vectors, ARFF export (the paper's Weka workflow), 10-fold cross-
// validation with per-class precision/recall, and the processing-time win.

#include <cstdio>
#include <memory>

#include "data/features.h"
#include "data/generator.h"
#include "ml/arff.h"
#include "ml/evaluation.h"
#include "ml/naive_bayes.h"

int main() {
  using namespace smeter;

  // A 6-house fleet over two weeks (house 5 is data-starved, as in REDD).
  data::GeneratorOptions gen;
  gen.num_houses = 6;
  gen.duration_seconds = 14 * kSecondsPerDay;
  gen.seed = 2013;
  Result<std::vector<TimeSeries>> fleet = data::GenerateFleet(gen);
  if (!fleet.ok()) {
    std::fprintf(stderr, "%s\n", fleet.status().ToString().c_str());
    return 1;
  }

  // Symbolic day vectors: median encoding, 1 h windows, 16 symbols,
  // per-house tables calibrated on each house's first two days.
  data::ClassificationOptions options;
  options.day.window_seconds = kSecondsPerHour;
  options.method = SeparatorMethod::kMedian;
  options.level = 4;
  Result<ml::Dataset> dataset =
      data::BuildSymbolicClassificationDataset(*fleet, options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %zu day-instances, %zu nominal attributes\n",
              dataset->num_instances(), dataset->num_attributes() - 1);

  // The paper fed Weka with ARFF files; write one for interoperability.
  const std::string arff_path = "/tmp/smeter_days.arff";
  if (Status s = ml::WriteArffFile(arff_path, *dataset); s.ok()) {
    std::printf("ARFF written to %s (load it in Weka to cross-check)\n",
                arff_path.c_str());
  }

  // 10-fold cross-validation with Naive Bayes.
  Result<ml::CrossValidationResult> cv = ml::CrossValidate(
      [] { return std::make_unique<ml::NaiveBayes>(); }, *dataset, 10, 1);
  if (!cv.ok()) {
    std::fprintf(stderr, "%s\n", cv.status().ToString().c_str());
    return 1;
  }
  std::printf("\nNaive Bayes, 10-fold CV:\n%s",
              cv->metrics.ToString(dataset->class_attribute().values())
                  .c_str());
  std::printf("processing time: %.3f s for %zu instances\n",
              cv->processing_seconds, dataset->num_instances());

  // Chance level for context.
  std::printf("\n(chance F-measure for %zu balanced houses would be ~%.2f)\n",
              fleet->size(), 1.0 / static_cast<double>(fleet->size()));
  return 0;
}
