// The sensor-side online pipeline (Section 2): warm up on historical data,
// emit the lookup table to the "aggregation server", stream symbols, and
// rebuild the table on the fly when the consumption distribution shifts
// (Section 4's seasonal-change scenario).

#include <cstdio>

#include "core/online_encoder.h"
#include "data/generator.h"

int main() {
  using namespace smeter;

  // Six days of one house; consumption jumps 2.5x after day 4 (say, an
  // electric heater joins in winter).
  data::GeneratorOptions gen;
  gen.num_houses = 1;
  gen.duration_seconds = 6 * kSecondsPerDay;
  gen.outages_per_day = 0.0;
  gen.sparse_house = 99;
  gen.seed = 21;
  TimeSeries trace = data::GenerateHouseSeries(0, gen).value();

  OnlineEncoderOptions options;
  options.method = SeparatorMethod::kMedian;
  options.level = 3;  // 8 symbols
  options.warmup_seconds = 2 * kSecondsPerDay;
  options.window_seconds = 900;
  DriftOptions drift;
  drift.window_size = 192;
  drift.min_samples = 96;
  drift.psi_threshold = 0.25;
  options.drift = drift;
  options.rebuild_history_windows = 192;
  OnlineEncoder encoder = OnlineEncoder::Create(options).value();

  size_t symbols_emitted = 0;
  size_t bits_sent = 0;
  for (const Sample& raw : trace) {
    Sample s = raw;
    if (s.timestamp >= 4 * kSecondsPerDay) s.value *= 2.5;  // regime shift

    Result<std::vector<EncoderEvent>> events = encoder.Push(s);
    if (!events.ok()) {
      std::fprintf(stderr, "%s\n", events.status().ToString().c_str());
      return 1;
    }
    for (const EncoderEvent& e : *events) {
      if (e.type == EncoderEvent::Type::kTableReady) {
        const LookupTable& table = *encoder.table();
        std::printf("[t=%7lld] TABLE v%d -> server (%zu bytes, domain "
                    "%.0f..%.0f W)\n",
                    static_cast<long long>(s.timestamp), e.table_version,
                    table.Serialize().size(), table.domain_min(),
                    table.domain_max());
        bits_sent += table.Serialize().size() * 8;
      } else {
        ++symbols_emitted;
        bits_sent += static_cast<size_t>(options.level);
        if (symbols_emitted % 96 == 1) {  // one line per simulated day
          std::printf("[t=%7lld] symbol %s (table v%d)\n",
                      static_cast<long long>(e.symbol.timestamp),
                      e.symbol.symbol.ToBits().c_str(), e.table_version);
        }
      }
    }
  }
  std::vector<EncoderEvent> tail = encoder.Flush().value();
  for (const EncoderEvent& e : tail) {
    if (e.type == EncoderEvent::Type::kSymbol) ++symbols_emitted;
  }

  std::printf("\nstreamed %zu symbols across %d table version(s)\n",
              symbols_emitted, encoder.table_version());
  std::printf("bytes on the wire: %zu (raw would be %lld)\n", bits_sent / 8,
              static_cast<long long>(trace.size()) * 8);
  if (encoder.table_version() > 1) {
    std::printf("the 2.5x regime shift was detected and the table rebuilt "
                "on the fly (Section 4)\n");
  }
  return 0;
}
