// Anomaly detection on the symbol stream alone: the aggregation server
// never sees raw watts, yet can still flag a household whose routine
// breaks (a heater stuck on overnight here). Analytics on the compact,
// privacy-preserving representation — the paper's central promise.

#include <cstdio>

#include "core/anomaly.h"
#include "core/encoder.h"
#include "data/generator.h"

int main() {
  using namespace smeter;

  // Three weeks of one house at 1 Hz; the first two weeks are "typical".
  data::GeneratorOptions gen;
  gen.num_houses = 1;
  gen.duration_seconds = 21 * kSecondsPerDay;
  gen.outages_per_day = 0.0;
  gen.sparse_house = 99;
  gen.seed = 31;
  TimeSeries trace = data::GenerateHouseSeries(0, gen).value();

  // Day 18, 01:00-05:00: a 2 kW heater left running (the anomaly).
  TimeSeries tampered;
  const Timestamp anomaly_begin = 17 * kSecondsPerDay + 1 * kSecondsPerHour;
  const Timestamp anomaly_end = 17 * kSecondsPerDay + 5 * kSecondsPerHour;
  for (const Sample& s : trace) {
    double value = s.value;
    if (s.timestamp >= anomaly_begin && s.timestamp < anomaly_end) {
      value += 2000.0;
    }
    (void)tampered.Append({s.timestamp, value});
  }

  // Sensor side: one median table from the first two days, hourly symbols.
  LookupTableOptions table_options;
  table_options.method = SeparatorMethod::kMedian;
  table_options.level = 2;  // 4 symbols keep the bigram model well-fed
  LookupTable table =
      LookupTable::Build(tampered.Slice({0, 2 * kSecondsPerDay}).Values(),
                         table_options)
          .value();
  PipelineOptions pipeline;
  pipeline.window_seconds = kSecondsPerHour;
  SymbolicSeries symbols = EncodePipeline(tampered, table, pipeline).value();
  std::printf("symbol stream: %zu hourly symbols (%d bits each)\n",
              symbols.size(), symbols.level());

  // Server side: fit typical behaviour on weeks 1-2, watch week 3.
  SymbolicSeries reference = symbols.Slice({0, 14 * kSecondsPerDay});
  SymbolicSeries watch =
      symbols.Slice({14 * kSecondsPerDay, 21 * kSecondsPerDay + 1});
  AnomalyOptions options;
  options.time_buckets = 4;
  options.ema_alpha = 0.6;
  options.threshold_bits = 3.0;
  AnomalyDetector detector = AnomalyDetector::Fit(reference, options).value();

  std::vector<AnomalyScore> scores = detector.Score(watch).value();
  double max_smoothed = 0.0;
  for (const AnomalyScore& s : scores) {
    max_smoothed = std::max(max_smoothed, s.smoothed_bits);
  }
  std::printf("watch window: %zu symbols, peak smoothed surprisal %.1f "
              "bits (threshold %.1f)\n",
              scores.size(), max_smoothed, options.threshold_bits);

  std::vector<TimeRange> ranges = detector.AnomalousRanges(watch).value();
  std::printf("\nflagged regions:\n");
  for (const TimeRange& r : ranges) {
    double day = static_cast<double>(r.begin) / kSecondsPerDay;
    int hour = static_cast<int>((r.begin % kSecondsPerDay) / kSecondsPerHour);
    std::printf("  day %.0f, starting %02d:00, lasting %lld h\n", day + 1,
                hour, static_cast<long long>(r.duration() / kSecondsPerHour));
  }
  if (ranges.empty()) {
    std::printf("  (none — try a lower threshold)\n");
  } else {
    bool caught = false;
    for (const TimeRange& r : ranges) {
      if (r.begin < anomaly_end && r.end > anomaly_begin) caught = true;
    }
    std::printf("\ninjected heater window (day 18, 01:00-05:00) %s from "
                "symbols alone\n",
                caught ? "was CAUGHT" : "was missed");
  }
  return 0;
}
