// Quickstart: the full symbolic-representation pipeline on one simulated
// day of smart-meter data.
//
//   1. generate a 1 Hz house trace;
//   2. learn a lookup table from historical data (three methods);
//   3. vertical + horizontal segmentation -> a symbolic time series;
//   4. reconstruct and measure the information loss;
//   5. show what the compression bought.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/compression.h"
#include "core/encoder.h"
#include "core/entropy.h"
#include "core/reconstruction.h"
#include "data/generator.h"

int main() {
  using namespace smeter;

  // 1. Three days of 1 Hz data: two for calibration, one to encode.
  data::GeneratorOptions gen;
  gen.num_houses = 1;
  gen.duration_seconds = 3 * kSecondsPerDay;
  gen.outages_per_day = 0.0;
  gen.sparse_house = 99;
  gen.seed = 7;
  Result<TimeSeries> trace = data::GenerateHouseSeries(0, gen);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 1;
  }
  TimeSeries history = trace->Slice({0, 2 * kSecondsPerDay});
  TimeSeries today = trace->Slice({2 * kSecondsPerDay, 3 * kSecondsPerDay});
  std::printf("history: %zu samples, today: %zu samples\n", history.size(),
              today.size());

  for (SeparatorMethod method :
       {SeparatorMethod::kUniform, SeparatorMethod::kMedian,
        SeparatorMethod::kDistinctMedian}) {
    // 2. Learn the lookup table (16 symbols = level 4) from history.
    LookupTableOptions table_options;
    table_options.method = method;
    table_options.level = 4;
    Result<LookupTable> table =
        LookupTable::Build(history.Values(), table_options);
    if (!table.ok()) {
      std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
      return 1;
    }

    // 3. 15-minute vertical segmentation, then horizontal segmentation.
    PipelineOptions pipeline;
    pipeline.window_seconds = 900;
    Result<SymbolicSeries> symbols = EncodePipeline(today, *table, pipeline);
    if (!symbols.ok()) {
      std::fprintf(stderr, "%s\n", symbols.status().ToString().c_str());
      return 1;
    }

    std::printf("\n== %s ==\n", SeparatorMethodName(method).c_str());
    SymbolicSeries head = symbols->Slice(
        {2 * kSecondsPerDay, 2 * kSecondsPerDay + 12 * 900 + 1});
    std::printf("today 00:00-03:00: %s\n", head.ToBitString().c_str());

    // 4. Reconstruction quality.
    Result<TimeSeries> aggregated =
        VerticalSegmentByWindow(today, 900, pipeline.window);
    Result<ReconstructionError> err = RoundTripError(
        aggregated.value(), *table, ReconstructionMode::kRangeMean);
    std::printf("windows: %zu, reconstruction MAE: %.1f W (max %.1f W)\n",
                symbols->size(), err->mae, err->max_abs);
    std::printf("symbol entropy: %.2f of %d bits\n",
                SymbolEntropyBits(*symbols).value(), symbols->level());

    // 5. Compression accounting (Section 2.3).
    CompressionModelOptions compression;
    compression.window_seconds = 900;
    compression.symbol_bits = 4;
    CompressionReport report = EvaluateCompression(compression).value();
    std::printf("storage: %.0f bits/day symbolic vs %.0f bits/day raw "
                "(%.0fx smaller)\n",
                report.symbolic_bits_per_day, report.raw_bits_per_day,
                report.ratio);
  }
  return 0;
}
