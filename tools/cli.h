// The `smeter` command-line tool: end-to-end access to the library without
// writing C++. Subcommands:
//
//   simulate     generate synthetic smart-meter traces (REDD or CER format)
//   stats        accumulative statistics of a trace (Figure 4's numbers)
//   learn-table  learn a lookup table from historical data
//   encode       vertical+horizontal segmentation -> packed symbol file
//   encode-fleet per-household tables + encoding for a whole fleet,
//                sharded across a thread pool (--threads)
//   decode       packed symbol file -> reconstructed values (CSV)
//   info         inspect a packed symbol file or serialized table
//   fsck         verify (and with --repair, fix) a fleet archive's
//                checksums, manifest, and stray tmp files
//
// The command layer is a library (this header) so the test suite can drive
// it in-process; `smeter_cli.cc` is a thin main().

#ifndef SMETER_TOOLS_CLI_H_
#define SMETER_TOOLS_CLI_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace smeter::cli {

// Parsed "--flag value" arguments.
class Flags {
 public:
  // Parses ["--a", "1", "--b", "x"]; rejects positional arguments and
  // flags without values.
  static Result<Flags> Parse(const std::vector<std::string>& args);

  bool Has(const std::string& name) const;
  // Errors if absent.
  Result<std::string> Get(const std::string& name) const;
  std::string GetOr(const std::string& name,
                    const std::string& fallback) const;
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const;
  Result<double> GetDouble(const std::string& name, double fallback) const;
  // Accepts "true"/"1" and "false"/"0".
  Result<bool> GetBool(const std::string& name, bool fallback) const;

  // Names that were never read — for unknown-flag diagnostics.
  std::vector<std::string> UnreadFlags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
};

// Executes one subcommand: args = {subcommand, --flag, value, ...}.
// Human-readable output goes to `out`. Returns a non-OK status on any
// usage or processing error; commands that grade their findings (fsck)
// surface a non-clean result as a non-OK status through this legacy
// surface. Prefer RunCliExitCode for process exit codes.
Status RunCli(const std::vector<std::string>& args, std::ostream& out);

// Like RunCli but returns the process exit code and prints errors to
// `err`: 0 success, 1 usage/processing error, and for `fsck` the fsck(8)
// convention — 0 clean, 1 issues repaired (resume required), 4 issues
// unrepaired.
int RunCliExitCode(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err);

// The usage text printed by `help` and on errors.
std::string UsageText();

}  // namespace smeter::cli

#endif  // SMETER_TOOLS_CLI_H_
