#include "cli.h"

#include <csignal>
#include <filesystem>
#include <map>
#include <utility>

#include "common/io.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "core/codec.h"
#include "core/encoder.h"
#include "core/entropy.h"
#include "core/fleet_encoder.h"
#include "core/fleet_manifest.h"
#include "core/fsck.h"
#include "core/quantile.h"
#include "core/reconstruction.h"
#include "data/cer.h"
#include "data/generator.h"
#include "data/redd.h"
#include "client/uploader.h"
#include "core/archive_store.h"
#include "net/ingest_server.h"
#include "net/loadgen.h"
#include "net/query_client.h"
#include "net/query_server.h"

namespace smeter::cli {
namespace {

Status MakeDirectories(const std::string& path) {
  std::error_code error;
  std::filesystem::create_directories(path, error);
  if (error) {
    return InternalError("cannot create " + path + ": " + error.message());
  }
  return Status::Ok();
}

// Every producer goes through the durable path: tmp file, fsync, rename,
// directory fsync. Readers of a killed run see old bytes or new bytes,
// never a torn file.
Status WriteFile(const std::string& path, const std::string& content) {
  return io::AtomicWriteFile(path, content);
}

Result<std::string> ReadFile(const std::string& path) {
  return io::ReadFileToString(path);
}

Result<SeparatorMethod> MethodFromName(const std::string& name) {
  if (name == "uniform") return SeparatorMethod::kUniform;
  if (name == "median") return SeparatorMethod::kMedian;
  if (name == "distinctmedian") return SeparatorMethod::kDistinctMedian;
  return InvalidArgumentError(
      "unknown method '" + name +
      "' (expected uniform|median|distinctmedian)");
}

// Loads a meter trace: REDD channel ("<ts> <watts>" lines) or CER.
Result<TimeSeries> LoadTrace(const Flags& flags) {
  Result<std::string> input = flags.Get("input");
  if (!input.ok()) return input.status();
  std::string format = flags.GetOr("format", "redd");
  if (format == "redd") {
    return data::LoadReddChannel(*input);
  }
  if (format == "cer") {
    Result<std::vector<std::pair<int64_t, TimeSeries>>> meters =
        data::LoadCerFile(*input);
    if (!meters.ok()) return meters.status();
    if (meters->empty()) return FailedPreconditionError("no meters in file");
    Result<int64_t> meter = flags.GetInt("meter", meters->front().first);
    if (!meter.ok()) return meter.status();
    for (auto& [id, series] : *meters) {
      if (id == *meter) return std::move(series);
    }
    return NotFoundError("meter " + std::to_string(*meter) + " not in file");
  }
  return InvalidArgumentError("unknown format '" + format +
                              "' (expected redd|cer)");
}

Status CheckNoStrayFlags(const Flags& flags) {
  std::vector<std::string> stray = flags.UnreadFlags();
  if (stray.empty()) return Status::Ok();
  std::string joined;
  for (const std::string& name : stray) {
    if (!joined.empty()) joined += ", ";
    joined += "--" + name;
  }
  return InvalidArgumentError("unknown flag(s): " + joined);
}

// --- subcommands -----------------------------------------------------------

Status CmdSimulate(const Flags& flags, std::ostream& out) {
  data::GeneratorOptions options;
  Result<int64_t> houses = flags.GetInt("houses", 6);
  if (!houses.ok()) return houses.status();
  Result<int64_t> days = flags.GetInt("days", 7);
  if (!days.ok()) return days.status();
  Result<int64_t> seed = flags.GetInt("seed", 42);
  if (!seed.ok()) return seed.status();
  std::string format = flags.GetOr("format", "redd");
  Result<double> outages = flags.GetDouble("outages", 0.4);
  if (!outages.ok()) return outages.status();
  Result<std::string> dir = flags.Get("out");
  if (!dir.ok()) return dir.status();
  SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));

  options.num_houses = static_cast<size_t>(*houses);
  options.duration_seconds = *days * kSecondsPerDay;
  options.seed = static_cast<uint64_t>(*seed);
  options.outages_per_day = *outages;
  if (format == "cer") options.sample_period_seconds = 1800;

  if (format == "redd") {
    for (size_t h = 0; h < options.num_houses; ++h) {
      Result<TimeSeries> series = data::GenerateHouseSeries(h, options);
      if (!series.ok()) return series.status();
      // REDD splits the house total across two mains; emit half into each
      // channel so LoadReddHouseMains reassembles the original.
      std::string mains1, mains2;
      char line[64];
      for (const Sample& s : *series) {
        std::snprintf(line, sizeof(line), "%lld %.2f\n",
                      static_cast<long long>(s.timestamp), s.value / 2.0);
        mains1 += line;
        mains2 += line;
      }
      std::string house_dir =
          *dir + "/house_" + std::to_string(h + 1);
      SMETER_RETURN_IF_ERROR(MakeDirectories(house_dir));
      SMETER_RETURN_IF_ERROR(
          WriteFile(house_dir + "/channel_1.dat", mains1));
      SMETER_RETURN_IF_ERROR(
          WriteFile(house_dir + "/channel_2.dat", mains2));
      out << "wrote " << house_dir << " (" << series->size()
          << " samples)\n";
    }
    return Status::Ok();
  }
  if (format == "cer") {
    std::vector<std::pair<int64_t, TimeSeries>> meters;
    for (size_t h = 0; h < options.num_houses; ++h) {
      Result<TimeSeries> series = data::GenerateHouseSeries(h, options);
      if (!series.ok()) return series.status();
      meters.emplace_back(static_cast<int64_t>(1000 + h),
                          std::move(series.value()));
    }
    Result<std::string> text = data::FormatCer(meters);
    if (!text.ok()) return text.status();
    std::string path = *dir + "/meters.cer";
    SMETER_RETURN_IF_ERROR(MakeDirectories(*dir));
    SMETER_RETURN_IF_ERROR(WriteFile(path, *text));
    out << "wrote " << path << " (" << meters.size() << " meters)\n";
    return Status::Ok();
  }
  return InvalidArgumentError("unknown format '" + format + "'");
}

Status CmdStats(const Flags& flags, std::ostream& out) {
  Result<TimeSeries> trace = LoadTrace(flags);
  if (!trace.ok()) return trace.status();
  SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));
  if (trace->empty()) return FailedPreconditionError("empty trace");
  RunningStats stats;
  for (const Sample& s : *trace) stats.Add(s.value);
  out << "samples        " << stats.count() << "\n";
  out << "span [s]       "
      << trace->back().timestamp - trace->front().timestamp << "\n";
  out << "mean           " << stats.mean() << "\n";
  out << "median         " << stats.Median().value() << "\n";
  out << "distinctmedian " << stats.DistinctMedian().value() << "\n";  // lint: checked: non-empty trace checked above
  out << "min            " << stats.min() << "\n";
  out << "max            " << stats.max() << "\n";
  out << "gaps > 60s     " << trace->FindGaps(60).size() << "\n";
  return Status::Ok();
}

Status CmdLearnTable(const Flags& flags, std::ostream& out) {
  Result<TimeSeries> trace = LoadTrace(flags);
  if (!trace.ok()) return trace.status();
  Result<SeparatorMethod> method =
      MethodFromName(flags.GetOr("method", "median"));
  if (!method.ok()) return method.status();
  Result<int64_t> level = flags.GetInt("level", 4);
  if (!level.ok()) return level.status();
  Result<int64_t> history = flags.GetInt("history-seconds", 0);
  if (!history.ok()) return history.status();
  Result<std::string> output = flags.Get("out");
  if (!output.ok()) return output.status();
  SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));

  TimeSeries training = *trace;
  if (*history > 0 && !trace->empty()) {
    training = trace->Slice(
        {trace->front().timestamp, trace->front().timestamp + *history});
  }
  if (training.empty()) {
    return FailedPreconditionError("no training data in the history span");
  }
  LookupTableOptions options;
  options.method = *method;
  options.level = static_cast<int>(*level);
  Result<LookupTable> table =
      LookupTable::Build(training.Values(), options);
  if (!table.ok()) return table.status();
  SMETER_RETURN_IF_ERROR(WriteFile(*output, table->Serialize()));
  out << "learned " << SeparatorMethodName(*method) << " table, "
      << table->alphabet_size() << " symbols, domain ["
      << table->domain_min() << ", " << table->domain_max() << "] from "
      << training.size() << " samples -> " << *output << "\n";
  return Status::Ok();
}

Result<LookupTable> LoadTable(const Flags& flags) {
  Result<std::string> path = flags.Get("table");
  if (!path.ok()) return path.status();
  Result<std::string> blob = ReadFile(*path);
  if (!blob.ok()) return blob.status();
  return LookupTable::Deserialize(*blob);
}

Status CmdEncode(const Flags& flags, std::ostream& out) {
  Result<TimeSeries> trace = LoadTrace(flags);
  if (!trace.ok()) return trace.status();
  Result<LookupTable> table = LoadTable(flags);
  if (!table.ok()) return table.status();
  Result<int64_t> window = flags.GetInt("window", 900);
  if (!window.ok()) return window.status();
  Result<int64_t> sample_period = flags.GetInt("sample-period", 1);
  if (!sample_period.ok()) return sample_period.status();
  Result<std::string> output = flags.Get("out");
  if (!output.ok()) return output.status();
  Result<bool> framed = flags.GetBool("framed", false);
  if (!framed.ok()) return framed.status();
  SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));

  PipelineOptions pipeline;
  pipeline.window_seconds = *window;
  pipeline.window.sample_period_seconds = *sample_period;
  Result<SymbolicSeries> symbols =
      EncodePipeline(*trace, *table, pipeline);
  if (!symbols.ok()) return symbols.status();
  Result<std::string> blob = *framed ? PackSymbolicSeriesFramed(*symbols)
                                     : PackSymbolicSeries(*symbols);
  if (!blob.ok()) {
    return Status(blob.status().code(),
                  blob.status().message() +
                      " (the trace has gaps; encode gapless spans)");
  }
  SMETER_RETURN_IF_ERROR(WriteFile(*output, *blob));
  double raw_bytes = static_cast<double>(trace->size()) * 8.0;
  out << "encoded " << symbols->size() << " symbols (level "
      << symbols->level() << ") -> " << *output << " (" << blob->size()
      << " bytes; raw was " << raw_bytes << " bytes, "
      << raw_bytes / static_cast<double>(blob->size()) << "x)\n";
  out << "symbol entropy: " << SymbolEntropyBits(*symbols).value() << " of "
      << symbols->level() << " bits\n";
  return Status::Ok();
}

Status CmdDecode(const Flags& flags, std::ostream& out) {
  Result<std::string> input = flags.Get("input");
  if (!input.ok()) return input.status();
  Result<LookupTable> table = LoadTable(flags);
  if (!table.ok()) return table.status();
  std::string mode_name = flags.GetOr("mode", "mean");
  SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));
  ReconstructionMode mode;
  if (mode_name == "mean") {
    mode = ReconstructionMode::kRangeMean;
  } else if (mode_name == "center") {
    mode = ReconstructionMode::kRangeCenter;
  } else {
    return InvalidArgumentError("unknown mode '" + mode_name +
                                "' (expected mean|center)");
  }
  Result<std::string> blob = ReadFile(*input);
  if (!blob.ok()) return blob.status();
  Result<SymbolicSeries> symbols = UnpackSymbolicSeries(*blob);
  if (!symbols.ok()) return symbols.status();
  Result<TimeSeries> decoded = Decode(*symbols, *table, mode);
  if (!decoded.ok()) return decoded.status();
  out << "timestamp,watts\n";
  for (const Sample& s : *decoded) {
    out << s.timestamp << "," << s.value << "\n";
  }
  return Status::Ok();
}

// Loads every household of a fleet: REDD layout (a directory of
// house_<i>/ subdirectories) or a CER file (all meters). Returns one
// FleetInput per household in a stable order; a household whose files are
// unreadable carries its load error into the tolerant encoder (quarantine)
// instead of failing the whole fleet. A CER file that cannot be read at
// all is a fleet-level error — the households inside it cannot even be
// enumerated.
Result<std::vector<FleetInput>> LoadFleet(const std::string& input,
                                          const std::string& format) {
  std::vector<FleetInput> fleet;
  if (format == "redd") {
    for (int h = 1;; ++h) {
      std::string house_dir = input + "/house_" + std::to_string(h);
      if (!std::filesystem::is_directory(house_dir)) break;
      fleet.push_back({"house_" + std::to_string(h),
                       data::LoadReddHouseMains(house_dir)});
    }
    if (fleet.empty()) {
      return NotFoundError("no house_<i> directories under " + input);
    }
    return fleet;
  }
  if (format == "cer") {
    Result<std::vector<std::pair<int64_t, TimeSeries>>> meters =
        data::LoadCerFile(input);
    if (!meters.ok()) return meters.status();
    if (meters->empty()) return FailedPreconditionError("no meters in file");
    for (auto& [id, series] : *meters) {
      fleet.push_back({"meter_" + std::to_string(id), std::move(series)});
    }
    return fleet;
  }
  return InvalidArgumentError("unknown format '" + format +
                              "' (expected redd|cer)");
}

// Households already finished by an earlier run, keyed by name (the
// manifest format itself lives in core/fleet_manifest). A missing,
// damaged, or legacy-format manifest simply resumes nothing — or, for a
// torn tail, resumes the valid prefix.
std::map<std::string, HouseholdReport> LoadManifest(
    const std::string& manifest_path) {
  Result<ManifestContents> contents = LoadFleetManifest(manifest_path);
  if (!contents.ok()) return {};
  return CarriedHouseholds(*contents);
}

Status CmdEncodeFleet(const Flags& flags, std::ostream& out) {
  Result<std::string> input = flags.Get("input");
  if (!input.ok()) return input.status();
  std::string format = flags.GetOr("format", "redd");
  Result<std::string> dir = flags.Get("out");
  if (!dir.ok()) return dir.status();
  Result<SeparatorMethod> method =
      MethodFromName(flags.GetOr("method", "median"));
  if (!method.ok()) return method.status();
  Result<int64_t> level = flags.GetInt("level", 4);
  if (!level.ok()) return level.status();
  Result<int64_t> window = flags.GetInt("window", 900);
  if (!window.ok()) return window.status();
  Result<int64_t> sample_period = flags.GetInt("sample-period", 1);
  if (!sample_period.ok()) return sample_period.status();
  Result<int64_t> history = flags.GetInt("history-seconds", 0);
  if (!history.ok()) return history.status();
  Result<int64_t> threads = flags.GetInt("threads", 0);
  if (!threads.ok()) return threads.status();
  Result<bool> resume = flags.GetBool("resume", false);
  if (!resume.ok()) return resume.status();
  Result<bool> gap_aware = flags.GetBool("gap-aware", true);
  if (!gap_aware.ok()) return gap_aware.status();
  Result<int64_t> max_retries = flags.GetInt("max-retries", 2);
  if (!max_retries.ok()) return max_retries.status();
  Result<int64_t> backoff = flags.GetInt("retry-backoff-ms", 100);
  if (!backoff.ok()) return backoff.status();
  SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));
  if (*threads < 0) return InvalidArgumentError("--threads must be >= 0");
  if (*max_retries < 0) {
    return InvalidArgumentError("--max-retries must be >= 0");
  }

  Result<std::vector<FleetInput>> fleet = LoadFleet(*input, format);
  if (!fleet.ok()) return fleet.status();

  const std::string manifest_path = *dir + "/fleet.manifest";
  std::map<std::string, HouseholdReport> carried;
  if (*resume) carried = LoadManifest(manifest_path);

  FleetEncodeOptions options;
  options.table.method = *method;
  options.table.level = static_cast<int>(*level);
  options.pipeline.window_seconds = *window;
  options.pipeline.window.sample_period_seconds = *sample_period;
  options.history_seconds = *history;
  options.gap_aware = *gap_aware;
  options.retry.max_retries = static_cast<int>(*max_retries);
  options.retry.initial_backoff_ms = *backoff;

  SMETER_RETURN_IF_ERROR(MakeDirectories(*dir));

  // The households an earlier run didn't finish; everything else is
  // carried over verbatim.
  std::vector<FleetInput> todo;
  std::vector<size_t> todo_index;  // position in the full fleet
  for (size_t h = 0; h < fleet->size(); ++h) {
    if (carried.count((*fleet)[h].name) > 0) continue;
    todo_index.push_back(h);
    todo.push_back(std::move((*fleet)[h]));
  }

  // Seed the manifest with the carried entries, then append each household
  // as it finishes so a killed run leaves a usable checkpoint.
  {
    std::vector<HouseholdReport> seed;
    for (size_t h = 0; h < fleet->size(); ++h) {
      auto it = carried.find((*fleet)[h].name);
      if (it != carried.end()) seed.push_back(it->second);
    }
    SMETER_RETURN_IF_ERROR(WriteFile(manifest_path, BuildManifestLog(seed)));
  }

  Mutex manifest_mutex;
  Result<io::AppendLogWriter> manifest =
      io::AppendLogWriter::OpenForAppend(manifest_path);
  if (!manifest.ok()) return manifest.status();
  HouseholdSink sink = [&](size_t /*index*/, const HouseholdReport& report,
                           const HouseholdEncoding& enc) -> Status {
    SMETER_RETURN_IF_ERROR(WriteFile(*dir + "/" + report.name + ".table",
                                     enc.table.Serialize()));
    Result<std::string> blob = PackSymbolicSeriesFramed(enc.symbols);
    if (!blob.ok()) {
      return Status(blob.status().code(),
                    blob.status().message() +
                        " (encode gapless spans, or use --gap-aware true)");
    }
    SMETER_RETURN_IF_ERROR(
        WriteFile(*dir + "/" + report.name + ".symbols", *blob));
    // Checkpoint only after both files are durably written. The outcome is
    // derived the same way the encoder will finalize it.
    HouseholdReport done = report;
    const bool clean = report.attempts == 1 &&
                       report.quality.windows_partial == 0 &&
                       report.quality.windows_gap == 0;
    done.outcome =
        clean ? HouseholdOutcome::kOk : HouseholdOutcome::kDegraded;
    // Append returns the write/fsync outcome, so a full disk or failed
    // flush fails the household loudly instead of dropping its checkpoint.
    MutexLock lock(manifest_mutex);
    return manifest->Append(ManifestRecord(done));
  };

  ThreadPool pool(static_cast<size_t>(*threads));
  Stopwatch watch;
  Result<std::vector<HouseholdReport>> encoded =
      EncodeFleetTolerant(todo, options, &pool, sink);
  if (!encoded.ok()) return encoded.status();
  const double seconds = watch.ElapsedSeconds();
  SMETER_RETURN_IF_ERROR(manifest->Close());

  // Merge carried and fresh reports back into fleet order.
  std::vector<HouseholdReport> reports;
  reports.reserve(fleet->size());
  {
    size_t next_todo = 0;
    for (size_t h = 0; h < fleet->size(); ++h) {
      if (next_todo < todo_index.size() && todo_index[next_todo] == h) {
        reports.push_back(std::move((*encoded)[next_todo]));
        ++next_todo;
      } else {
        reports.push_back(carried.at((*fleet)[h].name));
      }
    }
  }

  // Rewrite the manifest in fleet order (quarantined records included) so
  // a completed run's checkpoint is deterministic.
  SMETER_RETURN_IF_ERROR(
      WriteFile(manifest_path, BuildManifestLog(reports)));

  FleetQualityReport summary = SummarizeFleet(reports);
  SMETER_RETURN_IF_ERROR(WriteFile(
      *dir + "/quality.json", FleetQualityReportToJson(summary, reports)));

  size_t total_symbols = 0;
  size_t total_samples = 0;
  for (const FleetInput& in : todo) {
    if (in.trace.ok()) total_samples += in.trace->size();
  }
  for (const HouseholdReport& r : reports) {
    if (r.outcome == HouseholdOutcome::kQuarantined) {
      out << r.name << ": quarantined after " << r.attempts
          << " attempt(s): " << r.error.ToString() << "\n";
      continue;
    }
    total_symbols += r.quality.windows_total();
    out << r.name << ": " << r.quality.windows_total()
        << " symbols (level " << *level << ") -> " << *dir << "/" << r.name
        << ".{table,symbols}";
    if (carried.count(r.name) > 0) out << " [resumed]";
    if (r.outcome == HouseholdOutcome::kDegraded) {
      out << " [degraded: " << r.quality.windows_gap << " gap, "
          << r.quality.windows_partial << " partial windows]";
    }
    out << "\n";
  }
  out << "fleet: " << reports.size() << " households, " << total_samples
      << " samples -> " << total_symbols << " symbols on "
      << pool.num_threads() << " threads in " << seconds << " s\n";
  out << "quality: " << summary.households_ok << " ok, "
      << summary.households_degraded << " degraded, "
      << summary.households_quarantined << " quarantined -> " << *dir
      << "/quality.json\n";
  return Status::Ok();
}

Status CmdInfo(const Flags& flags, std::ostream& out) {
  Result<std::string> input = flags.Get("input");
  if (!input.ok()) return input.status();
  SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));
  Result<std::string> blob = ReadFile(*input);
  if (!blob.ok()) return blob.status();

  if (Result<SymbolicSeries> symbols = UnpackSymbolicSeries(*blob);
      symbols.ok()) {
    const int version =
        blob->size() > 4 ? static_cast<unsigned char>((*blob)[4]) : 0;
    out << "packed symbolic series (v" << version
        << (version == 3 ? ", framed + checksummed" : "") << ")\n";
    out << "  symbols " << symbols->size() << ", level " << symbols->level()
        << "\n";
    out << "  start " << symbols->samples().front().timestamp << ", end "
        << symbols->samples().back().timestamp << "\n";
    out << "  entropy " << SymbolEntropyBits(*symbols).value() << " bits\n";  // lint: checked: non-empty series printed above
    return Status::Ok();
  }
  if (Result<LookupTable> table = LookupTable::Deserialize(*blob);
      table.ok()) {
    out << "lookup table\n";
    out << "  method " << SeparatorMethodName(table->method()) << ", "
        << table->alphabet_size() << " symbols\n";
    out << "  domain [" << table->domain_min() << ", "
        << table->domain_max() << "]\n";
    out << "  separators:";
    for (double s : table->separators()) out << " " << s;
    out << "\n";
    return Status::Ok();
  }
  return InvalidArgumentError(
      "not a packed symbolic series or serialized lookup table");
}

Status CmdFsck(const Flags& flags, std::ostream& out, int* exit_code) {
  Result<std::string> dir = flags.Get("dir");
  if (!dir.ok()) return dir.status();
  Result<bool> repair = flags.GetBool("repair", false);
  if (!repair.ok()) return repair.status();
  std::string report_path = flags.GetOr("report", "");
  SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));

  FsckOptions options;
  options.repair = *repair;
  Result<FsckReport> report = FsckArchive(*dir, options);
  if (!report.ok()) return report.status();
  const std::string json = FsckReportToJson(*report);
  if (report_path.empty()) {
    out << json;
  } else {
    SMETER_RETURN_IF_ERROR(WriteFile(report_path, json));
    out << "fsck report -> " << report_path << "\n";
  }
  *exit_code = FsckExitCode(*report);
  return Status::Ok();
}

// The running daemon, for the signal handlers. Written on the main thread
// before signals are installed; the handlers only call the two
// async-signal-safe entry points (atomic flag + one eventfd write each).
net::IngestServer* g_ingest_server = nullptr;

void HandleDrainSignal(int) {
  if (g_ingest_server != nullptr) g_ingest_server->RequestDrain();
}

void HandleStatsSignal(int) {
  if (g_ingest_server != nullptr) g_ingest_server->RequestStatsDump();
}

Status CmdIngestd(const Flags& flags, std::ostream& out) {
  Result<std::string> listen = flags.Get("listen");
  if (!listen.ok()) return listen.status();
  Result<std::string> dir = flags.Get("dir");
  if (!dir.ok()) return dir.status();
  Result<bool> resume = flags.GetBool("resume", false);
  if (!resume.ok()) return resume.status();
  std::string auth_token = flags.GetOr("auth-token", "");
  Result<int64_t> idle = flags.GetInt("idle-timeout-ms", 30'000);
  if (!idle.ok()) return idle.status();
  Result<int64_t> grace = flags.GetInt("drain-grace-ms", 5'000);
  if (!grace.ok()) return grace.status();
  Result<int64_t> exit_after = flags.GetInt("exit-after-households", 0);
  if (!exit_after.ok()) return exit_after.status();
  Result<int64_t> watermark = flags.GetInt("high-watermark", 1 << 20);
  if (!watermark.ok()) return watermark.status();
  Result<int64_t> threads = flags.GetInt("threads", 1);
  if (!threads.ok()) return threads.status();
  Result<bool> single_acceptor = flags.GetBool("single-acceptor", false);
  if (!single_acceptor.ok()) return single_acceptor.status();
  // Overload-protection knobs; 0 disables each mechanism.
  Result<int64_t> max_conns = flags.GetInt("max-connections", 0);
  if (!max_conns.ok()) return max_conns.status();
  Result<int64_t> max_conns_shard = flags.GetInt("max-connections-per-shard", 0);
  if (!max_conns_shard.ok()) return max_conns_shard.status();
  Result<int64_t> memory_budget = flags.GetInt("memory-budget", 0);
  if (!memory_budget.ok()) return memory_budget.status();
  Result<double> rate_limit = flags.GetDouble("rate-limit", 0);
  if (!rate_limit.ok()) return rate_limit.status();
  Result<int64_t> write_stall = flags.GetInt("write-stall-ms", 0);
  if (!write_stall.ok()) return write_stall.status();
  Result<int64_t> throttle_retry = flags.GetInt("throttle-retry-ms", 250);
  if (!throttle_retry.ok()) return throttle_retry.status();
  Result<int64_t> sndbuf = flags.GetInt("sndbuf-bytes", 0);
  if (!sndbuf.ok()) return sndbuf.status();
  Result<int64_t> probe_interval = flags.GetInt("probe-interval-ms", 200);
  if (!probe_interval.ok()) return probe_interval.status();
  SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));
  if (*exit_after < 0) {
    return InvalidArgumentError("--exit-after-households must be >= 0");
  }
  if (*watermark <= 0) {
    return InvalidArgumentError("--high-watermark must be > 0");
  }
  if (*threads < 1 || *threads > 64) {
    return InvalidArgumentError("--threads must be in [1, 64]");
  }
  if (*throttle_retry < 0 || *throttle_retry > 3'600'000) {
    return InvalidArgumentError("--throttle-retry-ms must be in [0, 3600000]");
  }

  net::IngestServerOptions options;
  SMETER_RETURN_IF_ERROR(
      net::ParseListenAddress(*listen, &options.host, &options.port));
  options.archive_dir = *dir;
  options.resume = *resume;
  options.auth_token = auth_token;
  options.idle_timeout_ms = *idle;
  options.drain_grace_ms = *grace;
  options.exit_after_households = static_cast<uint64_t>(*exit_after);
  options.high_watermark = static_cast<size_t>(*watermark);
  options.threads = static_cast<int>(*threads);
  options.force_single_acceptor = *single_acceptor;
  options.max_connections = static_cast<int>(*max_conns);
  options.max_connections_per_shard = static_cast<int>(*max_conns_shard);
  options.memory_budget = static_cast<size_t>(*memory_budget);
  options.rate_limit = *rate_limit;
  options.write_stall_ms = *write_stall;
  options.throttle_retry_ms = static_cast<uint32_t>(*throttle_retry);
  options.sndbuf_bytes = static_cast<int>(*sndbuf);
  options.probe_interval_ms = *probe_interval;

  Result<std::unique_ptr<net::IngestServer>> server =
      net::IngestServer::Create(std::move(options));
  if (!server.ok()) return server.status();

  out << "ingestd listening on " << (*server)->port() << ", archive "
      << *dir << ", " << (*server)->shard_count() << " shard(s)\n"
      << std::flush;

  // SIGTERM/SIGINT drain gracefully (stop accepting, flush sessions,
  // checkpoint); SIGUSR1 dumps the counters JSON without stopping.
  g_ingest_server = server->get();
  struct sigaction action{};
  action.sa_handler = HandleDrainSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  action.sa_handler = HandleStatsSignal;
  sigaction(SIGUSR1, &action, nullptr);

  Status status = (*server)->Run();
  g_ingest_server = nullptr;
  // Run() has returned, so this thread is the server's owner again.
  ScopedThreadRole owner((*server)->role());
  out << (*server)->counters().ToJson() << "\n";
  return status;
}

Status CmdLoadgen(const Flags& flags, std::ostream& out, int* exit_code) {
  Result<std::string> connect = flags.Get("connect");
  if (!connect.ok()) return connect.status();
  Result<int64_t> meters = flags.GetInt("meters", 10);
  if (!meters.ok()) return meters.status();
  std::string input = flags.GetOr("input", "");
  std::string auth_token = flags.GetOr("auth-token", "");
  Result<int64_t> concurrency = flags.GetInt("concurrency", 8);
  if (!concurrency.ok()) return concurrency.status();
  Result<int64_t> batch = flags.GetInt("batch-symbols", 512);
  if (!batch.ok()) return batch.status();
  Result<double> rate = flags.GetDouble("rate", 0);
  if (!rate.ok()) return rate.status();
  Result<int64_t> attempts = flags.GetInt("max-attempts", 5);
  if (!attempts.ok()) return attempts.status();
  Result<int64_t> io_timeout = flags.GetInt("io-timeout-ms", 10'000);
  if (!io_timeout.ok()) return io_timeout.status();
  Result<int64_t> connections = flags.GetInt("connections", 0);
  if (!connections.ok()) return connections.status();
  // Durable-spool mode: stage every batch in a crash-safe on-disk spool
  // under --spool-dir, then drain through the client SDK (restart-resume,
  // exactly-once) instead of streaming straight from memory.
  std::string spool_dir = flags.GetOr("spool-dir", "");
  Result<bool> remove_done = flags.GetBool("remove-done", false);
  if (!remove_done.ok()) return remove_done.status();
  // Sensor-side encoding — keep in lockstep with encode-fleet's flags when
  // comparing archives.
  Result<SeparatorMethod> method =
      MethodFromName(flags.GetOr("method", "median"));
  if (!method.ok()) return method.status();
  Result<int64_t> level = flags.GetInt("level", 4);
  if (!level.ok()) return level.status();
  Result<int64_t> window = flags.GetInt("window", 900);
  if (!window.ok()) return window.status();
  Result<int64_t> sample_period = flags.GetInt("sample-period", 1);
  if (!sample_period.ok()) return sample_period.status();
  Result<int64_t> history = flags.GetInt("history-seconds", 0);
  if (!history.ok()) return history.status();
  Result<bool> gap_aware = flags.GetBool("gap-aware", true);
  if (!gap_aware.ok()) return gap_aware.status();
  // Synthetic-fleet shape (ignored with --input).
  Result<int64_t> days = flags.GetInt("days", 1);
  if (!days.ok()) return days.status();
  Result<int64_t> gen_period = flags.GetInt("gen-period", 60);
  if (!gen_period.ok()) return gen_period.status();
  Result<int64_t> seed = flags.GetInt("seed", 42);
  if (!seed.ok()) return seed.status();
  Result<double> outages = flags.GetDouble("outages", 0.4);
  if (!outages.ok()) return outages.status();
  SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));
  if (*meters <= 0) return InvalidArgumentError("--meters must be > 0");
  if (*connections < 0) {
    return InvalidArgumentError("--connections must be >= 0");
  }

  net::LoadgenOptions options;
  SMETER_RETURN_IF_ERROR(
      net::ParseListenAddress(*connect, &options.host, &options.port));
  options.auth_token = auth_token;
  options.input_cer = input;
  options.meters = static_cast<size_t>(*meters);
  options.generator.duration_seconds = *days * kSecondsPerDay;
  options.generator.sample_period_seconds = *gen_period;
  options.generator.seed = static_cast<uint64_t>(*seed);
  options.generator.outages_per_day = *outages;
  options.encode.table.method = *method;
  options.encode.table.level = static_cast<int>(*level);
  options.encode.pipeline.window_seconds = *window;
  options.encode.pipeline.window.sample_period_seconds = *sample_period;
  options.encode.history_seconds = *history;
  options.encode.gap_aware = *gap_aware;
  options.batch_symbols = static_cast<size_t>(*batch);
  options.concurrency = static_cast<size_t>(*concurrency);
  options.batches_per_second = *rate;
  options.max_attempts = static_cast<int>(*attempts);
  options.io_timeout_ms = *io_timeout;
  options.connections = static_cast<size_t>(*connections);

  if (!spool_dir.empty()) {
    Result<client::UplinkReport> report =
        client::RunSpoolFleet(options, spool_dir, *remove_done);
    if (!report.ok()) return report.status();
    out << report->ToJson() << "\n";
    if (report->failed > 0) *exit_code = 1;
    return Status::Ok();
  }

  Result<net::LoadgenReport> report = net::RunLoadgen(options);
  if (!report.ok()) return report.status();
  out << report->ToJson() << "\n";
  // A fleet that did not fully land is a graded failure, like fsck's.
  if (report->meters_failed > 0) *exit_code = 1;
  return Status::Ok();
}

Status CmdUplink(const Flags& flags, std::ostream& out, int* exit_code) {
  Result<std::string> connect = flags.Get("connect");
  if (!connect.ok()) return connect.status();
  Result<std::string> spool_dir = flags.Get("spool-dir");
  if (!spool_dir.ok()) return spool_dir.status();
  std::string auth_token = flags.GetOr("auth-token", "");
  Result<int64_t> concurrency = flags.GetInt("concurrency", 1);
  if (!concurrency.ok()) return concurrency.status();
  Result<int64_t> attempts = flags.GetInt("max-attempts", 5);
  if (!attempts.ok()) return attempts.status();
  Result<int64_t> io_timeout = flags.GetInt("io-timeout-ms", 10'000);
  if (!io_timeout.ok()) return io_timeout.status();
  Result<bool> remove_done = flags.GetBool("remove-done", false);
  if (!remove_done.ok()) return remove_done.status();
  SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));
  if (*concurrency < 1) {
    return InvalidArgumentError("--concurrency must be >= 1");
  }

  client::UploaderOptions options;
  SMETER_RETURN_IF_ERROR(
      net::ParseListenAddress(*connect, &options.host, &options.port));
  options.auth_token = auth_token;
  options.max_attempts = static_cast<int>(*attempts);
  options.io_timeout_ms = *io_timeout;
  options.remove_done = *remove_done;

  Result<client::UplinkReport> report = client::DrainSpoolDir(
      options, *spool_dir, static_cast<size_t>(*concurrency));
  if (!report.ok()) return report.status();
  out << report->ToJson() << "\n";
  // A spool that did not land after all retries is a graded failure: the
  // data is still safe on disk, so the caller should rerun uplink.
  if (report->failed > 0) *exit_code = 1;
  return Status::Ok();
}

Status CmdStoreBuild(const Flags& flags, std::ostream& out) {
  Result<std::string> archive = flags.Get("archive");
  if (!archive.ok()) return archive.status();
  Result<std::string> store = flags.Get("store");
  if (!store.ok()) return store.status();
  Result<int64_t> partition = flags.GetInt("partition-seconds", kSecondsPerDay);
  if (!partition.ok()) return partition.status();
  Result<int64_t> slots = flags.GetInt("max-block-slots", 4096);
  if (!slots.ok()) return slots.status();
  SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));

  StoreBuildOptions options;
  options.partition_seconds = *partition;
  options.max_block_slots = static_cast<size_t>(*slots);
  Result<StoreBuildReport> report =
      BuildArchiveStore(*archive, *store, options);
  if (!report.ok()) return report.status();
  out << "{\n"
      << "  \"meters\": " << report->meters << ",\n"
      << "  \"meters_skipped\": " << report->meters_skipped << ",\n"
      << "  \"partitions\": " << report->partitions << ",\n"
      << "  \"segments_written\": " << report->segments_written << ",\n"
      << "  \"segment_bytes\": " << report->segment_bytes << "\n"
      << "}\n";
  return Status::Ok();
}

Status CmdStoreRollup(const Flags& flags, std::ostream& out) {
  Result<std::string> store = flags.Get("store");
  if (!store.ok()) return store.status();
  SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));
  Result<size_t> partitions = RebuildRollups(*store);
  if (!partitions.ok()) return partitions.status();
  out << "rebuilt rollups in " << *partitions << " partition(s)\n";
  return Status::Ok();
}

Status CmdStoreRetain(const Flags& flags, std::ostream& out) {
  Result<std::string> store = flags.Get("store");
  if (!store.ok()) return store.status();
  Result<int64_t> cutoff = flags.GetInt("cutoff", 0);
  if (!cutoff.ok()) return cutoff.status();
  SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));
  Result<size_t> dropped = DropPartitionsBefore(*store, *cutoff);
  if (!dropped.ok()) return dropped.status();
  out << "dropped " << *dropped << " partition(s) ending at or before "
      << *cutoff << "\n";
  return Status::Ok();
}

// The running query daemon, for the signal handlers (same discipline as
// g_ingest_server: written before signals install, async-signal-safe
// entry points only).
net::QueryServer* g_query_server = nullptr;

void HandleQueryDrainSignal(int) {
  if (g_query_server != nullptr) g_query_server->RequestDrain();
}

void HandleQueryStatsSignal(int) {
  if (g_query_server != nullptr) g_query_server->RequestStatsDump();
}

Status CmdQueryd(const Flags& flags, std::ostream& out) {
  Result<std::string> listen = flags.Get("listen");
  if (!listen.ok()) return listen.status();
  Result<std::string> store = flags.Get("store");
  if (!store.ok()) return store.status();
  std::string current_dir = flags.GetOr("current-dir", "");
  std::string auth_token = flags.GetOr("auth-token", "");
  Result<int64_t> idle = flags.GetInt("idle-timeout-ms", 30'000);
  if (!idle.ok()) return idle.status();
  Result<int64_t> grace = flags.GetInt("drain-grace-ms", 5'000);
  if (!grace.ok()) return grace.status();
  Result<int64_t> exit_after = flags.GetInt("exit-after-queries", 0);
  if (!exit_after.ok()) return exit_after.status();
  Result<int64_t> watermark = flags.GetInt("high-watermark", 1 << 20);
  if (!watermark.ok()) return watermark.status();
  Result<int64_t> max_conns = flags.GetInt("max-connections", 0);
  if (!max_conns.ok()) return max_conns.status();
  Result<int64_t> memory_budget = flags.GetInt("memory-budget", 0);
  if (!memory_budget.ok()) return memory_budget.status();
  Result<int64_t> throttle_retry = flags.GetInt("throttle-retry-ms", 250);
  if (!throttle_retry.ok()) return throttle_retry.status();
  Result<int64_t> max_scan = flags.GetInt(
      "max-scan-symbols", static_cast<int64_t>(net::kMaxWireRangeSymbols));
  if (!max_scan.ok()) return max_scan.status();
  SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));
  if (*exit_after < 0) {
    return InvalidArgumentError("--exit-after-queries must be >= 0");
  }
  if (*watermark <= 0) {
    return InvalidArgumentError("--high-watermark must be > 0");
  }
  if (*max_scan < 1 ||
      *max_scan > static_cast<int64_t>(net::kMaxWireRangeSymbols)) {
    return InvalidArgumentError(
        "--max-scan-symbols must be in [1, " +
        std::to_string(net::kMaxWireRangeSymbols) + "]");
  }
  if (*throttle_retry < 0 || *throttle_retry > 3'600'000) {
    return InvalidArgumentError("--throttle-retry-ms must be in [0, 3600000]");
  }

  net::QueryServerOptions options;
  SMETER_RETURN_IF_ERROR(
      net::ParseListenAddress(*listen, &options.host, &options.port));
  options.store_dir = *store;
  options.current_dir = current_dir;
  options.auth_token = auth_token;
  options.idle_timeout_ms = *idle;
  options.drain_grace_ms = *grace;
  options.exit_after_queries = static_cast<uint64_t>(*exit_after);
  options.high_watermark = static_cast<size_t>(*watermark);
  options.max_connections = static_cast<int>(*max_conns);
  options.memory_budget = static_cast<size_t>(*memory_budget);
  options.throttle_retry_ms = static_cast<uint32_t>(*throttle_retry);
  options.max_scan_symbols = static_cast<uint32_t>(*max_scan);

  Result<std::unique_ptr<net::QueryServer>> server =
      net::QueryServer::Create(std::move(options));
  if (!server.ok()) return server.status();

  out << "queryd listening on " << (*server)->port() << ", store " << *store
      << "\n"
      << std::flush;

  g_query_server = server->get();
  struct sigaction action{};
  action.sa_handler = HandleQueryDrainSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  action.sa_handler = HandleQueryStatsSignal;
  sigaction(SIGUSR1, &action, nullptr);

  Status status = (*server)->Run();
  g_query_server = nullptr;
  ScopedThreadRole owner((*server)->role());
  out << (*server)->counters().ToJson() << "\n";
  return status;
}

// Prints a symbol list with GAPs spelled out.
void PrintSymbols(const std::vector<uint16_t>& symbols, std::ostream& out) {
  out << "[";
  for (size_t i = 0; i < symbols.size(); ++i) {
    if (i > 0) out << ", ";
    if (symbols[i] == net::kWireGapSymbol) {
      out << "null";
    } else {
      out << symbols[i];
    }
  }
  out << "]";
}

Status CmdQuery(const Flags& flags, std::ostream& out, int* exit_code) {
  Result<std::string> connect = flags.Get("connect");
  if (!connect.ok()) return connect.status();
  Result<std::string> op = flags.Get("op");
  if (!op.ok()) return op.status();
  std::string auth_token = flags.GetOr("auth-token", "");
  Result<int64_t> timeout = flags.GetInt("timeout-ms", 5'000);
  if (!timeout.ok()) return timeout.status();

  net::QueryClientOptions options;
  SMETER_RETURN_IF_ERROR(
      net::ParseListenAddress(*connect, &options.host, &options.port));
  options.auth_token = auth_token;
  options.timeout_ms = *timeout;

  if (*op == "point") {
    Result<std::string> meter = flags.Get("meter");
    if (!meter.ok()) return meter.status();
    SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));
    Result<std::unique_ptr<net::QueryClient>> client =
        net::QueryClient::Connect(std::move(options));
    if (!client.ok()) return client.status();
    Result<net::PointResultPayload> result = (*client)->Point(*meter);
    if (!result.ok()) return result.status();
    if (result->status != net::WireStatus::kOk) {
      out << "{ \"status\": \"" << net::WireStatusName(result->status)
          << "\", \"message\": \"" << result->message << "\" }\n";
      *exit_code = result->status == net::WireStatus::kNotFound ? 4 : 1;
      return Status::Ok();
    }
    out << "{ \"timestamp\": " << result->timestamp
        << ", \"level\": " << static_cast<int>(result->level)
        << ", \"symbol\": ";
    if (result->symbol == net::kWireGapSymbol) {
      out << "null";
    } else {
      out << result->symbol;
    }
    out << " }\n";
    return Status::Ok();
  }

  Result<int64_t> start = flags.GetInt("start", 0);
  if (!start.ok()) return start.status();
  Result<int64_t> end = flags.GetInt("end", 0);
  if (!end.ok()) return end.status();
  Result<int64_t> level = flags.GetInt("level", 0);
  if (!level.ok()) return level.status();

  if (*op == "range") {
    Result<std::string> meter = flags.Get("meter");
    if (!meter.ok()) return meter.status();
    Result<int64_t> max_symbols = flags.GetInt("max-symbols", 1 << 16);
    if (!max_symbols.ok()) return max_symbols.status();
    SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));
    Result<std::unique_ptr<net::QueryClient>> client =
        net::QueryClient::Connect(std::move(options));
    if (!client.ok()) return client.status();
    Result<net::RangeResultPayload> result =
        (*client)->Range(*meter, {*start, *end}, static_cast<int>(*level),
                         static_cast<uint32_t>(*max_symbols));
    if (!result.ok()) return result.status();
    if (result->status != net::WireStatus::kOk) {
      out << "{ \"status\": \"" << net::WireStatusName(result->status)
          << "\", \"message\": \"" << result->message << "\" }\n";
      *exit_code = result->status == net::WireStatus::kNotFound ? 4 : 1;
      return Status::Ok();
    }
    out << "{ \"start\": " << result->start_timestamp
        << ", \"step\": " << result->step_seconds
        << ", \"level\": " << static_cast<int>(result->level)
        << ", \"truncated\": " << (result->truncated != 0 ? "true" : "false")
        << ", \"symbols\": ";
    PrintSymbols(result->symbols, out);
    out << " }\n";
    return Status::Ok();
  }

  if (*op == "aggregate") {
    SMETER_RETURN_IF_ERROR(CheckNoStrayFlags(flags));
    Result<std::unique_ptr<net::QueryClient>> client =
        net::QueryClient::Connect(std::move(options));
    if (!client.ok()) return client.status();
    Result<net::AggregateResultPayload> result = (*client)->Aggregate(
        {*start, *end}, static_cast<int>(*level == 0 ? 1 : *level));
    if (!result.ok()) return result.status();
    if (result->status != net::WireStatus::kOk) {
      out << "{ \"status\": \"" << net::WireStatusName(result->status)
          << "\", \"message\": \"" << result->message << "\" }\n";
      *exit_code = result->status == net::WireStatus::kNotFound ? 4 : 1;
      return Status::Ok();
    }
    out << "{ \"level\": " << static_cast<int>(result->level)
        << ", \"meters\": " << result->meters
        << ", \"meters_coarser\": " << result->meters_coarser
        << ", \"windows\": " << result->windows
        << ", \"gaps\": " << result->gaps
        << ", \"rollup_partitions\": " << result->rollup_partitions
        << ", \"scanned_partitions\": " << result->scanned_partitions
        << ", \"histogram\": [";
    for (size_t i = 0; i < result->histogram.size(); ++i) {
      if (i > 0) out << ", ";
      out << result->histogram[i];
    }
    out << "] }\n";
    return Status::Ok();
  }

  return InvalidArgumentError("unknown --op '" + *op +
                              "' (expected point|range|aggregate)");
}

// Dispatches one subcommand. `exit_code` is the fsck(8)-style process code
// for commands that grade their findings (only fsck today); commands that
// either succeed or fail leave it at 0 and speak through the Status.
Status RunCliWithCode(const std::vector<std::string>& args,
                      std::ostream& out, int* exit_code) {
  *exit_code = 0;
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << UsageText();
    return Status::Ok();
  }
  const std::string& command = args[0];
  Result<Flags> flags =
      Flags::Parse(std::vector<std::string>(args.begin() + 1, args.end()));
  if (!flags.ok()) return flags.status();

  if (command == "simulate") return CmdSimulate(*flags, out);
  if (command == "stats") return CmdStats(*flags, out);
  if (command == "learn-table") return CmdLearnTable(*flags, out);
  if (command == "encode") return CmdEncode(*flags, out);
  if (command == "encode-fleet") return CmdEncodeFleet(*flags, out);
  if (command == "decode") return CmdDecode(*flags, out);
  if (command == "info") return CmdInfo(*flags, out);
  if (command == "fsck") return CmdFsck(*flags, out, exit_code);
  if (command == "ingestd") return CmdIngestd(*flags, out);
  if (command == "loadgen") return CmdLoadgen(*flags, out, exit_code);
  if (command == "uplink") return CmdUplink(*flags, out, exit_code);
  if (command == "store-build") return CmdStoreBuild(*flags, out);
  if (command == "store-rollup") return CmdStoreRollup(*flags, out);
  if (command == "store-retain") return CmdStoreRetain(*flags, out);
  if (command == "queryd") return CmdQueryd(*flags, out);
  if (command == "query") return CmdQuery(*flags, out, exit_code);
  return InvalidArgumentError("unknown command '" + command +
                              "'; run `smeter help`");
}

// True for errors where the fix is reading the usage text: an unknown
// subcommand, an unknown/stray flag, or malformed flag syntax.
bool IsUsageError(const Status& status) {
  const std::string& message = status.message();
  return message.find("unknown command") != std::string::npos ||
         message.find("unknown flag(s)") != std::string::npos ||
         message.find("unexpected positional argument") !=
             std::string::npos ||
         message.find("needs a value") != std::string::npos ||
         message.find("duplicate flag") != std::string::npos;
}

}  // namespace

Result<Flags> Flags::Parse(const std::vector<std::string>& args) {
  Flags flags;
  for (size_t i = 0; i < args.size(); ++i) {
    if (!StartsWith(args[i], "--")) {
      return InvalidArgumentError("unexpected positional argument '" +
                                  args[i] + "'");
    }
    if (i + 1 >= args.size()) {
      return InvalidArgumentError("flag " + args[i] + " needs a value");
    }
    std::string name = args[i].substr(2);
    if (flags.values_.count(name) > 0) {
      return InvalidArgumentError("duplicate flag --" + name);
    }
    flags.values_[name] = args[i + 1];
    ++i;
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  read_[name] = true;
  return values_.count(name) > 0;
}

Result<std::string> Flags::Get(const std::string& name) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) {
    return InvalidArgumentError("missing required flag --" + name);
  }
  return it->second;
}

std::string Flags::GetOr(const std::string& name,
                         const std::string& fallback) const {
  read_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

Result<int64_t> Flags::GetInt(const std::string& name,
                              int64_t fallback) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return ParseInt(it->second);
}

Result<double> Flags::GetDouble(const std::string& name,
                                double fallback) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return ParseDouble(it->second);
}

Result<bool> Flags::GetBool(const std::string& name, bool fallback) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  return InvalidArgumentError("flag --" + name +
                              " expects true|false, got '" + it->second +
                              "'");
}

std::vector<std::string> Flags::UnreadFlags() const {
  std::vector<std::string> stray;
  for (const auto& [name, value] : values_) {
    auto it = read_.find(name);
    if (it == read_.end() || !it->second) stray.push_back(name);
  }
  return stray;
}

std::string UsageText() {
  return
      "smeter <command> [--flag value]...\n"
      "\n"
      "commands:\n"
      "  simulate     --out DIR [--houses 6] [--days 7] [--seed 42]\n"
      "               [--format redd|cer] [--outages 0.4]\n"
      "  stats        --input FILE [--format redd|cer] [--meter ID]\n"
      "  learn-table  --input FILE --out TABLE [--method median]\n"
      "               [--level 4] [--history-seconds 0] [--format redd|cer]\n"
      "  encode       --input FILE --table TABLE --out SYMBOLS\n"
      "               [--window 900] [--sample-period 1] [--format redd|cer]\n"
      "               [--framed false]   (true = checksummed v3 wire format\n"
      "               with per-block CRC32C and salvage sync markers)\n"
      "  encode-fleet --input DIR|FILE --out DIR [--format redd|cer]\n"
      "               [--method median] [--level 4] [--window 900]\n"
      "               [--sample-period 1] [--history-seconds 0]\n"
      "               [--threads 0]   (0 = one per hardware thread)\n"
      "               [--gap-aware true] [--max-retries 2]\n"
      "               [--retry-backoff-ms 100] [--resume false]\n"
      "               a failing household is retried, then quarantined\n"
      "               (run still exits 0; see <out>/quality.json);\n"
      "               --resume true skips households already recorded in\n"
      "               <out>/fleet.manifest from an interrupted run\n"
      "  decode       --input SYMBOLS --table TABLE [--mode mean|center]\n"
      "  info         --input FILE\n"
      "  fsck         --dir DIR [--repair false] [--report PATH]\n"
      "               verify every checksum in a fleet archive (symbol\n"
      "               blobs, tables, manifest, client .spool files) and\n"
      "               cross-check the manifest against the files on disk;\n"
      "               prints a JSON report.\n"
      "               --repair true quarantines damaged files (<f>.corrupt),\n"
      "               drops their manifest records, truncates torn appends,\n"
      "               and removes stray .tmp files — then run\n"
      "               `encode-fleet --resume true` to re-encode the rest.\n"
      "               exit codes: 0 clean, 1 repaired, 4 unrepaired\n"
      "  ingestd      --listen HOST:PORT --dir ARCHIVE [--resume false]\n"
      "               [--threads 1] [--auth-token T]\n"
      "               [--idle-timeout-ms 30000] [--drain-grace-ms 5000]\n"
      "               [--exit-after-households 0]\n"
      "               [--high-watermark 1048576] [--single-acceptor false]\n"
      "               [--max-connections 0] [--max-connections-per-shard 0]\n"
      "               [--memory-budget 0] [--rate-limit 0]\n"
      "               [--write-stall-ms 0] [--throttle-retry-ms 250]\n"
      "               [--sndbuf-bytes 0] [--probe-interval-ms 200]\n"
      "               non-blocking epoll ingestion daemon speaking the\n"
      "               symbolic wire protocol; completed sessions land in\n"
      "               the same v3 archive layout encode-fleet writes.\n"
      "               --threads N runs N per-core epoll shards, each with\n"
      "               its own SO_REUSEPORT listener; connections are pinned\n"
      "               to shards by meter-id hash, and the drained archive\n"
      "               is byte-identical to a --threads 1 run.\n"
      "               --single-acceptor true forces the one-listener\n"
      "               round-robin handoff topology (also the automatic\n"
      "               fallback where SO_REUSEPORT is unavailable).\n"
      "               --exit-after-households N drains once N distinct\n"
      "               meters complete a session in this run (carried\n"
      "               --resume records count only when re-acknowledged).\n"
      "               SIGTERM/SIGINT drain gracefully; SIGUSR1 dumps one\n"
      "               aggregated per-shard counters JSON to stderr.\n"
      "               overload protection (each knob 0 = off):\n"
      "               --max-connections caps concurrent connections across\n"
      "               all shards (excess accepts are shed with a THROTTLE);\n"
      "               --memory-budget caps total buffered ingest bytes;\n"
      "               --rate-limit caps per-meter sessions/sec (token\n"
      "               bucket); --write-stall-ms drops peers that stop\n"
      "               draining acks; a full disk (ENOSPC) pauses persists\n"
      "               and withholds acks until a space probe (every\n"
      "               --probe-interval-ms) succeeds\n"
      "  loadgen      --connect HOST:PORT [--meters 10] [--input CER_FILE]\n"
      "               [--concurrency 8] [--connections 0]\n"
      "               [--batch-symbols 512] [--rate 0]\n"
      "               [--max-attempts 5] [--auth-token T]\n"
      "               [--method median] [--level 4] [--window 900]\n"
      "               [--sample-period 1] [--history-seconds 0]\n"
      "               [--gap-aware true] [--days 1] [--gen-period 60]\n"
      "               [--seed 42] [--outages 0.4]\n"
      "               replay a simulated (or CER) meter fleet against a\n"
      "               running ingestd over real sockets; exits 1 if any\n"
      "               meter failed to land.\n"
      "               --connections N multiplexes the fleet over N\n"
      "               persistent TCP connections (meter i rides connection\n"
      "               i % N, sessions back-to-back on one socket) instead\n"
      "               of one connection per meter\n"
      "               --spool-dir DIR stages every batch in a crash-safe\n"
      "               on-disk spool first and drains it through the client\n"
      "               SDK: a killed run resumes where it stopped, and a\n"
      "               rerun against the same dir re-sends nothing that\n"
      "               already landed (exactly-once; see also `uplink`)\n"
      "  uplink       --connect HOST:PORT --spool-dir DIR\n"
      "               [--concurrency 1] [--max-attempts 5]\n"
      "               [--io-timeout-ms 10000] [--auth-token T]\n"
      "               [--remove-done false]\n"
      "               drain every *.spool file in DIR into a running\n"
      "               ingestd with retry/backoff (honours THROTTLE\n"
      "               retry-after hints); each delivered spool gets a\n"
      "               durable DONE marker so a rerun skips it, torn spool\n"
      "               tails from a crashed writer are truncated, unsealed\n"
      "               spools are left alone; exits 1 if any spool failed\n"
      "               (safe to rerun).\n"
      "               --remove-done true unlinks each spool once DONE\n"
      "  store-build  --archive DIR --store DIR\n"
      "               [--partition-seconds 86400] [--max-block-slots 4096]\n"
      "               build a time-partitioned query store from a v3 fleet\n"
      "               archive (encode-fleet's or a drained ingestd's): one\n"
      "               p<id>/ directory per partition with per-meter .seg\n"
      "               segment files, a rollup.tab of pre-computed per-meter\n"
      "               histograms, a crc-checked store.index, and the hot\n"
      "               current.tab of last-known symbols. Deterministic:\n"
      "               rebuilding over the same archive is byte-identical.\n"
      "  store-rollup --store DIR\n"
      "               rebuild every partition's rollup.tab from its segment\n"
      "               files (after fsck flags stale rollups, or a killed\n"
      "               build); converges to the store-build output\n"
      "  store-retain --store DIR --cutoff TS\n"
      "               drop whole partitions whose window ends at or before\n"
      "               the cutoff timestamp (retention = unlink, no rewrite)\n"
      "  queryd       --listen HOST:PORT --store DIR [--current-dir D]\n"
      "               [--auth-token T] [--idle-timeout-ms 30000]\n"
      "               [--drain-grace-ms 5000] [--exit-after-queries 0]\n"
      "               [--high-watermark 1048576] [--max-connections 0]\n"
      "               [--memory-budget 0] [--throttle-retry-ms 250]\n"
      "               [--max-scan-symbols 1048576]\n"
      "               serve point/range/aggregate queries over a built\n"
      "               store on the same CRC32C framing ingestd speaks.\n"
      "               --current-dir points the hot point-lookup table at a\n"
      "               live ingestd archive for fresh last-known symbols.\n"
      "               SIGTERM/SIGINT drain gracefully; SIGUSR1 dumps the\n"
      "               counters JSON to stderr. overload protection (0 =\n"
      "               off): --max-connections sheds accepts with a\n"
      "               THROTTLE(admission); --memory-budget converts a\n"
      "               reply burst that would exceed the per-connection\n"
      "               buffer into a THROTTLE(memory) and closes;\n"
      "               --max-scan-symbols caps one range scan server-side\n"
      "  query        --connect HOST:PORT --op point|range|aggregate\n"
      "               [--meter M] [--start TS] [--end TS] [--level 0]\n"
      "               [--max-symbols 65536] [--auth-token T]\n"
      "               [--timeout-ms 5000]\n"
      "               one query against a running queryd, result as JSON.\n"
      "               point needs --meter; range needs --meter and the\n"
      "               [--start, --end) window (--level 0 = native, k < n\n"
      "               serves the coarser alphabet by prefix truncation);\n"
      "               aggregate folds the whole fleet's histograms over\n"
      "               the window at --level. exit 4 = no data (not-found),\n"
      "               1 = refused, 0 = served\n"
      "  help\n";
}

Status RunCli(const std::vector<std::string>& args, std::ostream& out) {
  int exit_code = 0;
  Status status = RunCliWithCode(args, out, &exit_code);
  if (status.ok() && exit_code != 0) {
    // Legacy Status-only surface: a graded non-zero result (fsck findings)
    // must not read as success.
    return DataLossError("fsck found issues (exit code " +
                         std::to_string(exit_code) +
                         "); see the JSON report");
  }
  return status;
}

int RunCliExitCode(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err) {
  int exit_code = 0;
  Status status = RunCliWithCode(args, out, &exit_code);
  if (!status.ok()) {
    err << "error: " << status.ToString() << "\n";
    // A usage mistake gets the usage text, not just the error: the exit
    // code stays non-zero either way.
    if (IsUsageError(status)) err << "\n" << UsageText();
    return exit_code != 0 ? exit_code : 1;
  }
  return exit_code;
}

}  // namespace smeter::cli
