#!/usr/bin/env python3
"""Repo invariant linter: machine-checks the contracts the compiler can't.

Rules (each finding is `rule: path:line: message`, exit 1 if any fire):

  fault-point-untested  Every SMETER_FAULT_POINT("name") in src/ or tools/
                        must be exercised by at least one test — the quoted
                        name must appear somewhere under tests/. A seam
                        nobody injects through is dead recovery code.
  wire-codec-closure    Every wire builder `Make<X>` in src/net/wire.h or
                        src/net/query_wire.h must have a matching parser
                        `Parse<X>` (alias: Pong parses via ParsePing), and
                        both sides must appear in a test (the fuzz closure
                        harnesses or a unit test). One-way codecs rot
                        silently.
  raw-system            No `::system(` in src/ or tools/: shelling out
                        bypasses the Status error contract and the fault
                        seams.
  array-new             No `new T[...]` in src/ or tools/: use containers;
                        raw array news are how the sanitizers earn their
                        keep.
  unchecked-value       A `.value()` in src/ or tools/ must be guarded: an
                        `.ok()` / `has_value()` / SMETER_CHECK /
                        SMETER_ASSIGN / RETURN_IF_ERROR within the
                        preceding lines, or an explicit `// lint: checked`
                        on the line stating why it cannot fail.
  raw-mutex             No std::mutex / lock_guard / unique_lock /
                        scoped_lock / condition_variable (or their
                        includes) outside src/common/sync.h. All locking
                        goes through the annotated wrappers so Clang's
                        -Wthread-safety sees every acquisition
                        (DESIGN.md section 13).
  counters-dumped       Every uint64_t field of IngestCounters
                        (src/net/ingest_server.h) and QueryCounters
                        (src/net/query_server.h) must appear as a quoted
                        JSON key in the matching .cc — a counter that
                        never reaches the SIGUSR1 stats dump is an
                        overload signal nobody can observe (DESIGN.md
                        section 15).

`--self-test` runs the rules against the seeded-violation fixtures in
tools/lint_fixtures/ and fails unless every fixture trips exactly its
expected rule and the clean fixture trips none. CI runs both modes; they
are also registered as ctest cases.
"""

import argparse
import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".cc", ".h"}
# The annotated wrappers themselves are the one legal home of <mutex>.
MUTEX_EXEMPT = "src/common/sync.h"
# Seeded-violation fixtures must never count as production sources.
FIXTURE_DIR = "tools/lint_fixtures"

SUPPRESS_COMMENT = "lint: checked"
# A .value() is "guarded" if one of these appears on the same line or the
# few lines above it (same statement or the branch that proved success).
GUARD_TOKENS = (
    ".ok()",
    "has_value()",
    "SMETER_CHECK",
    "SMETER_ASSIGN_OR_RETURN",
    "SMETER_RETURN_IF_ERROR",
    "ASSERT_OK",
    "EXPECT_OK",
)
GUARD_WINDOW = 8  # lines above the .value() the guard may sit on

FAULT_POINT_RE = re.compile(r'SMETER_FAULT_POINT\(\s*"([^"]+)"')
MAKE_RE = re.compile(r"\bFrame\s+Make([A-Z]\w*)\s*\(")
PARSE_RE = re.compile(r"\bParse([A-Z]\w*)\s*\(")
SYSTEM_RE = re.compile(r"(::system|\bstd::system)\s*\(")
ARRAY_NEW_RE = re.compile(r"\bnew\s+[\w:<>, ]+\s*\[")
VALUE_RE = re.compile(r"\.value\(\)")
MUTEX_RE = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard|"
    r"unique_lock|scoped_lock|condition_variable)\b"
    r"|#\s*include\s*<(mutex|condition_variable|shared_mutex)>"
)
# Pong frames parse through ParsePing (one nonce payload, two directions).
PARSER_ALIASES = {"Pong": "Ping"}
# Headers holding Make*/Parse* codec pairs that must close over each other.
WIRE_HEADERS = ("src/net/wire.h", "src/net/query_wire.h")
# Counter structs whose every field must reach the SIGUSR1 stats dump:
# struct name -> (header with the struct, impl with the ToJson dump).
COUNTER_STRUCTS = {
    "IngestCounters": ("src/net/ingest_server.h", "src/net/ingest_server.cc"),
    "QueryCounters": ("src/net/query_server.h", "src/net/query_server.cc"),
}
COUNTER_FIELD_RE = re.compile(r"\buint64_t\s+(\w+)\s*=")


def counters_struct_re(name):
    return re.compile(r"struct\s+" + name + r"\s*\{(.*?)\};", re.DOTALL)


def strip_line_comment(line):
    """Drops a // comment so commented-out code can't trip token rules."""
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


def read(path):
    return path.read_text(encoding="utf-8", errors="replace")


def lint_tokens(rel, text):
    """File-local rules: raw-system, array-new, unchecked-value, raw-mutex."""
    findings = []
    lines = text.splitlines()
    for i, raw_line in enumerate(lines, start=1):
        line = strip_line_comment(raw_line)
        if SYSTEM_RE.search(line):
            findings.append(("raw-system", rel, i,
                             "::system() bypasses the Status contract"))
        if ARRAY_NEW_RE.search(line):
            findings.append(("array-new", rel, i,
                             "raw array new; use a container"))
        if MUTEX_RE.search(line) and rel != MUTEX_EXEMPT:
            findings.append((
                "raw-mutex", rel, i,
                "raw std mutex/condvar outside common/sync.h; use the "
                "annotated wrappers"))
        if VALUE_RE.search(line) and SUPPRESS_COMMENT not in raw_line:
            window = lines[max(0, i - 1 - GUARD_WINDOW):i]
            if not any(tok in w for w in window for tok in GUARD_TOKENS):
                findings.append((
                    "unchecked-value", rel, i,
                    ".value() with no .ok()/has_value() guard in the "
                    f"preceding {GUARD_WINDOW} lines (or '// "
                    f"{SUPPRESS_COMMENT}: <why>')"))
    return findings


def lint_fault_points(src_texts, test_blob):
    """Every injection seam must be exercised by at least one test."""
    findings = []
    for rel, text in sorted(src_texts.items()):
        for i, line in enumerate(text.splitlines(), start=1):
            for name in FAULT_POINT_RE.findall(line):
                if f'"{name}"' not in test_blob:
                    findings.append((
                        "fault-point-untested", rel, i,
                        f'fault point "{name}" is exercised by no test'))
    return findings


def lint_wire_closure(rel, wire_text, test_blob):
    """Make*/Parse* closure, and both halves referenced by tests."""
    findings = []
    makes = {}  # name -> first line
    parses = set()
    for i, line in enumerate(wire_text.splitlines(), start=1):
        for name in MAKE_RE.findall(line):
            makes.setdefault(name, i)
        parses.update(PARSE_RE.findall(line))
    # Ack frames share one builder/parser pair (MakeAck/ParseAck), which the
    # regexes pick up by name like every other pair; nothing special needed.
    for name, lineno in sorted(makes.items()):
        parser = PARSER_ALIASES.get(name, name)
        if parser not in parses:
            findings.append((
                "wire-codec-closure", rel, lineno,
                f"Make{name} has no matching Parse{parser}"))
            continue
        if f"Make{name}" not in test_blob:
            findings.append((
                "wire-codec-closure", rel, lineno,
                f"Make{name} appears in no test (fuzz closure or unit)"))
        if f"Parse{parser}" not in test_blob:
            findings.append((
                "wire-codec-closure", rel, lineno,
                f"Parse{parser} appears in no test (fuzz closure or unit)"))
    return findings


def lint_counters_dumped(struct_name, header_rel, header_text, impl_text):
    """Every field of the counter struct must surface in the dump JSON."""
    findings = []
    struct = counters_struct_re(struct_name).search(header_text)
    if not struct:
        return findings
    for field_match in COUNTER_FIELD_RE.finditer(struct.group(1)):
        field = field_match.group(1)
        # The dump builds its JSON inside C++ string literals, so the key
        # usually appears escaped (\"key\"); accept the raw form too.
        if (f'"{field}"' not in impl_text
                and f'\\"{field}\\"' not in impl_text):
            lineno = header_text[:struct.start(1) +
                                 field_match.start()].count("\n") + 1
            findings.append((
                "counters-dumped", header_rel, lineno,
                f'{struct_name}.{field} never appears as a quoted JSON '
                f'key in the stats dump (ToJson must emit every counter)'))
    return findings


def collect(root, subdir):
    out = {}
    base = root / subdir
    if not base.is_dir():
        return out
    for path in sorted(base.rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES:
            continue
        rel = path.relative_to(root).as_posix()
        if rel.startswith(FIXTURE_DIR):
            continue
        out[rel] = read(path)
    return out


def lint_tree(root):
    src_texts = {}
    for subdir in ("src", "tools"):
        src_texts.update(collect(root, subdir))
    test_texts = {}
    for subdir in ("tests", "bench"):
        test_texts.update(collect(root, subdir))
    test_blob = "\n".join(test_texts.values())

    findings = []
    for rel, text in sorted(src_texts.items()):
        findings.extend(lint_tokens(rel, text))
    findings.extend(lint_fault_points(src_texts, test_blob))
    for wire_rel in WIRE_HEADERS:
        if wire_rel in src_texts:
            findings.extend(lint_wire_closure(wire_rel, src_texts[wire_rel],
                                              test_blob))
    for struct_name, (header_rel, impl_rel) in sorted(COUNTER_STRUCTS.items()):
        if header_rel in src_texts:
            findings.extend(lint_counters_dumped(
                struct_name, header_rel, src_texts[header_rel],
                src_texts.get(impl_rel, "")))
    return findings


def lint_fixture(path):
    """Runs every rule against one fixture file in isolation: the fixture
    is the sole source file, the test corpus is empty."""
    rel = path.name
    text = read(path)
    findings = lint_tokens(rel, text)
    findings.extend(lint_fault_points({rel: text}, test_blob=""))
    if MAKE_RE.search(text) or PARSE_RE.search(text):
        findings.extend(lint_wire_closure(rel, text, test_blob=""))
    for struct_name in COUNTER_STRUCTS:
        if struct_name in text:
            # The fixture plays both header and impl: its own JSON-ish
            # string is the dump the fields must reach.
            findings.extend(lint_counters_dumped(struct_name, rel, text, text))
    return findings


# fixture file -> the rule it must trip (None = must be clean).
FIXTURE_EXPECTATIONS = {
    "orphan_fault_point.cc": "fault-point-untested",
    "orphan_client_fault_point.cc": "fault-point-untested",
    "make_without_parse.h": "wire-codec-closure",
    "raw_mutex.cc": "raw-mutex",
    "unchecked_value.cc": "unchecked-value",
    "raw_system.cc": "raw-system",
    "array_new.cc": "array-new",
    "undumped_counter.h": "counters-dumped",
    "undumped_query_counter.h": "counters-dumped",
    "clean.cc": None,
}


def self_test(root):
    fixture_dir = root / FIXTURE_DIR
    failures = []
    for name, expected in sorted(FIXTURE_EXPECTATIONS.items()):
        path = fixture_dir / name
        if not path.is_file():
            failures.append(f"{name}: fixture missing")
            continue
        rules = {f[0] for f in lint_fixture(path)}
        if expected is None:
            if rules:
                failures.append(f"{name}: expected clean, tripped {sorted(rules)}")
        elif expected not in rules:
            failures.append(f"{name}: expected {expected}, got {sorted(rules) or 'nothing'}")
    for name in sorted(p.name for p in fixture_dir.glob("*")
                       if p.suffix in SOURCE_SUFFIXES):
        if name not in FIXTURE_EXPECTATIONS:
            failures.append(f"{name}: fixture has no expectation entry")
    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"self-test OK: {len(FIXTURE_EXPECTATIONS)} fixtures behaved")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the script's repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the seeded-violation fixtures instead of "
                             "the tree and verify each trips its rule")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.repo)

    findings = lint_tree(args.repo)
    for rule, rel, lineno, message in findings:
        print(f"{rule}: {rel}:{lineno}: {message}", file=sys.stderr)
    if findings:
        print(f"{len(findings)} invariant violation(s)", file=sys.stderr)
        return 1
    print("invariant lint OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
