// Clean fixture for lint_invariants.py --self-test: idiomatic use of the
// repo's contracts — a guarded .value(), the annotated sync wrappers —
// must trip no rule at all. Never compiled.

#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace smeter {

Result<int> MightFail();

int Careful() {
  Result<int> result = MightFail();
  if (!result.ok()) return 0;
  return result.value();
}

class Counter {
 public:
  void Increment() REQUIRES(!mutex_) {
    MutexLock lock(mutex_);
    ++count_;
  }

 private:
  Mutex mutex_;
  int count_ GUARDED_BY(mutex_) = 0;
};

}  // namespace smeter
