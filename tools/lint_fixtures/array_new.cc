// Seeded violation for lint_invariants.py --self-test: a raw array new
// (instead of a container) must trip `array-new`. Never compiled.

namespace smeter {

double* AllocateBuffer(unsigned n) {
  return new double[n];
}

}  // namespace smeter
