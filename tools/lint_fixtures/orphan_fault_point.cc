// Seeded violation for lint_invariants.py --self-test: a fault seam no
// test ever exercises must trip `fault-point-untested`. Never compiled.

#include "common/fault_injection.h"

namespace smeter {

int OrphanSeam() {
  SMETER_FAULT_POINT("fixture.orphan");
  return 0;
}

}  // namespace smeter
