// Seeded violation for lint_invariants.py --self-test: shelling out with
// ::system bypasses the Status contract and must trip `raw-system`.
// Never compiled.

#include <cstdlib>

namespace smeter {

void NukeScratchDir() {
  ::system("rm -rf /tmp/smeter_scratch");
}

}  // namespace smeter
