// Seeded violation for lint_invariants.py --self-test: locking with the
// raw standard-library types instead of the annotated wrappers in
// common/sync.h must trip `raw-mutex`. Never compiled.

#include <mutex>

namespace smeter {

std::mutex g_bare_mutex;

void TouchUnderBareLock(int* counter) {
  std::lock_guard<std::mutex> lock(g_bare_mutex);
  ++*counter;
}

}  // namespace smeter
