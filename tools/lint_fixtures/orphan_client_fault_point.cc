// Seeded violation for lint_invariants.py --self-test: a client-SDK fault
// seam (the `client.*` namespace added with the uploader/spool subsystem)
// that no test exercises must trip `fault-point-untested` exactly like any
// server-side seam. Never compiled.

#include "common/fault_injection.h"

namespace smeter::client {

int OrphanClientSeam() {
  SMETER_FAULT_POINT("client.fixture.orphan");
  return 0;
}

}  // namespace smeter::client
