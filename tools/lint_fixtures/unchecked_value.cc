// Seeded violation for lint_invariants.py --self-test: dereferencing a
// Result with .value() and no .ok()/has_value() guard in sight must trip
// `unchecked-value`. Never compiled.

#include "common/status.h"

namespace smeter {

Result<int> MightFail();

int Careless() {
  Result<int> result = MightFail();
  return result.value();
}

}  // namespace smeter
