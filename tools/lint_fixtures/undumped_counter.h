// Seeded violation for the counters-dumped rule: `secretly_dropped` is a
// real counter field but never reaches the stats-dump JSON below, so an
// operator watching SIGUSR1 output could never see it move.

#include <cstdint>
#include <string>

struct IngestCounters {
  uint64_t sessions_accepted = 0;
  uint64_t secretly_dropped = 0;
};

inline std::string ToJson() {
  return "{\"sessions_accepted\": 1}";
}
