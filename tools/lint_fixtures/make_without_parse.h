// Seeded violation for lint_invariants.py --self-test: a wire builder
// with no matching parser must trip `wire-codec-closure`. Never compiled.

#ifndef SMETER_TOOLS_LINT_FIXTURES_MAKE_WITHOUT_PARSE_H_
#define SMETER_TOOLS_LINT_FIXTURES_MAKE_WITHOUT_PARSE_H_

namespace smeter::net {

struct Frame;
struct LonelyPayload;

// One direction only: nothing declares ParseLonely.
Frame MakeLonely(const LonelyPayload& payload);

}  // namespace smeter::net

#endif  // SMETER_TOOLS_LINT_FIXTURES_MAKE_WITHOUT_PARSE_H_
