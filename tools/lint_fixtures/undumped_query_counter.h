// Seeded violation for the counters-dumped rule on the query serving
// layer: `queries_vanished` is a real QueryCounters field but never
// reaches the stats-dump JSON below, so an operator watching the queryd
// SIGUSR1 output could never see it move.

#include <cstdint>
#include <string>

struct QueryCounters {
  uint64_t queries_point = 0;
  uint64_t queries_vanished = 0;
};

inline std::string ToJson() {
  return "{\"queries_point\": 1}";
}
