// Entry point for the `smeter` command-line tool; all logic lives in
// cli.{h,cc} so the test suite can exercise it in-process.

#include <iostream>
#include <string>
#include <vector>

#include "cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return smeter::cli::RunCliExitCode(args, std::cout, std::cerr);
}
