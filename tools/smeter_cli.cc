// Entry point for the `smeter` command-line tool; all logic lives in
// cli.{h,cc} so the test suite can exercise it in-process.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  smeter::Status status = smeter::cli::RunCli(args, std::cout);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
