# Empty compiler generated dependencies file for smeter_tests.
# This may be replaced when dependencies are built.
