
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/app/forecaster_test.cc" "tests/CMakeFiles/smeter_tests.dir/app/forecaster_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/app/forecaster_test.cc.o.d"
  "/root/repo/tests/common/csv_test.cc" "tests/CMakeFiles/smeter_tests.dir/common/csv_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/common/csv_test.cc.o.d"
  "/root/repo/tests/common/normal_test.cc" "tests/CMakeFiles/smeter_tests.dir/common/normal_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/common/normal_test.cc.o.d"
  "/root/repo/tests/common/random_test.cc" "tests/CMakeFiles/smeter_tests.dir/common/random_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/common/random_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/smeter_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/common/string_util_test.cc" "tests/CMakeFiles/smeter_tests.dir/common/string_util_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/common/string_util_test.cc.o.d"
  "/root/repo/tests/core/anomaly_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/anomaly_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/anomaly_test.cc.o.d"
  "/root/repo/tests/core/codec_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/codec_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/codec_test.cc.o.d"
  "/root/repo/tests/core/compression_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/compression_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/compression_test.cc.o.d"
  "/root/repo/tests/core/drift_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/drift_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/drift_test.cc.o.d"
  "/root/repo/tests/core/encoder_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/encoder_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/encoder_test.cc.o.d"
  "/root/repo/tests/core/entropy_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/entropy_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/entropy_test.cc.o.d"
  "/root/repo/tests/core/lookup_table_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/lookup_table_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/lookup_table_test.cc.o.d"
  "/root/repo/tests/core/online_encoder_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/online_encoder_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/online_encoder_test.cc.o.d"
  "/root/repo/tests/core/privacy_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/privacy_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/privacy_test.cc.o.d"
  "/root/repo/tests/core/properties_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/properties_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/properties_test.cc.o.d"
  "/root/repo/tests/core/quantile_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/quantile_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/quantile_test.cc.o.d"
  "/root/repo/tests/core/reconstruction_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/reconstruction_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/reconstruction_test.cc.o.d"
  "/root/repo/tests/core/sax_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/sax_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/sax_test.cc.o.d"
  "/root/repo/tests/core/separators_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/separators_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/separators_test.cc.o.d"
  "/root/repo/tests/core/symbol_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/symbol_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/symbol_test.cc.o.d"
  "/root/repo/tests/core/symbolic_index_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/symbolic_index_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/symbolic_index_test.cc.o.d"
  "/root/repo/tests/core/symbolic_series_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/symbolic_series_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/symbolic_series_test.cc.o.d"
  "/root/repo/tests/core/time_series_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/time_series_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/time_series_test.cc.o.d"
  "/root/repo/tests/core/utility_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/utility_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/utility_test.cc.o.d"
  "/root/repo/tests/core/vertical_test.cc" "tests/CMakeFiles/smeter_tests.dir/core/vertical_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/core/vertical_test.cc.o.d"
  "/root/repo/tests/data/appliance_test.cc" "tests/CMakeFiles/smeter_tests.dir/data/appliance_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/data/appliance_test.cc.o.d"
  "/root/repo/tests/data/cer_test.cc" "tests/CMakeFiles/smeter_tests.dir/data/cer_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/data/cer_test.cc.o.d"
  "/root/repo/tests/data/day_splitter_test.cc" "tests/CMakeFiles/smeter_tests.dir/data/day_splitter_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/data/day_splitter_test.cc.o.d"
  "/root/repo/tests/data/features_test.cc" "tests/CMakeFiles/smeter_tests.dir/data/features_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/data/features_test.cc.o.d"
  "/root/repo/tests/data/generator_test.cc" "tests/CMakeFiles/smeter_tests.dir/data/generator_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/data/generator_test.cc.o.d"
  "/root/repo/tests/data/household_test.cc" "tests/CMakeFiles/smeter_tests.dir/data/household_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/data/household_test.cc.o.d"
  "/root/repo/tests/data/redd_test.cc" "tests/CMakeFiles/smeter_tests.dir/data/redd_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/data/redd_test.cc.o.d"
  "/root/repo/tests/integration/forecast_test.cc" "tests/CMakeFiles/smeter_tests.dir/integration/forecast_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/integration/forecast_test.cc.o.d"
  "/root/repo/tests/integration/online_batch_equivalence_test.cc" "tests/CMakeFiles/smeter_tests.dir/integration/online_batch_equivalence_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/integration/online_batch_equivalence_test.cc.o.d"
  "/root/repo/tests/integration/pipeline_test.cc" "tests/CMakeFiles/smeter_tests.dir/integration/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/integration/pipeline_test.cc.o.d"
  "/root/repo/tests/integration/robustness_test.cc" "tests/CMakeFiles/smeter_tests.dir/integration/robustness_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/integration/robustness_test.cc.o.d"
  "/root/repo/tests/ml/arff_test.cc" "tests/CMakeFiles/smeter_tests.dir/ml/arff_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/ml/arff_test.cc.o.d"
  "/root/repo/tests/ml/attribute_test.cc" "tests/CMakeFiles/smeter_tests.dir/ml/attribute_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/ml/attribute_test.cc.o.d"
  "/root/repo/tests/ml/bagging_test.cc" "tests/CMakeFiles/smeter_tests.dir/ml/bagging_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/ml/bagging_test.cc.o.d"
  "/root/repo/tests/ml/baseline_test.cc" "tests/CMakeFiles/smeter_tests.dir/ml/baseline_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/ml/baseline_test.cc.o.d"
  "/root/repo/tests/ml/classifier_contract_test.cc" "tests/CMakeFiles/smeter_tests.dir/ml/classifier_contract_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/ml/classifier_contract_test.cc.o.d"
  "/root/repo/tests/ml/decision_tree_test.cc" "tests/CMakeFiles/smeter_tests.dir/ml/decision_tree_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/ml/decision_tree_test.cc.o.d"
  "/root/repo/tests/ml/evaluation_test.cc" "tests/CMakeFiles/smeter_tests.dir/ml/evaluation_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/ml/evaluation_test.cc.o.d"
  "/root/repo/tests/ml/instances_test.cc" "tests/CMakeFiles/smeter_tests.dir/ml/instances_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/ml/instances_test.cc.o.d"
  "/root/repo/tests/ml/kmodes_test.cc" "tests/CMakeFiles/smeter_tests.dir/ml/kmodes_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/ml/kmodes_test.cc.o.d"
  "/root/repo/tests/ml/knn_test.cc" "tests/CMakeFiles/smeter_tests.dir/ml/knn_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/ml/knn_test.cc.o.d"
  "/root/repo/tests/ml/logistic_test.cc" "tests/CMakeFiles/smeter_tests.dir/ml/logistic_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/ml/logistic_test.cc.o.d"
  "/root/repo/tests/ml/naive_bayes_test.cc" "tests/CMakeFiles/smeter_tests.dir/ml/naive_bayes_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/ml/naive_bayes_test.cc.o.d"
  "/root/repo/tests/ml/random_forest_test.cc" "tests/CMakeFiles/smeter_tests.dir/ml/random_forest_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/ml/random_forest_test.cc.o.d"
  "/root/repo/tests/ml/svr_test.cc" "tests/CMakeFiles/smeter_tests.dir/ml/svr_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/ml/svr_test.cc.o.d"
  "/root/repo/tests/ml/tree_utils_test.cc" "tests/CMakeFiles/smeter_tests.dir/ml/tree_utils_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/ml/tree_utils_test.cc.o.d"
  "/root/repo/tests/testutil.cc" "tests/CMakeFiles/smeter_tests.dir/testutil.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/testutil.cc.o.d"
  "/root/repo/tests/tools/cli_test.cc" "tests/CMakeFiles/smeter_tests.dir/tools/cli_test.cc.o" "gcc" "tests/CMakeFiles/smeter_tests.dir/tools/cli_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tools/CMakeFiles/smeter_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smeter_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smeter_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smeter_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smeter_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smeter_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
