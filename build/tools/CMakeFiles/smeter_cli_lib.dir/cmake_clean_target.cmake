file(REMOVE_RECURSE
  "../lib/libsmeter_cli_lib.a"
)
