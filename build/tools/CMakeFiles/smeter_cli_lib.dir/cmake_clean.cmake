file(REMOVE_RECURSE
  "../lib/libsmeter_cli_lib.a"
  "../lib/libsmeter_cli_lib.pdb"
  "CMakeFiles/smeter_cli_lib.dir/cli.cc.o"
  "CMakeFiles/smeter_cli_lib.dir/cli.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smeter_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
