# Empty dependencies file for smeter_cli_lib.
# This may be replaced when dependencies are built.
