file(REMOVE_RECURSE
  "CMakeFiles/smeter_cli.dir/smeter_cli.cc.o"
  "CMakeFiles/smeter_cli.dir/smeter_cli.cc.o.d"
  "smeter"
  "smeter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smeter_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
