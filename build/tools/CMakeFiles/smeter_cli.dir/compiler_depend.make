# Empty compiler generated dependencies file for smeter_cli.
# This may be replaced when dependencies are built.
