file(REMOVE_RECURSE
  "CMakeFiles/anomaly_watch.dir/anomaly_watch.cc.o"
  "CMakeFiles/anomaly_watch.dir/anomaly_watch.cc.o.d"
  "anomaly_watch"
  "anomaly_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anomaly_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
