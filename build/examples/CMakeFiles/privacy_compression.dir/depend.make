# Empty dependencies file for privacy_compression.
# This may be replaced when dependencies are built.
