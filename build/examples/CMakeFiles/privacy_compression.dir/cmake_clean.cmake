file(REMOVE_RECURSE
  "CMakeFiles/privacy_compression.dir/privacy_compression.cc.o"
  "CMakeFiles/privacy_compression.dir/privacy_compression.cc.o.d"
  "privacy_compression"
  "privacy_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
