# Empty compiler generated dependencies file for privacy_compression.
# This may be replaced when dependencies are built.
