file(REMOVE_RECURSE
  "CMakeFiles/load_forecasting.dir/load_forecasting.cc.o"
  "CMakeFiles/load_forecasting.dir/load_forecasting.cc.o.d"
  "load_forecasting"
  "load_forecasting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_forecasting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
