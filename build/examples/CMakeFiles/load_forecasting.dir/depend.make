# Empty dependencies file for load_forecasting.
# This may be replaced when dependencies are built.
