# Empty compiler generated dependencies file for segmentation_clustering.
# This may be replaced when dependencies are built.
