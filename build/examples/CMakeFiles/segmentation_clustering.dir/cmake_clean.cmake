file(REMOVE_RECURSE
  "CMakeFiles/segmentation_clustering.dir/segmentation_clustering.cc.o"
  "CMakeFiles/segmentation_clustering.dir/segmentation_clustering.cc.o.d"
  "segmentation_clustering"
  "segmentation_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segmentation_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
