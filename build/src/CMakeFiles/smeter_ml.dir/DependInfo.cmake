
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/arff.cc" "src/CMakeFiles/smeter_ml.dir/ml/arff.cc.o" "gcc" "src/CMakeFiles/smeter_ml.dir/ml/arff.cc.o.d"
  "/root/repo/src/ml/attribute.cc" "src/CMakeFiles/smeter_ml.dir/ml/attribute.cc.o" "gcc" "src/CMakeFiles/smeter_ml.dir/ml/attribute.cc.o.d"
  "/root/repo/src/ml/bagging.cc" "src/CMakeFiles/smeter_ml.dir/ml/bagging.cc.o" "gcc" "src/CMakeFiles/smeter_ml.dir/ml/bagging.cc.o.d"
  "/root/repo/src/ml/baseline.cc" "src/CMakeFiles/smeter_ml.dir/ml/baseline.cc.o" "gcc" "src/CMakeFiles/smeter_ml.dir/ml/baseline.cc.o.d"
  "/root/repo/src/ml/classifier.cc" "src/CMakeFiles/smeter_ml.dir/ml/classifier.cc.o" "gcc" "src/CMakeFiles/smeter_ml.dir/ml/classifier.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/CMakeFiles/smeter_ml.dir/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/smeter_ml.dir/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/evaluation.cc" "src/CMakeFiles/smeter_ml.dir/ml/evaluation.cc.o" "gcc" "src/CMakeFiles/smeter_ml.dir/ml/evaluation.cc.o.d"
  "/root/repo/src/ml/instances.cc" "src/CMakeFiles/smeter_ml.dir/ml/instances.cc.o" "gcc" "src/CMakeFiles/smeter_ml.dir/ml/instances.cc.o.d"
  "/root/repo/src/ml/kernel.cc" "src/CMakeFiles/smeter_ml.dir/ml/kernel.cc.o" "gcc" "src/CMakeFiles/smeter_ml.dir/ml/kernel.cc.o.d"
  "/root/repo/src/ml/kmodes.cc" "src/CMakeFiles/smeter_ml.dir/ml/kmodes.cc.o" "gcc" "src/CMakeFiles/smeter_ml.dir/ml/kmodes.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/CMakeFiles/smeter_ml.dir/ml/knn.cc.o" "gcc" "src/CMakeFiles/smeter_ml.dir/ml/knn.cc.o.d"
  "/root/repo/src/ml/logistic.cc" "src/CMakeFiles/smeter_ml.dir/ml/logistic.cc.o" "gcc" "src/CMakeFiles/smeter_ml.dir/ml/logistic.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/CMakeFiles/smeter_ml.dir/ml/naive_bayes.cc.o" "gcc" "src/CMakeFiles/smeter_ml.dir/ml/naive_bayes.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/CMakeFiles/smeter_ml.dir/ml/random_forest.cc.o" "gcc" "src/CMakeFiles/smeter_ml.dir/ml/random_forest.cc.o.d"
  "/root/repo/src/ml/svr.cc" "src/CMakeFiles/smeter_ml.dir/ml/svr.cc.o" "gcc" "src/CMakeFiles/smeter_ml.dir/ml/svr.cc.o.d"
  "/root/repo/src/ml/tree_utils.cc" "src/CMakeFiles/smeter_ml.dir/ml/tree_utils.cc.o" "gcc" "src/CMakeFiles/smeter_ml.dir/ml/tree_utils.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smeter_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
