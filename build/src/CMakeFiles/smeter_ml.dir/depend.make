# Empty dependencies file for smeter_ml.
# This may be replaced when dependencies are built.
