file(REMOVE_RECURSE
  "libsmeter_ml.a"
)
