# Empty compiler generated dependencies file for smeter_app.
# This may be replaced when dependencies are built.
