file(REMOVE_RECURSE
  "libsmeter_app.a"
)
