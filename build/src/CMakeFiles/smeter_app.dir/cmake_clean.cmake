file(REMOVE_RECURSE
  "CMakeFiles/smeter_app.dir/app/forecaster.cc.o"
  "CMakeFiles/smeter_app.dir/app/forecaster.cc.o.d"
  "libsmeter_app.a"
  "libsmeter_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smeter_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
