# Empty compiler generated dependencies file for smeter_data.
# This may be replaced when dependencies are built.
