file(REMOVE_RECURSE
  "CMakeFiles/smeter_data.dir/data/appliance.cc.o"
  "CMakeFiles/smeter_data.dir/data/appliance.cc.o.d"
  "CMakeFiles/smeter_data.dir/data/cer.cc.o"
  "CMakeFiles/smeter_data.dir/data/cer.cc.o.d"
  "CMakeFiles/smeter_data.dir/data/day_splitter.cc.o"
  "CMakeFiles/smeter_data.dir/data/day_splitter.cc.o.d"
  "CMakeFiles/smeter_data.dir/data/features.cc.o"
  "CMakeFiles/smeter_data.dir/data/features.cc.o.d"
  "CMakeFiles/smeter_data.dir/data/generator.cc.o"
  "CMakeFiles/smeter_data.dir/data/generator.cc.o.d"
  "CMakeFiles/smeter_data.dir/data/household.cc.o"
  "CMakeFiles/smeter_data.dir/data/household.cc.o.d"
  "CMakeFiles/smeter_data.dir/data/redd.cc.o"
  "CMakeFiles/smeter_data.dir/data/redd.cc.o.d"
  "libsmeter_data.a"
  "libsmeter_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smeter_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
