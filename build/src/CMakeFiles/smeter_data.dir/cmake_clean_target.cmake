file(REMOVE_RECURSE
  "libsmeter_data.a"
)
