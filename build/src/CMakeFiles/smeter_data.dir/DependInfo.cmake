
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/appliance.cc" "src/CMakeFiles/smeter_data.dir/data/appliance.cc.o" "gcc" "src/CMakeFiles/smeter_data.dir/data/appliance.cc.o.d"
  "/root/repo/src/data/cer.cc" "src/CMakeFiles/smeter_data.dir/data/cer.cc.o" "gcc" "src/CMakeFiles/smeter_data.dir/data/cer.cc.o.d"
  "/root/repo/src/data/day_splitter.cc" "src/CMakeFiles/smeter_data.dir/data/day_splitter.cc.o" "gcc" "src/CMakeFiles/smeter_data.dir/data/day_splitter.cc.o.d"
  "/root/repo/src/data/features.cc" "src/CMakeFiles/smeter_data.dir/data/features.cc.o" "gcc" "src/CMakeFiles/smeter_data.dir/data/features.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/CMakeFiles/smeter_data.dir/data/generator.cc.o" "gcc" "src/CMakeFiles/smeter_data.dir/data/generator.cc.o.d"
  "/root/repo/src/data/household.cc" "src/CMakeFiles/smeter_data.dir/data/household.cc.o" "gcc" "src/CMakeFiles/smeter_data.dir/data/household.cc.o.d"
  "/root/repo/src/data/redd.cc" "src/CMakeFiles/smeter_data.dir/data/redd.cc.o" "gcc" "src/CMakeFiles/smeter_data.dir/data/redd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smeter_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smeter_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smeter_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
