# Empty dependencies file for smeter_common.
# This may be replaced when dependencies are built.
