file(REMOVE_RECURSE
  "CMakeFiles/smeter_common.dir/common/csv.cc.o"
  "CMakeFiles/smeter_common.dir/common/csv.cc.o.d"
  "CMakeFiles/smeter_common.dir/common/normal.cc.o"
  "CMakeFiles/smeter_common.dir/common/normal.cc.o.d"
  "CMakeFiles/smeter_common.dir/common/random.cc.o"
  "CMakeFiles/smeter_common.dir/common/random.cc.o.d"
  "CMakeFiles/smeter_common.dir/common/status.cc.o"
  "CMakeFiles/smeter_common.dir/common/status.cc.o.d"
  "CMakeFiles/smeter_common.dir/common/string_util.cc.o"
  "CMakeFiles/smeter_common.dir/common/string_util.cc.o.d"
  "libsmeter_common.a"
  "libsmeter_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smeter_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
