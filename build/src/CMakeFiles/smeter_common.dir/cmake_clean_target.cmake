file(REMOVE_RECURSE
  "libsmeter_common.a"
)
