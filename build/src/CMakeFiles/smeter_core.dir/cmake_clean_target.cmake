file(REMOVE_RECURSE
  "libsmeter_core.a"
)
