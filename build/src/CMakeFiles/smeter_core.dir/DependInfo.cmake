
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anomaly.cc" "src/CMakeFiles/smeter_core.dir/core/anomaly.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/anomaly.cc.o.d"
  "/root/repo/src/core/codec.cc" "src/CMakeFiles/smeter_core.dir/core/codec.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/codec.cc.o.d"
  "/root/repo/src/core/compression.cc" "src/CMakeFiles/smeter_core.dir/core/compression.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/compression.cc.o.d"
  "/root/repo/src/core/drift.cc" "src/CMakeFiles/smeter_core.dir/core/drift.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/drift.cc.o.d"
  "/root/repo/src/core/encoder.cc" "src/CMakeFiles/smeter_core.dir/core/encoder.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/encoder.cc.o.d"
  "/root/repo/src/core/entropy.cc" "src/CMakeFiles/smeter_core.dir/core/entropy.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/entropy.cc.o.d"
  "/root/repo/src/core/lookup_table.cc" "src/CMakeFiles/smeter_core.dir/core/lookup_table.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/lookup_table.cc.o.d"
  "/root/repo/src/core/online_encoder.cc" "src/CMakeFiles/smeter_core.dir/core/online_encoder.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/online_encoder.cc.o.d"
  "/root/repo/src/core/privacy.cc" "src/CMakeFiles/smeter_core.dir/core/privacy.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/privacy.cc.o.d"
  "/root/repo/src/core/quantile.cc" "src/CMakeFiles/smeter_core.dir/core/quantile.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/quantile.cc.o.d"
  "/root/repo/src/core/reconstruction.cc" "src/CMakeFiles/smeter_core.dir/core/reconstruction.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/reconstruction.cc.o.d"
  "/root/repo/src/core/sax.cc" "src/CMakeFiles/smeter_core.dir/core/sax.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/sax.cc.o.d"
  "/root/repo/src/core/separators.cc" "src/CMakeFiles/smeter_core.dir/core/separators.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/separators.cc.o.d"
  "/root/repo/src/core/symbol.cc" "src/CMakeFiles/smeter_core.dir/core/symbol.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/symbol.cc.o.d"
  "/root/repo/src/core/symbolic_index.cc" "src/CMakeFiles/smeter_core.dir/core/symbolic_index.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/symbolic_index.cc.o.d"
  "/root/repo/src/core/symbolic_series.cc" "src/CMakeFiles/smeter_core.dir/core/symbolic_series.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/symbolic_series.cc.o.d"
  "/root/repo/src/core/time_series.cc" "src/CMakeFiles/smeter_core.dir/core/time_series.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/time_series.cc.o.d"
  "/root/repo/src/core/utility.cc" "src/CMakeFiles/smeter_core.dir/core/utility.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/utility.cc.o.d"
  "/root/repo/src/core/vertical.cc" "src/CMakeFiles/smeter_core.dir/core/vertical.cc.o" "gcc" "src/CMakeFiles/smeter_core.dir/core/vertical.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smeter_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
