# Empty compiler generated dependencies file for smeter_core.
# This may be replaced when dependencies are built.
