file(REMOVE_RECURSE
  "CMakeFiles/fig8_forecast_nb.dir/fig8_forecast_nb.cc.o"
  "CMakeFiles/fig8_forecast_nb.dir/fig8_forecast_nb.cc.o.d"
  "fig8_forecast_nb"
  "fig8_forecast_nb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_forecast_nb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
