# Empty dependencies file for fig8_forecast_nb.
# This may be replaced when dependencies are built.
