file(REMOVE_RECURSE
  "CMakeFiles/ext_algorithms.dir/ext_algorithms.cc.o"
  "CMakeFiles/ext_algorithms.dir/ext_algorithms.cc.o.d"
  "ext_algorithms"
  "ext_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
