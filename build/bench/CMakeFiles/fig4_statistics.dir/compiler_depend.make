# Empty compiler generated dependencies file for fig4_statistics.
# This may be replaced when dependencies are built.
