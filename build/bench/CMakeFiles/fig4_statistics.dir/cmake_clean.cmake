file(REMOVE_RECURSE
  "CMakeFiles/fig4_statistics.dir/fig4_statistics.cc.o"
  "CMakeFiles/fig4_statistics.dir/fig4_statistics.cc.o.d"
  "fig4_statistics"
  "fig4_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
