file(REMOVE_RECURSE
  "CMakeFiles/fig1_hierarchy.dir/fig1_hierarchy.cc.o"
  "CMakeFiles/fig1_hierarchy.dir/fig1_hierarchy.cc.o.d"
  "fig1_hierarchy"
  "fig1_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
