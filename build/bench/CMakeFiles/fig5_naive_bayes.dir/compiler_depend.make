# Empty compiler generated dependencies file for fig5_naive_bayes.
# This may be replaced when dependencies are built.
