file(REMOVE_RECURSE
  "CMakeFiles/fig5_naive_bayes.dir/fig5_naive_bayes.cc.o"
  "CMakeFiles/fig5_naive_bayes.dir/fig5_naive_bayes.cc.o.d"
  "fig5_naive_bayes"
  "fig5_naive_bayes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_naive_bayes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
