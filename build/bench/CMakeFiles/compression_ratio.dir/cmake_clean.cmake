file(REMOVE_RECURSE
  "CMakeFiles/compression_ratio.dir/compression_ratio.cc.o"
  "CMakeFiles/compression_ratio.dir/compression_ratio.cc.o.d"
  "compression_ratio"
  "compression_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
