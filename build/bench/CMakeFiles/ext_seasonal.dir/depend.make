# Empty dependencies file for ext_seasonal.
# This may be replaced when dependencies are built.
