file(REMOVE_RECURSE
  "CMakeFiles/ext_seasonal.dir/ext_seasonal.cc.o"
  "CMakeFiles/ext_seasonal.dir/ext_seasonal.cc.o.d"
  "ext_seasonal"
  "ext_seasonal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_seasonal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
