# Empty dependencies file for fig7_single_lookup.
# This may be replaced when dependencies are built.
