file(REMOVE_RECURSE
  "CMakeFiles/fig7_single_lookup.dir/fig7_single_lookup.cc.o"
  "CMakeFiles/fig7_single_lookup.dir/fig7_single_lookup.cc.o.d"
  "fig7_single_lookup"
  "fig7_single_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_single_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
