
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_single_lookup.cc" "bench/CMakeFiles/fig7_single_lookup.dir/fig7_single_lookup.cc.o" "gcc" "bench/CMakeFiles/fig7_single_lookup.dir/fig7_single_lookup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/smeter_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smeter_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smeter_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smeter_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smeter_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smeter_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
