# Empty dependencies file for fig6_random_forest.
# This may be replaced when dependencies are built.
