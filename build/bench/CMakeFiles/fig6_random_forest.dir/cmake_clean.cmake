file(REMOVE_RECURSE
  "CMakeFiles/fig6_random_forest.dir/fig6_random_forest.cc.o"
  "CMakeFiles/fig6_random_forest.dir/fig6_random_forest.cc.o.d"
  "fig6_random_forest"
  "fig6_random_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_random_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
