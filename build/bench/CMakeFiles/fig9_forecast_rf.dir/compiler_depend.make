# Empty compiler generated dependencies file for fig9_forecast_rf.
# This may be replaced when dependencies are built.
