file(REMOVE_RECURSE
  "CMakeFiles/fig9_forecast_rf.dir/fig9_forecast_rf.cc.o"
  "CMakeFiles/fig9_forecast_rf.dir/fig9_forecast_rf.cc.o.d"
  "fig9_forecast_rf"
  "fig9_forecast_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_forecast_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
