# Empty compiler generated dependencies file for smeter_bench_util.
# This may be replaced when dependencies are built.
