file(REMOVE_RECURSE
  "../lib/libsmeter_bench_util.a"
)
