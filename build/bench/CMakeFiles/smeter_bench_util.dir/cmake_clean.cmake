file(REMOVE_RECURSE
  "../lib/libsmeter_bench_util.a"
  "../lib/libsmeter_bench_util.pdb"
  "CMakeFiles/smeter_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/smeter_bench_util.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smeter_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
