// The paper's consumption-forecasting pipeline (Section 3.2) as a reusable
// component: "we reduce the forecasting task into classification task
// using lag attributes ... comprises of 12 previous symbols. The target
// attribute is the next symbols."
//
// SymbolicForecaster owns the whole chain: learn a lookup table from
// history, encode, train a nominal classifier on lag windows, and map
// predicted symbols back to watts through the symbol's semantics (range
// center, as the paper defines, or range mean). Beyond the paper's
// one-step-ahead setting it supports iterated multi-step forecasts by
// feeding predictions back as lag inputs.

#ifndef SMETER_APP_FORECASTER_H_
#define SMETER_APP_FORECASTER_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/lookup_table.h"
#include "ml/evaluation.h"

namespace smeter::app {

struct ForecasterOptions {
  SeparatorMethod method = SeparatorMethod::kMedian;
  int level = 4;    // alphabet of 16, the paper's forecasting choice
  size_t lag = 12;  // 12 previous symbols
  // The paper: "we define semantics of a symbol as the center of its
  // range."
  ReconstructionMode semantics = ReconstructionMode::kRangeCenter;
};

class SymbolicForecaster {
 public:
  // `factory` creates the next-symbol classifier (any nominal-capable
  // learner).
  SymbolicForecaster(ml::ClassifierFactory factory,
                     const ForecasterOptions& options)
      : factory_(std::move(factory)), options_(options) {}

  // Learns the lookup table from `history` (e.g. one week of hourly
  // values) and trains the classifier on its lag windows. Needs at least
  // lag + 2 values.
  Status Train(const std::vector<double>& history);

  // Like Train, but calibrates the lookup table from `table_training`
  // (e.g. the sensor's raw two-day historical window, as the
  // classification experiments do) while the classifier still learns from
  // `history`'s lag windows.
  Status TrainWithTableData(const std::vector<double>& table_training,
                            const std::vector<double>& history);

  // One-step-ahead: the forecast value following `recent`, which must hold
  // at least `lag` values (the most recent last).
  Result<double> PredictNext(const std::vector<double>& recent) const;

  // Iterated `horizon`-step forecast, feeding each predicted symbol back
  // as a lag input (the decoded watt values are returned).
  Result<std::vector<double>> Forecast(const std::vector<double>& recent,
                                       size_t horizon) const;

  // One-step-ahead MAE over a held-out continuation: for each position i
  // in `actual`, predicts from the true preceding values (teacher
  // forcing), exactly the protocol behind Figures 8 and 9.
  Result<double> EvaluateMae(const std::vector<double>& recent,
                             const std::vector<double>& actual) const;

  bool trained() const { return classifier_ != nullptr; }
  const LookupTable& table() const { return *table_; }

 private:
  // Encodes the last `lag` values of `values` into a classifier row
  // (with a missing class cell).
  Result<std::vector<double>> LagRow(const std::vector<double>& values) const;
  Result<double> DecodeSymbol(size_t index) const;

  ml::ClassifierFactory factory_;
  ForecasterOptions options_;
  std::optional<LookupTable> table_;
  std::unique_ptr<ml::Classifier> classifier_;
};

}  // namespace smeter::app

#endif  // SMETER_APP_FORECASTER_H_
