#include "app/forecaster.h"

#include <cmath>

#include "data/features.h"

namespace smeter::app {

Status SymbolicForecaster::Train(const std::vector<double>& history) {
  return TrainWithTableData(history, history);
}

Status SymbolicForecaster::TrainWithTableData(
    const std::vector<double>& table_training,
    const std::vector<double>& history) {
  if (history.size() < options_.lag + 2) {
    return InvalidArgumentError("history must hold at least lag + 2 values");
  }
  if (options_.lag == 0) return InvalidArgumentError("lag must be > 0");

  LookupTableOptions table_options;
  table_options.method = options_.method;
  table_options.level = options_.level;
  Result<LookupTable> table =
      LookupTable::Build(table_training, table_options);
  if (!table.ok()) return table.status();
  table_ = std::move(table.value());

  std::vector<uint32_t> symbols;
  symbols.reserve(history.size());
  for (double v : history) symbols.push_back(table_->Encode(v).index());

  Result<ml::Dataset> train = data::MakeSymbolicLagDataset(
      symbols, options_.lag, options_.level, 0, symbols.size());
  if (!train.ok()) return train.status();

  classifier_ = factory_();
  Status status = classifier_->Train(train.value());
  if (!status.ok()) {
    classifier_.reset();
    return status;
  }
  return Status::Ok();
}

Result<std::vector<double>> SymbolicForecaster::LagRow(
    const std::vector<double>& values) const {
  if (values.size() < options_.lag) {
    return InvalidArgumentError("need at least lag recent values");
  }
  std::vector<double> row;
  row.reserve(options_.lag + 1);
  for (size_t i = values.size() - options_.lag; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      return InvalidArgumentError("non-finite recent value");
    }
    row.push_back(static_cast<double>(table_->Encode(values[i]).index()));
  }
  row.push_back(ml::kMissing);  // class cell
  return row;
}

Result<double> SymbolicForecaster::DecodeSymbol(size_t index) const {
  Result<Symbol> symbol =
      Symbol::Create(options_.level, static_cast<uint32_t>(index));
  if (!symbol.ok()) return symbol.status();
  return table_->Reconstruct(symbol.value(), options_.semantics);
}

Result<double> SymbolicForecaster::PredictNext(
    const std::vector<double>& recent) const {
  if (!trained()) return FailedPreconditionError("forecaster not trained");
  Result<std::vector<double>> row = LagRow(recent);
  if (!row.ok()) return row.status();
  Result<size_t> predicted = classifier_->Predict(row.value());
  if (!predicted.ok()) return predicted.status();
  return DecodeSymbol(predicted.value());
}

Result<std::vector<double>> SymbolicForecaster::Forecast(
    const std::vector<double>& recent, size_t horizon) const {
  if (!trained()) return FailedPreconditionError("forecaster not trained");
  if (horizon == 0) return InvalidArgumentError("horizon must be > 0");
  std::vector<double> window = recent;
  std::vector<double> forecast;
  forecast.reserve(horizon);
  for (size_t step = 0; step < horizon; ++step) {
    Result<double> next = PredictNext(window);
    if (!next.ok()) return next.status();
    forecast.push_back(next.value());
    window.push_back(next.value());
  }
  return forecast;
}

Result<double> SymbolicForecaster::EvaluateMae(
    const std::vector<double>& recent,
    const std::vector<double>& actual) const {
  if (!trained()) return FailedPreconditionError("forecaster not trained");
  if (actual.empty()) return InvalidArgumentError("no actual values");
  std::vector<double> window = recent;
  double abs_error = 0.0;
  for (double truth : actual) {
    Result<double> predicted = PredictNext(window);
    if (!predicted.ok()) return predicted.status();
    abs_error += std::abs(predicted.value() - truth);
    window.push_back(truth);  // teacher forcing, as in the paper
  }
  return abs_error / static_cast<double>(actual.size());
}

}  // namespace smeter::app
