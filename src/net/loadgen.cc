#include "net/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "core/encoder.h"
#include "core/lookup_table.h"
#include "data/cer.h"
#include "net/wire.h"

namespace smeter::net {

uint64_t XorShift64(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

int64_t FullJitterBackoffMs(int attempt, const BackoffPolicy& policy,
                            uint64_t* rng_state) {
  if (attempt <= 1) return 0;
  const int64_t base = policy.base_ms < 1 ? 1 : policy.base_ms;
  const int64_t cap = policy.cap_ms < base ? base : policy.cap_ms;
  // base * 2^(attempt-2), saturating at the cap. The doubling must not be
  // allowed to run first and clamp after: with a cap near INT64_MAX the
  // multiply itself is signed overflow (UB) around attempt 63, so saturate
  // BEFORE doubling whenever another doubling could pass the cap.
  int64_t ceiling = base;
  for (int i = 2; i < attempt && ceiling < cap; ++i) {
    if (ceiling > cap / 2) {
      ceiling = cap;
      break;
    }
    ceiling *= 2;
  }
  if (ceiling > cap) ceiling = cap;
  if (*rng_state == 0) *rng_state = 0x9e3779b97f4a7c15ull;
  // The +1 (inclusive upper bound) happens in uint64 space: ceiling may
  // legitimately be INT64_MAX, where `ceiling + 1` as int64 is UB.
  return static_cast<int64_t>(XorShift64(rng_state) %
                              (static_cast<uint64_t>(ceiling) + 1));
}

namespace {

Status Errno(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

// Per-meter deterministic jitter seed (FNV-1a of the name): distinct
// meters draw distinct backoff schedules without sharing rng state.
uint64_t JitterSeed(const std::string& name) {
  uint64_t seed = 0xcbf29ce484222325ull;
  for (char ch : name) {
    seed = (seed ^ static_cast<unsigned char>(ch)) * 0x100000001b3ull;
  }
  return seed == 0 ? 0x9e3779b97f4a7c15ull : seed;
}

// The sensor-side pipeline, step for step what encode-fleet runs per
// household — shared inputs therefore yield bit-identical tables and
// symbol streams on both paths.
Result<PreparedUpload> PrepareMeter(const std::string& name,
                                    const TimeSeries& trace,
                                    const FleetEncodeOptions& options) {
  if (trace.empty()) {
    return FailedPreconditionError(name + ": empty trace");
  }
  TimeSeries training = trace;
  if (options.history_seconds > 0) {
    training = trace.Slice(
        {trace.front().timestamp,
         trace.front().timestamp + options.history_seconds});
    if (training.empty()) {
      return FailedPreconditionError(name + ": no training data");
    }
  }
  Result<LookupTable> table =
      LookupTable::Build(training.Values(), options.table);
  if (!table.ok()) return table.status();
  PreparedUpload prepared;
  prepared.name = name;
  prepared.table_blob = table->Serialize();
  if (options.gap_aware) {
    Result<QualityEncoding> encoded =
        EncodePipelineWithGaps(trace, *table, options.pipeline);
    if (!encoded.ok()) return encoded.status();
    prepared.quality = encoded->quality;
    prepared.symbols = std::move(encoded.value().symbols);
  } else {
    Result<SymbolicSeries> symbols =
        EncodePipeline(trace, *table, options.pipeline);
    if (!symbols.ok()) return symbols.status();
    prepared.quality.windows_valid = symbols->size();
    prepared.symbols = std::move(symbols.value());
  }
  if (prepared.symbols.empty()) {
    return FailedPreconditionError(name + ": trace encoded to no symbols");
  }
  return prepared;
}

// Blocking framed-protocol client over one TCP connection.
class MeterClient {
 public:
  ~MeterClient() { CloseFd(); }

  Status Connect(const std::string& host, uint16_t port,
                 int64_t timeout_ms) {
    // Reconnecting a used client: drop the old fd and any half-decoded
    // input from the previous conversation.
    CloseFd();
    in_.clear();
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return Errno("socket");
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    const int enable = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return InvalidArgumentError("bad host '" + host + "'");
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Errno("connect " + host + ":" + std::to_string(port));
    }
    return Status::Ok();
  }

  Status SendFrame(const Frame& frame) {
    const std::string bytes = EncodeFrame(frame);
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      return Errno("write");
    }
    return Status::Ok();
  }

  Result<Frame> RecvFrame() {
    for (;;) {
      DecodeResult decoded = DecodeFrame(in_);
      if (decoded.outcome == DecodeResult::Outcome::kFrame) {
        in_.erase(0, decoded.consumed);
        return std::move(decoded.frame);
      }
      if (decoded.outcome == DecodeResult::Outcome::kError) {
        return decoded.error;
      }
      char chunk[16 * 1024];
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n > 0) {
        in_.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        return InternalError("server closed the connection");
      }
      if (errno == EINTR) continue;
      return Errno("read");
    }
  }

  // Abrupt teardown, mid-frame if need be — the dying-meter simulation.
  void Abort() {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      CloseFd();
    }
  }

 private:
  void CloseFd() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  int fd_ = -1;
  std::string in_;
};

// Expects `frame` to be `type` carrying an OK ack.
Status ExpectOkAck(const Frame& frame, FrameType type) {
  if (frame.type != type) {
    return InternalError("expected ack type " +
                         std::to_string(static_cast<int>(type)) + ", got " +
                         std::to_string(static_cast<int>(frame.type)));
  }
  Result<AckPayload> ack = ParseAck(frame);
  if (!ack.ok()) return ack.status();
  if (ack->status != WireStatus::kOk) {
    return InternalError(std::string("server refused: [") +
                         WireStatusName(ack->status) + "] " + ack->message);
  }
  return Status::Ok();
}

struct SharedStats {
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> symbols_sent{0};
  std::atomic<uint64_t> reconnects{0};
  std::atomic<uint64_t> batches_dropped{0};
  std::atomic<uint64_t> connections_opened{0};
  std::atomic<uint64_t> throttled{0};
  std::atomic<size_t> meters_ok{0};
  std::atomic<size_t> meters_failed{0};
};

// A THROTTLE frame in place of any awaited ack fails the attempt (the
// server closes the connection after pushing back) and records the
// server's retry_after_ms hint, which the retry loop adds to its next
// jittered backoff so the client never comes back sooner than asked.
Status CheckThrottle(const Frame& frame, const std::string& meter_name,
                     SharedStats* stats, uint32_t* retry_hint_ms) {
  if (frame.type != FrameType::kThrottle) return Status::Ok();
  stats->throttled.fetch_add(1, std::memory_order_relaxed);
  Result<ThrottlePayload> throttle = ParseThrottle(frame);
  if (!throttle.ok()) {
    return InternalError(meter_name + ": malformed THROTTLE: " +
                         throttle.status().message());
  }
  if (throttle->retry_after_ms > *retry_hint_ms) {
    *retry_hint_ms = throttle->retry_after_ms;
  }
  return InternalError(meter_name + ": throttled [" +
                       ThrottleScopeName(throttle->scope) + "] " +
                       throttle->message);
}

// One complete upload conversation over an already-connected client. Any
// error aborts the attempt; the caller decides whether to reconnect. The
// connection is left open after the GOODBYE_ACK, ready for the next
// meter's HELLO (the server resets the session to ExpectHello).
Status UploadConversation(const LoadgenOptions& options,
                          const PreparedUpload& meter, MeterClient* client_ptr,
                          SharedStats* stats, uint32_t* retry_hint_ms) {
  MeterClient& client = *client_ptr;
  HelloPayload hello;
  hello.protocol_version = kProtocolVersion;
  hello.meter_id = meter.name;
  hello.auth_token = options.auth_token;
  SMETER_RETURN_IF_ERROR(client.SendFrame(MakeHello(hello)));
  stats->frames_sent.fetch_add(1, std::memory_order_relaxed);
  Result<Frame> reply = client.RecvFrame();
  if (!reply.ok()) return reply.status();
  SMETER_RETURN_IF_ERROR(
      CheckThrottle(*reply, meter.name, stats, retry_hint_ms));
  SMETER_RETURN_IF_ERROR(ExpectOkAck(*reply, FrameType::kHelloAck));

  TableAnnouncePayload announce;
  announce.table_version = 1;
  announce.table_blob = meter.table_blob;
  SMETER_RETURN_IF_ERROR(client.SendFrame(MakeTableAnnounce(announce)));
  stats->frames_sent.fetch_add(1, std::memory_order_relaxed);
  reply = client.RecvFrame();
  if (!reply.ok()) return reply.status();
  SMETER_RETURN_IF_ERROR(
      CheckThrottle(*reply, meter.name, stats, retry_hint_ms));
  SMETER_RETURN_IF_ERROR(ExpectOkAck(*reply, FrameType::kTableAck));

  const auto& samples = meter.symbols.samples();
  const int64_t step =
      samples.size() >= 2
          ? samples[1].timestamp - samples[0].timestamp
          : options.encode.pipeline.window_seconds;
  const size_t batch_size =
      options.batch_symbols == 0 ? 512 : options.batch_symbols;
  uint64_t seq = 1;
  for (size_t begin = 0; begin < samples.size(); begin += batch_size) {
    // The dying-meter seam: drop the socket mid-stream, after the server
    // has already buffered part of this session.
    if (!fault::Check("loadgen.drop").ok()) {
      stats->batches_dropped.fetch_add(1, std::memory_order_relaxed);
      client.Abort();
      return InternalError(meter.name + ": injected mid-batch disconnect");
    }
    const size_t end = std::min(begin + batch_size, samples.size());
    SymbolBatchPayload batch;
    batch.seq = seq++;
    batch.start_timestamp = samples[begin].timestamp;
    batch.step_seconds = step;
    batch.level = meter.symbols.level();
    batch.symbols.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      batch.symbols.push_back(
          samples[i].symbol.is_gap()
              ? kWireGapSymbol
              : static_cast<uint16_t>(samples[i].symbol.index()));
    }
    SMETER_RETURN_IF_ERROR(client.SendFrame(MakeSymbolBatch(batch)));
    stats->frames_sent.fetch_add(1, std::memory_order_relaxed);
    stats->symbols_sent.fetch_add(end - begin, std::memory_order_relaxed);
    reply = client.RecvFrame();
    if (!reply.ok()) return reply.status();
    SMETER_RETURN_IF_ERROR(
        CheckThrottle(*reply, meter.name, stats, retry_hint_ms));
    Result<BatchAckPayload> ack = ParseBatchAck(*reply);
    if (!ack.ok()) return ack.status();
    if (ack->status != WireStatus::kOk) {
      return InternalError(std::string("batch refused: [") +
                           WireStatusName(ack->status) + "] " +
                           ack->message);
    }
    if (options.batches_per_second > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<int64_t>(1e6 / options.batches_per_second)));
    }
  }

  GoodbyePayload goodbye;
  goodbye.windows_valid = meter.quality.windows_valid;
  goodbye.windows_partial = meter.quality.windows_partial;
  goodbye.windows_gap = meter.quality.windows_gap;
  SMETER_RETURN_IF_ERROR(client.SendFrame(MakeGoodbye(goodbye)));
  stats->frames_sent.fetch_add(1, std::memory_order_relaxed);
  reply = client.RecvFrame();
  if (!reply.ok()) return reply.status();
  SMETER_RETURN_IF_ERROR(
      CheckThrottle(*reply, meter.name, stats, retry_hint_ms));
  return ExpectOkAck(*reply, FrameType::kGoodbyeAck);
}

// Classic mode: one fresh connection per attempt.
Status UploadOnce(const LoadgenOptions& options, const PreparedUpload& meter,
                  SharedStats* stats, uint32_t* retry_hint_ms) {
  MeterClient client;
  SMETER_RETURN_IF_ERROR(
      client.Connect(options.host, options.port, options.io_timeout_ms));
  stats->connections_opened.fetch_add(1, std::memory_order_relaxed);
  return UploadConversation(options, meter, &client, stats, retry_hint_ms);
}

void RunMeter(const LoadgenOptions& options, const PreparedUpload& meter,
              SharedStats* stats) {
  const int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  uint64_t rng = JitterSeed(meter.name);
  uint32_t retry_hint_ms = 0;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      stats->reconnects.fetch_add(1, std::memory_order_relaxed);
      // Full-jitter backoff spreads a storm of retrying meters flat; the
      // server's THROTTLE hint, when present, sets the floor.
      std::this_thread::sleep_for(std::chrono::milliseconds(
          retry_hint_ms +
          FullJitterBackoffMs(attempt, options.backoff, &rng)));
    }
    retry_hint_ms = 0;
    if (UploadOnce(options, meter, stats, &retry_hint_ms).ok()) {
      stats->meters_ok.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  stats->meters_failed.fetch_add(1, std::memory_order_relaxed);
}

// Multiplexed mode: run one meter's session on a shared persistent
// connection, reconnecting (only this connection) on failure. The server
// cannot resynchronize a connection whose conversation died mid-frame, so
// any error tears the socket down before retrying.
void RunMeterMultiplexed(const LoadgenOptions& options,
                         const PreparedUpload& meter, MeterClient* client,
                         bool* connected, SharedStats* stats) {
  const int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  uint64_t rng = JitterSeed(meter.name);
  uint32_t retry_hint_ms = 0;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      stats->reconnects.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(
          retry_hint_ms +
          FullJitterBackoffMs(attempt, options.backoff, &rng)));
    }
    retry_hint_ms = 0;
    if (!*connected) {
      if (!client->Connect(options.host, options.port, options.io_timeout_ms)
               .ok()) {
        continue;
      }
      stats->connections_opened.fetch_add(1, std::memory_order_relaxed);
      *connected = true;
    }
    if (UploadConversation(options, meter, client, stats, &retry_hint_ms)
            .ok()) {
      stats->meters_ok.fetch_add(1, std::memory_order_relaxed);
      return;  // connection stays open for the next meter
    }
    client->Abort();
    *connected = false;
  }
  stats->meters_failed.fetch_add(1, std::memory_order_relaxed);
}

Result<std::vector<std::pair<std::string, TimeSeries>>> LoadTraces(
    const LoadgenOptions& options) {
  std::vector<std::pair<std::string, TimeSeries>> traces;
  if (!options.input_cer.empty()) {
    Result<std::vector<std::pair<int64_t, TimeSeries>>> meters =
        data::LoadCerFile(options.input_cer);
    if (!meters.ok()) return meters.status();
    for (auto& [id, series] : *meters) {
      traces.emplace_back("meter_" + std::to_string(id), std::move(series));
    }
  } else {
    data::GeneratorOptions generator = options.generator;
    generator.num_houses = options.meters;
    for (size_t h = 0; h < options.meters; ++h) {
      Result<TimeSeries> series = data::GenerateHouseSeries(h, generator);
      if (!series.ok()) return series.status();
      // Same naming as the simulator's CER export: meter ids 1000+house.
      traces.emplace_back("meter_" + std::to_string(1000 + h),
                          std::move(series.value()));
    }
  }
  if (traces.empty()) return FailedPreconditionError("no meters to replay");
  return traces;
}

}  // namespace

std::string LoadgenReport::ToJson() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"meters_total\": " << meters_total << ",\n"
      << "  \"meters_ok\": " << meters_ok << ",\n"
      << "  \"meters_failed\": " << meters_failed << ",\n"
      << "  \"frames_sent\": " << frames_sent << ",\n"
      << "  \"symbols_sent\": " << symbols_sent << ",\n"
      << "  \"reconnects\": " << reconnects << ",\n"
      << "  \"batches_dropped\": " << batches_dropped << ",\n"
      << "  \"connections_opened\": " << connections_opened << ",\n"
      << "  \"throttled\": " << throttled << "\n"
      << "}";
  return out.str();
}

Result<std::vector<PreparedUpload>> PrepareFleetUploads(
    const LoadgenOptions& options) {
  Result<std::vector<std::pair<std::string, TimeSeries>>> traces =
      LoadTraces(options);
  if (!traces.ok()) return traces.status();
  std::vector<PreparedUpload> prepared;
  prepared.reserve(traces->size());
  for (const auto& [name, trace] : *traces) {
    Result<PreparedUpload> meter = PrepareMeter(name, trace, options.encode);
    if (!meter.ok()) {
      return Status(meter.status().code(),
                    name + ": " + meter.status().message());
    }
    prepared.push_back(std::move(meter.value()));
  }
  return prepared;
}

Result<LoadgenReport> RunLoadgen(const LoadgenOptions& options) {
  // Sensor-side encode up front (CPU-bound, deterministic), then the
  // network phase replays the prepared uploads.
  Result<std::vector<PreparedUpload>> prepared_or =
      PrepareFleetUploads(options);
  if (!prepared_or.ok()) return prepared_or.status();
  std::vector<PreparedUpload> prepared = std::move(prepared_or.value());

  SharedStats stats;
  std::vector<std::thread> threads;
  std::atomic<size_t> next{0};
  if (options.connections > 0) {
    // Multiplexed mode: meter i rides persistent connection i % N. The
    // static stride keeps each connection's meter set deterministic, which
    // the shard-pinning regression test relies on.
    const size_t conns = std::min(options.connections, prepared.size());
    threads.reserve(conns);
    for (size_t c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        MeterClient client;
        bool connected = false;
        for (size_t index = c; index < prepared.size(); index += conns) {
          RunMeterMultiplexed(options, prepared[index], &client, &connected,
                              &stats);
        }
      });
    }
  } else {
    const size_t workers =
        std::min(options.concurrency == 0 ? 1 : options.concurrency,
                 prepared.size());
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&] {
        for (;;) {
          const size_t index = next.fetch_add(1, std::memory_order_relaxed);
          if (index >= prepared.size()) return;
          RunMeter(options, prepared[index], &stats);
        }
      });
    }
  }
  for (std::thread& thread : threads) thread.join();

  LoadgenReport report;
  report.meters_total = prepared.size();
  report.meters_ok = stats.meters_ok.load();
  report.meters_failed = stats.meters_failed.load();
  report.frames_sent = stats.frames_sent.load();
  report.symbols_sent = stats.symbols_sent.load();
  report.reconnects = stats.reconnects.load();
  report.batches_dropped = stats.batches_dropped.load();
  report.connections_opened = stats.connections_opened.load();
  report.throttled = stats.throttled.load();
  return report;
}

}  // namespace smeter::net
