#include "net/query_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <sstream>
#include <utility>

#include "common/fault_injection.h"
#include "net/wire.h"

namespace smeter::net {
namespace {

Status Errno(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

Result<int> BindQueryListener(const std::string& host, uint16_t port,
                              uint16_t* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("bad listen host '" + host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("bind " + host + ":" + std::to_string(port));
    ::close(fd);
    return status;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    Status status = Errno("getsockname");
    ::close(fd);
    return status;
  }
  *bound_port = ntohs(bound.sin_port);
  return fd;
}

}  // namespace

std::string QueryCounters::ToJson() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"connections_accepted\": " << connections_accepted << ",\n"
      << "  \"connections_active\": " << connections_active << ",\n"
      << "  \"connections_dropped\": " << connections_dropped << ",\n"
      << "  \"connections_shed\": " << connections_shed << ",\n"
      << "  \"frames_in\": " << frames_in << ",\n"
      << "  \"frames_out\": " << frames_out << ",\n"
      << "  \"bytes_in\": " << bytes_in << ",\n"
      << "  \"bytes_out\": " << bytes_out << ",\n"
      << "  \"decode_errors\": " << decode_errors << ",\n"
      << "  \"queries_point\": " << queries_point << ",\n"
      << "  \"queries_range\": " << queries_range << ",\n"
      << "  \"queries_aggregate\": " << queries_aggregate << ",\n"
      << "  \"throttles_sent\": " << throttles_sent << ",\n"
      << "  \"memory_throttled\": " << memory_throttled << ",\n"
      << "  \"idle_drops\": " << idle_drops << ",\n"
      << "  \"segments_read\": " << segments_read << ",\n"
      << "  \"current_refreshes\": " << current_refreshes << "\n"
      << "}";
  return out.str();
}

struct QueryServer::Connection {
  uint64_t id = 0;
  std::unique_ptr<BufferedFd> io;
  QuerySession session;
  int64_t last_active_ms = 0;
  // Set before a server-initiated close (drain grace, idle sweep, memory
  // throttle) so OnConnectionClosed does not also count it as dropped —
  // those closes have their own counters.
  bool administrative_close = false;

  Connection(uint64_t id, ArchiveStore* store, QuerySessionOptions options)
      : id(id), session(store, std::move(options)) {}
};

QueryServer::QueryServer(QueryServerOptions options)
    : options_(std::move(options)), stats_out_(&std::cerr) {}

QueryServer::~QueryServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Result<std::unique_ptr<QueryServer>> QueryServer::Create(
    QueryServerOptions options) {
  if (options.store_dir.empty()) {
    return InvalidArgumentError("query server needs a store directory");
  }
  auto server = std::unique_ptr<QueryServer>(
      new QueryServer(std::move(options)));
  ArchiveStoreOptions store_options;
  store_options.current_dir = server->options_.current_dir;
  Result<std::unique_ptr<ArchiveStore>> store =
      ArchiveStore::Open(server->options_.store_dir, store_options);
  if (!store.ok()) return store.status();
  server->store_ = std::move(*store);
  Result<int> fd = BindQueryListener(server->options_.host,
                                     server->options_.port, &server->port_);
  if (!fd.ok()) return fd.status();
  server->listen_fd_ = *fd;
  Result<std::unique_ptr<EventLoop>> loop = EventLoop::Create();
  if (!loop.ok()) return loop.status();
  server->loop_ = std::move(*loop);
  return server;
}

Status QueryServer::Run() {
  ScopedThreadRole owner(role_);
  {
    ThrottlePayload shed;
    shed.retry_after_ms = options_.throttle_retry_ms;
    shed.scope = ThrottleScope::kAdmission;
    shed.message = "query connection budget exceeded";
    shed_frame_ = EncodeFrame(MakeThrottle(shed));
  }
  {
    // Setup-time claim of the loop role, released before loop_->Run()
    // claims it for the loop's lifetime (the IngestShard pattern).
    ScopedThreadRole loop_owner(loop_->role());
    SMETER_RETURN_IF_ERROR(
        loop_->Add(listen_fd_, EPOLLIN | EPOLLET, [this](uint32_t) {
          ScopedThreadRole self(role_);
          OnAcceptable();
        }));
    accepting_ = true;
    loop_->SetWakeupHandler([this] {
      ScopedThreadRole self(role_);
      graveyard_.clear();
      if (stats_requested_.exchange(false)) DumpStats();
      if (drain_requested_.exchange(false)) BeginDrain();
    });
  }
  ScheduleIdleSweep();
  Status run = loop_->Run();
  // Snapshot the store gauges before connections die with the loop.
  counters_.segments_read = store_->segments_read();
  counters_.current_refreshes = store_->current_refreshes();
  connections_.clear();
  graveyard_.clear();
  return run;
}

void QueryServer::RequestDrain() {
  drain_requested_.store(true);
  loop_->Wakeup();
}

void QueryServer::RequestStatsDump() {
  stats_requested_.store(true);
  loop_->Wakeup();
}

QueryCounters QueryServer::counters() const { return LiveSnapshot(); }

QueryCounters QueryServer::LiveSnapshot() const {
  QueryCounters snapshot = counters_;
  snapshot.connections_active = connections_.size();
  if (store_ != nullptr) {
    snapshot.segments_read = store_->segments_read();
    snapshot.current_refreshes = store_->current_refreshes();
  }
  return snapshot;
}

void QueryServer::DumpStats() {
  (*stats_out_) << LiveSnapshot().ToJson() << "\n" << std::flush;
  stats_dumps_.fetch_add(1);
}

void QueryServer::OnAcceptable() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN ends the edge; any other transient accept failure must
      // never kill the daemon — the reader retries.
      return;
    }
    if (!accepting_) {
      ::close(fd);
      continue;
    }
    // Fault seam: a dropped accept costs one connection, not the server.
    if (Status fault = fault::Check("query.accept"); !fault.ok()) {
      ::close(fd);
      ++counters_.connections_dropped;
      continue;
    }
    if (options_.max_connections > 0 &&
        connections_.size() >=
            static_cast<size_t>(options_.max_connections)) {
      ShedConnection(fd);
      continue;
    }
    ++counters_.connections_accepted;
    AdoptConnection(fd);
  }
}

void QueryServer::ShedConnection(int fd) {
  // Best-effort: one pre-encoded THROTTLE, then close. A blocked send just
  // drops the hint; the refusal is the close itself.
  (void)::send(fd, shed_frame_.data(), shed_frame_.size(), MSG_DONTWAIT);
  ::close(fd);
  ++counters_.connections_shed;
  ++counters_.throttles_sent;
}

void QueryServer::AdoptConnection(int fd) {
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  QuerySessionOptions session_options;
  session_options.auth_token = options_.auth_token;
  session_options.max_scan_symbols = options_.max_scan_symbols;
  session_options.draining = draining_;
  auto conn = std::make_unique<Connection>(next_conn_id_++, store_.get(),
                                           std::move(session_options));
  Connection* raw = conn.get();
  raw->last_active_ms = EventLoop::NowMs();
  raw->io = std::make_unique<BufferedFd>(
      loop_.get(), fd,
      BufferedFd::Callbacks{
          [this, raw](std::string_view data) {
            ScopedThreadRole self(role_);
            return OnData(raw, data);
          },
          [this, raw](const Status& reason) {
            ScopedThreadRole self(role_);
            OnConnectionClosed(raw, reason);
          }},
      options_.high_watermark);
  ScopedThreadRole io_owner(raw->io->role());
  if (Status status = raw->io->Register(); !status.ok()) {
    return;  // the BufferedFd destructor closes the fd
  }
  connections_.emplace(raw->id, std::move(conn));
}

size_t QueryServer::OnData(Connection* conn, std::string_view data) {
  ScopedThreadRole writer(conn->session.writer_role());
  ScopedThreadRole io_owner(conn->io->role());
  conn->last_active_ms = EventLoop::NowMs();
  counters_.bytes_in += data.size();

  size_t consumed = 0;
  std::vector<Frame> replies;
  while (consumed < data.size()) {
    DecodeViewResult decoded = DecodeFrameView(data.substr(consumed));
    if (decoded.outcome == DecodeResult::Outcome::kNeedMore) break;
    if (decoded.outcome == DecodeResult::Outcome::kError) {
      // A torn or corrupted frame: the stream is unrecoverable past this
      // point, so answer and quarantine the connection.
      ++counters_.decode_errors;
      SendReplies(conn, {MakeQueryAck({WireStatus::kBadFrame,
                                       decoded.error.message()})});
      CloseConnection(conn, decoded.error);
      return data.size();
    }
    consumed += decoded.consumed;
    ++counters_.frames_in;
    const uint8_t type = static_cast<uint8_t>(decoded.frame.type);
    if (type == static_cast<uint8_t>(QueryFrameType::kPointQuery)) {
      ++counters_.queries_point;
    } else if (type == static_cast<uint8_t>(QueryFrameType::kRangeQuery)) {
      ++counters_.queries_range;
    } else if (type ==
               static_cast<uint8_t>(QueryFrameType::kAggregateQuery)) {
      ++counters_.queries_aggregate;
    }
    Frame frame;
    frame.type = decoded.frame.type;
    frame.payload.assign(decoded.frame.payload);
    replies.clear();
    conn->session.OnFrame(frame, &replies);
    SendReplies(conn, replies);
    if (conn->session.state() == QuerySession::State::kFailed) {
      CloseConnection(conn, conn->session.error());
      return data.size();
    }
    if (conn->io->closed()) return data.size();
    if (options_.exit_after_queries > 0) {
      queries_total_ = counters_.queries_point + counters_.queries_range +
                       counters_.queries_aggregate;
      if (queries_total_ >= options_.exit_after_queries && !draining_) {
        BeginDrain();
        return data.size();
      }
    }
  }
  if (conn->io->closed()) return data.size();
  return consumed;
}

void QueryServer::SendReplies(Connection* conn,
                              const std::vector<Frame>& replies) {
  if (replies.empty() || conn->io->closed()) return;
  std::string batch;
  for (const Frame& reply : replies) {
    batch += EncodeFrame(reply);
    ++counters_.frames_out;
  }
  // Memory knob: a reply burst that would blow the per-connection budget
  // becomes a THROTTLE and the connection closes — the server never
  // buffers an unbounded scan for a reader that is not draining it.
  if (options_.memory_budget > 0 &&
      conn->io->buffered_bytes() + batch.size() > options_.memory_budget) {
    ++counters_.memory_throttled;
    ++counters_.throttles_sent;
    ThrottlePayload throttle;
    throttle.retry_after_ms = options_.throttle_retry_ms;
    throttle.scope = ThrottleScope::kMemory;
    throttle.message = "reply exceeds the query memory budget";
    const std::string frame = EncodeFrame(MakeThrottle(throttle));
    counters_.bytes_out += frame.size();
    (void)conn->io->Send(frame);
    conn->administrative_close = true;
    CloseConnection(
        conn, FailedPreconditionError("query memory budget exceeded"));
    return;
  }
  counters_.bytes_out += batch.size();
  if (Status status = conn->io->Send(batch); !status.ok()) {
    CloseConnection(conn, status);
  }
}

void QueryServer::CloseConnection(Connection* conn, Status reason) {
  if (conn->io->closed()) return;
  conn->io->CloseAfterFlush(std::move(reason));
}

void QueryServer::OnConnectionClosed(Connection* conn,
                                     const Status& reason) {
  if (!reason.ok() && !conn->administrative_close) {
    ++counters_.connections_dropped;
  }
  auto it = connections_.find(conn->id);
  if (it == connections_.end()) return;
  // on_close can fire inside this connection's own BufferedFd callbacks;
  // destroying it here would free the object under its own feet. Park it
  // and let the wakeup handler sweep.
  graveyard_.push_back(std::move(it->second));
  connections_.erase(it);
  loop_->Wakeup();
  MaybeFinish();
}

void QueryServer::BeginDrain() {
  if (draining_) return;
  draining_ = true;
  accepting_ = false;
  {
    ScopedThreadRole loop_owner(loop_->role());
    (void)loop_->Remove(listen_fd_);
  }
  for (auto& [id, conn] : connections_) {
    ScopedThreadRole writer(conn->session.writer_role());
    conn->session.SetDraining();
  }
  if (connections_.empty()) {
    MaybeFinish();
    return;
  }
  ScopedThreadRole loop_owner(loop_->role());
  loop_->RunAfter(options_.drain_grace_ms, [this] {
    ScopedThreadRole self(role_);
    std::vector<Connection*> open;
    open.reserve(connections_.size());
    for (auto& [id, conn] : connections_) open.push_back(conn.get());
    for (Connection* conn : open) {
      conn->administrative_close = true;
      ScopedThreadRole io_owner(conn->io->role());
      conn->io->Close(FailedPreconditionError("drain grace expired"));
    }
    MaybeFinish();
  });
}

void QueryServer::MaybeFinish() {
  if (!draining_ || !connections_.empty()) return;
  ScopedThreadRole loop_owner(loop_->role());
  loop_->RunAfter(0, [this] { loop_->Stop(); });
}

void QueryServer::ScheduleIdleSweep() {
  if (options_.idle_timeout_ms <= 0 || idle_sweep_scheduled_) return;
  idle_sweep_scheduled_ = true;
  ScopedThreadRole loop_owner(loop_->role());
  loop_->RunAfter(std::max<int64_t>(options_.idle_timeout_ms / 4, 1),
                  [this] {
                    ScopedThreadRole self(role_);
                    idle_sweep_scheduled_ = false;
                    SweepIdle();
                    ScheduleIdleSweep();
                  });
}

void QueryServer::SweepIdle() {
  const int64_t now = EventLoop::NowMs();
  std::vector<Connection*> idle;
  for (auto& [id, conn] : connections_) {
    if (now - conn->last_active_ms >= options_.idle_timeout_ms) {
      idle.push_back(conn.get());
    }
  }
  for (Connection* conn : idle) {
    ++counters_.idle_drops;
    conn->administrative_close = true;
    ScopedThreadRole io_owner(conn->io->role());
    conn->io->Close(FailedPreconditionError("idle timeout"));
  }
}

}  // namespace smeter::net
