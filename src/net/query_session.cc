#include "net/query_session.h"

#include <algorithm>
#include <utility>

namespace smeter::net {
namespace {

// Maps an ArchiveStore evaluation error onto the wire status space.
WireStatus StatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
      return WireStatus::kNotFound;
    case StatusCode::kInvalidArgument:
      return WireStatus::kBadFrame;
    default:
      return WireStatus::kServerError;
  }
}

}  // namespace

QuerySession::QuerySession(ArchiveStore* store, QuerySessionOptions options)
    : store_(store), options_(std::move(options)) {}

void QuerySession::Fail(WireStatus status, Status error,
                        std::vector<Frame>* replies) {
  state_ = State::kFailed;
  error_ = std::move(error);
  replies->push_back(MakeQueryAck({status, error_.message()}));
}

void QuerySession::OnFrame(const Frame& frame, std::vector<Frame>* replies) {
  if (state_ == State::kFailed) return;
  const uint8_t type = static_cast<uint8_t>(frame.type);
  if (!IsQueryFrameType(type)) {
    // An ingest frame or a future revision's type: refuse per-frame, keep
    // the connection (the ingest session gives query frames the same
    // courtesy).
    replies->push_back(MakeQueryAck(
        {WireStatus::kUnsupported,
         "frame type " + std::to_string(type) +
             " is not a query protocol frame"}));
    return;
  }
  switch (static_cast<QueryFrameType>(type)) {
    case QueryFrameType::kQueryHello:
      OnHello(frame, replies);
      return;
    case QueryFrameType::kPointQuery:
      OnPoint(frame, replies);
      return;
    case QueryFrameType::kRangeQuery:
      OnRange(frame, replies);
      return;
    case QueryFrameType::kAggregateQuery:
      OnAggregate(frame, replies);
      return;
    // Server-to-client frames arriving at the server are a protocol
    // violation, not a future extension.
    case QueryFrameType::kQueryAck:
    case QueryFrameType::kPointResult:
    case QueryFrameType::kRangeResult:
    case QueryFrameType::kAggregateResult:
      Fail(WireStatus::kBadState,
           InvalidArgumentError("client sent a server-side frame type " +
                                std::to_string(type)),
           replies);
      return;
  }
}

void QuerySession::OnHello(const Frame& frame, std::vector<Frame>* replies) {
  if (state_ != State::kExpectHello) {
    Fail(WireStatus::kBadState,
         InvalidArgumentError("QUERY_HELLO after the handshake"), replies);
    return;
  }
  Result<QueryHelloPayload> hello = ParseQueryHello(frame);
  if (!hello.ok()) {
    Fail(WireStatus::kBadFrame, hello.status(), replies);
    return;
  }
  if (options_.draining) {
    Fail(WireStatus::kDraining,
         FailedPreconditionError("server is draining; retry elsewhere"),
         replies);
    return;
  }
  if (hello->protocol_version > kQueryProtocolVersion) {
    Fail(WireStatus::kUnauthorized,
         InvalidArgumentError(
             "query protocol version " +
             std::to_string(hello->protocol_version) + " is newer than " +
             std::to_string(kQueryProtocolVersion)),
         replies);
    return;
  }
  if (!options_.auth_token.empty() &&
      hello->auth_token != options_.auth_token) {
    Fail(WireStatus::kUnauthorized,
         InvalidArgumentError("auth token rejected"), replies);
    return;
  }
  state_ = State::kServing;
  replies->push_back(MakeQueryAck({WireStatus::kOk, ""}));
}

void QuerySession::OnPoint(const Frame& frame, std::vector<Frame>* replies) {
  if (state_ != State::kServing) {
    Fail(WireStatus::kBadState,
         InvalidArgumentError("POINT_QUERY before QUERY_HELLO"), replies);
    return;
  }
  Result<PointQueryPayload> query = ParsePointQuery(frame);
  if (!query.ok()) {
    Fail(WireStatus::kBadFrame, query.status(), replies);
    return;
  }
  ++queries_served_;
  PointResultPayload result;
  result.request_id = query->request_id;
  if (store_ == nullptr) {
    result.status = WireStatus::kServerError;
    result.message = "no store attached";
    replies->push_back(MakePointResult(result));
    return;
  }
  Result<PointValue> value = store_->Latest(query->meter_id);
  if (!value.ok()) {
    result.status = StatusFor(value.status());
    result.message = value.status().message();
    replies->push_back(MakePointResult(result));
    return;
  }
  result.timestamp = value->timestamp;
  result.level = static_cast<uint8_t>(value->level);
  result.symbol =
      value->symbol == kStoreGapSymbol ? kWireGapSymbol : value->symbol;
  replies->push_back(MakePointResult(result));
}

void QuerySession::OnRange(const Frame& frame, std::vector<Frame>* replies) {
  if (state_ != State::kServing) {
    Fail(WireStatus::kBadState,
         InvalidArgumentError("RANGE_QUERY before QUERY_HELLO"), replies);
    return;
  }
  Result<RangeQueryPayload> query = ParseRangeQuery(frame);
  if (!query.ok()) {
    Fail(WireStatus::kBadFrame, query.status(), replies);
    return;
  }
  ++queries_served_;
  RangeResultPayload result;
  result.request_id = query->request_id;
  if (store_ == nullptr) {
    result.status = WireStatus::kServerError;
    result.message = "no store attached";
    replies->push_back(MakeRangeResult(result));
    return;
  }
  const size_t cap =
      std::min<uint32_t>(query->max_symbols, options_.max_scan_symbols);
  Result<RangeScanResult> scan =
      store_->Scan(query->meter_id, {query->start, query->end},
                   query->level, cap);
  if (!scan.ok()) {
    result.status = StatusFor(scan.status());
    result.message = scan.status().message();
    replies->push_back(MakeRangeResult(result));
    return;
  }
  result.start_timestamp = scan->start_timestamp;
  result.step_seconds = scan->step_seconds;
  result.level = static_cast<uint8_t>(scan->level);
  result.truncated = scan->truncated ? 1 : 0;
  result.symbols = std::move(scan->symbols);
  replies->push_back(MakeRangeResult(result));
}

void QuerySession::OnAggregate(const Frame& frame,
                               std::vector<Frame>* replies) {
  if (state_ != State::kServing) {
    Fail(WireStatus::kBadState,
         InvalidArgumentError("AGGREGATE_QUERY before QUERY_HELLO"),
         replies);
    return;
  }
  Result<AggregateQueryPayload> query = ParseAggregateQuery(frame);
  if (!query.ok()) {
    Fail(WireStatus::kBadFrame, query.status(), replies);
    return;
  }
  ++queries_served_;
  AggregateResultPayload result;
  result.request_id = query->request_id;
  if (store_ == nullptr) {
    result.status = WireStatus::kServerError;
    result.message = "no store attached";
    replies->push_back(MakeAggregateResult(result));
    return;
  }
  Result<FleetAggregate> aggregate =
      store_->Aggregate({query->start, query->end}, query->level);
  if (!aggregate.ok()) {
    result.status = StatusFor(aggregate.status());
    result.message = aggregate.status().message();
    replies->push_back(MakeAggregateResult(result));
    return;
  }
  result.level = static_cast<uint8_t>(aggregate->level);
  result.meters = aggregate->meters;
  result.meters_coarser = aggregate->meters_coarser;
  result.windows = aggregate->windows;
  result.gaps = aggregate->gaps;
  result.rollup_partitions = aggregate->rollup_partitions;
  result.scanned_partitions = aggregate->scanned_partitions;
  result.histogram = std::move(aggregate->histogram);
  replies->push_back(MakeAggregateResult(result));
}

}  // namespace smeter::net
