// Length-prefixed binary wire protocol between meters and the ingestion
// daemon (the paper's deployment model, Section 2 / Figure 2: "the lookup
// table is built once at the sensor level and then sent to the aggregation
// server before starting to send the symbolic data").
//
// Frame layout (little-endian):
//   payload_len  u32   bytes of payload after the 9-byte frame header
//   type         u8    FrameType
//   crc          u32   crc32c over the type byte followed by the payload
//   payload      payload_len bytes
//
// Every frame carries its own CRC32C, so a torn TCP stream, a damaged
// middlebox, or a hostile peer is detected at the frame boundary — the
// receiver either gets the exact bytes the sender framed or a kDataLoss
// error, never a silently wrong symbol. payload_len is bounded by
// kMaxFramePayload before any allocation, so a corrupt length can not ask
// the server for gigabytes.
//
// Conversation (client = meter, server = ingestd):
//   HELLO(meter id, auth token)        -> HELLO_ACK(status)
//   TABLE_ANNOUNCE(version, table)     -> TABLE_ACK(status)
//   SYMBOL_BATCH(seq, t0, step, syms)  -> BATCH_ACK(seq, status)   (repeat)
//   PING(nonce)                        -> PONG(nonce)        (any time after
//                                                             HELLO)
//   GOODBYE(quality counts)            -> GOODBYE_ACK(status), then close
//
// Every server reply carries an explicit WireStatus; a non-kOk status on
// any ack fails the session (the server also closes it). The payload
// codecs below are strict — trailing bytes, truncated fields, and
// out-of-range enums are errors — so Encode/Parse are exact inverses and
// the pair is closed under fuzzing (see tests/fuzz/fuzz_wire.cc).
//
// This layer is pure: no sockets, no I/O, no global state.

#ifndef SMETER_NET_WIRE_H_
#define SMETER_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace smeter::net {

// Protocol revision spoken by this tree; HELLO carries the client's.
// v2 adds the THROTTLE push-back frame. The server still accepts v1
// clients; a v1 peer that receives a THROTTLE treats it as an unknown
// frame and drops the connection, which degrades to the same observable
// outcome (refused, retry later) without the retry_after_ms hint.
inline constexpr uint16_t kProtocolVersion = 2;

// Hard ceiling on one frame's payload. A serialized lookup table is a few
// KB and a symbol batch a few KB, so 4 MiB is generous headroom while
// keeping a corrupt or hostile length harmless.
inline constexpr uint32_t kMaxFramePayload = 1u << 22;

// Bytes before the payload: u32 len + u8 type + u32 crc.
inline constexpr size_t kFrameHeaderBytes = 9;

// On-wire symbol value standing for the GAP (missing window) symbol.
// Value symbols are their alphabet index (< 2^12, see kMaxSymbolLevel).
inline constexpr uint16_t kWireGapSymbol = 0xffff;

enum class FrameType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kTableAnnounce = 3,
  kTableAck = 4,
  kSymbolBatch = 5,
  kBatchAck = 6,
  kPing = 7,
  kPong = 8,
  kGoodbye = 9,
  kGoodbyeAck = 10,
  // Server push-back (v2): "not now — retry in retry_after_ms". Sent in
  // place of the ack the client was waiting for (or as the only frame on
  // a shed connection, immediately before close). Carries the overload
  // scope so clients and operators can tell a flood from a full disk.
  kThrottle = 11,
};

// True for the types above. Forward compatibility: an unknown type byte is
// NOT a decode error — DecodeFrame hands a CRC-valid frame of any type to
// the caller, and the session refuses it with a typed kUnsupported ack
// while keeping the connection usable. A v2 server therefore survives a
// v3 client probing a future frame type instead of desyncing on it; the
// CRC (computed over type byte + payload) still guarantees the unknown
// frame was framed intact, so skipping it cannot lose stream sync.
bool IsKnownFrameType(uint8_t type);

// Status code carried by every server reply.
enum class WireStatus : uint8_t {
  kOk = 0,
  kBadFrame = 1,      // unparseable payload
  kBadState = 2,      // frame legal but not in this session state
  kUnauthorized = 3,  // HELLO rejected (token/version)
  kBadTable = 4,      // TABLE_ANNOUNCE failed CRC or parse
  kOutOfOrder = 5,    // batch timestamps rewind or misalign
  kBadBatch = 6,      // batch internally inconsistent (level, symbols)
  kDraining = 7,      // server is shutting down; retry elsewhere/later
  kServerError = 8,   // persistence or internal failure
  // The request's frame type is from a future protocol revision this peer
  // does not speak. The refusal is per-frame: the connection and session
  // state survive, so an old server and a new client can negotiate down
  // instead of desyncing (see IsKnownFrameType).
  kUnsupported = 9,
  // Query protocol (query_wire.h): the meter or window has no data. Never
  // sent by the ingest daemon; per-query, the connection survives.
  kNotFound = 10,
};

std::string WireStatusName(WireStatus status);

// One decoded frame: the type byte plus the raw payload (already
// CRC-verified by DecodeFrame).
struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;

  friend bool operator==(const Frame& a, const Frame& b) {
    return a.type == b.type && a.payload == b.payload;
  }
};

// Serializes one frame (header + CRC + payload).
std::string EncodeFrame(const Frame& frame);

// Outcome of one DecodeFrame call over a byte buffer.
struct DecodeResult {
  enum class Outcome {
    kFrame,     // `frame` holds the next frame; `consumed` bytes are done
    kNeedMore,  // buffer holds a valid prefix; read more bytes
    kError,     // stream is unrecoverable at this point (see `error`)
  };
  Outcome outcome = Outcome::kNeedMore;
  Frame frame;
  size_t consumed = 0;
  Status error;
};

// Decodes the first frame of `buffer`. kError covers an oversized or
// zero-confidence length field (kInvalidArgument) and a CRC mismatch
// (kDataLoss); a short buffer is kNeedMore, never an error, so a streaming
// reader can accumulate bytes. An unknown (future) frame type that passes
// its CRC decodes as kFrame — refusing it is session policy, not framing
// policy (see IsKnownFrameType).
DecodeResult DecodeFrame(std::string_view buffer);

// Zero-copy decoded frame: `payload` points INTO the caller's receive
// buffer (already CRC-verified), valid only until that buffer mutates.
// The server's hot path decodes views straight out of the BufferedFd ring
// so a SYMBOL_BATCH never pays a per-frame payload copy.
struct FrameView {
  FrameType type = FrameType::kHello;
  std::string_view payload;
};

struct DecodeViewResult {
  DecodeResult::Outcome outcome = DecodeResult::Outcome::kNeedMore;
  FrameView frame;
  size_t consumed = 0;
  Status error;
};

// Identical validation and outcomes to DecodeFrame (which is a thin
// copying wrapper over this), minus the payload copy.
DecodeViewResult DecodeFrameView(std::string_view buffer);

// --- typed payloads ---------------------------------------------------------
//
// Every payload struct has a Make* builder (returns a ready-to-encode
// Frame) and a strict Parse* that errors (kInvalidArgument) on truncation,
// trailing bytes, or field values outside the domain. Strings are u16
// length-prefixed and capped at kMaxWireString; the builders clamp longer
// strings to that cap so every frame a Make* produces parses.

inline constexpr size_t kMaxWireString = 1024;

// Timestamp/step bounds enforced by ParseSymbolBatch. ±2^53 seconds is
// ~285 million years around the epoch, and one step is capped at 2^31
// seconds (~68 years), so all server-side cadence arithmetic
// (start + step * windows, with windows bounded by kMaxFramePayload and
// the per-session symbol cap) stays far inside int64 — a hostile batch
// can not drive the session into signed-overflow UB.
inline constexpr int64_t kMaxWireTimestamp = int64_t{1} << 53;
inline constexpr int64_t kMaxWireStepSeconds = int64_t{1} << 31;

// True iff `meter_id` is safe to use verbatim as an archive file stem and
// a fleet.manifest record: non-empty, at most kMaxWireString bytes, every
// byte in [A-Za-z0-9_.-], and not made of dots only. The charset excludes
// '/', '\', NUL, and newlines, so a hostile HELLO can neither traverse
// out of the archive directory nor forge manifest records.
bool IsValidMeterId(std::string_view meter_id);

struct HelloPayload {
  uint16_t protocol_version = kProtocolVersion;
  std::string meter_id;    // must satisfy IsValidMeterId
  std::string auth_token;  // may be empty (server decides)
};

struct AckPayload {  // HELLO_ACK, TABLE_ACK, GOODBYE_ACK
  WireStatus status = WireStatus::kOk;
  std::string message;  // empty on kOk
};

struct TableAnnouncePayload {
  uint32_t table_version = 1;
  // LookupTable::Serialize() bytes, crc32c footer included; the server
  // validates the footer via Deserialize before accepting.
  std::string table_blob;
};

struct SymbolBatchPayload {
  uint64_t seq = 0;           // 1-based, strictly consecutive per session
  int64_t start_timestamp = 0;
  int64_t step_seconds = 0;   // > 0
  uint8_t level = 1;          // bits per symbol, [1, kMaxSymbolLevel]
  // Symbol alphabet indices (< 2^level), or kWireGapSymbol for GAP.
  std::vector<uint16_t> symbols;  // non-empty
};

// Zero-copy SYMBOL_BATCH header: `symbols` points at `count` little-endian
// u16 values inside the frame payload. Header fields are fully validated
// (level/step/timestamp ranges, count vs payload size) but the symbol
// values are NOT range-checked here — the session's ingest loop does that
// in one vectorizable pass instead of a per-symbol cursor walk
// (ParseSymbolBatch, the copying parser, still checks every symbol).
struct SymbolBatchView {
  uint64_t seq = 0;
  int64_t start_timestamp = 0;
  int64_t step_seconds = 0;
  uint8_t level = 1;
  uint32_t count = 0;
  const unsigned char* symbols = nullptr;

  uint16_t symbol(uint32_t i) const {
    return static_cast<uint16_t>(
        static_cast<uint16_t>(symbols[2 * i]) |
        (static_cast<uint16_t>(symbols[2 * i + 1]) << 8));
  }
};

Result<SymbolBatchView> ParseSymbolBatchView(const FrameView& frame);

struct BatchAckPayload {
  uint64_t seq = 0;
  WireStatus status = WireStatus::kOk;
  std::string message;
};

struct PingPayload {
  uint64_t nonce = 0;
};

// Which overload mechanism produced a THROTTLE. Parsed strictly: any
// value outside [kAdmission, kDisk] is a kInvalidArgument.
enum class ThrottleScope : uint8_t {
  kAdmission = 1,  // connection budget exceeded or fd exhaustion shed
  kRate = 2,       // per-meter token bucket empty
  kMemory = 3,     // global ingest-memory budget exceeded
  kDisk = 4,       // archive sink circuit open (ENOSPC/EDQUOT)
};

std::string ThrottleScopeName(ThrottleScope scope);

struct ThrottlePayload {
  uint32_t retry_after_ms = 0;  // 0 = "soon"; client adds its own jitter
  ThrottleScope scope = ThrottleScope::kAdmission;
  std::string message;  // human-readable detail, may be empty
};

struct GoodbyePayload {
  // The client's own EncodeQuality counts; the server cross-checks them
  // against the symbols it received before persisting.
  uint64_t windows_valid = 0;
  uint64_t windows_partial = 0;
  uint64_t windows_gap = 0;
};

Frame MakeHello(const HelloPayload& payload);
Frame MakeAck(FrameType type, const AckPayload& payload);
Frame MakeTableAnnounce(const TableAnnouncePayload& payload);
Frame MakeSymbolBatch(const SymbolBatchPayload& payload);
Frame MakeBatchAck(const BatchAckPayload& payload);
Frame MakePing(uint64_t nonce);
Frame MakePong(uint64_t nonce);
Frame MakeGoodbye(const GoodbyePayload& payload);
Frame MakeThrottle(const ThrottlePayload& payload);

Result<HelloPayload> ParseHello(const Frame& frame);
Result<AckPayload> ParseAck(const Frame& frame);  // any of the three acks
Result<TableAnnouncePayload> ParseTableAnnounce(const Frame& frame);
Result<SymbolBatchPayload> ParseSymbolBatch(const Frame& frame);
Result<BatchAckPayload> ParseBatchAck(const Frame& frame);
Result<PingPayload> ParsePing(const Frame& frame);  // kPing or kPong
Result<GoodbyePayload> ParseGoodbye(const Frame& frame);
Result<ThrottlePayload> ParseThrottle(const Frame& frame);

}  // namespace smeter::net

#endif  // SMETER_NET_WIRE_H_
