#include "net/event_loop.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <utility>

#include "common/fault_injection.h"

namespace smeter::net {
namespace {

Status Errno(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

// --- EventLoop --------------------------------------------------------------

Result<std::unique_ptr<EventLoop>> EventLoop::Create() {
  int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) return Errno("epoll_create1");
  int timer_fd = ::timerfd_create(CLOCK_MONOTONIC,
                                  TFD_NONBLOCK | TFD_CLOEXEC);
  if (timer_fd < 0) {
    Status status = Errno("timerfd_create");
    ::close(epoll_fd);
    return status;
  }
  int wakeup_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wakeup_fd < 0) {
    Status status = Errno("eventfd");
    ::close(timer_fd);
    ::close(epoll_fd);
    return status;
  }
  std::unique_ptr<EventLoop> loop(
      new EventLoop(epoll_fd, timer_fd, wakeup_fd));
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = timer_fd;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, timer_fd, &event) != 0) {
    return Errno("epoll_ctl(timerfd)");
  }
  event.data.fd = wakeup_fd;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wakeup_fd, &event) != 0) {
    return Errno("epoll_ctl(eventfd)");
  }
  return loop;
}

EventLoop::EventLoop(int epoll_fd, int timer_fd, int wakeup_fd)
    : epoll_fd_(epoll_fd), timer_fd_(timer_fd), wakeup_fd_(wakeup_fd) {}

EventLoop::~EventLoop() {
  ::close(wakeup_fd_);
  ::close(timer_fd_);
  ::close(epoll_fd_);
}

Status EventLoop::Add(int fd, uint32_t events, FdHandler handler) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    return Errno("epoll_ctl(add fd " + std::to_string(fd) + ")");
  }
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
  return Status::Ok();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
    return Errno("epoll_ctl(mod fd " + std::to_string(fd) + ")");
  }
  return Status::Ok();
}

Status EventLoop::Remove(int fd) {
  handlers_.erase(fd);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return Errno("epoll_ctl(del fd " + std::to_string(fd) + ")");
  }
  return Status::Ok();
}

int64_t EventLoop::NowMs() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

uint64_t EventLoop::RunAfter(int64_t delay_ms, std::function<void()> callback) {
  Timer timer;
  timer.deadline_ms = NowMs() + std::max<int64_t>(delay_ms, 0);
  const uint64_t id = timer.id = next_timer_id_++;
  timer.callback = std::move(callback);
  timers_.push_back(std::move(timer));
  std::sort(timers_.begin(), timers_.end(),
            [](const Timer& a, const Timer& b) {
              return a.deadline_ms != b.deadline_ms
                         ? a.deadline_ms < b.deadline_ms
                         : a.id < b.id;
            });
  ArmTimer();
  return id;
}

void EventLoop::CancelTimer(uint64_t id) {
  timers_.erase(std::remove_if(timers_.begin(), timers_.end(),
                               [id](const Timer& t) { return t.id == id; }),
                timers_.end());
  ArmTimer();
}

void EventLoop::ArmTimer() {
  itimerspec spec{};
  if (!timers_.empty()) {
    const int64_t deadline = timers_.front().deadline_ms;
    spec.it_value.tv_sec = deadline / 1000;
    spec.it_value.tv_nsec = (deadline % 1000) * 1000000;
    // An already-due deadline must still fire: it_value == {0,0} would
    // *disarm* timerfd, so clamp to one nanosecond in the past's stead.
    if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0) {
      spec.it_value.tv_nsec = 1;
    }
  }
  ::timerfd_settime(timer_fd_, TFD_TIMER_ABSTIME, &spec, nullptr);
}

void EventLoop::RunDueTimers() {
  uint64_t expirations = 0;
  while (::read(timer_fd_, &expirations, sizeof(expirations)) ==
         static_cast<ssize_t>(sizeof(expirations))) {
  }
  const int64_t now = NowMs();
  // Collect first, then run: callbacks may add or cancel timers.
  std::vector<Timer> due;
  auto split = std::find_if(timers_.begin(), timers_.end(),
                            [now](const Timer& t) {
                              return t.deadline_ms > now;
                            });
  due.assign(std::make_move_iterator(timers_.begin()),
             std::make_move_iterator(split));
  timers_.erase(timers_.begin(), split);
  ArmTimer();
  for (Timer& timer : due) timer.callback();
}

void EventLoop::DrainWakeup() {
  uint64_t value = 0;
  while (::read(wakeup_fd_, &value, sizeof(value)) ==
         static_cast<ssize_t>(sizeof(value))) {
  }
  if (wakeup_handler_) wakeup_handler_();
}

void EventLoop::SetWakeupHandler(std::function<void()> handler) {
  wakeup_handler_ = std::move(handler);
}

void EventLoop::Wakeup() {
  // Async-signal-safe: a single write(2); the counter semantics of
  // eventfd coalesce concurrent wakeups.
  const uint64_t one = 1;
  ssize_t ignored = ::write(wakeup_fd_, &one, sizeof(one));
  (void)ignored;
}

Status EventLoop::RunOnce(int timeout_ms) {
  epoll_event events[64];
  int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return Status::Ok();
    return Errno("epoll_wait");
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == timer_fd_) {
      RunDueTimers();
      continue;
    }
    if (fd == wakeup_fd_) {
      DrainWakeup();
      continue;
    }
    // Look the handler up per event: an earlier handler in this batch may
    // have removed (or replaced) this fd. Copy the shared_ptr so a handler
    // that removes itself mid-call stays alive until it returns.
    auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;
    std::shared_ptr<FdHandler> handler = it->second;
    (*handler)(events[i].events);
  }
  return Status::Ok();
}

Status EventLoop::Run() {
  // The calling thread is the loop thread until Run() returns.
  ScopedThreadRole loop_thread(role_);
  running_ = true;
  while (running_) {
    SMETER_RETURN_IF_ERROR(RunOnce(-1));
  }
  return Status::Ok();
}

void EventLoop::Stop() { running_ = false; }

// --- BufferedFd -------------------------------------------------------------

BufferedFd::BufferedFd(EventLoop* loop, int fd, Callbacks callbacks,
                       size_t high_watermark)
    : loop_(loop),
      fd_(fd),
      callbacks_(std::move(callbacks)),
      high_watermark_(high_watermark == 0 ? 1 : high_watermark) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

BufferedFd::~BufferedFd() {
  // Destruction happens on the loop thread (class contract), so claiming
  // the loop role for the deregistration is sound.
  ScopedThreadRole loop_thread(loop_->role());
  if (registered_) (void)loop_->Remove(fd_);
  ::close(fd_);
}

Status BufferedFd::Register() {
  ScopedThreadRole loop_thread(loop_->role());
  SMETER_RETURN_IF_ERROR(loop_->Add(fd_, EPOLLIN | EPOLLET,
                                    [this](uint32_t events) {
                                      // Dispatched on the loop thread, the
                                      // one owner of this connection.
                                      ScopedThreadRole owner(role_);
                                      OnEvents(events);
                                    }));
  registered_ = true;
  return Status::Ok();
}

void BufferedFd::UpdateInterest() {
  if (closed_ || !registered_) return;
  uint32_t events = EPOLLET;
  if (!paused_) events |= EPOLLIN;
  if (want_write_) events |= EPOLLOUT;
  ScopedThreadRole loop_thread(loop_->role());
  (void)loop_->Modify(fd_, events);
}

void BufferedFd::OnEvents(uint32_t events) {
  if (closed_) return;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    // Flush what we can (the peer may have shut down only its read side),
    // then fall through to the read path, which reports EOF or the error.
    (void)FlushSome();
  }
  if ((events & EPOLLOUT) != 0) HandleWritable();
  if (closed_) return;
  if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) HandleReadable();
}

void BufferedFd::HandleReadable() {
  if (paused_) return;
  char chunk[kReadChunk];
  bool eof = false;
  for (;;) {
    if (Status fault = fault::Check("net.read"); !fault.ok()) {
      Close(std::move(fault));
      return;
    }
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      bytes_in_ += static_cast<uint64_t>(n);
      std::string_view received(chunk, static_cast<size_t>(n));
      // Wire-damage seam: tests flip bits in received chunks; the frame
      // CRC above this layer must catch every one of them.
      std::string corrupted;
      if (fault::MaybeCorrupt("net.frame", received, &corrupted)) {
        in_ += corrupted;
      } else {
        in_ += received;
      }
      continue;
    }
    if (n == 0) {
      // Clean EOF. Bytes read in this same event are still delivered to
      // on_data below before the close fires.
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    Close(Errno("read"));
    return;
  }
  DeliverInput();
  if (closed_) return;
  if (eof) Close(Status::Ok());
}

void BufferedFd::DeliverInput() {
  if (!in_.empty() && callbacks_.on_data) {
    const size_t consumed = callbacks_.on_data(in_);
    if (closed_) return;
    if (consumed >= in_.size()) {
      in_.clear();
    } else if (consumed > 0) {
      in_.erase(0, consumed);
    }
  }
}

void BufferedFd::InjectInput(std::string_view data) {
  if (closed_) return;
  in_ += data;
}

void BufferedFd::Pump() {
  if (closed_) return;
  DeliverInput();
}

BufferedFd::Released BufferedFd::ReleaseFd() {
  Released released;
  if (closed_) return released;
  if (registered_) {
    ScopedThreadRole loop_thread(loop_->role());
    (void)loop_->Remove(fd_);
    registered_ = false;
  }
  closed_ = true;
  released.fd = fd_;
  fd_ = -1;  // the destructor's ::close(-1) is harmless
  released.pending_in = std::move(in_);
  in_.clear();
  return released;
}

Status BufferedFd::FlushSome() {
  while (!out_.empty()) {
    SMETER_RETURN_IF_ERROR(fault::Check("net.write"));
    ssize_t n = ::write(fd_, out_.data(), out_.size());
    if (n > 0) {
      bytes_out_ += static_cast<uint64_t>(n);
      out_.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return Errno("write");
  }
  const bool need_write = !out_.empty();
  if (need_write != want_write_) {
    want_write_ = need_write;
    UpdateInterest();
  }
  // Backpressure: pause reading while the peer is slower than our output.
  // stalled_since_ms_ marks when the stall began (write-stall deadline
  // accounting); only this peer-not-draining path sets it, never
  // CloseAfterFlush's read pause.
  if (!paused_ && out_.size() > high_watermark_) {
    paused_ = true;
    ++stalls_;
    stalled_since_ms_ = EventLoop::NowMs();
    UpdateInterest();
  } else if (paused_ && out_.size() <= high_watermark_ / 2) {
    paused_ = false;
    stalled_since_ms_ = 0;
    UpdateInterest();
  }
  return Status::Ok();
}

void BufferedFd::HandleWritable() {
  if (Status status = FlushSome(); !status.ok()) {
    Close(std::move(status));
    return;
  }
  if (close_after_flush_ && out_.empty()) Close(close_reason_);
}

Status BufferedFd::Send(std::string_view data) {
  if (closed_) return FailedPreconditionError("send on closed connection");
  out_ += data;
  Status status = FlushSome();
  if (!status.ok()) {
    Close(status);
    return status;
  }
  if (close_after_flush_ && out_.empty()) Close(close_reason_);
  return Status::Ok();
}

Status BufferedFd::SendVec(const std::string_view* parts, size_t count) {
  if (closed_) return FailedPreconditionError("send on closed connection");
  if (count == 0) return Status::Ok();
  size_t index = 0;  // first part not yet fully written
  size_t skip = 0;   // bytes of parts[index] already written
  if (out_.empty()) {
    // Hot path: everything leaves in one writev(2), no buffer copy.
    constexpr size_t kMaxIov = 64;
    iovec iov[kMaxIov];
    const size_t segments = std::min(count, kMaxIov);
    for (size_t i = 0; i < segments; ++i) {
      iov[i].iov_base = const_cast<char*>(parts[i].data());
      iov[i].iov_len = parts[i].size();
    }
    if (Status fault = fault::Check("net.write"); !fault.ok()) {
      Close(fault);
      return fault;
    }
    ssize_t n = 0;
    do {
      n = ::writev(fd_, iov, static_cast<int>(segments));
    } while (n < 0 && errno == EINTR);
    if (n >= 0) {
      ++writev_calls_;
      writev_segments_ += segments;
      bytes_out_ += static_cast<uint64_t>(n);
      size_t written = static_cast<size_t>(n);
      while (index < count && written >= parts[index].size()) {
        written -= parts[index].size();
        ++index;
      }
      skip = written;
    } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
      Status status = Errno("writev");
      Close(status);
      return status;
    }
  }
  for (; index < count; ++index) {
    out_ += parts[index].substr(skip);
    skip = 0;
  }
  Status status = FlushSome();
  if (!status.ok()) {
    Close(status);
    return status;
  }
  if (close_after_flush_ && out_.empty()) Close(close_reason_);
  return Status::Ok();
}

void BufferedFd::CloseAfterFlush(Status reason) {
  if (closed_) return;
  close_after_flush_ = true;
  close_reason_ = std::move(reason);
  paused_ = true;  // stop reading; we only drain the output now
  UpdateInterest();
  if (out_.empty()) Close(close_reason_);
}

void BufferedFd::Close(Status reason) {
  if (closed_) return;
  closed_ = true;
  if (registered_) {
    ScopedThreadRole loop_thread(loop_->role());
    (void)loop_->Remove(fd_);
    registered_ = false;
  }
  ::shutdown(fd_, SHUT_RDWR);
  if (callbacks_.on_close) callbacks_.on_close(reason);
}

}  // namespace smeter::net
