// The aggregation-server ingestion daemon: a single-threaded epoll accept
// loop that speaks the symbolic wire protocol with thousands of meters and
// streams completed sessions into a durable v3 archive.
//
// Architecture (one connection, left to right):
//
//   accept -> BufferedFd (edge-triggered read/write buffers, backpressure)
//          -> DecodeFrame (length-prefixed, crc32c-checked)
//          -> Session (per-meter protocol state machine)
//          -> ArchiveSink (atomic table/symbols files + manifest record)
//
// Failure containment: a torn frame, a bad table, an out-of-order batch,
// or a mid-stream disconnect quarantines THAT session — the server sends
// the closing status ack, drops the connection, counts it, and keeps
// serving. The `net.accept` fault seam drops individual accepts the same
// way. The daemon only exits on Stop()/drain.
//
// Drain (SIGTERM/SIGINT path): RequestDrain() is thread- and
// async-signal-safe. The loop thread then stops accepting, refuses new
// HELLOs with kDraining, gives in-flight sessions `drain_grace_ms` to
// finish, force-closes stragglers, finalizes the sink (sorted manifest +
// quality.json), and returns from Run(). RequestStatsDump() (SIGUSR1)
// prints the counters JSON without stopping.

#ifndef SMETER_NET_INGEST_SERVER_H_
#define SMETER_NET_INGEST_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "net/archive_sink.h"
#include "net/event_loop.h"
#include "net/session.h"
#include "net/wire.h"

namespace smeter::net {

struct IngestServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 binds an ephemeral port (see IngestServer::port)
  std::string archive_dir;
  bool resume = false;  // carry prior manifest records (crash restart)
  std::string auth_token;
  // A connection silent for this long is closed (0 disables the sweep).
  int64_t idle_timeout_ms = 30'000;
  // Output-buffer backpressure high-watermark per connection.
  size_t high_watermark = 1u << 20;
  // How long draining sessions get to finish before being force-closed.
  int64_t drain_grace_ms = 5'000;
  // Drain automatically once this many DISTINCT meters have completed a
  // session in this run (0 = never); lets tests and soak jobs run the real
  // binary to a deterministic end. Records carried from a prior run via
  // --resume do not count by themselves — a resumed server waits until
  // every counted meter has been (re-)acknowledged this run, so it cannot
  // drain before slow reconnecting meters get their duplicate acks.
  uint64_t exit_after_households = 0;
  // Per-session protocol limits (auth_token/draining are overwritten).
  SessionOptions session;
};

// Monotonic counters, dumped as JSON on SIGUSR1 and at exit. Plain
// uint64_t: mutated only on the loop thread, read via Counters() snapshot.
struct IngestCounters {
  uint64_t sessions_accepted = 0;
  uint64_t sessions_active = 0;
  uint64_t sessions_completed = 0;
  uint64_t sessions_dropped = 0;  // protocol/decode/io failures + timeouts
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t decode_errors = 0;
  uint64_t backpressure_stalls = 0;
  uint64_t households_persisted = 0;
  uint64_t symbols_persisted = 0;

  std::string ToJson() const;
};

class IngestServer {
 public:
  // Binds and listens, opens the archive sink, creates the event loop.
  static Result<std::unique_ptr<IngestServer>> Create(
      IngestServerOptions options);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  // Serves until drained/stopped, then finalizes the archive. Returns the
  // first fatal error (a finalize failure), OK on a clean drain. Claims
  // the server role for its duration: the calling thread owns all server
  // state until Run() returns.
  Status Run();

  // Thread- and async-signal-safe: begin a graceful drain. The only
  // methods callable while another thread runs the server.
  void RequestDrain();
  // Thread- and async-signal-safe: dump counters JSON to `stats_out`.
  void RequestStatsDump();

  // The bound port (useful when options.port was 0).
  uint16_t port() const { return port_; }
  const IngestCounters& counters() const REQUIRES(role_) {
    return counters_;
  }
  // Where RequestStatsDump() writes; defaults to std::cerr. Owner-only:
  // call before handing the server to its loop thread, or after Run()
  // returned.
  void set_stats_out(std::ostream* out) REQUIRES(role_) { stats_out_ = out; }

  // The server's single-owner capability (the loop thread while Run() is
  // live; tests claim it around setup and post-run assertions).
  ThreadRole& role() RETURN_CAPABILITY(role_) { return role_; }

 private:
  struct Connection {
    uint64_t id = 0;
    std::unique_ptr<BufferedFd> io;
    Session session;
    int64_t last_active_ms = 0;

    Connection(uint64_t id, SessionOptions session_options)
        : id(id), session(std::move(session_options)) {}
  };

  IngestServer(IngestServerOptions options, int listen_fd, uint16_t port,
               std::unique_ptr<EventLoop> loop,
               std::unique_ptr<ArchiveSink> sink);

  void OnAcceptable() REQUIRES(role_);
  void AdoptConnection(int fd) REQUIRES(role_);
  // Feeds `data` to the connection's frame decoder; returns bytes consumed.
  size_t OnData(Connection* conn, std::string_view data) REQUIRES(role_);
  void OnConnectionClosed(Connection* conn, const Status& reason)
      REQUIRES(role_);
  void SendFrames(Connection* conn, const std::vector<Frame>& frames)
      REQUIRES(role_);
  void FinishSession(Connection* conn) REQUIRES(role_);
  void FailConnection(Connection* conn, WireStatus status, Status error)
      REQUIRES(role_);
  void SweepIdle() REQUIRES(role_);
  void OnWakeup() REQUIRES(role_);
  void BeginDrain() REQUIRES(role_);
  void FinishDrainIfIdle() REQUIRES(role_);
  void ReapClosed() REQUIRES(role_);

  IngestServerOptions options_;
  int listen_fd_ GUARDED_BY(role_);
  uint16_t port_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<ArchiveSink> sink_;
  ThreadRole role_;
  std::ostream* stats_out_ GUARDED_BY(role_);

  uint64_t next_conn_id_ GUARDED_BY(role_) = 1;
  std::map<uint64_t, std::unique_ptr<Connection>> connections_
      GUARDED_BY(role_);
  // Connections whose on_close fired mid-callback; freed next loop pass.
  std::vector<std::unique_ptr<Connection>> graveyard_ GUARDED_BY(role_);
  bool reap_scheduled_ GUARDED_BY(role_) = false;

  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> stats_requested_{false};
  bool draining_ GUARDED_BY(role_) = false;
  bool finalized_ GUARDED_BY(role_) = false;
  Status exit_status_ GUARDED_BY(role_);
  IngestCounters counters_ GUARDED_BY(role_);
  // Meters acknowledged in THIS run (fresh persists and duplicate acks,
  // not failed persists) — the completion set behind
  // options_.exit_after_households.
  std::set<std::string> completed_this_run_ GUARDED_BY(role_);
};

// Parses "host:port" (or ":port" / "port") into options fields.
Status ParseListenAddress(const std::string& address, std::string* host,
                          uint16_t* port);

}  // namespace smeter::net

#endif  // SMETER_NET_INGEST_SERVER_H_
