// The aggregation-server ingestion daemon: N independent per-core epoll
// shards that speak the symbolic wire protocol with thousands of meters
// and stream completed sessions into one durable v3 archive.
//
// Architecture (one connection, left to right):
//
//   accept (per-shard SO_REUSEPORT listener)
//          -> HELLO peek: hash(meter id) pins the connection to its home
//             shard; a connection accepted elsewhere is handed off fd +
//             buffered bytes through the target shard's mailbox (eventfd
//             wakeup) before any frame is consumed
//          -> BufferedFd (edge-triggered read/write buffers, backpressure)
//          -> DecodeFrameView (length-prefixed, crc32c-checked, zero-copy:
//             payloads are views into the receive buffer)
//          -> Session (per-meter protocol state machine; SYMBOL_BATCH is
//             validated in one vectorizable sweep and bulk-appended)
//          -> per-event acks coalesce into one scatter-gather writev
//          -> ArchiveSink (atomic table/symbols files + per-shard manifest
//             append log, unioned at Finalize/resume/fsck)
//
// Sharding model: `threads` shards, each one EventLoop on its own thread
// with its own listener (SO_REUSEPORT spreads accepts), connection table,
// and counters. A meter's HELLO hash-pins its connection to shard
// ShardForMeter(meter, threads), so a Session has exactly one writer
// thread for its whole life and reconnects always land on the same shard
// — the single-writer rule stays machine-checked per shard (DESIGN.md
// §13/§14). Where SO_REUSEPORT is unavailable (or force_single_acceptor
// is set), shard 0 owns the only listener and deals fds round-robin
// through the same mailbox; the HELLO peek then re-homes them by hash.
//
// Connections are kept alive after GOODBYE_ACK: the session resets to
// ExpectHello so one TCP connection can carry many meters back-to-back
// (loadgen --connections). Follow-on sessions stay on the connection's
// shard; correctness never depends on placement (the sink deduplicates by
// meter across shards), only locality does.
//
// Failure containment: a torn frame, a bad table, an out-of-order batch,
// or a mid-stream disconnect quarantines THAT session — the shard sends
// the closing status ack, drops the connection, counts it, and keeps
// serving. The `net.accept` fault seam drops individual accepts the same
// way. The daemon only exits on Stop()/drain.
//
// Drain (SIGTERM/SIGINT path): RequestDrain() is thread- and
// async-signal-safe; every shard then stops accepting, refuses new HELLOs
// with kDraining, gives in-flight sessions `drain_grace_ms` to finish,
// force-closes stragglers, and stops its loop. Run() joins the shard
// threads, finalizes the sink once (sorted manifest + quality.json), and
// returns. RequestStatsDump() (SIGUSR1) aggregates every shard's counters
// into one JSON blob {"shards":[...],"total":{...}} without stopping.

#ifndef SMETER_NET_INGEST_SERVER_H_
#define SMETER_NET_INGEST_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "net/archive_sink.h"
#include "net/event_loop.h"
#include "net/session.h"
#include "net/wire.h"

namespace smeter::net {

struct IngestServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 binds an ephemeral port (see IngestServer::port)
  std::string archive_dir;
  bool resume = false;  // carry prior manifest records (crash restart)
  std::string auth_token;
  // Shard (event-loop thread) count; clamped to [1, 64]. Each shard gets
  // its own SO_REUSEPORT listener unless force_single_acceptor is set.
  int threads = 1;
  // Fallback topology: only shard 0 listens and deals accepted fds
  // round-robin to the shards through the handoff mailboxes. Chosen
  // automatically when SO_REUSEPORT is unavailable; tests force it to
  // drill the handoff path deterministically.
  bool force_single_acceptor = false;
  // A connection silent for this long is closed (0 disables the sweep).
  int64_t idle_timeout_ms = 30'000;
  // Output-buffer backpressure high-watermark per connection.
  size_t high_watermark = 1u << 20;
  // --- overload protection (0 = the mechanism is off) ---
  //
  // Global admitted-connection budget across all shards. A connection
  // over budget is shed at accept time: one best-effort THROTTLE frame
  // (scope=admission) and an immediate close.
  int max_connections = 0;
  // Per-shard admitted-connection cap, enforced where the connection is
  // adopted (in single-acceptor mode the deal happens before adoption, so
  // the cap binds on the shard that would host the connection).
  int max_connections_per_shard = 0;
  // Global ingest-memory budget in bytes: the sum over all connections of
  // userspace read/write buffers plus in-flight (unpersisted) session
  // samples. A SYMBOL_BATCH that would land while usage is over budget
  // gets a THROTTLE (scope=memory) and the connection is dropped so its
  // buffers free immediately.
  size_t memory_budget = 0;
  // Per-meter session-start rate limit, in HELLOs per second per meter
  // (token bucket, burst = max(1, rate_limit)). The bucket lives on the
  // meter's home shard, so reconnects and handoffs see one bucket.
  double rate_limit = 0;
  // Drop a connection whose output buffer has sat past the backpressure
  // high-watermark (the peer is not draining its acks) for this long.
  int64_t write_stall_ms = 0;
  // Baseline retry_after_ms hint in THROTTLE frames; rate-limit throttles
  // compute a tighter hint from the token deficit instead.
  uint32_t throttle_retry_ms = 250;
  // SO_SNDBUF for accepted connections (0 = kernel default). Bounding the
  // kernel's send buffer makes the write-stall deadline testable: a
  // non-reading peer then backs the output up into BufferedFd quickly.
  int sndbuf_bytes = 0;
  // Cadence of the ENOSPC circuit breaker's disk-space probes.
  int64_t probe_interval_ms = 200;
  // How long draining sessions get to finish before being force-closed.
  int64_t drain_grace_ms = 5'000;
  // Drain automatically once this many DISTINCT meters have completed a
  // session in this run (0 = never); lets tests and soak jobs run the real
  // binary to a deterministic end. The completion set is shared across
  // shards. Records carried from a prior run via --resume do not count by
  // themselves — a resumed server waits until every counted meter has been
  // (re-)acknowledged this run, so it cannot drain before slow
  // reconnecting meters get their duplicate acks.
  uint64_t exit_after_households = 0;
  // Per-session protocol limits (auth_token/draining are overwritten).
  SessionOptions session;
};

// Monotonic counters, aggregated across shards on SIGUSR1 and at exit.
// Plain uint64_t: each shard mutates only its own copy on its own loop
// thread; cross-shard reads go through snapshots.
struct IngestCounters {
  uint64_t sessions_accepted = 0;
  uint64_t sessions_active = 0;
  uint64_t sessions_completed = 0;
  uint64_t sessions_dropped = 0;  // protocol/decode/io failures + timeouts
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t decode_errors = 0;
  uint64_t backpressure_stalls = 0;
  uint64_t handoffs_in = 0;   // connections adopted from another shard
  uint64_t handoffs_out = 0;  // connections re-homed to another shard
  uint64_t acks_batched = 0;  // reply frames coalesced into writev batches
  uint64_t writev_calls = 0;
  uint64_t writev_segments = 0;
  uint64_t households_persisted = 0;
  uint64_t symbols_persisted = 0;
  // Overload-protection counters (PR 8). Every field here must appear in
  // ToJson(): tools/lint_invariants.py's counters-dumped rule enforces it.
  uint64_t connections_shed = 0;   // refused at accept (budget or EMFILE)
  uint64_t accepts_emfile = 0;     // reserved-fd EMFILE hatch activations
  uint64_t throttles_sent = 0;     // THROTTLE frames sent, all scopes
  uint64_t rate_limited = 0;       // HELLOs refused by the token bucket
  uint64_t memory_throttled = 0;   // batches refused by the memory budget
  uint64_t idle_drops = 0;         // connections dropped by idle timeout
  uint64_t write_stall_drops = 0;  // dropped by the write-stall deadline
  uint64_t persists_paused = 0;    // persists deferred while circuit open
  uint64_t circuit_opens = 0;      // disk-full trips of the breaker
  uint64_t ingest_memory_bytes = 0;  // gauge: tracked buffer+batch bytes

  // Field-wise sum (the gauges sessions_active and ingest_memory_bytes
  // included: live totals).
  void Add(const IngestCounters& other);
  std::string ToJson() const;
};

// Stable meter -> shard pinning hash (FNV-1a over the meter id). Exposed
// so tests and capacity tooling can predict a meter's home shard; changing
// this function reshuffles the whole fleet's shard affinity.
uint64_t MeterShardHash(std::string_view meter_id);
int ShardForMeter(std::string_view meter_id, int shards);

class IngestShard;

class IngestServer {
 public:
  // Binds and listens (one socket per shard, or one total in
  // single-acceptor mode), opens the archive sink with one stripe per
  // shard, creates the per-shard event loops.
  static Result<std::unique_ptr<IngestServer>> Create(
      IngestServerOptions options);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  // Serves until drained/stopped: runs shard 0 on the calling thread and
  // shards 1..N-1 on their own threads, joins them all, then finalizes the
  // archive. Returns the first fatal error (a shard loop or finalize
  // failure), OK on a clean drain. Claims the server role for its
  // duration: the calling thread owns all cross-shard state until Run()
  // returns.
  Status Run();

  // Thread- and async-signal-safe: begin a graceful drain on every shard.
  // The only methods callable while other threads run the server.
  void RequestDrain();
  // Thread- and async-signal-safe: collect every shard's counters and
  // write one aggregated JSON blob to `stats_out`.
  void RequestStatsDump();

  // The bound port (useful when options.port was 0).
  uint16_t port() const { return port_; }
  int shard_count() const { return static_cast<int>(shards_.size()); }
  // Aggregate counters across shards. Owner-only: call after Run()
  // returned (or before it starts).
  IngestCounters counters() const REQUIRES(role_);
  // One shard's counters, same ownership contract.
  IngestCounters shard_counters(int shard) const REQUIRES(role_);
  // Completed aggregate stats dumps (each SIGUSR1 increments this once the
  // JSON hit stats_out); lets tests await an in-flight dump.
  uint64_t stats_dumps() const { return stats_dumps_.load(); }
  // Where RequestStatsDump() writes; defaults to std::cerr. Owner-only:
  // call before handing the server to its loop threads, or after Run()
  // returned.
  void set_stats_out(std::ostream* out) REQUIRES(role_) { stats_out_ = out; }

  // The server's owner capability (the thread calling Run(); tests claim
  // it around setup and post-run assertions). Per-shard state is guarded
  // by each shard's own role.
  ThreadRole& role() RETURN_CAPABILITY(role_) { return role_; }

 private:
  friend class IngestShard;

  explicit IngestServer(IngestServerOptions options);

  // Shard -> server upcalls (thread-safe; called from shard loop threads).
  //
  // Records a completed meter in the shared this-run set; returns true
  // when exit_after_households just tripped (the calling shard drains
  // itself synchronously, the server wakes the rest).
  bool NoteCompleted(const std::string& meter);
  // One shard's stats snapshot for an in-flight SIGUSR1 dump; the last
  // shard to publish writes the aggregate blob.
  void PublishStats(int shard, const IngestCounters& snapshot);
  // Global admission budget (options.max_connections). TryAdmit charges
  // one slot and refuses (without charging) when the budget is exhausted;
  // every admitted connection releases exactly once when it dies on
  // whichever shard hosts it then (handoffs carry the charge along).
  bool TryAdmit();
  void ReleaseAdmission();
  // Global ingest-memory gauge (options.memory_budget): shards fold their
  // per-connection tracked deltas in and read the fleet-wide total.
  void AddMemoryUsage(int64_t delta);
  int64_t memory_usage() const { return memory_usage_.load(); }

  IngestShard* shard(int index) { return shards_[size_t(index)].get(); }
  ArchiveSink* sink() { return sink_.get(); }
  const IngestServerOptions& options() const { return options_; }

  IngestServerOptions options_;
  uint16_t port_ = 0;
  std::unique_ptr<ArchiveSink> sink_;
  std::vector<std::unique_ptr<IngestShard>> shards_;
  ThreadRole role_;
  std::ostream* stats_out_;

  // Shared across shards: meters acknowledged in THIS run (fresh persists
  // and duplicate acks, not failed persists) — the completion set behind
  // options_.exit_after_households.
  Mutex completed_mutex_;
  std::set<std::string> completed_this_run_ GUARDED_BY(completed_mutex_);
  bool drain_triggered_ GUARDED_BY(completed_mutex_) = false;

  // In-flight SIGUSR1 aggregation: slots fill as shards publish; the last
  // one prints.
  Mutex stats_mutex_;
  std::vector<std::optional<IngestCounters>> pending_stats_
      GUARDED_BY(stats_mutex_);
  std::atomic<uint64_t> stats_dumps_{0};

  // Shared overload gauges (lock-free: shards touch these on their hot
  // paths). admitted_ counts live connections fleet-wide; memory_usage_
  // sums every shard's tracked per-connection bytes.
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> memory_usage_{0};
};

// Parses "host:port" (or ":port" / "port") into options fields.
Status ParseListenAddress(const std::string& address, std::string* host,
                          uint16_t* port);

}  // namespace smeter::net

#endif  // SMETER_NET_INGEST_SERVER_H_
