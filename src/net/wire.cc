#include "net/wire.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/io.h"
#include "core/symbol.h"
#include "net/wire_codec.h"

namespace smeter::net {
namespace {

// Byte-level writers and the strict Reader live in wire_codec.h, shared
// with the query-protocol codec (query_wire.cc).
using wire_internal::PutI64;
using wire_internal::PutString;
using wire_internal::PutU16;
using wire_internal::PutU32;
using wire_internal::PutU64;
using wire_internal::PutU8;
using wire_internal::Reader;

Status ExpectType(const Frame& frame, FrameType want, const char* name) {
  if (frame.type != want) {
    return InvalidArgumentError(std::string("frame is not a ") + name);
  }
  return Status::Ok();
}

uint32_t FrameCrc(uint8_t type, std::string_view payload) {
  const char type_byte = static_cast<char>(type);
  uint32_t crc = io::Crc32c(std::string_view(&type_byte, 1));
  return io::Crc32c(payload, crc);
}

}  // namespace

bool IsValidMeterId(std::string_view meter_id) {
  if (meter_id.empty() || meter_id.size() > kMaxWireString) return false;
  bool all_dots = true;
  for (char c : meter_id) {
    const bool allowed = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                         (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                         c == '-';
    if (!allowed) return false;
    if (c != '.') all_dots = false;
  }
  // "." and ".." (and longer dot runs) are path components, not names.
  return !all_dots;
}

bool IsKnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kThrottle);
}

std::string WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kBadFrame: return "bad_frame";
    case WireStatus::kBadState: return "bad_state";
    case WireStatus::kUnauthorized: return "unauthorized";
    case WireStatus::kBadTable: return "bad_table";
    case WireStatus::kOutOfOrder: return "out_of_order";
    case WireStatus::kBadBatch: return "bad_batch";
    case WireStatus::kDraining: return "draining";
    case WireStatus::kServerError: return "server_error";
    case WireStatus::kUnsupported: return "unsupported";
    case WireStatus::kNotFound: return "not_found";
  }
  return "unknown";
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  PutU32(out, static_cast<uint32_t>(frame.payload.size()));
  PutU8(out, static_cast<uint8_t>(frame.type));
  PutU32(out, FrameCrc(static_cast<uint8_t>(frame.type), frame.payload));
  out += frame.payload;
  return out;
}

DecodeViewResult DecodeFrameView(std::string_view buffer) {
  DecodeViewResult result;
  if (buffer.size() < kFrameHeaderBytes) {
    result.outcome = DecodeResult::Outcome::kNeedMore;
    return result;
  }
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(static_cast<uint8_t>(buffer[i]))
                   << (8 * i);
  }
  if (payload_len > kMaxFramePayload) {
    result.outcome = DecodeResult::Outcome::kError;
    result.error = InvalidArgumentError(
        "frame payload length " + std::to_string(payload_len) +
        " exceeds the " + std::to_string(kMaxFramePayload) + " byte cap");
    return result;
  }
  // No frame-type gate here: a CRC-valid frame of an unknown (future) type
  // decodes fine and the session layer refuses it with kUnsupported, so
  // the stream stays in sync across protocol revisions.
  const uint8_t type = static_cast<uint8_t>(buffer[4]);
  if (buffer.size() < kFrameHeaderBytes + payload_len) {
    result.outcome = DecodeResult::Outcome::kNeedMore;
    return result;
  }
  uint32_t wire_crc = 0;
  for (int i = 0; i < 4; ++i) {
    wire_crc |= static_cast<uint32_t>(static_cast<uint8_t>(buffer[5 + i]))
                << (8 * i);
  }
  std::string_view payload = buffer.substr(kFrameHeaderBytes, payload_len);
  if (FrameCrc(type, payload) != wire_crc) {
    result.outcome = DecodeResult::Outcome::kError;
    result.error = DataLossError("frame CRC mismatch (type " +
                                 std::to_string(type) + ", " +
                                 std::to_string(payload_len) +
                                 " payload bytes)");
    return result;
  }
  result.outcome = DecodeResult::Outcome::kFrame;
  result.frame.type = static_cast<FrameType>(type);
  result.frame.payload = payload;
  result.consumed = kFrameHeaderBytes + payload_len;
  return result;
}

DecodeResult DecodeFrame(std::string_view buffer) {
  DecodeViewResult view = DecodeFrameView(buffer);
  DecodeResult result;
  result.outcome = view.outcome;
  result.consumed = view.consumed;
  result.error = std::move(view.error);
  if (view.outcome == DecodeResult::Outcome::kFrame) {
    result.frame.type = view.frame.type;
    result.frame.payload = std::string(view.frame.payload);
  }
  return result;
}

// --- typed payloads ---------------------------------------------------------

Frame MakeHello(const HelloPayload& payload) {
  Frame frame;
  frame.type = FrameType::kHello;
  PutU16(frame.payload, payload.protocol_version);
  PutString(frame.payload, payload.meter_id);
  PutString(frame.payload, payload.auth_token);
  return frame;
}

Result<HelloPayload> ParseHello(const Frame& frame) {
  SMETER_RETURN_IF_ERROR(ExpectType(frame, FrameType::kHello, "HELLO"));
  Reader reader(frame.payload);
  HelloPayload hello;
  Result<uint16_t> version = reader.TakeU16();
  if (!version.ok()) return version.status();
  hello.protocol_version = *version;
  Result<std::string> meter = reader.TakeString(kMaxWireString);
  if (!meter.ok()) return meter.status();
  hello.meter_id = std::move(*meter);
  Result<std::string> token = reader.TakeString(kMaxWireString);
  if (!token.ok()) return token.status();
  hello.auth_token = std::move(*token);
  SMETER_RETURN_IF_ERROR(reader.ExpectExhausted());
  // The meter id becomes an archive file stem and a manifest record, so
  // the strict parser refuses anything outside [A-Za-z0-9_.-] (path
  // separators, "..", control bytes) before the session layer sees it.
  if (!IsValidMeterId(hello.meter_id)) {
    return InvalidArgumentError(
        "HELLO meter id is empty, all dots, or has bytes outside "
        "[A-Za-z0-9_.-]");
  }
  return hello;
}

Frame MakeAck(FrameType type, const AckPayload& payload) {
  Frame frame;
  frame.type = type;
  PutU8(frame.payload, static_cast<uint8_t>(payload.status));
  PutString(frame.payload, payload.message);
  return frame;
}

Result<AckPayload> ParseAck(const Frame& frame) {
  if (frame.type != FrameType::kHelloAck &&
      frame.type != FrameType::kTableAck &&
      frame.type != FrameType::kGoodbyeAck) {
    return InvalidArgumentError("frame is not an ack");
  }
  Reader reader(frame.payload);
  AckPayload ack;
  Result<uint8_t> status = reader.TakeU8();
  if (!status.ok()) return status.status();
  if (*status > static_cast<uint8_t>(WireStatus::kNotFound)) {
    return InvalidArgumentError("unknown wire status " +
                                std::to_string(*status));
  }
  ack.status = static_cast<WireStatus>(*status);
  Result<std::string> message = reader.TakeString(kMaxWireString);
  if (!message.ok()) return message.status();
  ack.message = std::move(*message);
  SMETER_RETURN_IF_ERROR(reader.ExpectExhausted());
  return ack;
}

Frame MakeTableAnnounce(const TableAnnouncePayload& payload) {
  Frame frame;
  frame.type = FrameType::kTableAnnounce;
  PutU32(frame.payload, payload.table_version);
  PutU32(frame.payload, static_cast<uint32_t>(payload.table_blob.size()));
  frame.payload += payload.table_blob;
  return frame;
}

Result<TableAnnouncePayload> ParseTableAnnounce(const Frame& frame) {
  SMETER_RETURN_IF_ERROR(
      ExpectType(frame, FrameType::kTableAnnounce, "TABLE_ANNOUNCE"));
  Reader reader(frame.payload);
  TableAnnouncePayload announce;
  Result<uint32_t> version = reader.TakeU32();
  if (!version.ok()) return version.status();
  announce.table_version = *version;
  Result<uint32_t> blob_len = reader.TakeU32();
  if (!blob_len.ok()) return blob_len.status();
  if (*blob_len != reader.remaining()) {
    return InvalidArgumentError("table blob length disagrees with payload");
  }
  announce.table_blob =
      std::string(frame.payload.substr(frame.payload.size() - *blob_len));
  return announce;
}

Frame MakeSymbolBatch(const SymbolBatchPayload& payload) {
  Frame frame;
  frame.type = FrameType::kSymbolBatch;
  PutU64(frame.payload, payload.seq);
  PutI64(frame.payload, payload.start_timestamp);
  PutI64(frame.payload, payload.step_seconds);
  PutU8(frame.payload, payload.level);
  PutU32(frame.payload, static_cast<uint32_t>(payload.symbols.size()));
  for (uint16_t symbol : payload.symbols) PutU16(frame.payload, symbol);
  return frame;
}

Result<SymbolBatchView> ParseSymbolBatchView(const FrameView& frame) {
  if (frame.type != FrameType::kSymbolBatch) {
    return InvalidArgumentError("frame is not a SYMBOL_BATCH");
  }
  Reader reader(frame.payload);
  SymbolBatchView batch;
  Result<uint64_t> seq = reader.TakeU64();
  if (!seq.ok()) return seq.status();
  batch.seq = *seq;
  Result<int64_t> start = reader.TakeI64();
  if (!start.ok()) return start.status();
  batch.start_timestamp = *start;
  Result<int64_t> step = reader.TakeI64();
  if (!step.ok()) return step.status();
  batch.step_seconds = *step;
  Result<uint8_t> level = reader.TakeU8();
  if (!level.ok()) return level.status();
  batch.level = *level;
  if (batch.level < 1 || batch.level > kMaxSymbolLevel) {
    return InvalidArgumentError("batch level " + std::to_string(batch.level) +
                                " outside [1, " +
                                std::to_string(kMaxSymbolLevel) + "]");
  }
  if (batch.step_seconds <= 0 || batch.step_seconds > kMaxWireStepSeconds) {
    return InvalidArgumentError(
        "batch step " + std::to_string(batch.step_seconds) +
        " outside (0, " + std::to_string(kMaxWireStepSeconds) + "]");
  }
  if (batch.start_timestamp < -kMaxWireTimestamp ||
      batch.start_timestamp > kMaxWireTimestamp) {
    return InvalidArgumentError(
        "batch start timestamp " + std::to_string(batch.start_timestamp) +
        " outside ±" + std::to_string(kMaxWireTimestamp));
  }
  Result<uint32_t> count = reader.TakeU32();
  if (!count.ok()) return count.status();
  if (*count == 0) return InvalidArgumentError("empty symbol batch");
  if (reader.remaining() != static_cast<size_t>(*count) * 2) {
    return InvalidArgumentError("symbol count disagrees with payload size");
  }
  batch.count = *count;
  // The remaining payload IS the symbol array; hand out a pointer instead
  // of cursoring through it so the caller can scan it in bulk.
  batch.symbols = reinterpret_cast<const unsigned char*>(
      frame.payload.data() + (frame.payload.size() - reader.remaining()));
  return batch;
}

Result<SymbolBatchPayload> ParseSymbolBatch(const Frame& frame) {
  Result<SymbolBatchView> view =
      ParseSymbolBatchView({frame.type, frame.payload});
  if (!view.ok()) return view.status();
  SymbolBatchPayload batch;
  batch.seq = view->seq;
  batch.start_timestamp = view->start_timestamp;
  batch.step_seconds = view->step_seconds;
  batch.level = view->level;
  const uint32_t alphabet = 1u << batch.level;
  batch.symbols.reserve(view->count);
  for (uint32_t i = 0; i < view->count; ++i) {
    const uint16_t symbol = view->symbol(i);
    if (symbol != kWireGapSymbol && symbol >= alphabet) {
      return InvalidArgumentError("symbol " + std::to_string(symbol) +
                                  " outside the level-" +
                                  std::to_string(batch.level) + " alphabet");
    }
    batch.symbols.push_back(symbol);
  }
  return batch;
}

Frame MakeBatchAck(const BatchAckPayload& payload) {
  Frame frame;
  frame.type = FrameType::kBatchAck;
  PutU64(frame.payload, payload.seq);
  PutU8(frame.payload, static_cast<uint8_t>(payload.status));
  PutString(frame.payload, payload.message);
  return frame;
}

Result<BatchAckPayload> ParseBatchAck(const Frame& frame) {
  SMETER_RETURN_IF_ERROR(
      ExpectType(frame, FrameType::kBatchAck, "BATCH_ACK"));
  Reader reader(frame.payload);
  BatchAckPayload ack;
  Result<uint64_t> seq = reader.TakeU64();
  if (!seq.ok()) return seq.status();
  ack.seq = *seq;
  Result<uint8_t> status = reader.TakeU8();
  if (!status.ok()) return status.status();
  if (*status > static_cast<uint8_t>(WireStatus::kNotFound)) {
    return InvalidArgumentError("unknown wire status " +
                                std::to_string(*status));
  }
  ack.status = static_cast<WireStatus>(*status);
  Result<std::string> message = reader.TakeString(kMaxWireString);
  if (!message.ok()) return message.status();
  ack.message = std::move(*message);
  SMETER_RETURN_IF_ERROR(reader.ExpectExhausted());
  return ack;
}

Frame MakePing(uint64_t nonce) {
  Frame frame;
  frame.type = FrameType::kPing;
  PutU64(frame.payload, nonce);
  return frame;
}

Frame MakePong(uint64_t nonce) {
  Frame frame;
  frame.type = FrameType::kPong;
  PutU64(frame.payload, nonce);
  return frame;
}

Result<PingPayload> ParsePing(const Frame& frame) {
  if (frame.type != FrameType::kPing && frame.type != FrameType::kPong) {
    return InvalidArgumentError("frame is not a PING/PONG");
  }
  Reader reader(frame.payload);
  PingPayload ping;
  Result<uint64_t> nonce = reader.TakeU64();
  if (!nonce.ok()) return nonce.status();
  ping.nonce = *nonce;
  SMETER_RETURN_IF_ERROR(reader.ExpectExhausted());
  return ping;
}

Frame MakeGoodbye(const GoodbyePayload& payload) {
  Frame frame;
  frame.type = FrameType::kGoodbye;
  PutU64(frame.payload, payload.windows_valid);
  PutU64(frame.payload, payload.windows_partial);
  PutU64(frame.payload, payload.windows_gap);
  return frame;
}

std::string ThrottleScopeName(ThrottleScope scope) {
  switch (scope) {
    case ThrottleScope::kAdmission: return "admission";
    case ThrottleScope::kRate: return "rate";
    case ThrottleScope::kMemory: return "memory";
    case ThrottleScope::kDisk: return "disk";
  }
  return "unknown";
}

Frame MakeThrottle(const ThrottlePayload& payload) {
  Frame frame;
  frame.type = FrameType::kThrottle;
  PutU32(frame.payload, payload.retry_after_ms);
  PutU8(frame.payload, static_cast<uint8_t>(payload.scope));
  PutString(frame.payload, payload.message);
  return frame;
}

Result<ThrottlePayload> ParseThrottle(const Frame& frame) {
  SMETER_RETURN_IF_ERROR(
      ExpectType(frame, FrameType::kThrottle, "THROTTLE"));
  Reader reader(frame.payload);
  ThrottlePayload throttle;
  Result<uint32_t> retry = reader.TakeU32();
  if (!retry.ok()) return retry.status();
  throttle.retry_after_ms = *retry;
  Result<uint8_t> scope = reader.TakeU8();
  if (!scope.ok()) return scope.status();
  if (*scope < static_cast<uint8_t>(ThrottleScope::kAdmission) ||
      *scope > static_cast<uint8_t>(ThrottleScope::kDisk)) {
    return InvalidArgumentError("unknown throttle scope " +
                                std::to_string(*scope));
  }
  throttle.scope = static_cast<ThrottleScope>(*scope);
  Result<std::string> message = reader.TakeString(kMaxWireString);
  if (!message.ok()) return message.status();
  throttle.message = std::move(*message);
  SMETER_RETURN_IF_ERROR(reader.ExpectExhausted());
  return throttle;
}

Result<GoodbyePayload> ParseGoodbye(const Frame& frame) {
  SMETER_RETURN_IF_ERROR(ExpectType(frame, FrameType::kGoodbye, "GOODBYE"));
  Reader reader(frame.payload);
  GoodbyePayload goodbye;
  Result<uint64_t> valid = reader.TakeU64();
  if (!valid.ok()) return valid.status();
  goodbye.windows_valid = *valid;
  Result<uint64_t> partial = reader.TakeU64();
  if (!partial.ok()) return partial.status();
  goodbye.windows_partial = *partial;
  Result<uint64_t> gap = reader.TakeU64();
  if (!gap.ok()) return gap.status();
  goodbye.windows_gap = *gap;
  SMETER_RETURN_IF_ERROR(reader.ExpectExhausted());
  return goodbye;
}

}  // namespace smeter::net
