#include "net/query_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/wire.h"

namespace smeter::net {
namespace {

Status Errno(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

}  // namespace

// Blocking framed transport; same shape as the SDK uploader's, without the
// edge-device fault seams (queryd soak kills the server, not the client).
class QueryClient::Transport {
 public:
  ~Transport() {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Connect(const std::string& host, uint16_t port,
                 int64_t timeout_ms) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return Errno("socket");
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    const int enable = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return InvalidArgumentError("bad host '" + host + "'");
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Errno("connect " + host + ":" + std::to_string(port));
    }
    return Status::Ok();
  }

  Status SendFrame(const Frame& frame) {
    const std::string bytes = EncodeFrame(frame);
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      return Errno("write");
    }
    return Status::Ok();
  }

  Result<Frame> RecvFrame() {
    for (;;) {
      DecodeResult decoded = DecodeFrame(in_);
      if (decoded.outcome == DecodeResult::Outcome::kFrame) {
        in_.erase(0, decoded.consumed);
        return std::move(decoded.frame);
      }
      if (decoded.outcome == DecodeResult::Outcome::kError) {
        return decoded.error;
      }
      char chunk[16 * 1024];
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n > 0) {
        in_.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) return InternalError("server closed the connection");
      if (errno == EINTR) continue;
      return Errno("read");
    }
  }

 private:
  int fd_ = -1;
  std::string in_;
};

QueryClient::QueryClient(QueryClientOptions options)
    : options_(std::move(options)),
      transport_(std::make_unique<Transport>()) {}

QueryClient::~QueryClient() = default;

Result<std::unique_ptr<QueryClient>> QueryClient::Connect(
    QueryClientOptions options) {
  auto client =
      std::unique_ptr<QueryClient>(new QueryClient(std::move(options)));
  SMETER_RETURN_IF_ERROR(client->transport_->Connect(
      client->options_.host, client->options_.port,
      client->options_.timeout_ms));
  QueryHelloPayload hello;
  hello.protocol_version = kQueryProtocolVersion;
  hello.auth_token = client->options_.auth_token;
  Result<Frame> ack_frame = client->RoundTrip(
      MakeQueryHello(hello),
      static_cast<uint8_t>(QueryFrameType::kQueryAck));
  if (!ack_frame.ok()) return ack_frame.status();
  Result<QueryAckPayload> ack = ParseQueryAck(*ack_frame);
  if (!ack.ok()) return ack.status();
  if (ack->status != WireStatus::kOk) {
    return FailedPreconditionError(
        "handshake refused (" + std::string(WireStatusName(ack->status)) +
        "): " + ack->message);
  }
  return client;
}

Result<Frame> QueryClient::RoundTrip(const Frame& request,
                                     uint8_t expect_type) {
  SMETER_RETURN_IF_ERROR(transport_->SendFrame(request));
  Result<Frame> response = transport_->RecvFrame();
  if (!response.ok()) return response.status();
  const uint8_t type = static_cast<uint8_t>(response->type);
  if (type == expect_type) return response;
  if (response->type == FrameType::kThrottle) {
    Result<ThrottlePayload> throttle = ParseThrottle(*response);
    if (!throttle.ok()) return throttle.status();
    return FailedPreconditionError(
        "server throttled (scope=" + ThrottleScopeName(throttle->scope) +
        ", retry_after_ms=" + std::to_string(throttle->retry_after_ms) +
        "): " + throttle->message);
  }
  if (type == static_cast<uint8_t>(QueryFrameType::kQueryAck)) {
    // A QueryAck in place of a typed result is the server refusing the
    // request and (for fatal statuses) quarantining the session.
    Result<QueryAckPayload> ack = ParseQueryAck(*response);
    if (!ack.ok()) return ack.status();
    return FailedPreconditionError(
        "server refused the query (" +
        std::string(WireStatusName(ack->status)) + "): " + ack->message);
  }
  return InternalError("unexpected response frame type " +
                       std::to_string(type));
}

Result<PointResultPayload> QueryClient::Point(const std::string& meter_id) {
  PointQueryPayload query;
  query.request_id = next_request_id_++;
  query.meter_id = meter_id;
  Result<Frame> response =
      RoundTrip(MakePointQuery(query),
                static_cast<uint8_t>(QueryFrameType::kPointResult));
  if (!response.ok()) return response.status();
  Result<PointResultPayload> result = ParsePointResult(*response);
  if (!result.ok()) return result.status();
  if (result->request_id != query.request_id) {
    return InternalError("response request_id " +
                         std::to_string(result->request_id) +
                         " does not match " +
                         std::to_string(query.request_id));
  }
  return result;
}

Result<RangeResultPayload> QueryClient::Range(const std::string& meter_id,
                                              const TimeRange& range,
                                              int level,
                                              uint32_t max_symbols) {
  RangeQueryPayload query;
  query.request_id = next_request_id_++;
  query.meter_id = meter_id;
  query.start = range.begin;
  query.end = range.end;
  query.level = static_cast<uint8_t>(level);
  query.max_symbols = max_symbols;
  Result<Frame> response =
      RoundTrip(MakeRangeQuery(query),
                static_cast<uint8_t>(QueryFrameType::kRangeResult));
  if (!response.ok()) return response.status();
  Result<RangeResultPayload> result = ParseRangeResult(*response);
  if (!result.ok()) return result.status();
  if (result->request_id != query.request_id) {
    return InternalError("response request_id " +
                         std::to_string(result->request_id) +
                         " does not match " +
                         std::to_string(query.request_id));
  }
  return result;
}

Result<AggregateResultPayload> QueryClient::Aggregate(
    const TimeRange& range, int level) {
  AggregateQueryPayload query;
  query.request_id = next_request_id_++;
  query.start = range.begin;
  query.end = range.end;
  query.level = static_cast<uint8_t>(level);
  Result<Frame> response =
      RoundTrip(MakeAggregateQuery(query),
                static_cast<uint8_t>(QueryFrameType::kAggregateResult));
  if (!response.ok()) return response.status();
  Result<AggregateResultPayload> result = ParseAggregateResult(*response);
  if (!result.ok()) return result.status();
  if (result->request_id != query.request_id) {
    return InternalError("response request_id " +
                         std::to_string(result->request_id) +
                         " does not match " +
                         std::to_string(query.request_id));
  }
  return result;
}

}  // namespace smeter::net
