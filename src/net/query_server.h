// The query daemon: one epoll loop serving the query wire protocol
// (query_wire.h) over an ArchiveStore.
//
// Architecture (one connection, left to right):
//
//   accept (single listener)
//          -> BufferedFd (edge-triggered buffers, backpressure)
//          -> DecodeFrameView (same CRC32C framing as ingest)
//          -> QuerySession (pure protocol state machine)
//          -> ArchiveStore (partition segments, rollup tables, hot
//             current table — possibly the live ingest daemon's)
//
// One loop thread is deliberate: the read path is dominated by file reads
// the page cache absorbs, and rollup-served aggregates touch one small
// file per partition. Sharding the query loop the way PR 8 sharded ingest
// is future work the single-writer capability model already permits.
//
// Overload protection reuses the ingest THROTTLE vocabulary:
//   * admission: over `max_connections`, a new connection gets one
//     pre-encoded THROTTLE(scope=admission) and an immediate close.
//   * memory: a reply that would push a connection's buffered bytes over
//     `memory_budget` is replaced by THROTTLE(scope=memory) and the
//     connection is closed after flush — a slow reader cannot make the
//     server buffer unbounded range scans.
//   * idle: connections silent past `idle_timeout_ms` are swept.
//
// Drain (SIGTERM) and stats (SIGUSR1) mirror IngestServer: RequestDrain()
// and RequestStatsDump() are thread- and async-signal-safe; drain stops
// accepting, lets in-flight queries finish for `drain_grace_ms`, then
// force-closes. `exit_after_queries` drains automatically after N queries
// so tests and soak jobs run the real daemon to a deterministic end.

#ifndef SMETER_NET_QUERY_SERVER_H_
#define SMETER_NET_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "core/archive_store.h"
#include "net/event_loop.h"
#include "net/query_session.h"
#include "net/query_wire.h"

namespace smeter::net {

struct QueryServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 binds an ephemeral port (see QueryServer::port)
  std::string store_dir;
  // Where the hot current table lives; empty = store_dir. Point this at a
  // live ingest daemon's archive dir to serve fresh point lookups.
  std::string current_dir;
  std::string auth_token;
  // A connection silent for this long is closed (0 disables the sweep).
  int64_t idle_timeout_ms = 30'000;
  // Output-buffer backpressure high-watermark per connection.
  size_t high_watermark = 1u << 20;
  // --- overload protection (0 = the mechanism is off) ---
  // Admitted-connection budget; over it, accepts are shed with a
  // THROTTLE(scope=admission).
  int max_connections = 0;
  // Per-connection buffered-bytes ceiling; a reply that would exceed it
  // becomes a THROTTLE(scope=memory) and the connection closes.
  size_t memory_budget = 0;
  // Baseline retry_after_ms hint in THROTTLE frames.
  uint32_t throttle_retry_ms = 250;
  // Server-side ceiling on one range scan (clamps client max_symbols).
  uint32_t max_scan_symbols = kMaxWireRangeSymbols;
  // Drain automatically after this many queries (0 = never); deterministic
  // exits for tests and soak jobs.
  uint64_t exit_after_queries = 0;
  // How long in-flight connections get to finish a drain before being
  // force-closed.
  int64_t drain_grace_ms = 5'000;
};

// Monotonic counters dumped by SIGUSR1 and snapshotted at exit. Every
// uint64_t field must appear in ToJson() — tools/lint_invariants.py's
// counters-dumped rule enforces it.
struct QueryCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;  // gauge
  uint64_t connections_dropped = 0;  // protocol/decode/io failures
  uint64_t connections_shed = 0;     // refused at accept (admission)
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t decode_errors = 0;
  uint64_t queries_point = 0;
  uint64_t queries_range = 0;
  uint64_t queries_aggregate = 0;
  uint64_t throttles_sent = 0;
  uint64_t memory_throttled = 0;
  uint64_t idle_drops = 0;
  // Read-path gauges mirrored from the ArchiveStore at snapshot time.
  uint64_t segments_read = 0;
  uint64_t current_refreshes = 0;

  std::string ToJson() const;
};

class QueryServer {
 public:
  // Opens the store, binds and listens, creates the loop.
  static Result<std::unique_ptr<QueryServer>> Create(
      QueryServerOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Serves until drained/stopped. Claims the server role for its duration.
  Status Run();

  // Thread- and async-signal-safe: begin a graceful drain.
  void RequestDrain();
  // Thread- and async-signal-safe: write the counters JSON to stats_out.
  void RequestStatsDump();

  // The bound port (useful when options.port was 0).
  uint16_t port() const { return port_; }
  // Counters snapshot. Owner-only: call after Run() returned (or before
  // it starts).
  QueryCounters counters() const REQUIRES(role_);
  // Completed stats dumps; lets tests await an in-flight SIGUSR1 dump.
  uint64_t stats_dumps() const { return stats_dumps_.load(); }
  // Where RequestStatsDump() writes; defaults to std::cerr. Owner-only.
  void set_stats_out(std::ostream* out) REQUIRES(role_) { stats_out_ = out; }
  // The store being served (owner-only; tests inspect read counters).
  ArchiveStore* store() REQUIRES(role_) { return store_.get(); }

  ThreadRole& role() RETURN_CAPABILITY(role_) { return role_; }

 private:
  struct Connection;

  QueryServer(QueryServerOptions options);

  void OnAcceptable() REQUIRES(role_);
  void AdoptConnection(int fd) REQUIRES(role_);
  void ShedConnection(int fd) REQUIRES(role_);
  size_t OnData(Connection* conn, std::string_view data) REQUIRES(role_);
  void OnConnectionClosed(Connection* conn, const Status& reason)
      REQUIRES(role_);
  void CloseConnection(Connection* conn, Status reason) REQUIRES(role_);
  void SendReplies(Connection* conn, const std::vector<Frame>& replies)
      REQUIRES(role_);
  void BeginDrain() REQUIRES(role_);
  void SweepIdle() REQUIRES(role_);
  void ScheduleIdleSweep() REQUIRES(role_);
  void MaybeFinish() REQUIRES(role_);
  void DumpStats() REQUIRES(role_);
  QueryCounters LiveSnapshot() const REQUIRES(role_);

  QueryServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<ArchiveStore> store_;
  ThreadRole role_;
  std::ostream* stats_out_;

  uint64_t next_conn_id_ GUARDED_BY(role_) = 1;
  std::map<uint64_t, std::unique_ptr<Connection>> connections_
      GUARDED_BY(role_);
  // Connections whose on_close fired mid-callback; freed next loop pass.
  std::vector<std::unique_ptr<Connection>> graveyard_ GUARDED_BY(role_);
  QueryCounters counters_ GUARDED_BY(role_);
  uint64_t queries_total_ GUARDED_BY(role_) = 0;
  bool draining_ GUARDED_BY(role_) = false;
  bool accepting_ GUARDED_BY(role_) = false;
  bool idle_sweep_scheduled_ GUARDED_BY(role_) = false;
  // Pre-encoded accept-time THROTTLE (admission scope); the shed path
  // must not allocate per flood connection.
  std::string shed_frame_ GUARDED_BY(role_);

  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> stats_requested_{false};
  std::atomic<uint64_t> stats_dumps_{0};
};

}  // namespace smeter::net

#endif  // SMETER_NET_QUERY_SERVER_H_
