// Per-meter protocol state machine for the ingestion daemon.
//
// A Session consumes decoded wire frames and produces reply frames plus a
// small amount of state the server acts on (close, completed, persist).
// It is deliberately pure — no sockets, no clocks, no disk — so the whole
// protocol surface is unit-testable and fuzzable frame-by-frame.
//
// State machine:
//
//   ExpectHello --HELLO ok--> ExpectTable --TABLE ok--> Streaming
//       |                         |                        |
//       |  (anything else)        |  (bad table/CRC)       |-- SYMBOL_BATCH
//       v                         v                        |   (seq, cadence
//     Failed <-------------------------------------------- |    checks)
//                                                          |-- GOODBYE ok
//                                                          v
//                                                      Complete
//
// Protocol rules enforced here:
//   * TABLE_ANNOUNCE must precede any SYMBOL_BATCH — the paper's contract
//     ("the lookup table is ... sent to the aggregation server before
//     starting to send the symbolic data").
//   * The announced table must deserialize, which includes its crc32c
//     footer check; a damaged table is refused with kBadTable.
//   * Batches carry strictly consecutive `seq` numbers, a fixed positive
//     step, and non-overlapping timestamps. A batch starting later than
//     expected has its missing windows GAP-filled (PR 3 semantics: a
//     missing window is an explicit GAP, never a silent cadence break); a
//     batch starting earlier (rewind/overlap) or off the step grid is
//     refused with kOutOfOrder.
//   * GOODBYE carries the client's quality counts; they must agree with
//     the symbols actually received (total and gap count) or the session
//     fails instead of persisting wrong metadata.
//
// A failed session is quarantined: the server sends the error ack, closes
// the connection, and persists nothing — the meter can reconnect and
// resend. The daemon itself never dies on a bad session.
//
// Ownership: a Session has exactly one writer at a time (the loop thread
// of the server that owns the connection, or the test/fuzz driver). That
// single-writer rule is machine-checked: every method requires the
// session's `writer_role()` capability, which the owner claims with a
// zero-cost ScopedThreadRole (DESIGN.md §13).

#ifndef SMETER_NET_SESSION_H_
#define SMETER_NET_SESSION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "core/encoder.h"
#include "core/lookup_table.h"
#include "core/symbolic_series.h"
#include "net/wire.h"

namespace smeter::net {

struct SessionOptions {
  // Expected auth token; empty accepts any client token.
  std::string auth_token;
  // Upper bound on symbols accumulated per session (gap fill included), so
  // a hostile or broken meter cannot grow server memory without bound.
  size_t max_session_symbols = 4u << 20;
  // Largest gap (in windows) the server will fill between two batches;
  // anything larger is treated as a protocol error rather than an
  // allocation request.
  size_t max_gap_fill = 1u << 20;
  // Refuse new sessions at HELLO when the server is draining.
  bool draining = false;
};

class Session {
 public:
  enum class State {
    kExpectHello,
    kExpectTable,
    kStreaming,
    kComplete,  // GOODBYE accepted; data ready to persist
    kFailed,    // protocol violation; persist nothing
  };

  explicit Session(SessionOptions options);

  // Consumes one frame and appends any replies to send (in order) to
  // `replies`. After each call the server checks state(): kFailed means
  // flush replies then close; kComplete means persist, then send the
  // GOODBYE_ACK the server builds from the persist outcome.
  //
  // A CRC-valid frame whose type this revision does not know (a future
  // protocol extension) is refused with a kUnsupported ack and leaves the
  // session state untouched — the connection stays usable, so newer
  // clients can probe features against older servers without desyncing.
  void OnFrame(const Frame& frame, std::vector<Frame>* replies)
      REQUIRES(writer_role_);

  // Zero-copy entry point for the server's hot path: a SYMBOL_BATCH in
  // kStreaming is parsed in place from the receive buffer (no payload
  // copy, one vectorizable validation sweep); every other (rare) frame is
  // materialized and routed through OnFrame. Semantics are identical to
  // OnFrame on the same bytes.
  void OnWireFrame(const FrameView& frame, std::vector<Frame>* replies)
      REQUIRES(writer_role_);

  // Returns the session to a fresh kExpectHello so the same connection can
  // carry another meter's upload after a GOODBYE_ACK (connection
  // keep-alive / multiplexing). Options survive — a draining session stays
  // draining and refuses the next HELLO.
  void Reset() REQUIRES(writer_role_);

  // Refuses a HELLO that arrives after the server began draining (sessions
  // already past HELLO are allowed to finish).
  void SetDraining() REQUIRES(writer_role_) { options_.draining = true; }

  State state() const REQUIRES(writer_role_) { return state_; }
  // Why the session failed (kFailed only).
  const Status& error() const REQUIRES(writer_role_) { return error_; }
  // Wire status describing the failure, for the closing ack.
  WireStatus error_status() const REQUIRES(writer_role_) {
    return error_status_;
  }

  const std::string& meter_id() const REQUIRES(writer_role_) {
    return meter_id_;
  }
  // The announced serialized table, byte-for-byte as received (persisted
  // verbatim so the archive matches the sensor's own Serialize output).
  const std::string& table_blob() const REQUIRES(writer_role_) {
    return table_blob_;
  }
  uint32_t table_version() const REQUIRES(writer_role_) {
    return table_version_;
  }
  int level() const REQUIRES(writer_role_) {
    return table_ ? table_->level() : 0;
  }

  // Total symbols accepted (gap fill included) and how many are GAPs.
  size_t symbols_received() const REQUIRES(writer_role_) {
    return samples_.size();
  }
  size_t gaps_received() const REQUIRES(writer_role_) {
    return gaps_received_;
  }

  // Client-reported quality from GOODBYE (kComplete only).
  const EncodeQuality& quality() const REQUIRES(writer_role_) {
    return quality_;
  }

  // The accumulated series (kComplete only); destroys the buffer.
  Result<SymbolicSeries> TakeSeries() REQUIRES(writer_role_);

  // The single-writer capability; the owning thread claims it with a
  // ScopedThreadRole around any use of this session.
  ThreadRole& writer_role() RETURN_CAPABILITY(writer_role_) {
    return writer_role_;
  }

 private:
  // Fails the session and replies with the ack type matching the offending
  // request (AckTypeFor), so a refused SYMBOL_BATCH yields a BATCH_ACK
  // carrying `batch_seq` and the real status instead of a generic
  // GOODBYE_ACK. A bad PING closes with a GOODBYE_ACK since PONG has no
  // status field.
  void Fail(FrameType request, WireStatus status, Status error,
            std::vector<Frame>* replies, uint64_t batch_seq = 0)
      REQUIRES(writer_role_);
  void OnHello(const Frame& frame, std::vector<Frame>* replies)
      REQUIRES(writer_role_);
  void OnTable(const Frame& frame, std::vector<Frame>* replies)
      REQUIRES(writer_role_);
  // Both batch paths funnel here: header parse, one branchless validation
  // sweep over the raw little-endian symbols, seq/cadence admission, then
  // a bulk append with grid timestamps.
  void OnBatchView(const FrameView& frame, std::vector<Frame>* replies)
      REQUIRES(writer_role_);
  void OnGoodbye(const Frame& frame, std::vector<Frame>* replies)
      REQUIRES(writer_role_);

  ThreadRole writer_role_;
  SessionOptions options_ GUARDED_BY(writer_role_);
  State state_ GUARDED_BY(writer_role_) = State::kExpectHello;
  Status error_ GUARDED_BY(writer_role_);
  WireStatus error_status_ GUARDED_BY(writer_role_) = WireStatus::kOk;

  std::string meter_id_ GUARDED_BY(writer_role_);
  std::string table_blob_ GUARDED_BY(writer_role_);
  uint32_t table_version_ GUARDED_BY(writer_role_) = 0;
  std::optional<LookupTable> table_ GUARDED_BY(writer_role_);

  uint64_t next_seq_ GUARDED_BY(writer_role_) = 1;
  int64_t step_seconds_ GUARDED_BY(writer_role_) = 0;
  // Expected start of the next batch.
  int64_t next_timestamp_ GUARDED_BY(writer_role_) = 0;
  size_t gaps_received_ GUARDED_BY(writer_role_) = 0;
  std::vector<SymbolicSample> samples_ GUARDED_BY(writer_role_);
  EncodeQuality quality_ GUARDED_BY(writer_role_);
};

// In wire namespace terms the session's replies always carry an explicit
// status; this helper names the ack type matching a request type (HELLO ->
// HELLO_ACK etc.) for the error path.
FrameType AckTypeFor(FrameType request);

}  // namespace smeter::net

#endif  // SMETER_NET_SESSION_H_
