#include "net/session.h"

#include <utility>

#include "common/fault_injection.h"
#include "core/symbol.h"

namespace smeter::net {

FrameType AckTypeFor(FrameType request) {
  switch (request) {
    case FrameType::kHello: return FrameType::kHelloAck;
    case FrameType::kTableAnnounce: return FrameType::kTableAck;
    case FrameType::kSymbolBatch: return FrameType::kBatchAck;
    case FrameType::kPing: return FrameType::kPong;
    case FrameType::kGoodbye: return FrameType::kGoodbyeAck;
    default: return FrameType::kGoodbyeAck;  // client-bound types
  }
}

Session::Session(SessionOptions options) : options_(std::move(options)) {}

void Session::Fail(FrameType request, WireStatus status, Status error,
                   std::vector<Frame>* replies, uint64_t batch_seq) {
  state_ = State::kFailed;
  error_status_ = status;
  error_ = std::move(error);
  FrameType ack_type = AckTypeFor(request);
  if (ack_type == FrameType::kBatchAck) {
    BatchAckPayload ack;
    ack.seq = batch_seq;
    ack.status = status;
    ack.message = error_.message();
    replies->push_back(MakeBatchAck(ack));
    return;
  }
  // PONG carries only the nonce, so a refused PING closes with the
  // session-terminating ack instead.
  if (ack_type == FrameType::kPong) ack_type = FrameType::kGoodbyeAck;
  AckPayload ack;
  ack.status = status;
  ack.message = error_.message();
  replies->push_back(MakeAck(ack_type, ack));
}

void Session::OnWireFrame(const FrameView& frame,
                          std::vector<Frame>* replies) {
  if (frame.type == FrameType::kSymbolBatch &&
      state_ == State::kStreaming) {
    OnBatchView(frame, replies);
    return;
  }
  // Everything else is rare (a handful of frames per session) — pay the
  // copy and reuse the canonical state machine.
  Frame copy;
  copy.type = frame.type;
  copy.payload = std::string(frame.payload);
  OnFrame(copy, replies);
}

void Session::Reset() {
  state_ = State::kExpectHello;
  error_ = Status::Ok();
  error_status_ = WireStatus::kOk;
  meter_id_.clear();
  table_blob_.clear();
  table_version_ = 0;
  table_.reset();
  next_seq_ = 1;
  step_seconds_ = 0;
  next_timestamp_ = 0;
  gaps_received_ = 0;
  samples_.clear();
  quality_ = EncodeQuality{};
}

void Session::OnFrame(const Frame& frame, std::vector<Frame>* replies) {
  if (state_ == State::kComplete || state_ == State::kFailed) {
    // The server should have closed already; ignore trailing frames.
    return;
  }
  // Forward compatibility: a CRC-valid frame of a type this revision does
  // not speak (a future protocol feature, probed by a newer client) is
  // refused per-frame with a typed kUnsupported ack and NO state change —
  // the session stays exactly where it was and the connection stays
  // usable, so old servers degrade gracefully instead of desyncing. The
  // refusal rides a GOODBYE_ACK shape because a future request's ack type
  // is by definition unknown to us.
  if (!IsKnownFrameType(static_cast<uint8_t>(frame.type))) {
    AckPayload ack;
    ack.status = WireStatus::kUnsupported;
    ack.message = "unsupported frame type " +
                  std::to_string(static_cast<int>(frame.type));
    replies->push_back(MakeAck(FrameType::kGoodbyeAck, ack));
    return;
  }
  // PING is legal in any live state once the peer said HELLO.
  if (frame.type == FrameType::kPing && state_ != State::kExpectHello) {
    Result<PingPayload> ping = ParsePing(frame);
    if (!ping.ok()) {
      Fail(frame.type, WireStatus::kBadFrame, ping.status(), replies);
      return;
    }
    replies->push_back(MakePong(ping->nonce));
    return;
  }
  switch (state_) {
    case State::kExpectHello:
      if (frame.type != FrameType::kHello) {
        Fail(frame.type, WireStatus::kBadState,
             FailedPreconditionError("expected HELLO first"), replies);
        return;
      }
      OnHello(frame, replies);
      return;
    case State::kExpectTable:
      if (frame.type != FrameType::kTableAnnounce) {
        Fail(frame.type, WireStatus::kBadState,
             FailedPreconditionError(
                 "expected TABLE_ANNOUNCE before symbol data"),
             replies);
        return;
      }
      OnTable(frame, replies);
      return;
    case State::kStreaming:
      if (frame.type == FrameType::kSymbolBatch) {
        OnBatchView({frame.type, frame.payload}, replies);
        return;
      }
      if (frame.type == FrameType::kGoodbye) {
        OnGoodbye(frame, replies);
        return;
      }
      if (frame.type == FrameType::kTableAnnounce) {
        Fail(frame.type, WireStatus::kBadState,
             FailedPreconditionError(
                 "table re-announcement mid-stream is not supported"),
             replies);
        return;
      }
      Fail(frame.type, WireStatus::kBadState,
           FailedPreconditionError("unexpected frame while streaming"),
           replies);
      return;
    case State::kComplete:
    case State::kFailed:
      return;
  }
}

void Session::OnHello(const Frame& frame, std::vector<Frame>* replies) {
  Result<HelloPayload> hello = ParseHello(frame);
  if (!hello.ok()) {
    // Covers meter ids that fail IsValidMeterId (path traversal, control
    // bytes): the strict parser refuses them before any state is stored.
    Fail(frame.type, WireStatus::kBadFrame, hello.status(), replies);
    return;
  }
  if (hello->protocol_version != kProtocolVersion) {
    Fail(frame.type, WireStatus::kUnauthorized,
         InvalidArgumentError(
             "unsupported protocol version " +
             std::to_string(hello->protocol_version)),
         replies);
    return;
  }
  if (!options_.auth_token.empty() &&
      hello->auth_token != options_.auth_token) {
    Fail(frame.type, WireStatus::kUnauthorized,
         InvalidArgumentError("auth token rejected for meter '" +
                              hello->meter_id + "'"),
         replies);
    return;
  }
  if (options_.draining) {
    Fail(frame.type, WireStatus::kDraining,
         FailedPreconditionError("server is draining"), replies);
    return;
  }
  meter_id_ = std::move(hello->meter_id);
  state_ = State::kExpectTable;
  AckPayload ack;
  ack.status = WireStatus::kOk;
  replies->push_back(MakeAck(FrameType::kHelloAck, ack));
}

void Session::OnTable(const Frame& frame, std::vector<Frame>* replies) {
  Result<TableAnnouncePayload> announce = ParseTableAnnounce(frame);
  if (!announce.ok()) {
    Fail(frame.type, WireStatus::kBadFrame, announce.status(), replies);
    return;
  }
  // The `session.table` seam injects validation failures so tests can
  // prove a refused table quarantines the session, not the daemon.
  if (Status fault = fault::Check("session.table"); !fault.ok()) {
    Fail(frame.type, WireStatus::kBadTable, std::move(fault), replies);
    return;
  }
  // Deserialize validates the blob end to end, crc32c footer included.
  Result<LookupTable> table = LookupTable::Deserialize(announce->table_blob);
  if (!table.ok()) {
    Fail(frame.type, WireStatus::kBadTable,
         Status(table.status().code(), "meter '" + meter_id_ +
                                           "' announced a bad table: " +
                                           table.status().message()),
         replies);
    return;
  }
  table_ = std::move(table.value());
  table_blob_ = std::move(announce->table_blob);
  table_version_ = announce->table_version;
  state_ = State::kStreaming;
  AckPayload ack;
  ack.status = WireStatus::kOk;
  replies->push_back(MakeAck(FrameType::kTableAck, ack));
}

void Session::OnBatchView(const FrameView& frame,
                          std::vector<Frame>* replies) {
  Result<SymbolBatchView> batch = ParseSymbolBatchView(frame);
  if (!batch.ok()) {
    // The seq is unparseable, so the refusal ack carries the expected one.
    Fail(frame.type, WireStatus::kBadFrame, batch.status(), replies,
         next_seq_);
    return;
  }
  // One branchless sweep over the raw little-endian u16s replaces the old
  // per-symbol cursor + Result<Symbol> walk: validate the whole array and
  // count GAPs in a loop the compiler can vectorize, then (cold path)
  // rescan for the first offender's error message.
  const uint32_t count = batch->count;
  const uint16_t alphabet = static_cast<uint16_t>(1u << batch->level);
  uint32_t bad = 0;
  uint32_t wire_gaps = 0;
  for (uint32_t i = 0; i < count; ++i) {
    const uint16_t s = batch->symbol(i);
    bad |= static_cast<uint32_t>(s != kWireGapSymbol && s >= alphabet);
    wire_gaps += static_cast<uint32_t>(s == kWireGapSymbol);
  }
  if (bad != 0) {
    uint16_t offender = 0;
    for (uint32_t i = 0; i < count; ++i) {
      const uint16_t s = batch->symbol(i);
      if (s != kWireGapSymbol && s >= alphabet) {
        offender = s;
        break;
      }
    }
    // Same refusal the strict copying parser produces, so both batch
    // paths are observably identical.
    Fail(frame.type, WireStatus::kBadFrame,
         InvalidArgumentError("symbol " + std::to_string(offender) +
                              " outside the level-" +
                              std::to_string(batch->level) + " alphabet"),
         replies, next_seq_);
    return;
  }
  if (batch->seq != next_seq_) {
    Fail(frame.type, WireStatus::kOutOfOrder,
         InvalidArgumentError("batch seq " + std::to_string(batch->seq) +
                              ", expected " + std::to_string(next_seq_)),
         replies, batch->seq);
    return;
  }
  if (batch->level != table_->level()) {
    Fail(frame.type, WireStatus::kBadBatch,
         InvalidArgumentError(
             "batch level " + std::to_string(batch->level) +
             " does not match the announced table's level " +
             std::to_string(table_->level())),
         replies, batch->seq);
    return;
  }
  size_t gap_fill = 0;
  if (samples_.empty()) {
    // First batch fixes the cadence.
    step_seconds_ = batch->step_seconds;
    next_timestamp_ = batch->start_timestamp;
  } else {
    if (batch->step_seconds != step_seconds_) {
      Fail(frame.type, WireStatus::kBadBatch,
           InvalidArgumentError("batch step changed mid-stream"), replies,
           batch->seq);
      return;
    }
    // ParseSymbolBatchView bounds both operands to ±kMaxWireTimestamp, but
    // next_timestamp_ has advanced since, so do the subtraction with an
    // explicit overflow check rather than trusting the headroom.
    int64_t delta = 0;
    if (__builtin_sub_overflow(batch->start_timestamp, next_timestamp_,
                               &delta) ||
        delta < 0 || delta % step_seconds_ != 0) {
      // Rewinds, overlaps, and off-grid starts are out-of-order input: the
      // windows already streamed are immutable, so refuse instead of
      // guessing.
      Fail(frame.type, WireStatus::kOutOfOrder,
           InvalidArgumentError(
               "batch starts at " + std::to_string(batch->start_timestamp) +
               ", expected " + std::to_string(next_timestamp_) +
               " (step " + std::to_string(step_seconds_) + ")"),
           replies, batch->seq);
      return;
    }
    gap_fill = static_cast<size_t>(delta / step_seconds_);
    if (gap_fill > options_.max_gap_fill) {
      Fail(frame.type, WireStatus::kOutOfOrder,
           InvalidArgumentError("batch skips " + std::to_string(gap_fill) +
                                " windows, more than the server will "
                                "GAP-fill"),
           replies, batch->seq);
      return;
    }
  }
  if (samples_.size() + gap_fill + count > options_.max_session_symbols) {
    Fail(frame.type, WireStatus::kBadBatch,
         InvalidArgumentError("session exceeds the per-meter symbol cap"),
         replies, batch->seq);
    return;
  }
  // Refuse up front if this batch's windows would run the cadence past
  // int64 — the per-sample additions below can then never overflow (UB).
  const int64_t windows = static_cast<int64_t>(gap_fill + count);
  int64_t span = 0;
  int64_t end_timestamp = 0;
  if (__builtin_mul_overflow(step_seconds_, windows, &span) ||
      __builtin_add_overflow(next_timestamp_, span, &end_timestamp)) {
    Fail(frame.type, WireStatus::kBadBatch,
         InvalidArgumentError("batch timestamps overflow the epoch range"),
         replies, batch->seq);
    return;
  }
  // Bulk append: missing windows between batches become explicit GAP
  // symbols (the cadence stays fixed, exactly as the gap-aware offline
  // pipeline would have encoded the outage), then the batch itself lands
  // with grid timestamps — every symbol already validated above, so the
  // loop is pure stores.
  const int level = table_->level();
  const size_t base = samples_.size();
  samples_.resize(base + gap_fill + count);
  SymbolicSample* out = samples_.data() + base;
  const Symbol gap = Symbol::Gap(level);
  int64_t ts = next_timestamp_;
  for (size_t i = 0; i < gap_fill; ++i) {
    out[i].timestamp = ts;
    out[i].symbol = gap;
    ts += step_seconds_;
  }
  out += gap_fill;
  for (uint32_t i = 0; i < count; ++i) {
    const uint16_t s = batch->symbol(i);
    out[i].timestamp = ts;
    out[i].symbol =
        s == kWireGapSymbol ? gap : Symbol::FromValidated(level, s);
    ts += step_seconds_;
  }
  next_timestamp_ = ts;
  gaps_received_ += gap_fill + wire_gaps;
  next_seq_ = batch->seq + 1;
  BatchAckPayload ack;
  ack.seq = batch->seq;
  ack.status = WireStatus::kOk;
  replies->push_back(MakeBatchAck(ack));
}

void Session::OnGoodbye(const Frame& frame, std::vector<Frame>* replies) {
  Result<GoodbyePayload> goodbye = ParseGoodbye(frame);
  if (!goodbye.ok()) {
    Fail(frame.type, WireStatus::kBadFrame, goodbye.status(), replies);
    return;
  }
  if (samples_.empty()) {
    Fail(frame.type, WireStatus::kBadState,
         FailedPreconditionError("GOODBYE before any symbol batch"),
         replies);
    return;
  }
  const uint64_t client_total = goodbye->windows_valid +
                                goodbye->windows_partial +
                                goodbye->windows_gap;
  if (client_total != samples_.size() ||
      goodbye->windows_gap != gaps_received_) {
    Fail(frame.type, WireStatus::kBadBatch,
         InvalidArgumentError(
             "GOODBYE quality counts disagree with the received stream "
             "(client total " + std::to_string(client_total) + "/gap " +
             std::to_string(goodbye->windows_gap) + ", server total " +
             std::to_string(samples_.size()) + "/gap " +
             std::to_string(gaps_received_) + ")"),
         replies);
    return;
  }
  quality_.windows_valid = static_cast<size_t>(goodbye->windows_valid);
  quality_.windows_partial = static_cast<size_t>(goodbye->windows_partial);
  quality_.windows_gap = static_cast<size_t>(goodbye->windows_gap);
  state_ = State::kComplete;
  // No reply here: the server persists first, then acks the GOODBYE with
  // the persist outcome, so an acked upload is a durable upload.
}

Result<SymbolicSeries> Session::TakeSeries() {
  if (state_ != State::kComplete) {
    return FailedPreconditionError("session is not complete");
  }
  return SymbolicSeries::FromSamples(table_->level(), std::move(samples_));
}

}  // namespace smeter::net
