// Per-connection protocol state machine for the query daemon.
//
// A QuerySession consumes decoded wire frames and produces reply frames;
// like the ingest Session it is pure protocol — no sockets, no clocks —
// so the whole surface is unit-testable and fuzzable frame-by-frame. The
// only impurity is the ArchiveStore it evaluates queries against, which
// is plain file I/O under the store directory (and may be nullptr: every
// query then answers kServerError, which is what the fuzz harness uses to
// exercise the protocol with no disk behind it).
//
// State machine:
//
//   ExpectHello --QUERY_HELLO ok--> Serving --POINT/RANGE/AGG--> Serving
//       |                              |
//       | (anything else,              | (undecodable payload)
//       |  bad version/auth)           v
//       +------------------------>  Failed
//
// Protocol rules:
//   * QUERY_HELLO must precede any query; a query first is kBadState and
//     fails the session (a reader that skips the handshake is hostile or
//     broken, not worth per-frame tolerance).
//   * Per-query evaluation errors (unknown meter, level out of range, a
//     damaged segment) come back as a result frame with a non-kOk status;
//     the session stays kServing. Only protocol violations fail it.
//   * An unknown (future) frame type that passed its CRC is refused with
//     a QUERY_ACK(kUnsupported) and the session state is untouched — the
//     same forward-compatibility contract as the ingest session.
//   * A draining server refuses QUERY_HELLO with kDraining.
//
// Single-writer ownership is machine-checked exactly like Session: every
// method requires `writer_role()`, claimed by the owning loop thread (or
// test driver) with a zero-cost ScopedThreadRole.

#ifndef SMETER_NET_QUERY_SESSION_H_
#define SMETER_NET_QUERY_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "core/archive_store.h"
#include "net/query_wire.h"
#include "net/wire.h"

namespace smeter::net {

struct QuerySessionOptions {
  // Expected auth token; empty accepts any client token.
  std::string auth_token;
  // Server-side ceiling on one range scan's symbols; a client asking for
  // more gets its request clamped to this, with the result flagged
  // truncated if the scan hit the clamp.
  uint32_t max_scan_symbols = kMaxWireRangeSymbols;
  // Refuse new sessions at QUERY_HELLO when the server is draining.
  bool draining = false;
};

class QuerySession {
 public:
  enum class State {
    kExpectHello,
    kServing,
    kFailed,  // protocol violation; flush replies then close
  };

  // `store` may outlive or be null; the session never owns it.
  QuerySession(ArchiveStore* store, QuerySessionOptions options);

  // Consumes one CRC-valid frame and appends replies in order. After each
  // call the server checks state(): kFailed means flush replies then
  // close.
  void OnFrame(const Frame& frame, std::vector<Frame>* replies)
      REQUIRES(writer_role_);

  void SetDraining() REQUIRES(writer_role_) { options_.draining = true; }

  State state() const REQUIRES(writer_role_) { return state_; }
  const Status& error() const REQUIRES(writer_role_) { return error_; }

  // Queries answered since the hello (all three classes, errors included).
  uint64_t queries_served() const REQUIRES(writer_role_) {
    return queries_served_;
  }

  ThreadRole& writer_role() RETURN_CAPABILITY(writer_role_) {
    return writer_role_;
  }

 private:
  void Fail(WireStatus status, Status error, std::vector<Frame>* replies)
      REQUIRES(writer_role_);
  void OnHello(const Frame& frame, std::vector<Frame>* replies)
      REQUIRES(writer_role_);
  void OnPoint(const Frame& frame, std::vector<Frame>* replies)
      REQUIRES(writer_role_);
  void OnRange(const Frame& frame, std::vector<Frame>* replies)
      REQUIRES(writer_role_);
  void OnAggregate(const Frame& frame, std::vector<Frame>* replies)
      REQUIRES(writer_role_);

  ThreadRole writer_role_;
  ArchiveStore* const store_;  // nullable; never owned
  QuerySessionOptions options_ GUARDED_BY(writer_role_);
  State state_ GUARDED_BY(writer_role_) = State::kExpectHello;
  Status error_ GUARDED_BY(writer_role_);
  uint64_t queries_served_ GUARDED_BY(writer_role_) = 0;
};

}  // namespace smeter::net

#endif  // SMETER_NET_QUERY_SESSION_H_
