// A single-threaded, non-blocking event loop: epoll for fd readiness,
// one timerfd for the timer queue, one eventfd for cross-thread (and
// async-signal-safe) wakeups.
//
// Threading model: everything except Wakeup() must be called from the
// thread running Run() (or before Run() starts). Wakeup() is the only
// cross-thread entry point — it is a single write(2) on an eventfd, which
// is async-signal-safe, so signal handlers (SIGTERM drain, SIGUSR1 stats)
// set an atomic flag and call Wakeup(); the loop thread reads the flag
// from the wakeup handler.
//
// The single-writer rule is machine-checked (DESIGN.md §13): each loop and
// each BufferedFd carries a zero-cost ThreadRole capability, loop-thread-
// only methods are annotated REQUIRES(role_), and the owning thread claims
// the role with a ScopedThreadRole at the ownership boundary (Run() claims
// it for the loop's lifetime; tests claim it around direct driving).
//
// Edge-triggered: fds are registered with EPOLLET, so handlers must drain
// (read/write until EAGAIN) on every event. BufferedFd below implements
// that contract once — per-connection read/write buffering with a
// backpressure high-watermark — so protocol code only sees complete byte
// streams and never touches errno.

#ifndef SMETER_NET_EVENT_LOOP_H_
#define SMETER_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace smeter::net {

class EventLoop {
 public:
  // Receives the raw epoll event mask (EPOLLIN/EPOLLOUT/EPOLLHUP/...).
  using FdHandler = std::function<void(uint32_t events)>;

  // Creates the epoll instance plus its timerfd and eventfd.
  static Result<std::unique_ptr<EventLoop>> Create();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registers `fd` for `events` (caller includes EPOLLET for edge
  // triggering). The loop does not own the fd.
  Status Add(int fd, uint32_t events, FdHandler handler) REQUIRES(role_);
  Status Modify(int fd, uint32_t events) REQUIRES(role_);
  Status Remove(int fd) REQUIRES(role_);

  // Schedules `callback` once, `delay_ms` from now (monotonic clock).
  // Returns an id for CancelTimer. Safe to call from handlers and timer
  // callbacks; a 0 delay fires on the next loop iteration.
  uint64_t RunAfter(int64_t delay_ms, std::function<void()> callback)
      REQUIRES(role_);
  void CancelTimer(uint64_t id) REQUIRES(role_);

  // Runs until Stop(). Dispatches fd events, due timers, and wakeups.
  // Claims the loop role for its duration: the calling thread IS the loop
  // thread until Run() returns.
  Status Run();
  // One dispatch pass with the given epoll timeout; for tests.
  Status RunOnce(int timeout_ms) REQUIRES(role_);
  // Ends Run() after the current dispatch pass. Loop-thread only; from
  // another thread, set a flag and Wakeup() instead.
  void Stop() REQUIRES(role_);

  // Invoked on the loop thread after every Wakeup().
  void SetWakeupHandler(std::function<void()> handler) REQUIRES(role_);
  // Async-signal-safe and thread-safe: one write(2) to the eventfd. The
  // only member deliberately NOT annotated with the loop role.
  void Wakeup();

  // Milliseconds on the loop's monotonic clock (for idle accounting).
  static int64_t NowMs();

  // The loop-thread capability. Owners claim it with a ScopedThreadRole
  // before driving the loop directly (tests, setup before Run()).
  ThreadRole& role() RETURN_CAPABILITY(role_) { return role_; }

 private:
  EventLoop(int epoll_fd, int timer_fd, int wakeup_fd);

  void ArmTimer() REQUIRES(role_);
  void RunDueTimers() REQUIRES(role_);
  void DrainWakeup() REQUIRES(role_);

  struct Timer {
    int64_t deadline_ms = 0;
    uint64_t id = 0;
    std::function<void()> callback;
  };

  int epoll_fd_ = -1;
  int timer_fd_ = -1;
  int wakeup_fd_ = -1;
  ThreadRole role_;
  bool running_ GUARDED_BY(role_) = false;
  uint64_t next_timer_id_ GUARDED_BY(role_) = 1;
  // Sorted by (deadline, id); small enough that a vector beats a heap.
  std::vector<Timer> timers_ GUARDED_BY(role_);
  std::map<int, std::shared_ptr<FdHandler>> handlers_ GUARDED_BY(role_);
  std::function<void()> wakeup_handler_ GUARDED_BY(role_);
};

// A non-blocking fd (socket end) wired into an EventLoop with read/write
// buffering and backpressure:
//
//   * readable  -> read until EAGAIN, pass the accumulated buffer to
//     on_data, which returns how many bytes it consumed (a frame decoder
//     keeps partial frames in the buffer by consuming less than offered).
//   * Send()    -> appended to the output buffer and flushed as far as the
//     socket allows; the remainder goes out on EPOLLOUT.
//   * backpressure -> while the output buffer holds more than
//     `high_watermark` bytes, reading is paused (a slow peer cannot make
//     the server buffer its own replies without bound); reading resumes
//     once the buffer drains below half the watermark. Each pause is one
//     `stalls` count.
//   * on_close  -> called exactly once: clean EOF (OK), a read/write error,
//     or an explicit Close(status). The fd is closed by the destructor.
//
// Fault seams: `net.read` and `net.write` fail the respective I/O path
// (the connection drops; the daemon lives), and the `net.frame`
// CorruptBytes seam flips bits in received chunks so tests can prove the
// frame CRC catches wire damage.
class BufferedFd {
 public:
  struct Callbacks {
    std::function<size_t(std::string_view data)> on_data;
    std::function<void(const Status& reason)> on_close;
  };

  // Takes ownership of `fd` (sets it non-blocking). Register() wires it
  // into the loop; the object must outlive its registration and must be
  // destroyed on the loop thread. Like the loop, every method below is
  // loop-thread-only, checked against this object's own role capability.
  BufferedFd(EventLoop* loop, int fd, Callbacks callbacks,
             size_t high_watermark);
  ~BufferedFd();

  BufferedFd(const BufferedFd&) = delete;
  BufferedFd& operator=(const BufferedFd&) = delete;

  Status Register() REQUIRES(role_);

  // Buffers `data` and flushes what the socket will take now.
  Status Send(std::string_view data) REQUIRES(role_);

  // Scatter-gather send: all `parts` leave in one writev(2) when the
  // output buffer is empty (the hot path — per-event ack coalescing);
  // whatever the socket does not take is buffered, same contract as Send.
  Status SendVec(const std::string_view* parts, size_t count)
      REQUIRES(role_);

  // Detaches and returns the fd (still open, nonblocking) together with
  // any unconsumed input bytes, deregistering from the loop WITHOUT firing
  // on_close — the cross-shard connection handoff. The object is closed_
  // afterwards and only destruction is legal. Pending output must be empty
  // (handoff happens at HELLO time, before any reply is queued).
  struct Released {
    int fd = -1;
    std::string pending_in;
  };
  Released ReleaseFd() REQUIRES(role_);

  // Seeds the input buffer with bytes that arrived before a cross-shard
  // handoff (the adopting shard replays what the source shard had read).
  void InjectInput(std::string_view data) REQUIRES(role_);
  // Delivers the current input buffer to on_data now — needed after
  // InjectInput because the socket shows no new readable edge for bytes
  // the source shard already pulled off it.
  void Pump() REQUIRES(role_);

  // Closes after the output buffer drains (or immediately when empty).
  // Further input is ignored.
  void CloseAfterFlush(Status reason) REQUIRES(role_);
  // Tears the connection down now; on_close fires with `reason`.
  void Close(Status reason) REQUIRES(role_);

  int fd() const { return fd_; }
  bool closed() const REQUIRES(role_) { return closed_; }
  size_t pending_out() const REQUIRES(role_) { return out_.size(); }
  bool paused() const REQUIRES(role_) { return paused_; }
  uint64_t stalls() const REQUIRES(role_) { return stalls_; }
  uint64_t bytes_in() const REQUIRES(role_) { return bytes_in_; }
  uint64_t bytes_out() const REQUIRES(role_) { return bytes_out_; }
  uint64_t writev_calls() const REQUIRES(role_) { return writev_calls_; }
  uint64_t writev_segments() const REQUIRES(role_) {
    return writev_segments_;
  }
  // Bytes this connection currently holds in userspace (input + output
  // buffers) — the per-connection term of the server's ingest-memory
  // budget.
  size_t buffered_bytes() const REQUIRES(role_) {
    return in_.size() + out_.size();
  }
  // Monotonic ms when the output buffer last crossed the high-watermark
  // with the peer not draining, or 0 while the peer is keeping up. Set in
  // the backpressure pause path only — CloseAfterFlush also pauses reads
  // but is not a peer stall. The server's sweep drops connections whose
  // stall has outlived the write-stall deadline.
  int64_t stalled_since_ms() const REQUIRES(role_) {
    return stalled_since_ms_;
  }

  // This connection's single-owner capability (claimed by the loop-side
  // event handler and, at ownership boundaries, by the owning server).
  ThreadRole& role() RETURN_CAPABILITY(role_) { return role_; }

 private:
  void OnEvents(uint32_t events) REQUIRES(role_);
  void HandleReadable() REQUIRES(role_);
  void HandleWritable() REQUIRES(role_);
  void DeliverInput() REQUIRES(role_);
  Status FlushSome() REQUIRES(role_);
  void UpdateInterest() REQUIRES(role_);

  EventLoop* loop_;
  int fd_;
  ThreadRole role_;
  Callbacks callbacks_;
  size_t high_watermark_;
  std::string in_ GUARDED_BY(role_);
  std::string out_ GUARDED_BY(role_);
  bool registered_ GUARDED_BY(role_) = false;
  bool closed_ GUARDED_BY(role_) = false;
  bool close_after_flush_ GUARDED_BY(role_) = false;
  Status close_reason_ GUARDED_BY(role_);
  bool paused_ GUARDED_BY(role_) = false;
  bool want_write_ GUARDED_BY(role_) = false;
  int64_t stalled_since_ms_ GUARDED_BY(role_) = 0;
  uint64_t stalls_ GUARDED_BY(role_) = 0;
  uint64_t bytes_in_ GUARDED_BY(role_) = 0;
  uint64_t bytes_out_ GUARDED_BY(role_) = 0;
  uint64_t writev_calls_ GUARDED_BY(role_) = 0;
  uint64_t writev_segments_ GUARDED_BY(role_) = 0;
};

}  // namespace smeter::net

#endif  // SMETER_NET_EVENT_LOOP_H_
