// Load generator: replays a fleet of meters against a running ingestd over
// real TCP sockets.
//
// Each simulated meter runs the full sensor-side pipeline before touching
// the network — exactly the steps `smeter encode-fleet` performs per
// household (history slice, per-meter LookupTable::Build, gap-aware
// encode) — and then uploads the result through the wire protocol:
// HELLO, TABLE_ANNOUNCE (the table's Serialize() bytes verbatim),
// SYMBOL_BATCH stream, GOODBYE carrying the client-side quality counts.
// Because both paths share the encoding code and the sink writes the
// announced table blob untouched, a loadgen run against ingestd yields a
// byte-identical archive to an offline encode-fleet run over the same
// input.
//
// Fault seam `loadgen.drop` aborts the socket mid-conversation (a meter
// dying mid-SYMBOL_BATCH); the worker then reconnects and re-uploads from
// scratch, which the server answers with either a fresh persist or a
// "duplicate" ack — the reconnect-convergence test drives exactly this.

#ifndef SMETER_NET_LOADGEN_H_
#define SMETER_NET_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/encoder.h"
#include "core/fleet_encoder.h"
#include "core/symbolic_series.h"
#include "data/generator.h"

namespace smeter::net {

// Retry backoff shape: full-jitter exponential (delay drawn uniformly
// from [0, min(cap, base * 2^(attempt-2))]). Deterministic exponential
// backoff resynchronizes a fleet that failed together — every meter
// sleeps the same schedule and the whole storm returns as one wave; the
// jitter spreads the wave flat.
struct BackoffPolicy {
  int64_t base_ms = 50;    // ceiling of the first retry's draw
  int64_t cap_ms = 2'000;  // exponential growth clamp
};

// xorshift64: the tiny deterministic PRNG behind the jitter draw. `state`
// must be non-zero; returns the next state.
uint64_t XorShift64(uint64_t* state);

// The delay before `attempt` (attempt 2 = the first retry; attempt <= 1
// returns 0). Pure and clock-free: unit tests drive the schedule with a
// seeded rng state. Callers add any server-provided retry_after_ms hint
// on top.
int64_t FullJitterBackoffMs(int attempt, const BackoffPolicy& policy,
                            uint64_t* rng_state);

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string auth_token;

  // Fleet source. With `input_cer` set, the CER file is loaded exactly as
  // encode-fleet --format cer would (names "meter_<id>"); otherwise
  // `meters` traces are synthesized from `generator` (meter ids 1000+i,
  // the simulator's CER convention).
  std::string input_cer;
  size_t meters = 10;
  data::GeneratorOptions generator;

  // Sensor-side encoding parameters; must match the offline encode-fleet
  // flags when comparing archives.
  FleetEncodeOptions encode;

  // Upload shaping.
  size_t batch_symbols = 512;   // symbols per SYMBOL_BATCH frame
  size_t concurrency = 8;       // parallel meter connections
  double batches_per_second = 0;  // per-connection throttle; 0 = full rate
  int max_attempts = 5;         // connection attempts per meter
  int64_t io_timeout_ms = 10'000;  // per-socket send/recv timeout
  // Retry pacing between attempts. A THROTTLE push-back's retry_after_ms
  // hint is added on top of the jittered draw, so a shed client waits at
  // least as long as the server asked.
  BackoffPolicy backoff;
  // Connection multiplexing: with N > 0, the fleet is partitioned across N
  // persistent TCP connections (meter i rides connection i % N) and each
  // connection carries its meters' sessions back-to-back — HELLO ..
  // GOODBYE_ACK, then the next meter's HELLO on the same socket, exercising
  // the server's keep-alive session reset. A failed conversation drops and
  // reopens only that connection. 0 keeps the classic
  // one-connection-per-meter mode driven by `concurrency`.
  size_t connections = 0;
};

// One meter's sensor-side result, computed before any socket is opened:
// the serialized table plus the symbol stream and quality counts, i.e.
// everything an upload conversation (or a client-SDK spool) needs.
struct PreparedUpload {
  std::string name;
  std::string table_blob;
  SymbolicSeries symbols{1};
  EncodeQuality quality;
};

// Runs the sensor-side pipeline for the whole fleet described by
// `options` (CER file or generator; encode parameters) without touching
// the network. This is the shared front half of RunLoadgen and of the
// client SDK's spool-and-forward mode (client/uploader.h), so both paths
// produce bit-identical tables and symbol streams from the same input.
Result<std::vector<PreparedUpload>> PrepareFleetUploads(
    const LoadgenOptions& options);

struct LoadgenReport {
  size_t meters_total = 0;
  size_t meters_ok = 0;        // GOODBYE acked kOk
  size_t meters_failed = 0;    // all attempts exhausted
  uint64_t frames_sent = 0;
  uint64_t symbols_sent = 0;
  uint64_t reconnects = 0;     // attempts beyond each meter's first
  uint64_t batches_dropped = 0;  // aborts from the loadgen.drop seam
  uint64_t connections_opened = 0;  // actual TCP connects performed
  uint64_t throttled = 0;  // THROTTLE push-backs received in place of acks

  std::string ToJson() const;
};

// Runs the whole fleet to completion (or failure) and reports. Errors only
// on setup problems (bad input file, no traces); per-meter upload failures
// are counted, not fatal.
Result<LoadgenReport> RunLoadgen(const LoadgenOptions& options);

}  // namespace smeter::net

#endif  // SMETER_NET_LOADGEN_H_
