// Blocking client for the query protocol (query_wire.h): one TCP
// connection, one QUERY_HELLO handshake, then synchronous request/response
// pairs. This is the counterpart the CLI `smeter query` subcommand, the
// integration tests, and the query storm driver all share.
//
// Error surface:
//   * Transport and framing failures return the underlying Status.
//   * A THROTTLE frame in place of a response becomes a
//     FailedPreconditionError carrying the scope and retry hint — the
//     caller decides whether to back off or give up.
//   * A per-query non-kOk WireStatus is NOT an error at this layer: the
//     result payload is returned as parsed (status + message populated,
//     values canonical-zero) so callers can tell "meter unknown"
//     (kNotFound) from "malformed request" without string matching.

#ifndef SMETER_NET_QUERY_CLIENT_H_
#define SMETER_NET_QUERY_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/time_series.h"
#include "net/query_wire.h"

namespace smeter::net {

struct QueryClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string auth_token;
  // Socket send/receive timeout; a silent server fails the call.
  int64_t timeout_ms = 5'000;
};

class QueryClient {
 public:
  // Connects and completes the QUERY_HELLO handshake. A draining or
  // unauthorized refusal surfaces as the handshake QueryAck's status
  // mapped onto a Status error.
  static Result<std::unique_ptr<QueryClient>> Connect(
      QueryClientOptions options);
  ~QueryClient();

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  // Latest symbol for one meter (hot current-table lookup).
  Result<PointResultPayload> Point(const std::string& meter_id);

  // Symbols for one meter over [start, end) at `level` (0 = native).
  Result<RangeResultPayload> Range(const std::string& meter_id,
                                   const TimeRange& range, int level,
                                   uint32_t max_symbols);

  // Fleet-wide histogram over [start, end) at `level`.
  Result<AggregateResultPayload> Aggregate(const TimeRange& range,
                                           int level);

  uint64_t requests_sent() const { return next_request_id_ - 1; }

 private:
  class Transport;

  explicit QueryClient(QueryClientOptions options);

  // Sends `request` and returns the response frame, surfacing THROTTLE
  // frames and session-fatal QueryAcks as errors.
  Result<Frame> RoundTrip(const Frame& request, uint8_t expect_type);

  QueryClientOptions options_;
  std::unique_ptr<Transport> transport_;
  uint64_t next_request_id_ = 1;
};

}  // namespace smeter::net

#endif  // SMETER_NET_QUERY_CLIENT_H_
