#include "net/query_wire.h"

#include <algorithm>
#include <utility>

#include "core/symbol.h"
#include "net/wire_codec.h"

namespace smeter::net {
namespace {

using wire_internal::PutI64;
using wire_internal::PutString;
using wire_internal::PutU16;
using wire_internal::PutU32;
using wire_internal::PutU64;
using wire_internal::PutU8;
using wire_internal::Reader;

Status ExpectQueryType(const Frame& frame, QueryFrameType want,
                       const char* name) {
  if (static_cast<uint8_t>(frame.type) != static_cast<uint8_t>(want)) {
    return InvalidArgumentError(std::string("frame is not a ") + name);
  }
  return Status::Ok();
}

Frame QueryFrame(QueryFrameType type) {
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  return frame;
}

Result<WireStatus> TakeWireStatus(Reader& reader) {
  Result<uint8_t> status = reader.TakeU8();
  if (!status.ok()) return status.status();
  if (*status > static_cast<uint8_t>(WireStatus::kNotFound)) {
    return InvalidArgumentError("unknown wire status " +
                                std::to_string(*status));
  }
  return static_cast<WireStatus>(*status);
}

Status CheckWindow(int64_t start, int64_t end) {
  if (start < -kMaxWireTimestamp || start > kMaxWireTimestamp ||
      end < -kMaxWireTimestamp || end > kMaxWireTimestamp) {
    return InvalidArgumentError("window timestamp outside ±" +
                                std::to_string(kMaxWireTimestamp));
  }
  if (end <= start) {
    return InvalidArgumentError("empty query window");
  }
  return Status::Ok();
}

}  // namespace

bool IsQueryFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(QueryFrameType::kQueryHello) &&
         type <= static_cast<uint8_t>(QueryFrameType::kAggregateResult);
}

Frame MakeQueryHello(const QueryHelloPayload& payload) {
  Frame frame = QueryFrame(QueryFrameType::kQueryHello);
  PutU16(frame.payload, payload.protocol_version);
  PutString(frame.payload, payload.auth_token);
  return frame;
}

Result<QueryHelloPayload> ParseQueryHello(const Frame& frame) {
  SMETER_RETURN_IF_ERROR(
      ExpectQueryType(frame, QueryFrameType::kQueryHello, "QUERY_HELLO"));
  Reader reader(frame.payload);
  QueryHelloPayload hello;
  Result<uint16_t> version = reader.TakeU16();
  if (!version.ok()) return version.status();
  hello.protocol_version = *version;
  Result<std::string> token = reader.TakeString(kMaxWireString);
  if (!token.ok()) return token.status();
  hello.auth_token = std::move(*token);
  SMETER_RETURN_IF_ERROR(reader.ExpectExhausted());
  return hello;
}

Frame MakeQueryAck(const QueryAckPayload& payload) {
  Frame frame = QueryFrame(QueryFrameType::kQueryAck);
  PutU8(frame.payload, static_cast<uint8_t>(payload.status));
  PutString(frame.payload, payload.message);
  return frame;
}

Result<QueryAckPayload> ParseQueryAck(const Frame& frame) {
  SMETER_RETURN_IF_ERROR(
      ExpectQueryType(frame, QueryFrameType::kQueryAck, "QUERY_ACK"));
  Reader reader(frame.payload);
  QueryAckPayload ack;
  Result<WireStatus> status = TakeWireStatus(reader);
  if (!status.ok()) return status.status();
  ack.status = *status;
  Result<std::string> message = reader.TakeString(kMaxWireString);
  if (!message.ok()) return message.status();
  ack.message = std::move(*message);
  SMETER_RETURN_IF_ERROR(reader.ExpectExhausted());
  return ack;
}

Frame MakePointQuery(const PointQueryPayload& payload) {
  Frame frame = QueryFrame(QueryFrameType::kPointQuery);
  PutU64(frame.payload, payload.request_id);
  PutString(frame.payload, payload.meter_id);
  return frame;
}

Result<PointQueryPayload> ParsePointQuery(const Frame& frame) {
  SMETER_RETURN_IF_ERROR(
      ExpectQueryType(frame, QueryFrameType::kPointQuery, "POINT_QUERY"));
  Reader reader(frame.payload);
  PointQueryPayload query;
  Result<uint64_t> id = reader.TakeU64();
  if (!id.ok()) return id.status();
  query.request_id = *id;
  Result<std::string> meter = reader.TakeString(kMaxWireString);
  if (!meter.ok()) return meter.status();
  query.meter_id = std::move(*meter);
  SMETER_RETURN_IF_ERROR(reader.ExpectExhausted());
  if (!IsValidMeterId(query.meter_id)) {
    return InvalidArgumentError("POINT_QUERY meter id is invalid");
  }
  return query;
}

Frame MakePointResult(const PointResultPayload& payload) {
  Frame frame = QueryFrame(QueryFrameType::kPointResult);
  PutU64(frame.payload, payload.request_id);
  PutU8(frame.payload, static_cast<uint8_t>(payload.status));
  PutString(frame.payload, payload.message);
  PutI64(frame.payload, payload.timestamp);
  PutU8(frame.payload, payload.level);
  PutU16(frame.payload, payload.symbol);
  return frame;
}

Result<PointResultPayload> ParsePointResult(const Frame& frame) {
  SMETER_RETURN_IF_ERROR(
      ExpectQueryType(frame, QueryFrameType::kPointResult, "POINT_RESULT"));
  Reader reader(frame.payload);
  PointResultPayload result;
  Result<uint64_t> id = reader.TakeU64();
  if (!id.ok()) return id.status();
  result.request_id = *id;
  Result<WireStatus> status = TakeWireStatus(reader);
  if (!status.ok()) return status.status();
  result.status = *status;
  Result<std::string> message = reader.TakeString(kMaxWireString);
  if (!message.ok()) return message.status();
  result.message = std::move(*message);
  Result<int64_t> ts = reader.TakeI64();
  if (!ts.ok()) return ts.status();
  result.timestamp = *ts;
  Result<uint8_t> level = reader.TakeU8();
  if (!level.ok()) return level.status();
  result.level = *level;
  Result<uint16_t> symbol = reader.TakeU16();
  if (!symbol.ok()) return symbol.status();
  result.symbol = *symbol;
  SMETER_RETURN_IF_ERROR(reader.ExpectExhausted());
  if (result.status == WireStatus::kOk) {
    if (result.timestamp < -kMaxWireTimestamp ||
        result.timestamp > kMaxWireTimestamp) {
      return InvalidArgumentError("point result timestamp out of range");
    }
    if (result.level < 1 || result.level > kMaxSymbolLevel) {
      return InvalidArgumentError("point result level out of range");
    }
    if (result.symbol != kWireGapSymbol &&
        result.symbol >= (1u << result.level)) {
      return InvalidArgumentError("point result symbol outside alphabet");
    }
  } else if (result.timestamp != 0 || result.level != 1 ||
             result.symbol != 0) {
    // Error results carry canonical defaults — nothing hides in the value
    // fields of a failed lookup.
    return InvalidArgumentError("non-ok point result carries values");
  }
  return result;
}

Frame MakeRangeQuery(const RangeQueryPayload& payload) {
  Frame frame = QueryFrame(QueryFrameType::kRangeQuery);
  PutU64(frame.payload, payload.request_id);
  PutString(frame.payload, payload.meter_id);
  PutI64(frame.payload, payload.start);
  PutI64(frame.payload, payload.end);
  PutU8(frame.payload, payload.level);
  PutU32(frame.payload, payload.max_symbols);
  return frame;
}

Result<RangeQueryPayload> ParseRangeQuery(const Frame& frame) {
  SMETER_RETURN_IF_ERROR(
      ExpectQueryType(frame, QueryFrameType::kRangeQuery, "RANGE_QUERY"));
  Reader reader(frame.payload);
  RangeQueryPayload query;
  Result<uint64_t> id = reader.TakeU64();
  if (!id.ok()) return id.status();
  query.request_id = *id;
  Result<std::string> meter = reader.TakeString(kMaxWireString);
  if (!meter.ok()) return meter.status();
  query.meter_id = std::move(*meter);
  Result<int64_t> start = reader.TakeI64();
  if (!start.ok()) return start.status();
  query.start = *start;
  Result<int64_t> end = reader.TakeI64();
  if (!end.ok()) return end.status();
  query.end = *end;
  Result<uint8_t> level = reader.TakeU8();
  if (!level.ok()) return level.status();
  query.level = *level;
  Result<uint32_t> max_symbols = reader.TakeU32();
  if (!max_symbols.ok()) return max_symbols.status();
  query.max_symbols = *max_symbols;
  SMETER_RETURN_IF_ERROR(reader.ExpectExhausted());
  if (!IsValidMeterId(query.meter_id)) {
    return InvalidArgumentError("RANGE_QUERY meter id is invalid");
  }
  SMETER_RETURN_IF_ERROR(CheckWindow(query.start, query.end));
  if (query.level > kMaxSymbolLevel) {  // 0 = native is legal
    return InvalidArgumentError("range query level out of range");
  }
  if (query.max_symbols == 0 || query.max_symbols > kMaxWireRangeSymbols) {
    return InvalidArgumentError("range query max_symbols outside (0, " +
                                std::to_string(kMaxWireRangeSymbols) + "]");
  }
  return query;
}

Frame MakeRangeResult(const RangeResultPayload& payload) {
  Frame frame = QueryFrame(QueryFrameType::kRangeResult);
  PutU64(frame.payload, payload.request_id);
  PutU8(frame.payload, static_cast<uint8_t>(payload.status));
  PutString(frame.payload, payload.message);
  PutI64(frame.payload, payload.start_timestamp);
  PutI64(frame.payload, payload.step_seconds);
  PutU8(frame.payload, payload.level);
  PutU8(frame.payload, payload.truncated);
  // Clamp like PutString clamps: a Make* output must always parse. The
  // server never exceeds the cap (max_symbols is parse-bounded).
  const uint32_t count = static_cast<uint32_t>(
      std::min<size_t>(payload.symbols.size(), kMaxWireRangeSymbols));
  PutU32(frame.payload, count);
  for (uint32_t i = 0; i < count; ++i) {
    PutU16(frame.payload, payload.symbols[i]);
  }
  return frame;
}

Result<RangeResultPayload> ParseRangeResult(const Frame& frame) {
  SMETER_RETURN_IF_ERROR(
      ExpectQueryType(frame, QueryFrameType::kRangeResult, "RANGE_RESULT"));
  Reader reader(frame.payload);
  RangeResultPayload result;
  Result<uint64_t> id = reader.TakeU64();
  if (!id.ok()) return id.status();
  result.request_id = *id;
  Result<WireStatus> status = TakeWireStatus(reader);
  if (!status.ok()) return status.status();
  result.status = *status;
  Result<std::string> message = reader.TakeString(kMaxWireString);
  if (!message.ok()) return message.status();
  result.message = std::move(*message);
  Result<int64_t> start = reader.TakeI64();
  if (!start.ok()) return start.status();
  result.start_timestamp = *start;
  Result<int64_t> step = reader.TakeI64();
  if (!step.ok()) return step.status();
  result.step_seconds = *step;
  Result<uint8_t> level = reader.TakeU8();
  if (!level.ok()) return level.status();
  result.level = *level;
  Result<uint8_t> truncated = reader.TakeU8();
  if (!truncated.ok()) return truncated.status();
  if (*truncated > 1) {
    return InvalidArgumentError("range result truncated flag is not 0/1");
  }
  result.truncated = *truncated;
  Result<uint32_t> count = reader.TakeU32();
  if (!count.ok()) return count.status();
  if (*count > kMaxWireRangeSymbols) {
    return InvalidArgumentError("range result symbol count exceeds cap");
  }
  if (reader.remaining() != static_cast<size_t>(*count) * 2) {
    return InvalidArgumentError("symbol count disagrees with payload size");
  }
  result.symbols.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    Result<uint16_t> symbol = reader.TakeU16();
    if (!symbol.ok()) return symbol.status();
    result.symbols.push_back(*symbol);
  }
  SMETER_RETURN_IF_ERROR(reader.ExpectExhausted());
  if (result.status == WireStatus::kOk) {
    if (result.start_timestamp < -kMaxWireTimestamp ||
        result.start_timestamp > kMaxWireTimestamp) {
      return InvalidArgumentError("range result timestamp out of range");
    }
    if (result.step_seconds < 0 ||
        result.step_seconds > kMaxWireStepSeconds) {
      return InvalidArgumentError("range result step out of range");
    }
    if (result.level < 1 || result.level > kMaxSymbolLevel) {
      return InvalidArgumentError("range result level out of range");
    }
    const uint32_t alphabet = 1u << result.level;
    for (uint16_t symbol : result.symbols) {
      if (symbol != kWireGapSymbol && symbol >= alphabet) {
        return InvalidArgumentError("range result symbol outside alphabet");
      }
    }
  } else if (result.start_timestamp != 0 || result.step_seconds != 0 ||
             result.level != 1 || result.truncated != 0 ||
             !result.symbols.empty()) {
    return InvalidArgumentError("non-ok range result carries values");
  }
  return result;
}

Frame MakeAggregateQuery(const AggregateQueryPayload& payload) {
  Frame frame = QueryFrame(QueryFrameType::kAggregateQuery);
  PutU64(frame.payload, payload.request_id);
  PutI64(frame.payload, payload.start);
  PutI64(frame.payload, payload.end);
  PutU8(frame.payload, payload.level);
  return frame;
}

Result<AggregateQueryPayload> ParseAggregateQuery(const Frame& frame) {
  SMETER_RETURN_IF_ERROR(ExpectQueryType(
      frame, QueryFrameType::kAggregateQuery, "AGGREGATE_QUERY"));
  Reader reader(frame.payload);
  AggregateQueryPayload query;
  Result<uint64_t> id = reader.TakeU64();
  if (!id.ok()) return id.status();
  query.request_id = *id;
  Result<int64_t> start = reader.TakeI64();
  if (!start.ok()) return start.status();
  query.start = *start;
  Result<int64_t> end = reader.TakeI64();
  if (!end.ok()) return end.status();
  query.end = *end;
  Result<uint8_t> level = reader.TakeU8();
  if (!level.ok()) return level.status();
  query.level = *level;
  SMETER_RETURN_IF_ERROR(reader.ExpectExhausted());
  SMETER_RETURN_IF_ERROR(CheckWindow(query.start, query.end));
  if (query.level < 1 || query.level > kMaxSymbolLevel) {
    return InvalidArgumentError("aggregate query level out of range");
  }
  return query;
}

Frame MakeAggregateResult(const AggregateResultPayload& payload) {
  Frame frame = QueryFrame(QueryFrameType::kAggregateResult);
  PutU64(frame.payload, payload.request_id);
  PutU8(frame.payload, static_cast<uint8_t>(payload.status));
  PutString(frame.payload, payload.message);
  PutU8(frame.payload, payload.level);
  PutU64(frame.payload, payload.meters);
  PutU64(frame.payload, payload.meters_coarser);
  PutU64(frame.payload, payload.windows);
  PutU64(frame.payload, payload.gaps);
  PutU32(frame.payload, payload.rollup_partitions);
  PutU32(frame.payload, payload.scanned_partitions);
  PutU32(frame.payload, static_cast<uint32_t>(payload.histogram.size()));
  for (uint64_t bucket : payload.histogram) PutU64(frame.payload, bucket);
  return frame;
}

Result<AggregateResultPayload> ParseAggregateResult(const Frame& frame) {
  SMETER_RETURN_IF_ERROR(ExpectQueryType(
      frame, QueryFrameType::kAggregateResult, "AGGREGATE_RESULT"));
  Reader reader(frame.payload);
  AggregateResultPayload result;
  Result<uint64_t> id = reader.TakeU64();
  if (!id.ok()) return id.status();
  result.request_id = *id;
  Result<WireStatus> status = TakeWireStatus(reader);
  if (!status.ok()) return status.status();
  result.status = *status;
  Result<std::string> message = reader.TakeString(kMaxWireString);
  if (!message.ok()) return message.status();
  result.message = std::move(*message);
  Result<uint8_t> level = reader.TakeU8();
  if (!level.ok()) return level.status();
  result.level = *level;
  Result<uint64_t> meters = reader.TakeU64();
  if (!meters.ok()) return meters.status();
  result.meters = *meters;
  Result<uint64_t> coarser = reader.TakeU64();
  if (!coarser.ok()) return coarser.status();
  result.meters_coarser = *coarser;
  Result<uint64_t> windows = reader.TakeU64();
  if (!windows.ok()) return windows.status();
  result.windows = *windows;
  Result<uint64_t> gaps = reader.TakeU64();
  if (!gaps.ok()) return gaps.status();
  result.gaps = *gaps;
  Result<uint32_t> rollup = reader.TakeU32();
  if (!rollup.ok()) return rollup.status();
  result.rollup_partitions = *rollup;
  Result<uint32_t> scanned = reader.TakeU32();
  if (!scanned.ok()) return scanned.status();
  result.scanned_partitions = *scanned;
  Result<uint32_t> buckets = reader.TakeU32();
  if (!buckets.ok()) return buckets.status();
  if (*buckets > (1u << kMaxSymbolLevel)) {
    return InvalidArgumentError("aggregate histogram too large");
  }
  if (reader.remaining() != static_cast<size_t>(*buckets) * 8) {
    return InvalidArgumentError("bucket count disagrees with payload size");
  }
  result.histogram.reserve(*buckets);
  for (uint32_t i = 0; i < *buckets; ++i) {
    Result<uint64_t> bucket = reader.TakeU64();
    if (!bucket.ok()) return bucket.status();
    result.histogram.push_back(*bucket);
  }
  SMETER_RETURN_IF_ERROR(reader.ExpectExhausted());
  if (result.status == WireStatus::kOk) {
    if (result.level < 1 || result.level > kMaxSymbolLevel) {
      return InvalidArgumentError("aggregate result level out of range");
    }
    if (result.histogram.size() != (size_t{1} << result.level)) {
      return InvalidArgumentError(
          "aggregate histogram size disagrees with level");
    }
    if (result.gaps > result.windows) {
      return InvalidArgumentError("aggregate gaps exceed windows");
    }
  } else if (result.level != 1 || result.meters != 0 ||
             result.meters_coarser != 0 || result.windows != 0 ||
             result.gaps != 0 || result.rollup_partitions != 0 ||
             result.scanned_partitions != 0 || !result.histogram.empty()) {
    return InvalidArgumentError("non-ok aggregate result carries values");
  }
  return result;
}

}  // namespace smeter::net
