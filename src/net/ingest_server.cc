#include "net/ingest_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <thread>
#include <utility>

#include "common/fault_injection.h"

namespace smeter::net {
namespace {

Status Errno(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

// Reply frames queued per epoll event before one scatter-gather flush;
// matches BufferedFd::SendVec's single-writev segment budget.
constexpr size_t kReplyFlushBatch = 64;

// Creates a nonblocking listening socket on host:port. With `reuseport`,
// SO_REUSEPORT is set before bind so every shard can own a listener on the
// same address and the kernel spreads accepts across them; a kernel that
// refuses the option surfaces as an error here and the caller falls back
// to the single-acceptor topology.
Result<int> BindListener(const std::string& host, uint16_t port,
                         bool reuseport, uint16_t* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  if (reuseport &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &enable, sizeof(enable)) !=
          0) {
    Status status = Errno("setsockopt(SO_REUSEPORT)");
    ::close(fd);
    return status;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("bad listen host '" + host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("bind " + host + ":" + std::to_string(port));
    ::close(fd);
    return status;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
        0) {
      Status status = Errno("getsockname");
      ::close(fd);
      return status;
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

}  // namespace

Status ParseListenAddress(const std::string& address, std::string* host,
                          uint16_t* port) {
  std::string host_part = "127.0.0.1";
  std::string port_part = address;
  const size_t colon = address.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) host_part = address.substr(0, colon);
    port_part = address.substr(colon + 1);
  }
  if (port_part.empty()) {
    return InvalidArgumentError("missing port in '" + address + "'");
  }
  char* end = nullptr;
  const unsigned long value = std::strtoul(port_part.c_str(), &end, 10);
  if (end == port_part.c_str() || *end != '\0' || value > 65535) {
    return InvalidArgumentError("bad port '" + port_part + "' in '" +
                                address + "'");
  }
  *host = host_part;
  *port = static_cast<uint16_t>(value);
  return Status::Ok();
}

uint64_t MeterShardHash(std::string_view meter_id) {
  // FNV-1a. Stability matters: reconnecting meters must land on the same
  // shard across runs, and the per-shard sink stripes rely on it for
  // locality (never for correctness).
  uint64_t hash = 1469598103934665603ull;
  for (char c : meter_id) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

int ShardForMeter(std::string_view meter_id, int shards) {
  if (shards <= 1) return 0;
  return static_cast<int>(MeterShardHash(meter_id) %
                          static_cast<uint64_t>(shards));
}

void IngestCounters::Add(const IngestCounters& other) {
  sessions_accepted += other.sessions_accepted;
  sessions_active += other.sessions_active;
  sessions_completed += other.sessions_completed;
  sessions_dropped += other.sessions_dropped;
  frames_in += other.frames_in;
  frames_out += other.frames_out;
  bytes_in += other.bytes_in;
  bytes_out += other.bytes_out;
  decode_errors += other.decode_errors;
  backpressure_stalls += other.backpressure_stalls;
  handoffs_in += other.handoffs_in;
  handoffs_out += other.handoffs_out;
  acks_batched += other.acks_batched;
  writev_calls += other.writev_calls;
  writev_segments += other.writev_segments;
  households_persisted += other.households_persisted;
  symbols_persisted += other.symbols_persisted;
  connections_shed += other.connections_shed;
  accepts_emfile += other.accepts_emfile;
  throttles_sent += other.throttles_sent;
  rate_limited += other.rate_limited;
  memory_throttled += other.memory_throttled;
  idle_drops += other.idle_drops;
  write_stall_drops += other.write_stall_drops;
  persists_paused += other.persists_paused;
  circuit_opens += other.circuit_opens;
  ingest_memory_bytes += other.ingest_memory_bytes;
}

std::string IngestCounters::ToJson() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"sessions_accepted\": " << sessions_accepted << ",\n"
      << "  \"sessions_active\": " << sessions_active << ",\n"
      << "  \"sessions_completed\": " << sessions_completed << ",\n"
      << "  \"sessions_dropped\": " << sessions_dropped << ",\n"
      << "  \"frames_in\": " << frames_in << ",\n"
      << "  \"frames_out\": " << frames_out << ",\n"
      << "  \"bytes_in\": " << bytes_in << ",\n"
      << "  \"bytes_out\": " << bytes_out << ",\n"
      << "  \"decode_errors\": " << decode_errors << ",\n"
      << "  \"backpressure_stalls\": " << backpressure_stalls << ",\n"
      << "  \"handoffs_in\": " << handoffs_in << ",\n"
      << "  \"handoffs_out\": " << handoffs_out << ",\n"
      << "  \"acks_batched\": " << acks_batched << ",\n"
      << "  \"writev_calls\": " << writev_calls << ",\n"
      << "  \"writev_segments\": " << writev_segments << ",\n"
      << "  \"households_persisted\": " << households_persisted << ",\n"
      << "  \"symbols_persisted\": " << symbols_persisted << ",\n"
      << "  \"connections_shed\": " << connections_shed << ",\n"
      << "  \"accepts_emfile\": " << accepts_emfile << ",\n"
      << "  \"throttles_sent\": " << throttles_sent << ",\n"
      << "  \"rate_limited\": " << rate_limited << ",\n"
      << "  \"memory_throttled\": " << memory_throttled << ",\n"
      << "  \"idle_drops\": " << idle_drops << ",\n"
      << "  \"write_stall_drops\": " << write_stall_drops << ",\n"
      << "  \"persists_paused\": " << persists_paused << ",\n"
      << "  \"circuit_opens\": " << circuit_opens << ",\n"
      << "  \"ingest_memory_bytes\": " << ingest_memory_bytes << "\n"
      << "}";
  return out.str();
}

// --- IngestShard ------------------------------------------------------------
//
// One core's worth of the daemon: an EventLoop, an (optional) listener,
// a connection table, and counters — all single-writer under this shard's
// own role capability. Cross-shard traffic happens through exactly two
// thread-safe doors: the handoff mailbox (mutex + eventfd wakeup) and the
// server-level upcalls (NoteCompleted/PublishStats).
class IngestShard {
 public:
  IngestShard(IngestServer* server, int index, int listen_fd,
              std::unique_ptr<EventLoop> loop, bool deal_round_robin)
      : server_(server),
        index_(index),
        deal_round_robin_(deal_round_robin),
        listen_fd_(listen_fd),
        loop_(std::move(loop)) {}

  ~IngestShard() {
    ScopedThreadRole owner(role_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (reserve_fd_ >= 0) ::close(reserve_fd_);
    // Handoffs that arrived after this shard stopped never became
    // connections; close their fds (and return their admission charges)
    // so nothing leaks.
    MutexLock lock(handoff_mutex_);
    for (const Handoff& handoff : handoff_queue_) {
      ::close(handoff.fd);
      server_->ReleaseAdmission();
    }
  }

  IngestShard(const IngestShard&) = delete;
  IngestShard& operator=(const IngestShard&) = delete;

  // Wires the acceptor, wakeup handler, and idle sweep into the loop.
  // Called by the creating thread before any shard thread starts.
  Status Setup() {
    ScopedThreadRole owner(role_);
    ScopedThreadRole loop_owner(loop_->role());
    if (listen_fd_ >= 0) {
      SMETER_RETURN_IF_ERROR(
          loop_->Add(listen_fd_, EPOLLIN | EPOLLET, [this](uint32_t) {
            ScopedThreadRole owner(role_);
            OnAcceptable();
          }));
    }
    loop_->SetWakeupHandler([this] {
      ScopedThreadRole owner(role_);
      OnWakeup();
    });
    // Reserved fd for the EMFILE escape hatch: when accept4 hits the fd
    // limit, this slot is briefly freed so the backlog can be accepted
    // and refused instead of spinning on a level that never clears.
    reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    const int64_t sweep = SweepPeriodMs();
    if (sweep > 0) {
      loop_->RunAfter(sweep, [this] {
        ScopedThreadRole owner(role_);
        SweepTimeouts();
      });
    }
    return Status::Ok();
  }

  // The shard thread's main: claims this shard's role for the loop's
  // lifetime. A loop failure drains the whole server so Run() can join.
  Status Run() {
    Status status;
    {
      ScopedThreadRole owner(role_);
      status = loop_->Run();
    }
    if (!status.ok()) server_->RequestDrain();
    return status;
  }

  // Thread- and async-signal-safe (atomic store + eventfd write).
  void RequestDrain() {
    drain_requested_.store(true);
    loop_->Wakeup();
  }
  void RequestStats() {
    stats_requested_.store(true);
    loop_->Wakeup();
  }

  // Thread-safe: queues a connection (fd + bytes its source shard already
  // read) for adoption on this shard's loop thread.
  void EnqueueHandoff(int fd, std::string pending) {
    {
      MutexLock lock(handoff_mutex_);
      handoff_queue_.push_back(Handoff{fd, std::move(pending)});
    }
    loop_->Wakeup();
  }

  // Owner-only snapshot (after the shard thread joined, or before it
  // started).
  IngestCounters SnapshotCountersOwned() {
    ScopedThreadRole owner(role_);
    return LiveSnapshot();
  }

 private:
  struct Connection {
    uint64_t id = 0;
    std::unique_ptr<BufferedFd> io;
    Session session;
    int64_t last_active_ms = 0;
    // Home shard decided (the HELLO peek ran, or the first frame was not a
    // parseable HELLO and the connection stays here).
    bool pinned = false;
    // Sessions finished on this connection (keep-alive multiplexing); an
    // EOF at ExpectHello after a completed session is a clean end, not a
    // drop.
    uint64_t completed = 0;
    // Bytes this connection currently charges against the global
    // ingest-memory budget (userspace buffers + unpersisted samples);
    // kept in sync by UpdateTrackedMemory.
    size_t tracked_bytes = 0;

    Connection(uint64_t id, SessionOptions session_options)
        : id(id), session(std::move(session_options)) {}
  };

  struct Handoff {
    int fd = -1;
    std::string pending;
  };

  void OnAcceptable() REQUIRES(role_) {
    for (;;) {
      int fd = ::accept4(listen_fd_, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        if (errno == EMFILE || errno == ENFILE) {
          // Fd exhaustion: the listener is edge-triggered, so leaving the
          // backlog unaccepted would wedge the acceptor (no new edge until
          // a new connection arrives). Burn the reserved fd to accept and
          // refuse the backlog cleanly.
          ShedBacklogViaReserve();
          return;
        }
        // Other transient accept failures must never kill the daemon; the
        // meter retries.
        return;
      }
      // Fault seam: a dropped accept costs one connection, not the server.
      if (Status fault = fault::Check("net.accept"); !fault.ok()) {
        ::close(fd);
        ++counters_.sessions_dropped;
        continue;
      }
      // Admission control: over the global budget, the connection gets a
      // THROTTLE and an immediate close — a clean refusal the client can
      // back off from, instead of a SYN backlog it can't read.
      if (!server_->TryAdmit()) {
        ShedConnection(fd, ThrottleScope::kAdmission);
        continue;
      }
      ++counters_.sessions_accepted;
      if (deal_round_robin_) {
        // Single-acceptor fallback: deal raw fds round-robin before any
        // byte is read; the receiving shard's HELLO peek re-homes the
        // connection by meter hash if the deal missed.
        const int target = static_cast<int>(
            next_deal_++ % static_cast<uint64_t>(server_->shard_count()));
        if (target != index_) {
          ++counters_.handoffs_out;
          server_->shard(target)->EnqueueHandoff(fd, std::string());
          continue;
        }
      }
      AdoptConnection(fd, std::string(), /*via_handoff=*/false);
    }
  }

  void AdoptConnection(int fd, std::string pending, bool via_handoff)
      REQUIRES(role_) {
    // Per-shard cap binds where the connection would actually live (after
    // the deal in single-acceptor mode). The global admission charge from
    // accept time is returned on the refusal.
    const int shard_cap = server_->options().max_connections_per_shard;
    if (shard_cap > 0 &&
        connections_.size() >= static_cast<size_t>(shard_cap)) {
      ShedConnection(fd, ThrottleScope::kAdmission);
      server_->ReleaseAdmission();
      return;
    }
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    if (const int sndbuf = server_->options().sndbuf_bytes; sndbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
    }

    SessionOptions session_options = server_->options().session;
    session_options.auth_token = server_->options().auth_token;
    session_options.draining = draining_;

    auto conn = std::make_unique<Connection>(next_conn_id_++,
                                             std::move(session_options));
    Connection* raw = conn.get();
    raw->last_active_ms = EventLoop::NowMs();
    raw->io = std::make_unique<BufferedFd>(
        loop_.get(), fd,
        BufferedFd::Callbacks{
            [this, raw](std::string_view data) {
              ScopedThreadRole owner(role_);
              return OnData(raw, data);
            },
            [this, raw](const Status& reason) {
              ScopedThreadRole owner(role_);
              OnConnectionClosed(raw, reason);
            }},
        server_->options().high_watermark);
    ScopedThreadRole io_owner(raw->io->role());
    if (Status status = raw->io->Register(); !status.ok()) {
      // Registration failed before on_close could be wired in; the
      // connection never existed as far as the counters are concerned
      // (the BufferedFd destructor closes the fd), so its admission
      // charge goes back too.
      server_->ReleaseAdmission();
      return;
    }
    if (via_handoff) ++counters_.handoffs_in;
    ++counters_.sessions_active;
    connections_.emplace(raw->id, std::move(conn));
    if (!pending.empty()) {
      // Replay what the source shard already read: edge-triggered epoll
      // shows no edge for bytes that left the socket on another shard.
      raw->io->InjectInput(pending);
      raw->io->Pump();
    }
  }

  void AdoptHandoffs() REQUIRES(role_) {
    std::vector<Handoff> pending;
    {
      MutexLock lock(handoff_mutex_);
      pending.swap(handoff_queue_);
    }
    for (Handoff& handoff : pending) {
      AdoptConnection(handoff.fd, std::move(handoff.pending),
                      /*via_handoff=*/true);
    }
  }

  // Pre-encoded accept-time THROTTLE frame for `scope`, built once per
  // shard (the shed path must not allocate per flood connection).
  const std::string& ThrottleFrameFor(ThrottleScope scope) REQUIRES(role_) {
    const size_t slot = static_cast<size_t>(scope) - 1;
    if (throttle_frames_[slot].empty()) {
      ThrottlePayload payload;
      payload.retry_after_ms = server_->options().throttle_retry_ms;
      payload.scope = scope;
      payload.message = ThrottleScopeName(scope) + " limit; retry later";
      throttle_frames_[slot] = EncodeFrame(MakeThrottle(payload));
    }
    return throttle_frames_[slot];
  }

  // Refuses a connection before it becomes a session: one best-effort
  // THROTTLE write (a fresh socket's send buffer always has room for the
  // handful of bytes, so the refusal usually reaches the peer), then
  // close.
  void ShedConnection(int fd, ThrottleScope scope) REQUIRES(role_) {
    const std::string& frame = ThrottleFrameFor(scope);
    const ssize_t n = ::write(fd, frame.data(), frame.size());
    if (n == static_cast<ssize_t>(frame.size())) ++counters_.throttles_sent;
    ::close(fd);
    ++counters_.connections_shed;
  }

  // The EMFILE escape hatch: free the reserved fd, accept-and-refuse the
  // backlog until it drains (each shed close frees the slot the next
  // accept uses), then re-arm the reserve. Without this, an fd-exhausted
  // edge-triggered acceptor never sees another readable edge for the
  // connections already queued and the backlog sits until the peers give
  // up.
  void ShedBacklogViaReserve() REQUIRES(role_) {
    ++counters_.accepts_emfile;
    if (reserve_fd_ < 0) {
      // The reserve itself could not be (re)opened under pressure; try
      // again now — if even that fails the backlog must wait for a slot.
      reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
      if (reserve_fd_ < 0) return;
    }
    ::close(reserve_fd_);
    reserve_fd_ = -1;
    for (;;) {
      int fd = ::accept4(listen_fd_, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN: backlog drained; EMFILE: the slot vanished
      }
      ShedConnection(fd, ThrottleScope::kAdmission);
    }
    reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  }

  // Per-meter token bucket (rate = options.rate_limit HELLOs/s, burst =
  // max(1, rate)). Returns false with a retry hint when the meter must
  // wait; the bucket lives on the meter's home shard so reconnects always
  // meet the same bucket.
  bool AllowSession(const std::string& meter, int64_t now_ms,
                    uint32_t* retry_after_ms) REQUIRES(role_) {
    const double rate = server_->options().rate_limit;
    if (rate <= 0) return true;
    const double burst = std::max(1.0, rate);
    auto [it, inserted] =
        buckets_.try_emplace(meter, TokenBucket{burst, now_ms});
    TokenBucket& bucket = it->second;
    if (!inserted) {
      const double refill =
          static_cast<double>(now_ms - bucket.last_ms) * rate / 1000.0;
      bucket.tokens = std::min(burst, bucket.tokens + refill);
      bucket.last_ms = now_ms;
    }
    if (bucket.tokens >= 1.0) {
      bucket.tokens -= 1.0;
      return true;
    }
    // Time until one full token, capped at an hour so a corrupt clock
    // can not produce a forever hint.
    const double deficit_ms = (1.0 - bucket.tokens) / rate * 1000.0;
    *retry_after_ms =
        static_cast<uint32_t>(std::min(deficit_ms, 3.6e6)) + 1;
    return false;
  }

  // Re-measures one connection's ingest-memory charge (userspace buffers
  // plus unpersisted session samples) and folds the delta into the shard
  // gauge and the fleet-wide atomic.
  void UpdateTrackedMemory(Connection* conn) REQUIRES(role_) {
    size_t now_bytes = 0;
    {
      ScopedThreadRole io_owner(conn->io->role());
      if (!conn->io->closed()) now_bytes = conn->io->buffered_bytes();
    }
    {
      ScopedThreadRole writer(conn->session.writer_role());
      now_bytes +=
          conn->session.symbols_received() * sizeof(SymbolicSample);
    }
    const int64_t delta = static_cast<int64_t>(now_bytes) -
                          static_cast<int64_t>(conn->tracked_bytes);
    if (delta != 0) {
      server_->AddMemoryUsage(delta);
      tracked_memory_ += delta;
      conn->tracked_bytes = now_bytes;
    }
  }

  // Returns a departing connection's whole memory charge (close and
  // handoff both end its tenancy on this shard).
  void ReleaseTrackedMemory(Connection* conn) REQUIRES(role_) {
    if (conn->tracked_bytes == 0) return;
    server_->AddMemoryUsage(-static_cast<int64_t>(conn->tracked_bytes));
    tracked_memory_ -= static_cast<int64_t>(conn->tracked_bytes);
    conn->tracked_bytes = 0;
  }

  // Pushes back on an established connection: a THROTTLE in place of the
  // awaited ack, then close — dropping the connection is what actually
  // frees the buffers the budgets protect.
  void ThrottleConnection(Connection* conn, ThrottleScope scope,
                          uint32_t retry_after_ms, std::string message)
      REQUIRES(role_) {
    ThrottlePayload payload;
    payload.retry_after_ms = retry_after_ms;
    payload.scope = scope;
    payload.message = std::move(message);
    QueueReply(MakeThrottle(payload));
    ++counters_.throttles_sent;
    FlushReplies(conn);
    ScopedThreadRole io_owner(conn->io->role());
    if (!conn->io->closed()) {
      conn->io->CloseAfterFlush(
          InternalError("throttled: " + ThrottleScopeName(scope)));
    }
  }

  // While the sink's ENOSPC circuit is open, poll MaybeProbe on a timer.
  // The probe interval is enforced inside the sink, so several shards
  // polling concurrently still cost one probe write per interval; the
  // timer stops the first time the circuit reads closed.
  void ScheduleDiskProbe() REQUIRES(role_) {
    if (probe_scheduled_) return;
    probe_scheduled_ = true;
    ScopedThreadRole loop_owner(loop_->role());
    loop_->RunAfter(server_->options().probe_interval_ms, [this] {
      ScopedThreadRole owner(role_);
      probe_scheduled_ = false;
      if (!server_->sink()->MaybeProbe(EventLoop::NowMs())) {
        ScheduleDiskProbe();
      }
    });
  }

  // Feeds `data` to the connection's frame decoder; returns bytes
  // consumed. The hot path: zero-copy frame views straight out of the
  // receive buffer, replies coalesced into one writev per event.
  size_t OnData(Connection* conn, std::string_view data) REQUIRES(role_) {
    // On this shard's loop thread, the shard is the one writer of the
    // connection's session and the one driver of its BufferedFd.
    ScopedThreadRole writer(conn->session.writer_role());
    ScopedThreadRole io_owner(conn->io->role());
    conn->last_active_ms = EventLoop::NowMs();

    if (!conn->pinned) {
      // HELLO peek: decide this connection's home shard before consuming
      // anything, so a re-homed connection travels with its bytes intact.
      const DecodeViewResult peek = DecodeFrameView(data);
      if (peek.outcome == DecodeResult::Outcome::kNeedMore) return 0;
      if (peek.outcome == DecodeResult::Outcome::kFrame &&
          peek.frame.type == FrameType::kHello &&
          server_->shard_count() > 1) {
        Frame hello;
        hello.type = FrameType::kHello;
        hello.payload.assign(peek.frame.payload);
        if (Result<HelloPayload> parsed = ParseHello(hello); parsed.ok()) {
          const int target =
              ShardForMeter(parsed->meter_id, server_->shard_count());
          if (target != index_) {
            HandoffConnection(conn, target);
            return 0;  // the bytes travel with the fd
          }
        }
      }
      // Anything else (decode error, non-HELLO opener, unparseable HELLO)
      // stays here; the normal loop below produces the protocol error.
      conn->pinned = true;
    }

    size_t consumed = 0;
    std::vector<Frame> replies;
    while (consumed < data.size()) {
      DecodeViewResult decoded = DecodeFrameView(data.substr(consumed));
      if (decoded.outcome == DecodeResult::Outcome::kNeedMore) break;
      if (decoded.outcome == DecodeResult::Outcome::kError) {
        // A torn or corrupted frame: tell the meter why, then quarantine
        // this connection. The stream is unrecoverable past this point,
        // so consume everything.
        ++counters_.decode_errors;
        FailConnection(conn, WireStatus::kBadFrame, decoded.error);
        return data.size();
      }
      consumed += decoded.consumed;
      ++counters_.frames_in;
      // Overload interception runs here at the shard, before the Session
      // sees the frame, so the protocol state machine stays pure (no
      // clocks, no budgets). By this point the connection is pinned, so
      // the rate bucket consulted is the meter's home-shard bucket.
      if (decoded.frame.type == FrameType::kHello &&
          server_->options().rate_limit > 0) {
        Frame hello;
        hello.type = FrameType::kHello;
        hello.payload.assign(decoded.frame.payload);
        if (Result<HelloPayload> parsed = ParseHello(hello); parsed.ok()) {
          uint32_t retry_after_ms = 0;
          if (!AllowSession(parsed->meter_id, EventLoop::NowMs(),
                            &retry_after_ms)) {
            ++counters_.rate_limited;
            ThrottleConnection(conn, ThrottleScope::kRate, retry_after_ms,
                               "per-meter session rate limit");
            return data.size();
          }
        }
        // An unparseable HELLO falls through; the session produces the
        // protocol error ack.
      }
      if (decoded.frame.type == FrameType::kSymbolBatch &&
          server_->options().memory_budget > 0) {
        UpdateTrackedMemory(conn);
        if (static_cast<uint64_t>(std::max<int64_t>(
                server_->memory_usage(), 0)) +
                decoded.frame.payload.size() >
            server_->options().memory_budget) {
          ++counters_.memory_throttled;
          ThrottleConnection(conn, ThrottleScope::kMemory,
                             server_->options().throttle_retry_ms,
                             "ingest memory budget exceeded");
          return data.size();
        }
      }
      replies.clear();
      conn->session.OnWireFrame(decoded.frame, &replies);
      for (const Frame& reply : replies) QueueReply(reply);
      if (conn->session.state() == Session::State::kFailed) {
        FlushReplies(conn);
        if (!conn->io->closed()) {
          conn->io->CloseAfterFlush(conn->session.error());
        }
        return data.size();
      }
      if (conn->session.state() == Session::State::kComplete) {
        if (!FinishSession(conn)) return data.size();
        // Keep-alive: the session reset to ExpectHello and the client may
        // have pipelined the next meter's HELLO already — keep decoding.
      }
      if (reply_bytes_.size() >= kReplyFlushBatch) FlushReplies(conn);
      if (conn->io->closed()) return data.size();
    }
    FlushReplies(conn);
    UpdateTrackedMemory(conn);
    if (conn->io->closed()) return data.size();
    return consumed;
  }

  void QueueReply(const Frame& frame) REQUIRES(role_) {
    reply_bytes_.push_back(EncodeFrame(frame));
    ++counters_.frames_out;
  }

  // Sends every queued reply in one scatter-gather writev (SendVec buffers
  // whatever the socket refuses).
  void FlushReplies(Connection* conn) REQUIRES(role_) {
    if (reply_bytes_.empty()) return;
    ScopedThreadRole io_owner(conn->io->role());
    if (conn->io->closed()) {
      reply_bytes_.clear();
      return;
    }
    reply_views_.clear();
    reply_views_.reserve(reply_bytes_.size());
    for (const std::string& bytes : reply_bytes_) {
      reply_views_.push_back(bytes);
    }
    if (reply_views_.size() > 1) counters_.acks_batched += reply_views_.size();
    (void)conn->io->SendVec(reply_views_.data(), reply_views_.size());
    reply_bytes_.clear();
  }

  // Detaches the connection and mails fd + unread bytes to its home
  // shard. Must run before any frame is consumed or reply queued (HELLO
  // peek time), so no output can be stranded here.
  void HandoffConnection(Connection* conn, int target) REQUIRES(role_) {
    ScopedThreadRole io_owner(conn->io->role());
    BufferedFd::Released released = conn->io->ReleaseFd();
    ++counters_.handoffs_out;
    --counters_.sessions_active;
    // The memory charge moves with the connection (the target re-measures
    // on adoption); the global admission charge just stays put — it is
    // still one live connection.
    ReleaseTrackedMemory(conn);
    HarvestIoCounters(conn);
    auto it = connections_.find(conn->id);
    if (it != connections_.end()) {
      graveyard_.push_back(std::move(it->second));
      connections_.erase(it);
    }
    ScheduleReap();
    server_->shard(target)->EnqueueHandoff(released.fd,
                                           std::move(released.pending_in));
  }

  // Folds a departing connection's BufferedFd statistics into the shard
  // counters (close and handoff both end the fd's life on this shard).
  void HarvestIoCounters(Connection* conn) REQUIRES(role_) {
    ScopedThreadRole io_owner(conn->io->role());
    counters_.bytes_in += conn->io->bytes_in();
    counters_.bytes_out += conn->io->bytes_out();
    counters_.backpressure_stalls += conn->io->stalls();
    counters_.writev_calls += conn->io->writev_calls();
    counters_.writev_segments += conn->io->writev_segments();
  }

  // Persists (or duplicate-acks) a completed session and queues the
  // GOODBYE_ACK. Returns true when the connection stays open for another
  // session (keep-alive), false when the caller must stop feeding it.
  bool FinishSession(Connection* conn) REQUIRES(role_) {
    ScopedThreadRole writer(conn->session.writer_role());
    ScopedThreadRole io_owner(conn->io->role());
    Session& session = conn->session;
    const std::string meter = session.meter_id();
    AckPayload ack;
    bool completed = false;
    ArchiveSink* sink = server_->sink();
    if (sink->AlreadyPersisted(meter)) {
      // Crash/reconnect re-upload: the archive already holds this meter
      // durably; acknowledge without rewriting.
      ack.status = WireStatus::kOk;
      ack.message = "duplicate";
      ++counters_.sessions_completed;
      completed = true;
    } else {
      const bool circuit_was_open = sink->circuit_open();
      Result<SymbolicSeries> series = session.TakeSeries();
      const uint64_t symbols = series.ok() ? series->size() : 0;
      Status persisted =
          series.ok() ? sink->Persist(meter, session.table_blob(), *series,
                                      session.quality(), index_)
                      : series.status();
      if (persisted.ok()) {
        ack.status = WireStatus::kOk;
        ack.message = "persisted";
        ++counters_.sessions_completed;
        ++counters_.households_persisted;
        counters_.symbols_persisted += symbols;
        completed = true;
      } else if (IsDiskFullStatus(persisted)) {
        // Disk exhaustion: withhold the success ack entirely and push
        // back with a THROTTLE instead of a kServerError ack — the upload
        // is fine, the server is (temporarily) not. The circuit breaker
        // keeps later sessions off the full disk and the probe timer
        // reopens intake; atomic writes guarantee no torn artifact
        // exists, so the meter's eventual retry persists cleanly (and a
        // kill during this paused window converges via fsck + resume).
        if (!circuit_was_open && sink->circuit_open()) {
          ++counters_.circuit_opens;
        }
        ++counters_.persists_paused;
        ScheduleDiskProbe();
        ThrottleConnection(conn, ThrottleScope::kDisk,
                           server_->options().throttle_retry_ms,
                           "archive paused: " + persisted.message());
        return false;
      } else {
        // Persist failed (disk fault seam): the meter must know its
        // upload is NOT durable, so the GOODBYE_ACK carries the error and
        // the session counts as dropped, not completed.
        ack.status = WireStatus::kServerError;
        ack.message = persisted.message();
      }
    }
    QueueReply(MakeAck(FrameType::kGoodbyeAck, ack));
    bool keep_alive;
    if (draining_) {
      // No next session during drain: flush the ack and close.
      FlushReplies(conn);
      if (!conn->io->closed()) conn->io->CloseAfterFlush(Status::Ok());
      keep_alive = false;
    } else {
      // Connection keep-alive: back to ExpectHello so the same socket can
      // carry the next meter (loadgen --connections). Follow-on sessions
      // stay on this shard; the sink's cross-stripe dedup keeps that
      // correct regardless of the next meter's hash.
      session.Reset();
      ++conn->completed;
      keep_alive = true;
    }
    // Exit-after trigger counts DISTINCT meters acknowledged this run
    // across all shards, not sink totals: on a --resume restart the sink
    // starts out holding every carried record, and draining on that total
    // let the server finalize before slow reconnecting meters got their
    // duplicate acks (the old ASan soak flake). Draining synchronously on
    // the tripping shard keeps the single-shard tests deterministic.
    if (completed && server_->NoteCompleted(meter)) {
      FlushReplies(conn);
      BeginDrain();
      server_->RequestDrain();
    }
    return keep_alive && !conn->io->closed();
  }

  void FailConnection(Connection* conn, WireStatus status, Status error)
      REQUIRES(role_) {
    ScopedThreadRole io_owner(conn->io->role());
    AckPayload ack;
    ack.status = status;
    ack.message = error.message();
    QueueReply(MakeAck(FrameType::kGoodbyeAck, ack));
    FlushReplies(conn);
    if (!conn->io->closed()) conn->io->CloseAfterFlush(std::move(error));
  }

  void OnConnectionClosed(Connection* conn, const Status& reason)
      REQUIRES(role_) {
    (void)reason;
    ScopedThreadRole writer(conn->session.writer_role());
    --counters_.sessions_active;
    server_->ReleaseAdmission();
    ReleaseTrackedMemory(conn);
    HarvestIoCounters(conn);
    const Session::State state = conn->session.state();
    const bool clean_end =
        state == Session::State::kComplete ||
        (state == Session::State::kExpectHello && conn->completed > 0);
    if (!clean_end) {
      // Disconnected mid-stream, protocol violation, timed out, or torn
      // frame — nothing persisted; the meter reconnects and resends.
      ++counters_.sessions_dropped;
    }
    // on_close can fire while this connection's own BufferedFd callbacks
    // are on the stack, so defer destruction to the next loop pass.
    auto it = connections_.find(conn->id);
    if (it != connections_.end()) {
      graveyard_.push_back(std::move(it->second));
      connections_.erase(it);
    }
    ScheduleReap();
    if (draining_) FinishDrainIfIdle();
  }

  void ScheduleReap() REQUIRES(role_) {
    if (reap_scheduled_) return;
    reap_scheduled_ = true;
    ScopedThreadRole loop_owner(loop_->role());
    loop_->RunAfter(0, [this] {
      ScopedThreadRole owner(role_);
      ReapClosed();
    });
  }

  void ReapClosed() REQUIRES(role_) {
    reap_scheduled_ = false;
    graveyard_.clear();
    if (draining_) FinishDrainIfIdle();
  }

  // Sweep cadence: half the tightest enabled deadline, floored at 100 ms;
  // 0 when both timeout mechanisms are off.
  int64_t SweepPeriodMs() const {
    const int64_t idle = server_->options().idle_timeout_ms;
    const int64_t stall = server_->options().write_stall_ms;
    int64_t tightest = 0;
    if (idle > 0) tightest = idle;
    if (stall > 0 && (tightest == 0 || stall < tightest)) tightest = stall;
    if (tightest == 0) return 0;
    return std::max<int64_t>(tightest / 2, 100);
  }

  // One pass of the per-connection deadline police: the write-stall
  // deadline (peer stopped draining acks past the high-watermark) and the
  // idle timeout (peer stopped talking). A stalled connection is also
  // idle by definition (paused reads see no activity), so the stall check
  // runs first and claims the drop.
  void SweepTimeouts() REQUIRES(role_) {
    const int64_t idle_timeout = server_->options().idle_timeout_ms;
    const int64_t stall_timeout = server_->options().write_stall_ms;
    const int64_t now = EventLoop::NowMs();
    std::vector<std::pair<uint64_t, bool>> victims;  // (id, stalled)
    for (const auto& [id, conn] : connections_) {
      ScopedThreadRole io_owner(conn->io->role());
      const int64_t stalled_since = conn->io->stalled_since_ms();
      if (stall_timeout > 0 && stalled_since > 0 &&
          now - stalled_since > stall_timeout) {
        victims.emplace_back(id, true);
      } else if (idle_timeout > 0 &&
                 now - conn->last_active_ms > idle_timeout) {
        victims.emplace_back(id, false);
      }
    }
    for (const auto& [id, stalled] : victims) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      if (stalled) {
        ++counters_.write_stall_drops;
      } else {
        ++counters_.idle_drops;
      }
      ScopedThreadRole io_owner(it->second->io->role());
      it->second->io->Close(InternalError(
          stalled ? "write-stall deadline"
                  : "idle timeout"));  // fires OnConnectionClosed
    }
    // Rate buckets that have refilled to burst hold no information;
    // prune them so the map only tracks meters currently being limited.
    const double rate = server_->options().rate_limit;
    if (rate > 0 && !buckets_.empty()) {
      const double burst = std::max(1.0, rate);
      for (auto it = buckets_.begin(); it != buckets_.end();) {
        const double refill =
            static_cast<double>(now - it->second.last_ms) * rate / 1000.0;
        if (it->second.tokens + refill >= burst) {
          it = buckets_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!draining_) {
      const int64_t sweep = SweepPeriodMs();
      if (sweep > 0) {
        ScopedThreadRole loop_owner(loop_->role());
        loop_->RunAfter(sweep, [this] {
          ScopedThreadRole owner(role_);
          SweepTimeouts();
        });
      }
    }
  }

  void OnWakeup() REQUIRES(role_) {
    AdoptHandoffs();
    if (stats_requested_.exchange(false)) {
      server_->PublishStats(index_, LiveSnapshot());
    }
    if (drain_requested_.exchange(false)) BeginDrain();
  }

  void BeginDrain() REQUIRES(role_) {
    if (draining_) return;
    draining_ = true;
    if (listen_fd_ >= 0) {
      ScopedThreadRole loop_owner(loop_->role());
      // Stop accepting: new meters get connection-refused and retry
      // elsewhere or later.
      (void)loop_->Remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // Mailbox stragglers become connections now so their HELLOs are
    // refused with kDraining instead of stranding open fds.
    AdoptHandoffs();
    // Sessions that have not said HELLO yet are refused with kDraining;
    // in-flight uploads get drain_grace_ms to finish.
    for (const auto& [id, conn] : connections_) {
      ScopedThreadRole writer(conn->session.writer_role());
      conn->session.SetDraining();
    }
    {
      ScopedThreadRole loop_owner(loop_->role());
      loop_->RunAfter(server_->options().drain_grace_ms, [this] {
        ScopedThreadRole owner(role_);
        std::vector<uint64_t> remaining;
        for (const auto& [id, conn] : connections_) remaining.push_back(id);
        for (uint64_t id : remaining) {
          auto it = connections_.find(id);
          if (it == connections_.end()) continue;
          ScopedThreadRole io_owner(it->second->io->role());
          it->second->io->Close(InternalError("drain deadline"));
        }
        FinishDrainIfIdle();
      });
    }
    FinishDrainIfIdle();
  }

  void FinishDrainIfIdle() REQUIRES(role_) {
    if (!draining_ || stopped_ || !connections_.empty()) return;
    stopped_ = true;
    ScopedThreadRole loop_owner(loop_->role());
    loop_->Stop();
  }

  IngestCounters LiveSnapshot() REQUIRES(role_) {
    IngestCounters snapshot = counters_;
    snapshot.ingest_memory_bytes =
        static_cast<uint64_t>(std::max<int64_t>(tracked_memory_, 0));
    for (const auto& [id, conn] : connections_) {
      ScopedThreadRole io_owner(conn->io->role());
      snapshot.bytes_in += conn->io->bytes_in();
      snapshot.bytes_out += conn->io->bytes_out();
      snapshot.backpressure_stalls += conn->io->stalls();
      snapshot.writev_calls += conn->io->writev_calls();
      snapshot.writev_segments += conn->io->writev_segments();
    }
    return snapshot;
  }

  IngestServer* const server_;
  const int index_;
  const bool deal_round_robin_;
  int listen_fd_ GUARDED_BY(role_);
  std::unique_ptr<EventLoop> loop_;
  ThreadRole role_;

  uint64_t next_conn_id_ GUARDED_BY(role_) = 1;
  uint64_t next_deal_ GUARDED_BY(role_) = 0;
  // EMFILE escape hatch: a slot held open so ShedBacklogViaReserve always
  // has one fd to accept-and-refuse with. -1 when even /dev/null was
  // unopenable (retried on the next EMFILE).
  int reserve_fd_ GUARDED_BY(role_) = -1;
  // Per-meter session-rate buckets (options.rate_limit); pruned when full.
  struct TokenBucket {
    double tokens = 0;
    int64_t last_ms = 0;
  };
  std::map<std::string, TokenBucket> buckets_ GUARDED_BY(role_);
  // This shard's share of the global ingest-memory gauge.
  int64_t tracked_memory_ GUARDED_BY(role_) = 0;
  bool probe_scheduled_ GUARDED_BY(role_) = false;
  // Pre-encoded per-scope THROTTLE frames for the accept-time shed path.
  std::array<std::string, 4> throttle_frames_ GUARDED_BY(role_);
  std::map<uint64_t, std::unique_ptr<Connection>> connections_
      GUARDED_BY(role_);
  // Connections whose on_close fired mid-callback; freed next loop pass.
  std::vector<std::unique_ptr<Connection>> graveyard_ GUARDED_BY(role_);
  bool reap_scheduled_ GUARDED_BY(role_) = false;
  bool draining_ GUARDED_BY(role_) = false;
  bool stopped_ GUARDED_BY(role_) = false;
  IngestCounters counters_ GUARDED_BY(role_);
  // Per-event reply batch scratch (strings own the encoded frames until
  // the writev; views are rebuilt per flush).
  std::vector<std::string> reply_bytes_ GUARDED_BY(role_);
  std::vector<std::string_view> reply_views_ GUARDED_BY(role_);

  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> stats_requested_{false};
  Mutex handoff_mutex_;
  std::vector<Handoff> handoff_queue_ GUARDED_BY(handoff_mutex_);
};

// --- IngestServer -----------------------------------------------------------

IngestServer::IngestServer(IngestServerOptions options)
    : options_(std::move(options)), stats_out_(&std::cerr) {}

IngestServer::~IngestServer() = default;

Result<std::unique_ptr<IngestServer>> IngestServer::Create(
    IngestServerOptions options) {
  if (options.archive_dir.empty()) {
    return InvalidArgumentError("ingest server needs an archive directory");
  }
  if (options.max_connections < 0 || options.max_connections_per_shard < 0 ||
      options.rate_limit < 0 || options.write_stall_ms < 0 ||
      options.sndbuf_bytes < 0) {
    return InvalidArgumentError(
        "overload limits must be non-negative (0 disables)");
  }
  if (options.probe_interval_ms < 1) {
    return InvalidArgumentError("probe interval must be positive");
  }
  options.threads = std::clamp(options.threads, 1, 64);
  const int threads = options.threads;
  bool single_acceptor = options.force_single_acceptor || threads == 1;

  std::vector<int> listeners(static_cast<size_t>(threads), -1);
  uint16_t port = 0;
  Result<int> first =
      BindListener(options.host, options.port, !single_acceptor, &port);
  if (!first.ok() && !single_acceptor) {
    // SO_REUSEPORT unavailable: fall back to the single-acceptor deal.
    single_acceptor = true;
    first = BindListener(options.host, options.port, false, &port);
  }
  if (!first.ok()) return first.status();
  listeners[0] = *first;
  if (!single_acceptor) {
    for (int i = 1; i < threads; ++i) {
      Result<int> fd = BindListener(options.host, port, true, nullptr);
      if (!fd.ok()) {
        for (int j = 1; j < i; ++j) {
          ::close(listeners[static_cast<size_t>(j)]);
          listeners[static_cast<size_t>(j)] = -1;
        }
        single_acceptor = true;
        break;
      }
      listeners[static_cast<size_t>(i)] = *fd;
    }
  }
  auto close_unowned = [&listeners] {
    for (int& fd : listeners) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  };

  Result<std::unique_ptr<ArchiveSink>> sink =
      ArchiveSink::Open(options.archive_dir, options.resume, threads,
                        options.probe_interval_ms);
  if (!sink.ok()) {
    close_unowned();
    return sink.status();
  }

  std::unique_ptr<IngestServer> server(new IngestServer(std::move(options)));
  server->port_ = port;
  server->sink_ = std::move(sink.value());
  {
    MutexLock lock(server->stats_mutex_);
    server->pending_stats_.resize(static_cast<size_t>(threads));
  }
  for (int i = 0; i < threads; ++i) {
    Result<std::unique_ptr<EventLoop>> loop = EventLoop::Create();
    if (!loop.ok()) {
      close_unowned();
      return loop.status();
    }
    const bool deal = single_acceptor && threads > 1 && i == 0;
    server->shards_.push_back(std::make_unique<IngestShard>(
        server.get(), i, listeners[static_cast<size_t>(i)],
        std::move(loop.value()), deal));
    listeners[static_cast<size_t>(i)] = -1;  // the shard owns it now
    if (Status status = server->shards_.back()->Setup(); !status.ok()) {
      close_unowned();
      return status;
    }
  }
  return server;
}

Status IngestServer::Run() {
  // The calling thread owns the cross-shard state until Run() returns;
  // each shard thread owns its shard's state via the shard role.
  ScopedThreadRole owner(role_);
  const size_t n = shards_.size();
  std::vector<Status> results(n);
  std::vector<std::thread> threads;
  threads.reserve(n > 0 ? n - 1 : 0);
  for (size_t i = 1; i < n; ++i) {
    threads.emplace_back(
        [this, i, &results] { results[i] = shards_[i]->Run(); });
  }
  results[0] = shards_[0]->Run();
  for (std::thread& thread : threads) thread.join();
  Status exit_status = sink_->Finalize();
  for (const Status& result : results) {
    if (exit_status.ok() && !result.ok()) exit_status = result;
  }
  return exit_status;
}

void IngestServer::RequestDrain() {
  for (const std::unique_ptr<IngestShard>& shard : shards_) {
    shard->RequestDrain();
  }
}

void IngestServer::RequestStatsDump() {
  for (const std::unique_ptr<IngestShard>& shard : shards_) {
    shard->RequestStats();
  }
}

IngestCounters IngestServer::counters() const {
  IngestCounters total;
  for (const std::unique_ptr<IngestShard>& shard : shards_) {
    total.Add(shard->SnapshotCountersOwned());
  }
  return total;
}

IngestCounters IngestServer::shard_counters(int shard) const {
  return shards_[static_cast<size_t>(shard)]->SnapshotCountersOwned();
}

bool IngestServer::TryAdmit() {
  const int budget = options_.max_connections;
  const int64_t now = admitted_.fetch_add(1) + 1;
  if (budget > 0 && now > budget) {
    admitted_.fetch_sub(1);
    return false;
  }
  return true;
}

void IngestServer::ReleaseAdmission() { admitted_.fetch_sub(1); }

void IngestServer::AddMemoryUsage(int64_t delta) {
  memory_usage_.fetch_add(delta);
}

bool IngestServer::NoteCompleted(const std::string& meter) {
  // The set only feeds the exit_after threshold; skip the bookkeeping
  // entirely for a run-forever daemon so it cannot grow without bound.
  if (options_.exit_after_households == 0) return false;
  MutexLock lock(completed_mutex_);
  completed_this_run_.insert(meter);
  if (drain_triggered_) return false;
  if (completed_this_run_.size() >= options_.exit_after_households) {
    drain_triggered_ = true;
    return true;
  }
  return false;
}

void IngestServer::PublishStats(int shard, const IngestCounters& snapshot) {
  std::vector<IngestCounters> per_shard;
  {
    MutexLock lock(stats_mutex_);
    pending_stats_[static_cast<size_t>(shard)] = snapshot;
    for (const std::optional<IngestCounters>& slot : pending_stats_) {
      if (!slot.has_value()) return;  // still waiting on another shard
    }
    per_shard.reserve(pending_stats_.size());
    for (std::optional<IngestCounters>& slot : pending_stats_) {
      per_shard.push_back(*slot);
      slot.reset();
    }
  }
  // Last shard in: emit the whole dump as one JSON blob.
  IngestCounters total;
  for (const IngestCounters& counters : per_shard) total.Add(counters);
  std::ostringstream out;
  out << "{\n\"shards\": [\n";
  for (size_t i = 0; i < per_shard.size(); ++i) {
    if (i > 0) out << ",\n";
    out << per_shard[i].ToJson();
  }
  out << "\n],\n\"total\": " << total.ToJson() << "\n}";
  (*stats_out_) << out.str() << "\n" << std::flush;
  stats_dumps_.fetch_add(1);
}

}  // namespace smeter::net
