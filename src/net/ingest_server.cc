#include "net/ingest_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <utility>

#include "common/fault_injection.h"

namespace smeter::net {
namespace {

Status Errno(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

}  // namespace

Status ParseListenAddress(const std::string& address, std::string* host,
                          uint16_t* port) {
  std::string host_part = "127.0.0.1";
  std::string port_part = address;
  const size_t colon = address.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) host_part = address.substr(0, colon);
    port_part = address.substr(colon + 1);
  }
  if (port_part.empty()) {
    return InvalidArgumentError("missing port in '" + address + "'");
  }
  char* end = nullptr;
  const unsigned long value = std::strtoul(port_part.c_str(), &end, 10);
  if (end == port_part.c_str() || *end != '\0' || value > 65535) {
    return InvalidArgumentError("bad port '" + port_part + "' in '" +
                                address + "'");
  }
  *host = host_part;
  *port = static_cast<uint16_t>(value);
  return Status::Ok();
}

std::string IngestCounters::ToJson() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"sessions_accepted\": " << sessions_accepted << ",\n"
      << "  \"sessions_active\": " << sessions_active << ",\n"
      << "  \"sessions_completed\": " << sessions_completed << ",\n"
      << "  \"sessions_dropped\": " << sessions_dropped << ",\n"
      << "  \"frames_in\": " << frames_in << ",\n"
      << "  \"frames_out\": " << frames_out << ",\n"
      << "  \"bytes_in\": " << bytes_in << ",\n"
      << "  \"bytes_out\": " << bytes_out << ",\n"
      << "  \"decode_errors\": " << decode_errors << ",\n"
      << "  \"backpressure_stalls\": " << backpressure_stalls << ",\n"
      << "  \"households_persisted\": " << households_persisted << ",\n"
      << "  \"symbols_persisted\": " << symbols_persisted << "\n"
      << "}";
  return out.str();
}

Result<std::unique_ptr<IngestServer>> IngestServer::Create(
    IngestServerOptions options) {
  if (options.archive_dir.empty()) {
    return InvalidArgumentError("ingest server needs an archive directory");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("bad listen host '" + options.host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("bind " + options.host + ":" +
                          std::to_string(options.port));
    ::close(fd);
    return status;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    Status status = Errno("getsockname");
    ::close(fd);
    return status;
  }
  const uint16_t port = ntohs(bound.sin_port);

  Result<std::unique_ptr<EventLoop>> loop = EventLoop::Create();
  if (!loop.ok()) {
    ::close(fd);
    return loop.status();
  }
  Result<std::unique_ptr<ArchiveSink>> sink =
      ArchiveSink::Open(options.archive_dir, options.resume);
  if (!sink.ok()) {
    ::close(fd);
    return sink.status();
  }

  std::unique_ptr<IngestServer> server(
      new IngestServer(std::move(options), fd, port, std::move(loop.value()),
                       std::move(sink.value())));
  // The creating thread owns the loop until it hands the server off.
  ScopedThreadRole loop_owner(server->loop_->role());
  SMETER_RETURN_IF_ERROR(server->loop_->Add(
      fd, EPOLLIN | EPOLLET, [raw = server.get()](uint32_t) {
        ScopedThreadRole owner(raw->role_);
        raw->OnAcceptable();
      }));
  server->loop_->SetWakeupHandler([raw = server.get()] {
    ScopedThreadRole owner(raw->role_);
    raw->OnWakeup();
  });
  if (server->options_.idle_timeout_ms > 0) {
    const int64_t sweep = std::max<int64_t>(
        server->options_.idle_timeout_ms / 2, 100);
    server->loop_->RunAfter(sweep, [raw = server.get()] {
      ScopedThreadRole owner(raw->role_);
      raw->SweepIdle();
    });
  }
  return server;
}

IngestServer::IngestServer(IngestServerOptions options, int listen_fd,
                           uint16_t port, std::unique_ptr<EventLoop> loop,
                           std::unique_ptr<ArchiveSink> sink)
    : options_(std::move(options)),
      listen_fd_(listen_fd),
      port_(port),
      loop_(std::move(loop)),
      sink_(std::move(sink)),
      stats_out_(&std::cerr) {}

IngestServer::~IngestServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void IngestServer::OnAcceptable() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      // Transient accept failures (EMFILE and friends) must never kill the
      // daemon; the meter retries.
      return;
    }
    // Fault seam: a dropped accept costs one connection, not the server.
    if (Status fault = fault::Check("net.accept"); !fault.ok()) {
      ::close(fd);
      ++counters_.sessions_dropped;
      continue;
    }
    AdoptConnection(fd);
  }
}

void IngestServer::AdoptConnection(int fd) {
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));

  SessionOptions session_options = options_.session;
  session_options.auth_token = options_.auth_token;
  session_options.draining = draining_;

  auto conn = std::make_unique<Connection>(next_conn_id_++,
                                           std::move(session_options));
  Connection* raw = conn.get();
  raw->last_active_ms = EventLoop::NowMs();
  raw->io = std::make_unique<BufferedFd>(
      loop_.get(), fd,
      BufferedFd::Callbacks{
          [this, raw](std::string_view data) {
            ScopedThreadRole owner(role_);
            return OnData(raw, data);
          },
          [this, raw](const Status& reason) {
            ScopedThreadRole owner(role_);
            OnConnectionClosed(raw, reason);
          }},
      options_.high_watermark);
  ScopedThreadRole io_owner(raw->io->role());
  if (Status status = raw->io->Register(); !status.ok()) {
    // Registration failed before on_close could be wired in; the
    // connection never existed as far as the counters are concerned.
    return;
  }
  ++counters_.sessions_accepted;
  ++counters_.sessions_active;
  connections_.emplace(raw->id, std::move(conn));
}

size_t IngestServer::OnData(Connection* conn, std::string_view data) {
  // On the loop thread this server is the one writer of the connection's
  // session and the one driver of its BufferedFd.
  ScopedThreadRole writer(conn->session.writer_role());
  ScopedThreadRole io_owner(conn->io->role());
  size_t consumed = 0;
  conn->last_active_ms = EventLoop::NowMs();
  while (consumed < data.size()) {
    DecodeResult decoded = DecodeFrame(data.substr(consumed));
    if (decoded.outcome == DecodeResult::Outcome::kNeedMore) break;
    if (decoded.outcome == DecodeResult::Outcome::kError) {
      // A torn or corrupted frame: tell the meter why, then quarantine
      // this connection. The stream is unrecoverable past this point, so
      // consume everything.
      ++counters_.decode_errors;
      FailConnection(conn, WireStatus::kBadFrame, decoded.error);
      return data.size();
    }
    consumed += decoded.consumed;
    ++counters_.frames_in;
    std::vector<Frame> replies;
    conn->session.OnFrame(decoded.frame, &replies);
    SendFrames(conn, replies);
    if (conn->io->closed()) return data.size();
    if (conn->session.state() == Session::State::kFailed) {
      conn->io->CloseAfterFlush(conn->session.error());
      return data.size();
    }
    if (conn->session.state() == Session::State::kComplete) {
      FinishSession(conn);
      return data.size();
    }
  }
  return consumed;
}

void IngestServer::SendFrames(Connection* conn,
                              const std::vector<Frame>& frames) {
  ScopedThreadRole io_owner(conn->io->role());
  for (const Frame& frame : frames) {
    if (conn->io->closed()) return;
    ++counters_.frames_out;
    if (!conn->io->Send(EncodeFrame(frame)).ok()) return;
  }
}

void IngestServer::FinishSession(Connection* conn) {
  ScopedThreadRole writer(conn->session.writer_role());
  ScopedThreadRole io_owner(conn->io->role());
  Session& session = conn->session;
  AckPayload ack;
  if (sink_->AlreadyPersisted(session.meter_id())) {
    // Crash/reconnect re-upload: the archive already holds this meter
    // durably; acknowledge without rewriting.
    ack.status = WireStatus::kOk;
    ack.message = "duplicate";
    ++counters_.sessions_completed;
    completed_this_run_.insert(session.meter_id());
  } else {
    Result<SymbolicSeries> series = session.TakeSeries();
    Status persisted =
        series.ok()
            ? sink_->Persist(session.meter_id(), session.table_blob(),
                             *series, session.quality())
            : series.status();
    if (persisted.ok()) {
      ack.status = WireStatus::kOk;
      ack.message = "persisted";
      ++counters_.sessions_completed;
      completed_this_run_.insert(session.meter_id());
      counters_.households_persisted = sink_->households_persisted();
      counters_.symbols_persisted = sink_->symbols_persisted();
    } else {
      // Persist failed (disk fault seam, full disk): the meter must know
      // its upload is NOT durable, so the GOODBYE_ACK carries the error
      // and the session counts as dropped, not completed.
      ack.status = WireStatus::kServerError;
      ack.message = persisted.message();
    }
  }
  std::vector<Frame> replies;
  replies.push_back(MakeAck(FrameType::kGoodbyeAck, ack));
  SendFrames(conn, replies);
  if (!conn->io->closed()) conn->io->CloseAfterFlush(Status::Ok());
  // Exit-after trigger counts DISTINCT meters acknowledged this run, not
  // sink_->households_total(): on a --resume restart the sink starts out
  // holding every carried record, and draining on that total let the
  // server finalize before slow reconnecting meters got their duplicate
  // acks (the old ASan soak flake).
  if (options_.exit_after_households > 0 &&
      completed_this_run_.size() >= options_.exit_after_households) {
    BeginDrain();
  }
}

void IngestServer::FailConnection(Connection* conn, WireStatus status,
                                  Status error) {
  ScopedThreadRole io_owner(conn->io->role());
  AckPayload ack;
  ack.status = status;
  ack.message = error.message();
  std::vector<Frame> replies;
  replies.push_back(MakeAck(FrameType::kGoodbyeAck, ack));
  SendFrames(conn, replies);
  if (!conn->io->closed()) conn->io->CloseAfterFlush(std::move(error));
}

void IngestServer::OnConnectionClosed(Connection* conn,
                                      const Status& reason) {
  (void)reason;
  ScopedThreadRole writer(conn->session.writer_role());
  ScopedThreadRole io_owner(conn->io->role());
  --counters_.sessions_active;
  counters_.bytes_in += conn->io->bytes_in();
  counters_.bytes_out += conn->io->bytes_out();
  counters_.backpressure_stalls += conn->io->stalls();
  if (conn->session.state() != Session::State::kComplete) {
    // Disconnected mid-stream, protocol violation, timed out, or torn
    // frame — nothing persisted; the meter reconnects and resends.
    ++counters_.sessions_dropped;
  }
  // on_close can fire while this connection's own BufferedFd callbacks are
  // on the stack, so defer destruction to the next loop pass.
  auto it = connections_.find(conn->id);
  if (it != connections_.end()) {
    graveyard_.push_back(std::move(it->second));
    connections_.erase(it);
  }
  if (!reap_scheduled_) {
    reap_scheduled_ = true;
    ScopedThreadRole loop_owner(loop_->role());
    loop_->RunAfter(0, [this] {
      ScopedThreadRole owner(role_);
      ReapClosed();
    });
  }
  if (draining_) FinishDrainIfIdle();
}

void IngestServer::ReapClosed() {
  reap_scheduled_ = false;
  graveyard_.clear();
  if (draining_) FinishDrainIfIdle();
}

void IngestServer::SweepIdle() {
  const int64_t now = EventLoop::NowMs();
  std::vector<uint64_t> idle;
  for (const auto& [id, conn] : connections_) {
    if (now - conn->last_active_ms > options_.idle_timeout_ms) {
      idle.push_back(id);
    }
  }
  for (uint64_t id : idle) {
    auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    ScopedThreadRole io_owner(it->second->io->role());
    it->second->io->Close(
        InternalError("idle timeout"));  // fires OnConnectionClosed
  }
  if (options_.idle_timeout_ms > 0 && !draining_) {
    const int64_t sweep =
        std::max<int64_t>(options_.idle_timeout_ms / 2, 100);
    ScopedThreadRole loop_owner(loop_->role());
    loop_->RunAfter(sweep, [this] {
      ScopedThreadRole owner(role_);
      SweepIdle();
    });
  }
}

void IngestServer::OnWakeup() {
  if (stats_requested_.exchange(false)) {
    IngestCounters snapshot = counters_;
    for (const auto& [id, conn] : connections_) {
      ScopedThreadRole io_owner(conn->io->role());
      snapshot.bytes_in += conn->io->bytes_in();
      snapshot.bytes_out += conn->io->bytes_out();
      snapshot.backpressure_stalls += conn->io->stalls();
    }
    (*stats_out_) << snapshot.ToJson() << "\n" << std::flush;
  }
  if (drain_requested_.exchange(false)) BeginDrain();
}

void IngestServer::RequestDrain() {
  drain_requested_.store(true);
  loop_->Wakeup();
}

void IngestServer::RequestStatsDump() {
  stats_requested_.store(true);
  loop_->Wakeup();
}

void IngestServer::BeginDrain() {
  if (draining_) return;
  draining_ = true;
  ScopedThreadRole loop_owner(loop_->role());
  // Stop accepting: new meters get connection-refused and retry elsewhere
  // or later.
  (void)loop_->Remove(listen_fd_);
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Sessions that have not said HELLO yet are refused with kDraining;
  // in-flight uploads get drain_grace_ms to finish.
  for (const auto& [id, conn] : connections_) {
    ScopedThreadRole writer(conn->session.writer_role());
    conn->session.SetDraining();
  }
  loop_->RunAfter(options_.drain_grace_ms, [this] {
    ScopedThreadRole owner(role_);
    std::vector<uint64_t> remaining;
    for (const auto& [id, conn] : connections_) remaining.push_back(id);
    for (uint64_t id : remaining) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      ScopedThreadRole io_owner(it->second->io->role());
      it->second->io->Close(InternalError("drain deadline"));
    }
    FinishDrainIfIdle();
  });
  FinishDrainIfIdle();
}

void IngestServer::FinishDrainIfIdle() {
  if (!draining_ || finalized_ || !connections_.empty()) return;
  finalized_ = true;
  exit_status_ = sink_->Finalize();
  counters_.households_persisted = sink_->households_persisted();
  counters_.symbols_persisted = sink_->symbols_persisted();
  ScopedThreadRole loop_owner(loop_->role());
  loop_->Stop();
}

Status IngestServer::Run() {
  // The calling thread owns every piece of server state until Run()
  // returns (the loop claims its own role inside EventLoop::Run).
  ScopedThreadRole owner(role_);
  SMETER_RETURN_IF_ERROR(loop_->Run());
  if (!finalized_) {
    finalized_ = true;
    exit_status_ = sink_->Finalize();
  }
  return exit_status_;
}

}  // namespace smeter::net
