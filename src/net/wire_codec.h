// Shared little-endian field writers and the strict payload Reader used by
// the wire codecs (wire.cc for the ingest protocol, query_wire.cc for the
// query protocol). Internal to src/net — payload layouts belong in the
// public headers, these are just the byte-level primitives that keep every
// Make*/Parse* pair an exact inverse.

#ifndef SMETER_NET_WIRE_CODEC_H_
#define SMETER_NET_WIRE_CODEC_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/wire.h"

namespace smeter::net::wire_internal {

inline void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void PutU16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

inline void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutI64(std::string& out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

inline void PutString(std::string& out, const std::string& s) {
  // Clamp to the protocol cap so the u16 length prefix can never wrap and
  // the strict TakeString bound always accepts what a Make* built — an
  // oversized server message is truncated, never framed unparseably.
  const size_t len = std::min(s.size(), kMaxWireString);
  PutU16(out, static_cast<uint16_t>(len));
  out.append(s, 0, len);
}

// Strict cursor over a payload: every Take errors on truncation, and the
// caller asserts exhaustion at the end, so Parse*(Make*(x)) == x and
// nothing hides in trailing bytes.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Result<uint8_t> TakeU8() {
    if (remaining() < 1) return Truncated();
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint16_t> TakeU16() {
    if (remaining() < 2) return Truncated();
    uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 2;
    return v;
  }

  Result<uint32_t> TakeU32() {
    if (remaining() < 4) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> TakeU64() {
    if (remaining() < 8) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<int64_t> TakeI64() {
    Result<uint64_t> v = TakeU64();
    if (!v.ok()) return v.status();
    return static_cast<int64_t>(*v);
  }

  Result<std::string> TakeString(size_t max_len) {
    Result<uint16_t> len = TakeU16();
    if (!len.ok()) return len.status();
    if (*len > max_len) {
      return InvalidArgumentError("wire string longer than " +
                                  std::to_string(max_len));
    }
    if (remaining() < *len) return Truncated();
    std::string s(data_.substr(pos_, *len));
    pos_ += *len;
    return s;
  }

  // A payload with bytes after its last field is malformed.
  Status ExpectExhausted() const {
    if (pos_ != data_.size()) {
      return InvalidArgumentError("trailing bytes after payload fields");
    }
    return Status::Ok();
  }

 private:
  static Status Truncated() {
    return InvalidArgumentError("truncated payload field");
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace smeter::net::wire_internal

#endif  // SMETER_NET_WIRE_CODEC_H_
