// The query protocol spoken by `smeter queryd`: read-side frames riding
// the same length-prefixed CRC32C framing as the ingest protocol
// (EncodeFrame/DecodeFrame are type-agnostic, so both protocols share one
// frame layer). Query frame types live at 32+ so the two type spaces can
// never collide; an ingest session that receives one refuses it with a
// typed kUnsupported ack, and vice versa — neither daemon can be desynced
// by a client speaking the other protocol.
//
// Conversation (client = reader, server = queryd):
//   QUERY_HELLO(version, auth)             -> QUERY_ACK(status)
//   POINT_QUERY(id, meter)                 -> POINT_RESULT(id, ...)
//   RANGE_QUERY(id, meter, window, level)  -> RANGE_RESULT(id, ...)
//   AGG_QUERY(id, window, level)           -> AGG_RESULT(id, ...)
//   (repeat any mix; THROTTLE may replace any reply under overload)
//
// Every request carries a client-chosen request_id echoed verbatim in the
// reply, so a pipelining client can match results without counting frames.
// Per-query failures (unknown meter, bad level) come back as a result
// frame with a non-kOk WireStatus — the connection survives. Only protocol
// violations (undecodable payload, query before hello) fail the session.
//
// The codecs below are strict inverses, closed under fuzzing
// (tests/fuzz/fuzz_query.cc), and bounds-checked with the same limits as
// the ingest codecs (kMaxWireString, kMaxWireTimestamp, kMaxFramePayload).
//
// This layer is pure: no sockets, no I/O, no global state.

#ifndef SMETER_NET_QUERY_WIRE_H_
#define SMETER_NET_QUERY_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/wire.h"

namespace smeter::net {

// Query protocol revision carried by QUERY_HELLO.
inline constexpr uint16_t kQueryProtocolVersion = 1;

// Hard cap on the symbols one RANGE_RESULT may carry: 1M symbols is 2 MB
// of payload, inside kMaxFramePayload with header room to spare. Servers
// clamp, parsers enforce.
inline constexpr uint32_t kMaxWireRangeSymbols = 1u << 20;

enum class QueryFrameType : uint8_t {
  kQueryHello = 32,
  kQueryAck = 33,  // hello ack and per-connection error ack
  kPointQuery = 34,
  kPointResult = 35,
  kRangeQuery = 36,
  kRangeResult = 37,
  kAggregateQuery = 38,
  kAggregateResult = 39,
};

// True iff `type` is one of the query frame types above.
bool IsQueryFrameType(uint8_t type);

struct QueryHelloPayload {
  uint16_t protocol_version = kQueryProtocolVersion;
  std::string auth_token;  // may be empty (server decides)
};

struct QueryAckPayload {
  WireStatus status = WireStatus::kOk;
  std::string message;  // empty on kOk
};

struct PointQueryPayload {
  uint64_t request_id = 0;
  std::string meter_id;  // must satisfy IsValidMeterId
};

struct PointResultPayload {
  uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  std::string message;  // empty on kOk
  // Valid only when status == kOk:
  int64_t timestamp = 0;
  uint8_t level = 1;
  uint16_t symbol = 0;  // alphabet index, or kWireGapSymbol
};

struct RangeQueryPayload {
  uint64_t request_id = 0;
  std::string meter_id;
  int64_t start = 0;  // window [start, end), |t| <= kMaxWireTimestamp
  int64_t end = 0;
  uint8_t level = 0;  // 0 = the meter's native level
  uint32_t max_symbols = kMaxWireRangeSymbols;  // in (0, cap]
};

struct RangeResultPayload {
  uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  std::string message;
  // Valid only when status == kOk:
  int64_t start_timestamp = 0;
  int64_t step_seconds = 0;
  uint8_t level = 1;
  uint8_t truncated = 0;  // 1 when the server hit max_symbols
  std::vector<uint16_t> symbols;  // indices at `level`, or kWireGapSymbol
};

struct AggregateQueryPayload {
  uint64_t request_id = 0;
  int64_t start = 0;  // window [start, end)
  int64_t end = 0;
  uint8_t level = 1;  // requested alphabet level, [1, kMaxSymbolLevel]
};

struct AggregateResultPayload {
  uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  std::string message;
  // Valid only when status == kOk:
  uint8_t level = 1;
  uint64_t meters = 0;
  uint64_t meters_coarser = 0;
  uint64_t windows = 0;
  uint64_t gaps = 0;
  uint32_t rollup_partitions = 0;
  uint32_t scanned_partitions = 0;
  std::vector<uint64_t> histogram;  // size 2^level when ok, else empty
};

Frame MakeQueryHello(const QueryHelloPayload& payload);
Frame MakeQueryAck(const QueryAckPayload& payload);
Frame MakePointQuery(const PointQueryPayload& payload);
Frame MakePointResult(const PointResultPayload& payload);
Frame MakeRangeQuery(const RangeQueryPayload& payload);
Frame MakeRangeResult(const RangeResultPayload& payload);
Frame MakeAggregateQuery(const AggregateQueryPayload& payload);
Frame MakeAggregateResult(const AggregateResultPayload& payload);

Result<QueryHelloPayload> ParseQueryHello(const Frame& frame);
Result<QueryAckPayload> ParseQueryAck(const Frame& frame);
Result<PointQueryPayload> ParsePointQuery(const Frame& frame);
Result<PointResultPayload> ParsePointResult(const Frame& frame);
Result<RangeQueryPayload> ParseRangeQuery(const Frame& frame);
Result<RangeResultPayload> ParseRangeResult(const Frame& frame);
Result<AggregateQueryPayload> ParseAggregateQuery(const Frame& frame);
Result<AggregateResultPayload> ParseAggregateResult(const Frame& frame);

}  // namespace smeter::net

#endif  // SMETER_NET_QUERY_WIRE_H_
