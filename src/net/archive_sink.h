// Durable session sink: persists completed ingestion sessions into the
// same v3 framed archive layout that `smeter encode-fleet` writes, so one
// archive directory serves both the offline and the networked pipeline and
// the existing fsck/resume tooling applies unchanged.
//
// Per completed meter the sink writes, in order:
//   <dir>/<meter>.table    the announced table blob, byte-for-byte as
//                          received (already crc32c-validated by the
//                          session) — identical to Serialize() output
//   <dir>/<meter>.symbols  PackSymbolicSeriesFramed(series), the v3
//                          checksummed symbol format
//   fleet.manifest         one appended checkpoint record
//
// All file writes go through io::AtomicWriteFile and the manifest through
// io::AppendLogWriter, so a SIGKILL mid-persist leaves either a complete
// durable household or a detectable torn tail — never a half-written
// archive. `fsck --repair` plus a daemon restart with --resume then
// converges to the clean-run archive (the crash-recovery contract from the
// storage layer, inherited wholesale).
//
// Finalize() rewrites the manifest with all records ordered by meter name
// and emits quality.json, matching encode-fleet's deterministic end-state
// for fleets whose input order is the name order (the loadgen fleet).
//
// Thread-safety: Persist() may be called concurrently for distinct meters
// (the server persists batches on a thread pool); the manifest append and
// the carried/persisted bookkeeping are mutex-guarded.

#ifndef SMETER_NET_ARCHIVE_SINK_H_
#define SMETER_NET_ARCHIVE_SINK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/encoder.h"
#include "core/fleet_encoder.h"
#include "core/symbolic_series.h"

namespace smeter::net {

class ArchiveSink {
 public:
  // Opens (creating if needed) the archive directory. With `resume`, the
  // existing fleet.manifest is loaded and its ok/degraded households are
  // carried: a reconnecting meter that already persisted is acknowledged
  // without being rewritten, exactly like encode-fleet --resume.
  static Result<std::unique_ptr<ArchiveSink>> Open(const std::string& dir,
                                                   bool resume);

  // True when `meter` already has a durable record (carried from a prior
  // run or persisted in this one). The server uses this to short-circuit
  // re-uploads after a crash/reconnect.
  bool AlreadyPersisted(const std::string& meter) const REQUIRES(!mutex_);

  // Durably writes one completed session's outputs and checkpoints it in
  // the manifest. Idempotent per meter: a second call for an
  // already-persisted meter is a no-op success.
  Status Persist(const std::string& meter, const std::string& table_blob,
                 const SymbolicSeries& series, const EncodeQuality& quality)
      REQUIRES(!mutex_);

  // Closes the append log, rewrites the manifest with every record sorted
  // by meter name, and writes quality.json. Call once, at drain/shutdown.
  Status Finalize() REQUIRES(!mutex_);

  const std::string& dir() const { return dir_; }
  // Households persisted by THIS run (excludes carried records).
  uint64_t households_persisted() const REQUIRES(!mutex_);
  // All durable households: carried plus this run's. This is what
  // completion checks ("drain once N households landed") must use — after
  // a crash restart, part of the fleet is carried, not re-persisted.
  uint64_t households_total() const REQUIRES(!mutex_);
  uint64_t symbols_persisted() const REQUIRES(!mutex_);

 private:
  ArchiveSink(std::string dir, io::AppendLogWriter manifest,
              std::map<std::string, HouseholdReport> carried);

  const std::string dir_;

  mutable Mutex mutex_;
  io::AppendLogWriter manifest_ GUARDED_BY(mutex_);
  // Every durable household: carried entries plus this run's persists.
  std::map<std::string, HouseholdReport> records_ GUARDED_BY(mutex_);
  uint64_t persisted_ GUARDED_BY(mutex_) = 0;
  uint64_t symbols_ GUARDED_BY(mutex_) = 0;
  bool finalized_ GUARDED_BY(mutex_) = false;
};

}  // namespace smeter::net

#endif  // SMETER_NET_ARCHIVE_SINK_H_
