// Durable session sink: persists completed ingestion sessions into the
// same v3 framed archive layout that `smeter encode-fleet` writes, so one
// archive directory serves both the offline and the networked pipeline and
// the existing fsck/resume tooling applies unchanged.
//
// Per completed meter the sink writes, in order:
//   <dir>/<meter>.table    the announced table blob, byte-for-byte as
//                          received (already crc32c-validated by the
//                          session) — identical to Serialize() output
//   <dir>/<meter>.symbols  PackSymbolicSeriesFramed(series), the v3
//                          checksummed symbol format
//   fleet.manifest         one appended checkpoint record
//   current.log            one appended hot current-table row (the
//                          meter's last symbol; best-effort — derived
//                          data a store-build rebuilds). Finalize
//                          compacts the rows into a name-sorted
//                          current.tab and empties the log, so a drained
//                          archive's current table is deterministic.
//
// All file writes go through io::AtomicWriteFile and the manifest through
// io::AppendLogWriter, so a SIGKILL mid-persist leaves either a complete
// durable household or a detectable torn tail — never a half-written
// archive. `fsck --repair` plus a daemon restart with --resume then
// converges to the clean-run archive (the crash-recovery contract from the
// storage layer, inherited wholesale).
//
// Sharded mode (shards > 1, the multi-core ingest daemon): each shard
// appends its checkpoint records to its OWN log, fleet.manifest.shard<k>,
// so completing sessions never serialize on one append fd across cores.
// The main fleet.manifest holds only the carried (resumed) records until
// Finalize() unions every shard log into the single sorted manifest and
// deletes the shard logs — a cleanly drained sharded archive is therefore
// byte-identical to a single-threaded one. A crash mid-run leaves shard
// logs behind; Open(resume=true) and `fsck` both union them back in.
//
// Finalize() rewrites the manifest with all records ordered by meter name
// and emits quality.json, matching encode-fleet's deterministic end-state
// for fleets whose input order is the name order (the loadgen fleet).
//
// Thread-safety: Persist() may be called concurrently for distinct meters
// (one ingest shard per core); bookkeeping is striped per shard, each
// stripe behind its own mutex, and the carried map is immutable after
// Open. Duplicate records across stripes (a meter racing two shards) are
// deduplicated by name at Finalize/resume, and artifact writes are atomic,
// so the worst case is a redundant record, never a torn archive.

#ifndef SMETER_NET_ARCHIVE_SINK_H_
#define SMETER_NET_ARCHIVE_SINK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/archive_store.h"
#include "core/encoder.h"
#include "core/fleet_encoder.h"
#include "core/symbolic_series.h"

namespace smeter::net {

// Shard-log file name: "<fleet.manifest>.shard<k>".
std::string ShardManifestFile(int shard);

// True when `status` reads like a disk-exhaustion failure (ENOSPC or
// EDQUOT strerror text, or the errno names themselves). StatusCode has no
// resource-exhausted category, so the circuit breaker keys off the message
// — the same text the `file.write` fault seam injects in tests.
bool IsDiskFullStatus(const Status& status);

// Scratch file MaybeProbe writes (and removes) to test whether the disk
// has space again.
inline constexpr const char kSpaceProbeFile[] = ".smeter_space_probe";

class ArchiveSink {
 public:
  // Opens (creating if needed) the archive directory with `shards` append
  // stripes (one per ingest shard; 1 = the classic single-log layout).
  // With `resume`, the existing fleet.manifest AND any leftover
  // fleet.manifest.shard<k> logs (a previous sharded run that was killed
  // before Finalize) are unioned and their ok/degraded households carried:
  // a reconnecting meter that already persisted is acknowledged without
  // being rewritten, exactly like encode-fleet --resume.
  // `probe_interval_ms` rate-limits the disk-space probes MaybeProbe
  // issues while the ENOSPC circuit is open.
  static Result<std::unique_ptr<ArchiveSink>> Open(
      const std::string& dir, bool resume, int shards = 1,
      int64_t probe_interval_ms = 200);

  // True when `meter` already has a durable record (carried from a prior
  // run or persisted in this one, on any stripe). The server uses this to
  // short-circuit re-uploads after a crash/reconnect.
  bool AlreadyPersisted(const std::string& meter) const;

  // Durably writes one completed session's outputs and checkpoints it in
  // stripe `shard`'s manifest log. Idempotent per meter: a second call for
  // an already-persisted meter is a no-op success.
  //
  // Disk-exhaustion degradation: a failure that IsDiskFullStatus opens the
  // circuit breaker; while it is open every Persist fails fast (the
  // returned status keeps the disk-full message, so callers see
  // circuit_open() flip and withhold the session's ack instead of
  // rewriting a full disk). MaybeProbe re-closes the circuit when space
  // returns; the affected sessions then retry Persist.
  Status Persist(const std::string& meter, const std::string& table_blob,
                 const SymbolicSeries& series, const EncodeQuality& quality,
                 int shard = 0);

  // True while the breaker is open (persists are paused on a full disk).
  bool circuit_open() const;
  // While the circuit is open and `probe_interval_ms` has elapsed since
  // the last probe, writes and removes a tiny scratch file (through the
  // same `file.write` seam the persists use) and closes the circuit on
  // success. Returns true when the circuit is closed after the call, so a
  // shard's probe timer knows when to retry the paused sessions. Cheap
  // no-op (false) when the interval has not elapsed; true when the
  // circuit was never open.
  bool MaybeProbe(int64_t now_ms);

  // Closes every append log, rewrites the main manifest with every record
  // (carried plus all stripes) sorted by meter name, writes quality.json,
  // and deletes the shard logs. Call once, at drain/shutdown.
  Status Finalize();

  const std::string& dir() const { return dir_; }
  int shards() const { return static_cast<int>(stripes_.size()); }
  // Households persisted by THIS run (excludes carried records).
  uint64_t households_persisted() const;
  // All durable households: carried plus this run's. This is what
  // completion checks ("drain once N households landed") must use — after
  // a crash restart, part of the fleet is carried, not re-persisted.
  uint64_t households_total() const;
  uint64_t symbols_persisted() const;

 private:
  // One shard's append state; sessions completing on different shards
  // touch disjoint stripes (different mutexes, different log fds).
  struct Stripe {
    Mutex mutex;
    io::AppendLogWriter log GUARDED_BY(mutex);
    std::map<std::string, HouseholdReport> records GUARDED_BY(mutex);
    // Hot current-table rows persisted by this stripe; compacted into
    // current.tab at Finalize.
    std::map<std::string, CurrentRecord> current GUARDED_BY(mutex);
    uint64_t persisted GUARDED_BY(mutex) = 0;
    uint64_t symbols GUARDED_BY(mutex) = 0;

    explicit Stripe(io::AppendLogWriter writer) : log(std::move(writer)) {}
  };

  ArchiveSink(std::string dir,
              std::map<std::string, HouseholdReport> carried,
              std::map<std::string, CurrentRecord> carried_current,
              std::vector<std::unique_ptr<Stripe>> stripes,
              std::unique_ptr<CurrentTableWriter> current_writer,
              int64_t probe_interval_ms);

  // Opens the circuit when `status` is a disk-full failure; returns the
  // status unchanged either way.
  Status NoteWriteFailure(Status status);

  const std::string dir_;
  // Immutable after Open: records resumed from a prior run.
  const std::map<std::string, HouseholdReport> carried_;
  // Immutable after Open: current-table rows resumed from a prior run's
  // current.tab/current.log (carried meters never re-send their series).
  const std::map<std::string, CurrentRecord> carried_current_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  // Hot current table (queryd point lookups read it live). Appends are
  // best-effort: the table is derived data, rebuilt by any store-build.
  std::unique_ptr<CurrentTableWriter> current_writer_;
  const int64_t probe_interval_ms_;

  mutable Mutex mutex_;
  bool finalized_ GUARDED_BY(mutex_) = false;
  // ENOSPC circuit breaker: open = persists fail fast until a probe
  // succeeds. last_probe_ms_ rate-limits probe writes.
  bool circuit_open_ GUARDED_BY(mutex_) = false;
  int64_t last_probe_ms_ GUARDED_BY(mutex_) = 0;
};

}  // namespace smeter::net

#endif  // SMETER_NET_ARCHIVE_SINK_H_
