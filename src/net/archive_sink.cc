#include "net/archive_sink.h"

#include <filesystem>
#include <utility>

#include "core/codec.h"
#include "core/fleet_manifest.h"
#include "net/wire.h"

namespace smeter::net {
namespace {

Status MakeDirectories(const std::string& path) {
  std::error_code error;
  std::filesystem::create_directories(path, error);
  if (error) {
    return InternalError("cannot create " + path + ": " + error.message());
  }
  return Status::Ok();
}

// Best-effort union of one manifest log into `carried` (first record per
// name wins, matching CarriedHouseholds' skip-quarantined policy). A
// missing or damaged log resumes its valid prefix, same as the main
// manifest.
void UnionCarried(const std::string& path,
                  std::map<std::string, HouseholdReport>* carried) {
  Result<ManifestContents> contents = LoadFleetManifest(path);
  if (!contents.ok()) return;
  for (auto& [name, report] : CarriedHouseholds(*contents)) {
    carried->emplace(name, std::move(report));
  }
}

}  // namespace

std::string ShardManifestFile(int shard) {
  return std::string(kFleetManifestFile) + ".shard" + std::to_string(shard);
}

bool IsDiskFullStatus(const Status& status) {
  if (status.ok()) return false;
  const std::string& message = status.message();
  // strerror(ENOSPC) = "No space left on device",
  // strerror(EDQUOT) = "Disk quota exceeded"; the errno names cover seams
  // and wrappers that report the symbolic name instead.
  return message.find("No space left") != std::string::npos ||
         message.find("Disk quota") != std::string::npos ||
         message.find("ENOSPC") != std::string::npos ||
         message.find("EDQUOT") != std::string::npos;
}

// Folds one current-table append log (current.tab or current.log) into
// `merged`, newest timestamp winning. Missing or damaged files resume
// nothing — the current table is derived data.
void UnionCurrent(const std::string& path,
                  std::map<std::string, CurrentRecord>* merged) {
  Result<io::AppendLogContents> log = io::ReadAppendLog(path);
  if (!log.ok()) return;
  for (const std::string& line : log->records) {
    std::optional<CurrentRecord> record = ParseCurrentRecord(line);
    if (!record.has_value()) continue;
    auto it = merged->find(record->meter);
    if (it == merged->end() || it->second.timestamp <= record->timestamp) {
      (*merged)[record->meter] = *record;
    }
  }
}

Result<std::unique_ptr<ArchiveSink>> ArchiveSink::Open(
    const std::string& dir, bool resume, int shards,
    int64_t probe_interval_ms) {
  if (shards < 1) {
    return InvalidArgumentError("archive sink needs at least one shard");
  }
  if (probe_interval_ms < 1) {
    return InvalidArgumentError("probe interval must be positive");
  }
  SMETER_RETURN_IF_ERROR(MakeDirectories(dir));
  const std::string manifest_path = dir + "/" + kFleetManifestFile;

  std::map<std::string, HouseholdReport> carried;
  std::map<std::string, CurrentRecord> carried_current;
  if (resume) {
    // Carried households never re-send their series, so their current-table
    // rows must survive the restart the same way their manifest records do.
    UnionCurrent(dir + "/" + std::string(kCurrentTableFile),
                 &carried_current);
    UnionCurrent(dir + "/" + std::string(kCurrentLogFile), &carried_current);
    // A missing/damaged manifest simply resumes nothing; a torn tail (the
    // crash signature) resumes its valid prefix — same policy as
    // encode-fleet --resume. Leftover shard logs (a sharded run killed
    // before Finalize could union them) are folded in the same way, so a
    // crashed --threads N daemon resumes every household any shard had
    // checkpointed.
    UnionCarried(manifest_path, &carried);
    std::error_code error;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir, error)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind(std::string(kFleetManifestFile) + ".shard", 0) == 0) {
        UnionCarried(entry.path().string(), &carried);
      }
    }
  }

  // Seed the main manifest with the carried entries, then append per meter
  // as sessions complete (single stripe) so a killed daemon leaves a
  // usable checkpoint. Sharded runs append to per-shard logs instead and
  // leave the main manifest at the carried seed until Finalize.
  std::vector<HouseholdReport> seed;
  seed.reserve(carried.size());
  for (const auto& [name, report] : carried) seed.push_back(report);
  SMETER_RETURN_IF_ERROR(
      io::AtomicWriteFile(manifest_path, BuildManifestLog(seed)));

  std::vector<std::unique_ptr<Stripe>> stripes;
  stripes.reserve(static_cast<size_t>(shards));
  for (int shard = 0; shard < shards; ++shard) {
    std::string log_path = manifest_path;
    if (shards > 1) {
      log_path = dir + "/" + ShardManifestFile(shard);
      SMETER_RETURN_IF_ERROR(
          io::AtomicWriteFile(log_path, BuildManifestLog({})));
    }
    Result<io::AppendLogWriter> log =
        io::AppendLogWriter::OpenForAppend(log_path);
    if (!log.ok()) return log.status();
    stripes.push_back(std::make_unique<Stripe>(std::move(log.value())));
  }

  // Seed the current table like the manifest: current.tab holds the
  // carried rows (name-sorted), current.log starts empty and receives this
  // run's hot appends.
  std::vector<std::string> current_seed;
  current_seed.reserve(carried_current.size());
  for (const auto& [name, record] : carried_current) {
    current_seed.push_back(CurrentRecordJson(record));
  }
  SMETER_RETURN_IF_ERROR(
      io::AtomicWriteFile(dir + "/" + std::string(kCurrentTableFile),
                          io::BuildAppendLog(current_seed)));
  SMETER_RETURN_IF_ERROR(io::AtomicWriteFile(
      dir + "/" + std::string(kCurrentLogFile), io::BuildAppendLog({})));
  Result<std::unique_ptr<CurrentTableWriter>> current_writer =
      CurrentTableWriter::Open(dir);
  if (!current_writer.ok()) return current_writer.status();

  return std::unique_ptr<ArchiveSink>(new ArchiveSink(
      dir, std::move(carried), std::move(carried_current),
      std::move(stripes), std::move(*current_writer), probe_interval_ms));
}

ArchiveSink::ArchiveSink(std::string dir,
                         std::map<std::string, HouseholdReport> carried,
                         std::map<std::string, CurrentRecord> carried_current,
                         std::vector<std::unique_ptr<Stripe>> stripes,
                         std::unique_ptr<CurrentTableWriter> current_writer,
                         int64_t probe_interval_ms)
    : dir_(std::move(dir)),
      carried_(std::move(carried)),
      carried_current_(std::move(carried_current)),
      stripes_(std::move(stripes)),
      current_writer_(std::move(current_writer)),
      probe_interval_ms_(probe_interval_ms) {}

bool ArchiveSink::AlreadyPersisted(const std::string& meter) const {
  if (carried_.count(meter) > 0) return true;
  for (const std::unique_ptr<Stripe>& stripe : stripes_) {
    MutexLock lock(stripe->mutex);
    if (stripe->records.count(meter) > 0) return true;
  }
  return false;
}

Status ArchiveSink::Persist(const std::string& meter,
                            const std::string& table_blob,
                            const SymbolicSeries& series,
                            const EncodeQuality& quality, int shard) {
  if (shard < 0 || shard >= static_cast<int>(stripes_.size())) {
    return InvalidArgumentError("persist on unknown sink shard " +
                                std::to_string(shard));
  }
  // ParseHello already refused unsafe ids; re-check here so no future
  // caller can turn a meter name into a path escape or a forged manifest
  // line.
  if (!IsValidMeterId(meter)) {
    return InvalidArgumentError(
        "meter id is not a safe archive file stem (must match "
        "[A-Za-z0-9_.-]+ and not be all dots)");
  }
  {
    MutexLock lock(mutex_);
    if (finalized_) {
      return FailedPreconditionError("archive sink is finalized");
    }
  }
  // Duplicates need no disk write, so they succeed even while the
  // circuit below is open — a reconnecting already-persisted meter is
  // never held hostage by a full disk.
  if (AlreadyPersisted(meter)) return Status::Ok();
  {
    MutexLock lock(mutex_);
    if (circuit_open_) {
      // Fail fast while the disk is known-full: no point attempting more
      // atomic writes (each costs a tmp file create) until a probe
      // succeeds. Keeping the disk-full text in the message lets callers
      // classify this exactly like the failure that opened the circuit.
      return InternalError(
          "archive sink circuit open (No space left on device); "
          "persist paused until a space probe succeeds");
    }
  }

  // Same file order as encode-fleet's sink: table, symbols, then the
  // manifest record — the checkpoint only lands after both payload files
  // are durable. Any disk-full failure opens the circuit breaker: the
  // session stays unacked and unrecorded (atomic writes leave no torn
  // artifact), so it retries cleanly once space returns.
  if (Status status =
          io::AtomicWriteFile(dir_ + "/" + meter + ".table", table_blob);
      !status.ok()) {
    return NoteWriteFailure(std::move(status));
  }
  Result<std::string> blob = PackSymbolicSeriesFramed(series);
  if (!blob.ok()) return blob.status();
  if (Status status =
          io::AtomicWriteFile(dir_ + "/" + meter + ".symbols", *blob);
      !status.ok()) {
    return NoteWriteFailure(std::move(status));
  }

  HouseholdReport done;
  done.name = meter;
  done.attempts = 1;  // a network session that completed is one attempt
  done.quality = quality;
  const bool clean =
      quality.windows_partial == 0 && quality.windows_gap == 0;
  done.outcome = clean ? HouseholdOutcome::kOk : HouseholdOutcome::kDegraded;

  Stripe& stripe = *stripes_[static_cast<size_t>(shard)];
  MutexLock lock(stripe.mutex);
  if (stripe.records.count(meter) > 0) return Status::Ok();
  if (Status status = stripe.log.Append(ManifestRecord(done));
      !status.ok()) {
    return NoteWriteFailure(std::move(status));
  }
  stripe.records.emplace(meter, std::move(done));
  ++stripe.persisted;
  stripe.symbols += series.size();

  if (!series.empty()) {
    const SymbolicSample last = series[series.size() - 1];
    CurrentRecord current;
    current.meter = meter;
    current.timestamp = last.timestamp;
    current.level = series.level();
    current.symbol = last.symbol.is_gap()
                         ? kStoreGapSymbol
                         : static_cast<uint16_t>(last.symbol.index());
    stripe.current[meter] = current;
    // Best-effort hot append (the store.current.append seam): a live
    // queryd tails current.log for fresh point lookups, but the row is
    // already captured above for the Finalize compaction, so a failed
    // append degrades freshness without failing the session.
    (void)current_writer_->Update(current);
  }
  return Status::Ok();
}

Status ArchiveSink::NoteWriteFailure(Status status) {
  if (IsDiskFullStatus(status)) {
    MutexLock lock(mutex_);
    circuit_open_ = true;
    // Start the probe clock at zero so the first MaybeProbe after the
    // trip is allowed to try immediately.
    last_probe_ms_ = 0;
  }
  return status;
}

bool ArchiveSink::circuit_open() const {
  MutexLock lock(mutex_);
  return circuit_open_;
}

bool ArchiveSink::MaybeProbe(int64_t now_ms) {
  {
    MutexLock lock(mutex_);
    if (!circuit_open_) return true;
    if (last_probe_ms_ != 0 && now_ms - last_probe_ms_ < probe_interval_ms_) {
      return false;
    }
    last_probe_ms_ = now_ms;
  }
  // The probe goes through the same seam-instrumented atomic-write path
  // the persists use, so an injected ENOSPC plan controls recovery
  // deterministically: while the plan fails `file.write` the probe fails
  // too, and the first probe past the plan's range re-closes the circuit.
  const std::string probe_path = dir_ + "/" + kSpaceProbeFile;
  Status status = io::AtomicWriteFile(probe_path, "probe");
  std::error_code ignored;
  std::filesystem::remove(probe_path, ignored);
  if (!status.ok()) return false;
  MutexLock lock(mutex_);
  circuit_open_ = false;
  return true;
}

Status ArchiveSink::Finalize() {
  {
    MutexLock lock(mutex_);
    if (finalized_) return Status::Ok();
    finalized_ = true;
  }

  // Union carried + every stripe into one name-sorted record set (a
  // std::map keyed by name — the deterministic end state the equivalence
  // tests compare against; duplicate records across stripes collapse).
  std::map<std::string, HouseholdReport> merged = carried_;
  for (const std::unique_ptr<Stripe>& stripe : stripes_) {
    MutexLock lock(stripe->mutex);
    SMETER_RETURN_IF_ERROR(stripe->log.Close());
    for (const auto& [name, report] : stripe->records) {
      merged.emplace(name, report);
    }
  }

  std::vector<HouseholdReport> reports;
  reports.reserve(merged.size());
  for (const auto& [name, report] : merged) reports.push_back(report);

  const std::string manifest_path = dir_ + "/" + kFleetManifestFile;
  SMETER_RETURN_IF_ERROR(
      io::AtomicWriteFile(manifest_path, BuildManifestLog(reports)));

  FleetQualityReport summary = SummarizeFleet(reports);
  SMETER_RETURN_IF_ERROR(io::AtomicWriteFile(
      dir_ + "/quality.json", FleetQualityReportToJson(summary, reports)));

  // Compact the current table the same way: every stripe's rows union
  // with the carried ones into a name-sorted current.tab, and current.log
  // resets to empty — a drained archive's current table is deterministic
  // regardless of shard count or completion order.
  SMETER_RETURN_IF_ERROR(current_writer_->Close());
  std::map<std::string, CurrentRecord> current = carried_current_;
  for (const std::unique_ptr<Stripe>& stripe : stripes_) {
    MutexLock lock(stripe->mutex);
    for (const auto& [name, record] : stripe->current) {
      auto it = current.find(name);
      if (it == current.end() || it->second.timestamp <= record.timestamp) {
        current[name] = record;
      }
    }
  }
  std::vector<std::string> current_rows;
  current_rows.reserve(current.size());
  for (const auto& [name, record] : current) {
    current_rows.push_back(CurrentRecordJson(record));
  }
  SMETER_RETURN_IF_ERROR(
      io::AtomicWriteFile(dir_ + "/" + std::string(kCurrentTableFile),
                          io::BuildAppendLog(current_rows)));
  SMETER_RETURN_IF_ERROR(io::AtomicWriteFile(
      dir_ + "/" + std::string(kCurrentLogFile), io::BuildAppendLog({})));

  // Shard logs are now folded into the main manifest; delete them so the
  // drained sharded archive is byte-identical (file set included) to a
  // single-threaded run.
  if (stripes_.size() > 1) {
    for (size_t shard = 0; shard < stripes_.size(); ++shard) {
      std::error_code error;
      std::filesystem::remove(
          dir_ + "/" + ShardManifestFile(static_cast<int>(shard)), error);
    }
  }
  return Status::Ok();
}

uint64_t ArchiveSink::households_persisted() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Stripe>& stripe : stripes_) {
    MutexLock lock(stripe->mutex);
    total += stripe->persisted;
  }
  return total;
}

uint64_t ArchiveSink::households_total() const {
  // Stripes only ever hold meters absent from carried_ and from each
  // other (AlreadyPersisted gates Persist), so the sizes add up.
  uint64_t total = carried_.size();
  for (const std::unique_ptr<Stripe>& stripe : stripes_) {
    MutexLock lock(stripe->mutex);
    total += stripe->records.size();
  }
  return total;
}

uint64_t ArchiveSink::symbols_persisted() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Stripe>& stripe : stripes_) {
    MutexLock lock(stripe->mutex);
    total += stripe->symbols;
  }
  return total;
}

}  // namespace smeter::net
