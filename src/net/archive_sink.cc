#include "net/archive_sink.h"

#include <filesystem>
#include <utility>

#include "core/codec.h"
#include "core/fleet_manifest.h"
#include "net/wire.h"

namespace smeter::net {
namespace {

Status MakeDirectories(const std::string& path) {
  std::error_code error;
  std::filesystem::create_directories(path, error);
  if (error) {
    return InternalError("cannot create " + path + ": " + error.message());
  }
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<ArchiveSink>> ArchiveSink::Open(const std::string& dir,
                                                       bool resume) {
  SMETER_RETURN_IF_ERROR(MakeDirectories(dir));
  const std::string manifest_path = dir + "/" + kFleetManifestFile;

  std::map<std::string, HouseholdReport> carried;
  if (resume) {
    // A missing/damaged manifest simply resumes nothing; a torn tail (the
    // crash signature) resumes its valid prefix — same policy as
    // encode-fleet --resume.
    Result<ManifestContents> contents = LoadFleetManifest(manifest_path);
    if (contents.ok()) carried = CarriedHouseholds(*contents);
  }

  // Seed the manifest with the carried entries, then append per meter as
  // sessions complete so a killed daemon leaves a usable checkpoint.
  std::vector<HouseholdReport> seed;
  seed.reserve(carried.size());
  for (const auto& [name, report] : carried) seed.push_back(report);
  SMETER_RETURN_IF_ERROR(
      io::AtomicWriteFile(manifest_path, BuildManifestLog(seed)));

  Result<io::AppendLogWriter> manifest =
      io::AppendLogWriter::OpenForAppend(manifest_path);
  if (!manifest.ok()) return manifest.status();

  return std::unique_ptr<ArchiveSink>(new ArchiveSink(
      dir, std::move(manifest.value()), std::move(carried)));
}

ArchiveSink::ArchiveSink(std::string dir, io::AppendLogWriter manifest,
                         std::map<std::string, HouseholdReport> carried)
    : dir_(std::move(dir)),
      manifest_(std::move(manifest)),
      records_(std::move(carried)) {}

bool ArchiveSink::AlreadyPersisted(const std::string& meter) const {
  MutexLock lock(mutex_);
  return records_.count(meter) > 0;
}

Status ArchiveSink::Persist(const std::string& meter,
                            const std::string& table_blob,
                            const SymbolicSeries& series,
                            const EncodeQuality& quality) {
  // ParseHello already refused unsafe ids; re-check here so no future
  // caller can turn a meter name into a path escape or a forged manifest
  // line.
  if (!IsValidMeterId(meter)) {
    return InvalidArgumentError(
        "meter id is not a safe archive file stem (must match "
        "[A-Za-z0-9_.-]+ and not be all dots)");
  }
  {
    MutexLock lock(mutex_);
    if (finalized_) {
      return FailedPreconditionError("archive sink is finalized");
    }
    if (records_.count(meter) > 0) return Status::Ok();
  }

  // Same file order as encode-fleet's sink: table, symbols, then the
  // manifest record — the checkpoint only lands after both payload files
  // are durable.
  SMETER_RETURN_IF_ERROR(
      io::AtomicWriteFile(dir_ + "/" + meter + ".table", table_blob));
  Result<std::string> blob = PackSymbolicSeriesFramed(series);
  if (!blob.ok()) return blob.status();
  SMETER_RETURN_IF_ERROR(
      io::AtomicWriteFile(dir_ + "/" + meter + ".symbols", *blob));

  HouseholdReport done;
  done.name = meter;
  done.attempts = 1;  // a network session that completed is one attempt
  done.quality = quality;
  const bool clean =
      quality.windows_partial == 0 && quality.windows_gap == 0;
  done.outcome = clean ? HouseholdOutcome::kOk : HouseholdOutcome::kDegraded;

  MutexLock lock(mutex_);
  if (finalized_) return FailedPreconditionError("archive sink is finalized");
  if (records_.count(meter) > 0) return Status::Ok();
  SMETER_RETURN_IF_ERROR(manifest_.Append(ManifestRecord(done)));
  records_.emplace(meter, std::move(done));
  ++persisted_;
  symbols_ += series.size();
  return Status::Ok();
}

Status ArchiveSink::Finalize() {
  MutexLock lock(mutex_);
  if (finalized_) return Status::Ok();
  finalized_ = true;
  SMETER_RETURN_IF_ERROR(manifest_.Close());

  // records_ is a std::map, so iteration is already name-sorted — the
  // deterministic end state the equivalence tests compare against.
  std::vector<HouseholdReport> reports;
  reports.reserve(records_.size());
  for (const auto& [name, report] : records_) reports.push_back(report);

  const std::string manifest_path = dir_ + "/" + kFleetManifestFile;
  SMETER_RETURN_IF_ERROR(
      io::AtomicWriteFile(manifest_path, BuildManifestLog(reports)));

  FleetQualityReport summary = SummarizeFleet(reports);
  return io::AtomicWriteFile(dir_ + "/quality.json",
                             FleetQualityReportToJson(summary, reports));
}

uint64_t ArchiveSink::households_persisted() const {
  MutexLock lock(mutex_);
  return persisted_;
}

uint64_t ArchiveSink::households_total() const {
  MutexLock lock(mutex_);
  return records_.size();
}

uint64_t ArchiveSink::symbols_persisted() const {
  MutexLock lock(mutex_);
  return symbols_;
}

}  // namespace smeter::net
