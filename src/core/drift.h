// Distribution-drift detection for on-the-fly lookup-table maintenance
// (Section 4: rebuild the table "periodically or if the distribution of the
// data changes too much", e.g. seasonal change or a new family member).
//
// The detector compares the recent symbol distribution against the
// distribution the table was trained on, using the Population Stability
// Index over the table's finest-level buckets:
//
//   PSI = sum_i (p_i - q_i) * ln(p_i / q_i)
//
// with q_i = training proportions, p_i = recent-window proportions (both
// Laplace-smoothed). PSI ~ 0.1 is mild shift, > 0.25 is conventionally
// "significant"; the default threshold follows that convention.

#ifndef SMETER_CORE_DRIFT_H_
#define SMETER_CORE_DRIFT_H_

#include <deque>
#include <vector>

#include "common/status.h"
#include "core/lookup_table.h"

namespace smeter {

struct DriftOptions {
  // Number of most-recent observations compared against training.
  size_t window_size = 2880;  // e.g. two days of 1-minute aggregates
  // Minimum observations before a verdict is attempted.
  size_t min_samples = 256;
  double psi_threshold = 0.25;
};

class DriftDetector {
 public:
  // `reference_counts` are the table's training bucket counts (one per
  // finest-level symbol). Errors if empty or all-zero, or options invalid.
  static Result<DriftDetector> Create(std::vector<size_t> reference_counts,
                                      const DriftOptions& options);

  // Records that `symbol_index` was just emitted. Evicts the oldest
  // observation once the window is full.
  void Observe(uint32_t symbol_index);

  // Current PSI, or 0 while fewer than min_samples observations are held.
  double Psi() const;

  // True when PSI exceeds the threshold (and enough samples were seen).
  bool DriftDetected() const { return Psi() > options_.psi_threshold; }

  // Resets the recent window and swaps in new reference counts (called
  // after a table rebuild).
  Status Rebase(std::vector<size_t> reference_counts);

  size_t window_count() const { return window_.size(); }

 private:
  DriftDetector(std::vector<size_t> reference_counts,
                const DriftOptions& options);

  DriftOptions options_;
  std::vector<double> reference_fraction_;  // smoothed q_i
  std::vector<size_t> recent_counts_;
  std::deque<uint32_t> window_;
};

}  // namespace smeter

#endif  // SMETER_CORE_DRIFT_H_
