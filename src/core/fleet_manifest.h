// The fleet checkpoint manifest: a checksummed append log of per-household
// JSON records.
//
// `<out>/fleet.manifest` records every finished household of an
// encode-fleet run. Each record is one self-contained JSON object; the
// records travel inside the io::AppendLog framing (per-record CRC32C,
// length-prefixed), so a record on disk is durable and verifiable, a
// kill -9 mid-append leaves a detectable torn tail instead of a half-line,
// and a bit flip anywhere in the file is caught rather than parsed.
//
// Writers append records as households complete and atomically rewrite the
// whole log in fleet order when the run ends. Readers (resume, fsck)
// tolerate a torn tail — the crash signature — and surface mid-file
// corruption separately so fsck can quarantine it.

#ifndef SMETER_CORE_FLEET_MANIFEST_H_
#define SMETER_CORE_FLEET_MANIFEST_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/fleet_encoder.h"

namespace smeter {

// File name of the checkpoint manifest inside a fleet output directory.
inline constexpr char kFleetManifestFile[] = "fleet.manifest";

// One manifest record: a self-contained JSON object (no trailing newline;
// the append-log framing delimits records).
std::string ManifestRecord(const HouseholdReport& report);

// Parses one record back into a report. Returns nullopt for malformed
// records — callers treat those households as unfinished.
std::optional<HouseholdReport> ParseManifestRecord(const std::string& record);

// The complete framed manifest for `reports`, for an atomic rewrite.
std::string BuildManifestLog(const std::vector<HouseholdReport>& reports);

struct ManifestContents {
  // Every record that frame-checked and parsed, in file order.
  std::vector<HouseholdReport> reports;
  // Magic + frames that checked out, in bytes (truncation point for
  // dropping a torn tail).
  size_t valid_bytes = 0;
  bool missing = false;          // no manifest file at all
  bool torn_tail = false;        // partial final append (crash signature)
  bool corrupt_midfile = false;  // damage with valid-looking bytes after it
  bool clean() const { return !missing && !torn_tail && !corrupt_midfile; }
};

// Reads the framed manifest at `path`. A missing file is not an error
// (contents.missing is set; nothing to resume); damage is reported through
// the flags with the valid prefix still parsed. Errors only when the file
// exists but is not an append log at all (wrong magic) or is unreadable.
Result<ManifestContents> LoadFleetManifest(const std::string& path);

// The households a resumed run can skip: ok/degraded records from
// `contents`, keyed by name. Quarantined households are always retried.
std::map<std::string, HouseholdReport> CarriedHouseholds(
    const ManifestContents& contents);

}  // namespace smeter

#endif  // SMETER_CORE_FLEET_MANIFEST_H_
