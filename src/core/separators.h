// Separator-learning methods for horizontal segmentation (Section 2.2).
//
// Given historical training values, produces the k-1 interior separators
// beta_1 < ... < beta_{k-1} of Definition 3 with one of the paper's three
// strategies:
//   * uniform        — equal-width bins over [0, max];
//   * median         — equal-frequency bins (k-quantiles of all values);
//   * distinctmedian — k-quantiles of the distinct values.
//
// For power-of-two k the separator sets are *nested*: the level-l set is a
// subset of the level-(l+1) set, which realises Figure 1's recursive range
// division and makes symbols of different resolutions compatible.

#ifndef SMETER_CORE_SEPARATORS_H_
#define SMETER_CORE_SEPARATORS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace smeter {

enum class SeparatorMethod {
  kUniform,
  kMedian,
  kDistinctMedian,
  // Separators supplied directly by an expert (Section 3.2's low/high
  // example); never produced by LearnSeparators.
  kCustom,
};

// Returns the paper's name for the method ("uniform", "median",
// "distinctmedian", or "custom").
std::string SeparatorMethodName(SeparatorMethod method);

// Learns the `k - 1` separators for an alphabet of size `k = 2^level` from
// `training` values. Errors on empty training data, level out of
// [1, kMaxSymbolLevel], non-finite (NaN/Inf) readings, and — for the
// uniform method, whose domain is [0, max] by construction — negative
// readings. Constant histories are fine: every separator collapses to the
// same value and all readings encode to the first/last symbol.
Result<std::vector<double>> LearnSeparators(const std::vector<double>& training,
                                            SeparatorMethod method, int level);

}  // namespace smeter

#endif  // SMETER_CORE_SEPARATORS_H_
