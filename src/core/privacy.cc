#include "core/privacy.h"

#include <cmath>
#include <map>

namespace smeter {

Result<EventObscurityReport> EvaluateEventObscurity(
    const TimeSeries& raw, const SymbolicSeries& symbols,
    const EventObscurityOptions& options) {
  if (options.jump_threshold_watts <= 0.0) {
    return InvalidArgumentError("jump_threshold_watts must be > 0");
  }
  if (options.window_seconds <= 0) {
    return InvalidArgumentError("window_seconds must be > 0");
  }
  // Symbol per window end (symbols are stamped with the window end).
  std::map<Timestamp, uint32_t> by_window_end;
  for (const SymbolicSample& s : symbols) {
    by_window_end[s.timestamp] = s.symbol.index();
  }

  auto window_end_of = [&](Timestamp t) {
    Timestamp ws = t / options.window_seconds * options.window_seconds;
    if (ws > t) ws -= options.window_seconds;
    return ws + options.window_seconds;
  };

  // An event is visible when the symbols adjacent to it differ: either the
  // event's window vs the previous one (boundary-crossing events) or the
  // event's window vs the following one (a mid-window level shift raises
  // the next window's mean).
  auto symbol_at = [&](Timestamp window_end) -> const uint32_t* {
    auto it = by_window_end.find(window_end);
    return it == by_window_end.end() ? nullptr : &it->second;
  };
  EventObscurityReport report;
  for (size_t i = 1; i < raw.size(); ++i) {
    if (std::abs(raw[i].value - raw[i - 1].value) <
        options.jump_threshold_watts) {
      continue;
    }
    ++report.raw_events;
    Timestamp at = window_end_of(raw[i].timestamp);
    const uint32_t* current = symbol_at(at);
    if (current == nullptr) continue;  // window dropped: invisible
    const uint32_t* previous = symbol_at(at - options.window_seconds);
    const uint32_t* next = symbol_at(at + options.window_seconds);
    if ((previous != nullptr && *previous != *current) ||
        (next != nullptr && *next != *current)) {
      ++report.visible_events;
    }
  }
  report.visibility =
      report.raw_events == 0
          ? 0.0
          : static_cast<double>(report.visible_events) /
                static_cast<double>(report.raw_events);
  return report;
}

Result<double> ConditionalEntropyBits(const SymbolicSeries& series) {
  if (series.size() < 2) {
    return FailedPreconditionError("need at least two symbols");
  }
  // Empirical bigram and unigram (context) counts.
  std::map<std::pair<uint32_t, uint32_t>, double> bigrams;
  std::map<uint32_t, double> contexts;
  for (size_t i = 1; i < series.size(); ++i) {
    uint32_t prev = series[i - 1].symbol.index();
    uint32_t next = series[i].symbol.index();
    bigrams[{prev, next}] += 1.0;
    contexts[prev] += 1.0;
  }
  const double total = static_cast<double>(series.size() - 1);
  double h = 0.0;
  for (const auto& [pair, count] : bigrams) {
    double joint = count / total;
    double conditional = count / contexts[pair.first];
    h -= joint * std::log2(conditional);
  }
  return h;
}

}  // namespace smeter
