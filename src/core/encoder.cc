#include "core/encoder.h"

#include "core/batch_encoder.h"

namespace smeter {
namespace {

// Gathers the value column out of the AoS sample layout so the batch
// kernel runs over contiguous doubles.
std::vector<double> ValueColumn(const TimeSeries& series) {
  std::vector<double> values;
  values.reserve(series.size());
  for (const Sample& s : series) values.push_back(s.value);
  return values;
}

// Zips timestamps back onto an encoded symbol column. The inputs come from
// a TimeSeries (timestamps already non-decreasing) and one batch-encode
// call (symbols already at `level`), so FromSamples' validation pass is a
// formality, but it keeps this path on the same contract as Append.
Result<SymbolicSeries> ZipSeries(const TimeSeries& series,
                                 const std::vector<Symbol>& symbols,
                                 int level) {
  std::vector<SymbolicSample> samples;
  samples.reserve(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    samples.push_back({series[i].timestamp, symbols[i]});
  }
  return SymbolicSeries::FromSamples(level, std::move(samples));
}

}  // namespace

Result<SymbolicSeries> Encode(const TimeSeries& series,
                              const LookupTable& table) {
  std::vector<double> values = ValueColumn(series);
  std::vector<Symbol> symbols(values.size());
  SMETER_RETURN_IF_ERROR(EncodeBatch(table, values, symbols.data()));
  return ZipSeries(series, symbols, table.level());
}

Result<SymbolicSeries> EncodeAtLevel(const TimeSeries& series,
                                     const LookupTable& table, int level) {
  std::vector<double> values = ValueColumn(series);
  std::vector<Symbol> symbols(values.size());
  SMETER_RETURN_IF_ERROR(
      EncodeBatchAtLevel(table, values, level, symbols.data()));
  return ZipSeries(series, symbols, level);
}

Result<TimeSeries> Decode(const SymbolicSeries& series,
                          const LookupTable& table, ReconstructionMode mode) {
  std::vector<Symbol> symbols;
  symbols.reserve(series.size());
  for (const SymbolicSample& s : series) symbols.push_back(s.symbol);
  std::vector<double> values(symbols.size());
  SMETER_RETURN_IF_ERROR(DecodeBatch(table, symbols, mode, values.data()));
  std::vector<Sample> samples;
  samples.reserve(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    samples.push_back({series[i].timestamp, values[i]});
  }
  return TimeSeries::FromSamples(std::move(samples));
}

Result<SymbolicSeries> EncodePipeline(const TimeSeries& raw,
                                      const LookupTable& table,
                                      const PipelineOptions& options) {
  Result<TimeSeries> aggregated =
      VerticalSegmentByWindow(raw, options.window_seconds, options.window);
  if (!aggregated.ok()) return aggregated.status();
  return Encode(aggregated.value(), table);
}

}  // namespace smeter
