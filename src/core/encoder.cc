#include "core/encoder.h"

namespace smeter {

Result<SymbolicSeries> Encode(const TimeSeries& series,
                              const LookupTable& table) {
  SymbolicSeries out(table.level());
  for (const Sample& s : series) {
    SMETER_RETURN_IF_ERROR(out.Append({s.timestamp, table.Encode(s.value)}));
  }
  return out;
}

Result<SymbolicSeries> EncodeAtLevel(const TimeSeries& series,
                                     const LookupTable& table, int level) {
  if (level < 1 || level > table.level()) {
    return InvalidArgumentError("encode level outside table range");
  }
  SymbolicSeries out(level);
  for (const Sample& s : series) {
    Result<Symbol> symbol = table.EncodeAtLevel(s.value, level);
    if (!symbol.ok()) return symbol.status();
    SMETER_RETURN_IF_ERROR(out.Append({s.timestamp, symbol.value()}));
  }
  return out;
}

Result<TimeSeries> Decode(const SymbolicSeries& series,
                          const LookupTable& table, ReconstructionMode mode) {
  TimeSeries out;
  for (const SymbolicSample& s : series) {
    Result<double> value = table.Reconstruct(s.symbol, mode);
    if (!value.ok()) return value.status();
    SMETER_RETURN_IF_ERROR(out.Append({s.timestamp, value.value()}));
  }
  return out;
}

Result<SymbolicSeries> EncodePipeline(const TimeSeries& raw,
                                      const LookupTable& table,
                                      const PipelineOptions& options) {
  Result<TimeSeries> aggregated =
      VerticalSegmentByWindow(raw, options.window_seconds, options.window);
  if (!aggregated.ok()) return aggregated.status();
  return Encode(aggregated.value(), table);
}

}  // namespace smeter
