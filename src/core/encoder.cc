#include "core/encoder.h"

#include <limits>
#include <utility>

#include "common/fault_injection.h"
#include "core/batch_encoder.h"

namespace smeter {
namespace {

// Gathers the value column out of the AoS sample layout so the batch
// kernel runs over contiguous doubles.
std::vector<double> ValueColumn(const TimeSeries& series) {
  std::vector<double> values;
  values.reserve(series.size());
  for (const Sample& s : series) values.push_back(s.value);
  return values;
}

// Zips timestamps back onto an encoded symbol column. The inputs come from
// a TimeSeries (timestamps already non-decreasing) and one batch-encode
// call (symbols already at `level`), so FromSamples' validation pass is a
// formality, but it keeps this path on the same contract as Append.
Result<SymbolicSeries> ZipSeries(const TimeSeries& series,
                                 const std::vector<Symbol>& symbols,
                                 int level) {
  std::vector<SymbolicSample> samples;
  samples.reserve(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    samples.push_back({series[i].timestamp, symbols[i]});
  }
  return SymbolicSeries::FromSamples(level, std::move(samples));
}

}  // namespace

Result<SymbolicSeries> Encode(const TimeSeries& series,
                              const LookupTable& table) {
  std::vector<double> values = ValueColumn(series);
  std::vector<Symbol> symbols(values.size());
  SMETER_RETURN_IF_ERROR(EncodeBatch(table, values, symbols.data()));
  return ZipSeries(series, symbols, table.level());
}

Result<SymbolicSeries> EncodeAtLevel(const TimeSeries& series,
                                     const LookupTable& table, int level) {
  std::vector<double> values = ValueColumn(series);
  std::vector<Symbol> symbols(values.size());
  SMETER_RETURN_IF_ERROR(
      EncodeBatchAtLevel(table, values, level, symbols.data()));
  return ZipSeries(series, symbols, level);
}

Result<TimeSeries> Decode(const SymbolicSeries& series,
                          const LookupTable& table, ReconstructionMode mode) {
  std::vector<Symbol> symbols;
  symbols.reserve(series.size());
  for (const SymbolicSample& s : series) symbols.push_back(s.symbol);
  std::vector<double> values(symbols.size());
  SMETER_RETURN_IF_ERROR(DecodeBatch(table, symbols, mode, values.data()));
  std::vector<Sample> samples;
  samples.reserve(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    // GAP symbols decode to NaN: the window had no data, so the
    // reconstruction has none either.
    if (series[i].symbol.is_gap()) continue;
    samples.push_back({series[i].timestamp, values[i]});
  }
  return TimeSeries::FromSamples(std::move(samples));
}

Result<SymbolicSeries> EncodePipeline(const TimeSeries& raw,
                                      const LookupTable& table,
                                      const PipelineOptions& options) {
  SMETER_FAULT_POINT("encode.pipeline");
  Result<TimeSeries> aggregated =
      VerticalSegmentByWindow(raw, options.window_seconds, options.window);
  if (!aggregated.ok()) return aggregated.status();
  return Encode(aggregated.value(), table);
}

Result<QualityEncoding> EncodePipelineWithGaps(const TimeSeries& raw,
                                               const LookupTable& table,
                                               const PipelineOptions& options) {
  SMETER_FAULT_POINT("encode.pipeline");
  GapAwareWindowOptions gap_options;
  gap_options.window = options.window;
  Result<std::vector<AggregatedWindow>> windows =
      VerticalSegmentByWindowWithGaps(raw, options.window_seconds,
                                      gap_options);
  if (!windows.ok()) return windows.status();

  QualityEncoding out;
  std::vector<double> values;
  values.reserve(windows->size());
  for (const AggregatedWindow& w : *windows) {
    switch (w.quality) {
      case WindowQuality::kValid:
        ++out.quality.windows_valid;
        values.push_back(w.value);
        break;
      case WindowQuality::kPartial:
        ++out.quality.windows_partial;
        values.push_back(w.value);
        break;
      case WindowQuality::kGap:
        ++out.quality.windows_gap;
        values.push_back(std::numeric_limits<double>::quiet_NaN());
        break;
    }
  }
  std::vector<Symbol> symbols(values.size());
  SMETER_RETURN_IF_ERROR(EncodeBatchWithGaps(table, values, symbols.data()));
  std::vector<SymbolicSample> samples;
  samples.reserve(windows->size());
  for (size_t i = 0; i < windows->size(); ++i) {
    samples.push_back({(*windows)[i].timestamp, symbols[i]});
  }
  Result<SymbolicSeries> series =
      SymbolicSeries::FromSamples(table.level(), std::move(samples));
  if (!series.ok()) return series.status();
  out.symbols = std::move(series.value());
  return out;
}

}  // namespace smeter
