#include "core/compression.h"

#include "core/time_series.h"

namespace smeter {

Result<CompressionReport> EvaluateCompression(
    const CompressionModelOptions& options) {
  if (options.sample_period_seconds <= 0) {
    return InvalidArgumentError("sample_period_seconds must be > 0");
  }
  if (options.window_seconds < options.sample_period_seconds) {
    return InvalidArgumentError("window smaller than sample period");
  }
  if (options.symbol_bits < 1 || options.symbol_bits > 64) {
    return InvalidArgumentError("symbol_bits must be in [1, 64]");
  }
  if (options.raw_sample_bits < 1) {
    return InvalidArgumentError("raw_sample_bits must be >= 1");
  }
  if (options.table_amortization_days < 0.0) {
    return InvalidArgumentError("table_amortization_days must be >= 0");
  }

  CompressionReport report;
  const double samples_per_day =
      static_cast<double>(kSecondsPerDay) /
      static_cast<double>(options.sample_period_seconds);
  const double windows_per_day = static_cast<double>(kSecondsPerDay) /
                                 static_cast<double>(options.window_seconds);
  report.raw_bits_per_day =
      samples_per_day * static_cast<double>(options.raw_sample_bits);
  report.symbolic_bits_per_day =
      windows_per_day * static_cast<double>(options.symbol_bits);
  if (options.table_amortization_days > 0.0) {
    report.symbolic_bits_per_day += static_cast<double>(options.table_bits) /
                                    options.table_amortization_days;
  }
  report.ratio = report.raw_bits_per_day / report.symbolic_bits_per_day;
  return report;
}

}  // namespace smeter
