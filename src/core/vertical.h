// Vertical segmentation (Definition 2): temporal aggregation of a time
// series, reducing numerosity. The paper uses the average of n consecutive
// values; sum/min/max are provided because Section 2.1 notes any aggregation
// works.
//
// Two interfaces are provided:
//  * count-based — exactly Definition 2: average every `n` consecutive
//    samples, regardless of their timestamps;
//  * window-based — aggregate by wall-clock windows of `window_seconds`,
//    which is what the experiments use ("15 minutes", "1 hour") and what is
//    robust to gaps in real data. A window is emitted only if its coverage
//    (fraction of expected samples present) reaches `min_coverage`.

#ifndef SMETER_CORE_VERTICAL_H_
#define SMETER_CORE_VERTICAL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/time_series.h"

namespace smeter {

enum class Aggregation {
  kMean,  // paper default
  kSum,
  kMin,
  kMax,
};

struct VerticalOptions {
  Aggregation aggregation = Aggregation::kMean;
};

// Definition 2: VA(S, n). Aggregates every `n` consecutive samples into one
// sample stamped with the timestamp of the window's last sample (t_{i*n}).
// A trailing partial window is dropped. Returns InvalidArgument for n == 0.
Result<TimeSeries> VerticalSegmentByCount(const TimeSeries& series, size_t n,
                                          const VerticalOptions& options = {});

struct WindowOptions {
  Aggregation aggregation = Aggregation::kMean;
  // Sampling period of the input, used to compute coverage.
  int64_t sample_period_seconds = 1;
  // Minimum fraction of expected samples a window must contain to be
  // emitted. 0 emits any non-empty window.
  double min_coverage = 0.5;
  // Windows are aligned to multiples of window_seconds from epoch 0 so that
  // day boundaries line up across houses.
};

// Aggregates by aligned wall-clock windows of `window_seconds`. The output
// sample for window [w, w + window_seconds) is stamped with the window end,
// mirroring Definition 2's "timestamp of the last element". Empty or
// under-covered windows produce no output sample (a gap).
Result<TimeSeries> VerticalSegmentByWindow(const TimeSeries& series,
                                           int64_t window_seconds,
                                           const WindowOptions& options = {});

// Per-window data quality for the gap-aware segmentation below.
enum class WindowQuality {
  kValid,    // coverage >= min_coverage
  kPartial,  // some samples, but coverage < min_coverage
  kGap,      // no samples at all
};

// One aligned window of the gap-aware segmentation.
struct AggregatedWindow {
  Timestamp timestamp = 0;  // window end (Definition 2's last-element stamp)
  // Aggregate of the window's samples; NaN when quality == kGap (a window
  // with no readings has no aggregate).
  double value = 0.0;
  WindowQuality quality = WindowQuality::kGap;
  // Fraction of expected samples present, in [0, 1+] (over-dense inputs can
  // exceed 1).
  double coverage = 0.0;
};

struct GapAwareWindowOptions {
  WindowOptions window;
  // Upper bound on the number of emitted windows. The gap-aware path emits
  // EVERY aligned window between the first and last sample, so a trace with
  // two samples eons apart would otherwise allocate without bound — reject
  // it instead. 2^20 windows is ~28 years of 15-minute data.
  size_t max_windows = size_t{1} << 20;
};

// Gap-aware variant of VerticalSegmentByWindow: emits one AggregatedWindow
// for EVERY aligned window from the first sample's window through the last
// sample's window, inclusive — missing stretches appear as explicit
// kGap/kPartial windows instead of silently breaking the cadence. The
// result always has a fixed window_seconds cadence, which is what lets a
// gappy trace round-trip through the wire codec (GAP symbols) without
// splitting into segments.
Result<std::vector<AggregatedWindow>> VerticalSegmentByWindowWithGaps(
    const TimeSeries& series, int64_t window_seconds,
    const GapAwareWindowOptions& options = {});

}  // namespace smeter

#endif  // SMETER_CORE_VERTICAL_H_
