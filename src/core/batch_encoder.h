// Structure-of-arrays batch kernels for horizontal segmentation.
//
// These are the hot loops behind Encode/Decode in core/encoder.h, hoisted
// out of the per-sample Result/Append pattern: input is a contiguous value
// (or symbol) column, output is a caller-provided column, and validation
// (NaN readings, symbol levels) happens once per chunk instead of once per
// sample. The symbol mapping itself is a branchless fixed-depth descent
// over the separator array — `level` conditional-move steps per value
// instead of a branchy lower_bound — which is what makes fleet-scale
// encoding ("millions of customers", Section 1) CPU-bound on memory
// bandwidth rather than on branch mispredictions and error plumbing.
//
// Semantics are pinned to the scalar path: EncodeBatch produces exactly
// LookupTable::Encode(v) for every finite v (the codec fuzz harness keeps
// the two byte-identical on the wire), and DecodeBatch produces exactly
// LookupTable::Reconstruct(s, mode).

#ifndef SMETER_CORE_BATCH_ENCODER_H_
#define SMETER_CORE_BATCH_ENCODER_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "core/lookup_table.h"
#include "core/symbol.h"

namespace smeter {

// Encodes values[i] into out[i] at the table's finest level. `out` must
// have room for values.size() symbols. A NaN reading anywhere in the input
// is an InvalidArgument error naming the first offending index; `out` is
// scratch in that case. Infinities clamp to the extreme symbols, like any
// out-of-domain value (Definition 3 rules i/ii).
Status EncodeBatch(const LookupTable& table, std::span<const double> values,
                   Symbol* out);

// Convenience overload allocating the output column.
Result<std::vector<Symbol>> EncodeBatch(const LookupTable& table,
                                        std::span<const double> values);

// Encodes at a coarser `level` (in [1, table.level()]): identical to
// EncodeBatch followed by Symbol::Coarsen(level) on every symbol.
Status EncodeBatchAtLevel(const LookupTable& table,
                          std::span<const double> values, int level,
                          Symbol* out);

// Gap-aware encode: like EncodeBatch, but a NaN reading means "missing
// sample" and encodes to Symbol::Gap(table.level()) instead of failing the
// batch. Every finite (and infinite) value produces exactly the symbol
// EncodeBatch would. This is the kernel behind the fault-tolerant fleet
// path, where the vertical layer marks empty windows with NaN.
Status EncodeBatchWithGaps(const LookupTable& table,
                           std::span<const double> values, Symbol* out);

// Convenience overload allocating the output column.
Result<std::vector<Symbol>> EncodeBatchWithGaps(const LookupTable& table,
                                                std::span<const double> values);

// Decodes symbols[i] into out[i] using `mode`. All symbols must share one
// level <= table.level() (a SymbolicSeries column satisfies this by
// construction); a mismatched symbol is an InvalidArgument error naming
// the first offending index. GAP symbols decode to NaN — the inverse of
// EncodeBatchWithGaps — so callers building a TimeSeries must drop them.
Status DecodeBatch(const LookupTable& table, std::span<const Symbol> symbols,
                   ReconstructionMode mode, double* out);

// Convenience overload allocating the output column.
Result<std::vector<double>> DecodeBatch(const LookupTable& table,
                                        std::span<const Symbol> symbols,
                                        ReconstructionMode mode);

}  // namespace smeter

#endif  // SMETER_CORE_BATCH_ENCODER_H_
