#include "core/sax.h"

#include <algorithm>
#include <cmath>

#include "common/normal.h"
#include "core/symbol.h"
#include "core/vertical.h"

namespace smeter {

Result<std::vector<double>> GaussianBreakpoints(int a) {
  if (a < 2) return InvalidArgumentError("alphabet size must be >= 2");
  std::vector<double> breakpoints;
  breakpoints.reserve(static_cast<size_t>(a) - 1);
  for (int i = 1; i < a; ++i) {
    Result<double> z =
        InverseNormalCdf(static_cast<double>(i) / static_cast<double>(a));
    if (!z.ok()) return z.status();
    breakpoints.push_back(z.value());
  }
  return breakpoints;
}

Result<SymbolicSeries> SaxEncode(const TimeSeries& series,
                                 const SaxOptions& options) {
  if (options.level < 1 || options.level > kMaxSymbolLevel) {
    return InvalidArgumentError("bad SAX level");
  }
  if (options.paa_frame == 0) {
    return InvalidArgumentError("paa_frame must be > 0");
  }
  if (series.empty()) return FailedPreconditionError("empty series");

  // Z-normalize over the whole series, as SAX prescribes.
  std::vector<double> values = series.Values();
  if (options.normalize) {
    double mean = 0.0;
    for (double v : values) mean += v;
    mean /= static_cast<double>(values.size());
    double var = 0.0;
    for (double v : values) var += (v - mean) * (v - mean);
    var /= static_cast<double>(values.size());
    if (var <= 0.0) {
      return FailedPreconditionError(
          "zero-variance series cannot be z-normalized");
    }
    double inv_std = 1.0 / std::sqrt(var);
    for (double& v : values) v = (v - mean) * inv_std;
  }

  TimeSeries normalized;
  for (size_t i = 0; i < values.size(); ++i) {
    SMETER_RETURN_IF_ERROR(
        normalized.Append({series[i].timestamp, values[i]}));
  }

  // PAA = vertical segmentation by count with mean aggregation.
  Result<TimeSeries> paa =
      VerticalSegmentByCount(normalized, options.paa_frame);
  if (!paa.ok()) return paa.status();

  Result<std::vector<double>> breakpoints =
      GaussianBreakpoints(1 << options.level);
  if (!breakpoints.ok()) return breakpoints.status();

  SymbolicSeries out(options.level);
  for (const Sample& s : paa.value()) {
    auto it = std::lower_bound(breakpoints->begin(), breakpoints->end(),
                               s.value);
    uint32_t index = static_cast<uint32_t>(it - breakpoints->begin());
    Result<Symbol> symbol = Symbol::Create(options.level, index);
    if (!symbol.ok()) return symbol.status();
    SMETER_RETURN_IF_ERROR(out.Append({s.timestamp, symbol.value()}));
  }
  return out;
}

Result<double> SaxMinDist(const SymbolicSeries& a, const SymbolicSeries& b,
                          size_t original_length) {
  if (a.level() != b.level()) {
    return InvalidArgumentError("SAX words have different alphabets");
  }
  if (a.size() != b.size()) {
    return InvalidArgumentError("SAX words have different lengths");
  }
  if (a.empty()) return FailedPreconditionError("empty SAX words");
  if (original_length == 0) {
    return InvalidArgumentError("original_length must be > 0");
  }

  Result<std::vector<double>> breakpoints = GaussianBreakpoints(1 << a.level());
  if (!breakpoints.ok()) return breakpoints.status();
  const std::vector<double>& beta = breakpoints.value();

  // dist(r, c) = 0 when |r - c| <= 1, else beta_{max(r,c)-1} - beta_{min(r,c)}.
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    uint32_t r = a[i].symbol.index();
    uint32_t c = b[i].symbol.index();
    if (r > c) std::swap(r, c);
    if (c - r <= 1) continue;
    double d = beta[c - 1] - beta[r];
    sum += d * d;
  }
  double w = static_cast<double>(a.size());
  double n = static_cast<double>(original_length);
  return std::sqrt(n / w) * std::sqrt(sum);
}

}  // namespace smeter
