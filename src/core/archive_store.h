// The partitioned symbolic archive store: the read path over the v3
// framed archive the ingest daemon and encode-fleet write.
//
// A store directory is derived data, rebuilt deterministically from an
// archive directory (per-meter .table/.symbols + fleet.manifest):
//
//   <store>/store.index        append log (io framing, per-record CRC32C):
//                              one JSON header record {"format","psec"}
//                              then one JSON record per partition
//   <store>/p<id>/<meter>.seg  the meter's slice of that time partition,
//                              re-packed as a v3 framed blob (every byte
//                              checksummed; salvage/fsck apply unchanged)
//   <store>/p<id>/rollup.tab   append log of per-meter JSON rollup rows
//   <store>/current.tab        append log: compacted "latest symbol per
//                              meter" table
//   <store>/current.log        append log: incremental current-value
//                              updates from a live ingest daemon
//
// Partitioning: partition id = floor(timestamp / partition_seconds), so a
// partition covers [id*P, (id+1)*P). Retention is dropping whole partition
// directories and rewriting the index — no per-record deletes, no
// compaction.
//
// Rollups lean on the paper's hierarchy invariant (Section 4): a symbol at
// level k is the k-bit prefix of the same window's symbol at any finer
// level, and a GAP coarsens to a GAP. A rollup row therefore stores only
// the native-level histogram; the histogram at every coarser level k is a
// fold (bucket j at level L sums into bucket j >> (L-k)), bit-identical to
// re-encoding the raw values at level k. No decode, no raw data, no
// per-level storage.
//
// Queries (ArchiveStore):
//   Latest()    — hot current table, refreshed from current.log so a live
//                 ingest daemon's appends are visible without reopening
//   Scan()      — per-meter range scan at a requested level: segment reads
//                 for the overlapping partitions, prefix truncation to the
//                 requested level, missing partitions gap-filled so the
//                 cadence grid never silently skips time
//   Aggregate() — fleet-wide histogram over a window: partitions fully
//                 inside the window are served from rollup rows (one file
//                 per partition, no segment reads); partial edge
//                 partitions fall back to segment scans
//
// Fault seams: store.segment.write, store.rollup.write, store.index.write
// (builder), store.segment.read (query path), store.current.append
// (ingest-time current-table update). Each is exercised by a test —
// tools/lint_invariants.py enforces that.
//
// Concurrency: ArchiveStore is single-threaded (the query daemon runs one
// loop thread); CurrentTable::Update is mutex-guarded because ingest
// shards call it concurrently.

#ifndef SMETER_CORE_ARCHIVE_STORE_H_
#define SMETER_CORE_ARCHIVE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/symbolic_series.h"
#include "core/time_series.h"

namespace smeter {

// File names inside a store directory.
inline constexpr char kStoreIndexFile[] = "store.index";
inline constexpr char kCurrentTableFile[] = "current.tab";
inline constexpr char kCurrentLogFile[] = "current.log";
inline constexpr char kRollupTableFile[] = "rollup.tab";
// Partition directory prefix: "p" + decimal partition id.
inline constexpr char kPartitionDirPrefix[] = "p";
// Segment file suffix inside a partition directory.
inline constexpr char kSegmentSuffix[] = ".seg";

// On-store u16 encoding of the GAP symbol in Scan results and current
// records (value symbols are their alphabet index, < 2^12).
inline constexpr uint16_t kStoreGapSymbol = 0xffff;

// True iff `name` looks like a partition directory ("p<decimal id>",
// possibly negative). Exposed for fsck's store walk.
bool IsPartitionDirName(const std::string& name,
                        int64_t* id_out = nullptr);

// Partition id covering `timestamp` for the given partition length.
// Floor division, so pre-epoch timestamps land in negative partitions
// instead of sharing partition 0 with the first post-epoch day.
int64_t PartitionIdFor(Timestamp timestamp, int64_t partition_seconds);

// Folds a native-level histogram down to `to_level` by bucket-prefix
// summation — the storage-side mirror of Symbol::Coarsen. Contract
// (checked): hist.size() == 2^from_level, 1 <= to_level <= from_level.
std::vector<uint64_t> FoldHistogram(const std::vector<uint64_t>& hist,
                                    int from_level, int to_level);

// One per-meter, per-partition rollup row. Histogram is at the meter's
// native level; coarser levels are FoldHistogram away.
struct RollupRow {
  std::string meter;
  int level = 1;
  Timestamp start = 0;      // first slot timestamp in the partition
  int64_t step = 0;         // slot cadence (0 for a single-slot segment,
                            // matching the packed header convention)
  uint64_t windows = 0;     // total slots, gaps included
  uint64_t gaps = 0;        // GAP slots
  std::vector<uint64_t> histogram;  // size 2^level, value symbols only

  friend bool operator==(const RollupRow& a, const RollupRow& b) {
    return a.meter == b.meter && a.level == b.level && a.start == b.start &&
           a.step == b.step && a.windows == b.windows && a.gaps == b.gaps &&
           a.histogram == b.histogram;
  }
};

// JSON (de)serialization of one rollup row; the record travels inside the
// append-log framing. Deterministic field order, so rebuilt rollup tables
// are byte-identical to incrementally built ones.
std::string RollupRowRecord(const RollupRow& row);
std::optional<RollupRow> ParseRollupRow(const std::string& record);

// One partition's index entry.
struct PartitionInfo {
  int64_t id = 0;
  Timestamp start = 0;  // id * partition_seconds
  Timestamp end = 0;    // (id + 1) * partition_seconds
  uint64_t meters = 0;  // segments in the partition
  uint64_t segment_bytes = 0;
};

// The "latest symbol per meter" hot-table record.
struct CurrentRecord {
  std::string meter;
  Timestamp timestamp = 0;
  int level = 1;
  uint16_t symbol = 0;  // alphabet index, or kStoreGapSymbol

  friend bool operator==(const CurrentRecord& a, const CurrentRecord& b) {
    return a.meter == b.meter && a.timestamp == b.timestamp &&
           a.level == b.level && a.symbol == b.symbol;
  }
};

std::string CurrentRecordJson(const CurrentRecord& record);
std::optional<CurrentRecord> ParseCurrentRecord(const std::string& record);

// Ingest-side writer for the hot current table: appends one record per
// completed session to <dir>/current.log (fsynced, CRC-framed), so a
// query daemon reading the same directory sees new values without any
// shared state. Thread-safe (ingest shards complete sessions
// concurrently).
class CurrentTableWriter {
 public:
  // Creates <dir>/current.log (empty framed log) if absent and opens it
  // for appending.
  static Result<std::unique_ptr<CurrentTableWriter>> Open(
      const std::string& dir);

  // Appends one update. Fault seam: store.current.append. A failure is
  // reported but must degrade, not kill ingest — the current table is
  // derived data, rebuilt by the next store-build.
  Status Update(const CurrentRecord& record);

  Status Close();

 private:
  explicit CurrentTableWriter(const std::string& dir);

  const std::string log_path_;
  Mutex mutex_;
  // Non-copyable writer lives behind optional so Open can build in place.
  std::optional<io::AppendLogWriter> log_ GUARDED_BY(mutex_);
};

struct StoreBuildOptions {
  // Partition length in seconds; kSecondsPerDay for daily partitions,
  // 30 * kSecondsPerDay for the coarse monthly layout.
  int64_t partition_seconds = kSecondsPerDay;
  // v3 block size for re-packed segments.
  size_t max_block_slots = 4096;
};

struct StoreBuildReport {
  size_t meters = 0;
  size_t partitions = 0;
  uint64_t segments_written = 0;
  uint64_t segment_bytes = 0;
  // Meters whose .symbols blob failed to parse; skipped, not fatal (the
  // archive's own fsck handles them).
  size_t meters_skipped = 0;
};

// Builds (or deterministically rebuilds) a store from an archive
// directory. Reads every <meter>.symbols under `archive_dir`, slices each
// series into partitions, writes segments, per-partition rollup tables,
// the index, and the compacted current table. All writes are atomic and
// the output is a pure function of the archive contents, so a build
// killed at any point converges to the identical store when re-run.
Result<StoreBuildReport> BuildArchiveStore(
    const std::string& archive_dir, const std::string& store_dir,
    const StoreBuildOptions& options = {});

// Recomputes every partition's rollup.tab from its segment files —
// byte-identical to what BuildArchiveStore wrote (the convergence drill
// CI verifies). Returns the number of rollup tables rewritten.
Result<size_t> RebuildRollups(const std::string& store_dir);

// Retention: removes every partition whose whole range ends at or before
// `cutoff` and rewrites the index. Returns partitions dropped.
Result<size_t> DropPartitionsBefore(const std::string& store_dir,
                                    Timestamp cutoff);

// A point-lookup result.
struct PointValue {
  Timestamp timestamp = 0;
  int level = 1;
  uint16_t symbol = 0;  // kStoreGapSymbol for a GAP
};

// A range-scan result: a fixed-cadence run of u16 symbols at the
// requested level starting at start_timestamp.
struct RangeScanResult {
  Timestamp start_timestamp = 0;
  int64_t step_seconds = 0;
  int level = 1;
  std::vector<uint16_t> symbols;
  bool truncated = false;  // hit the caller's max_symbols cap
};

// A fleet-wide aggregate over a time window.
struct FleetAggregate {
  int level = 1;
  uint64_t meters = 0;          // meters contributing >= 1 window
  uint64_t meters_coarser = 0;  // excluded: native level coarser than the
                                // requested one (cannot be refined)
  uint64_t windows = 0;         // total windows, gaps included
  uint64_t gaps = 0;
  std::vector<uint64_t> histogram;  // size 2^level
  // Observability: how the aggregate was served.
  uint32_t rollup_partitions = 0;   // served from rollup rows alone
  uint32_t scanned_partitions = 0;  // edge partitions that needed segments
};

struct ArchiveStoreOptions {
  // Where the current table lives; empty means the store directory
  // itself. A query daemon co-serving a live ingest points this at the
  // ingest daemon's current-table directory.
  std::string current_dir;
};

// Read-only view over a store directory. Partitions and rollups are the
// static snapshot the last BuildArchiveStore produced; the current table
// is re-read from current.log whenever the log grows, so point lookups
// track a live ingest daemon.
class ArchiveStore {
 public:
  static Result<std::unique_ptr<ArchiveStore>> Open(
      const std::string& store_dir, const ArchiveStoreOptions& options = {});

  const std::vector<PartitionInfo>& partitions() const { return partitions_; }
  int64_t partition_seconds() const { return partition_seconds_; }
  const std::string& dir() const { return dir_; }

  // Latest symbol for `meter` from the hot current table (refreshing from
  // current.log first). NotFound when the meter has never reported.
  Result<PointValue> Latest(const std::string& meter);

  // The meter's symbols in [range.begin, range.end) at `level` (0 = the
  // meter's native level; otherwise must be <= native). Missing
  // partitions inside the covered span are returned as GAP runs so the
  // cadence grid stays intact. At most `max_symbols` symbols are
  // returned; the result is flagged truncated beyond that. NotFound when
  // no partition holds any data for the meter in range.
  Result<RangeScanResult> Scan(const std::string& meter, TimeRange range,
                               int level, size_t max_symbols);

  // Fleet-wide aggregate over [range.begin, range.end) at `level` in
  // [1, kMaxSymbolLevel]. Partitions fully covered by the range are
  // folded from rollup rows; edge partitions are segment-scanned.
  Result<FleetAggregate> Aggregate(TimeRange range, int level);

  // Number of distinct meters in the current table (after refresh);
  // operator/stats surface.
  size_t CurrentMeters();

  // Cumulative read-path counters (for stats dumps and tests).
  uint64_t segments_read() const { return segments_read_; }
  uint64_t current_refreshes() const { return current_refreshes_; }

 private:
  ArchiveStore(std::string dir, std::string current_dir,
               int64_t partition_seconds,
               std::vector<PartitionInfo> partitions);

  // Re-reads current.tab + current.log when the log changed size.
  Status RefreshCurrent();
  // Loads (and caches) one partition's rollup rows.
  Result<const std::vector<RollupRow>*> Rollups(int64_t partition_id);
  // Reads and unpacks one segment; NotFound when the meter has no segment
  // in the partition. Fault seam: store.segment.read.
  Result<SymbolicSeries> ReadSegment(int64_t partition_id,
                                     const std::string& meter);
  std::string PartitionDir(int64_t partition_id) const;

  const std::string dir_;
  const std::string current_dir_;
  int64_t partition_seconds_;
  std::vector<PartitionInfo> partitions_;  // sorted by id
  std::map<int64_t, std::vector<RollupRow>> rollup_cache_;
  std::map<std::string, CurrentRecord> current_;
  // Size of current.tab + current.log at the last refresh; growth
  // triggers a re-read.
  int64_t current_bytes_seen_ = -1;
  uint64_t segments_read_ = 0;
  uint64_t current_refreshes_ = 0;
};

}  // namespace smeter

#endif  // SMETER_CORE_ARCHIVE_STORE_H_
