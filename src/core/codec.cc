#include "core/codec.h"

#include <algorithm>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/io.h"

namespace smeter {
namespace {

constexpr char kMagic[4] = {'S', 'M', 'S', 'Y'};
constexpr uint8_t kVersionGapless = 1;
constexpr uint8_t kVersionWithGaps = 2;
constexpr uint8_t kVersionFramed = 3;
constexpr size_t kHeaderBytes = 4 + 1 + 1 + 4 + 8 + 8;
// v3: the 26-byte header above plus its CRC32C.
constexpr size_t kFramedHeaderBytes = kHeaderBytes + 4;
// v3 block header: sync marker, first_slot, slot_count, payload_len, crc.
constexpr char kSyncMarker[4] = {'\xF5', 'S', 'M', 'B'};
constexpr size_t kBlockHeaderBytes = 4 + 4 + 4 + 4 + 4;
// High bit of the stored slot_count: set iff the payload opens with a gap
// bitmap. Gapless blocks omit the bitmap entirely, so a year of clean
// 15-minute data pays only the 20-byte header per block, not an extra
// bit per slot. kMaxBlockSlots is far below 2^31, so the flag can never
// collide with a real count.
constexpr uint32_t kBlockHasBitmap = 0x80000000u;

// Slot states while reassembling a v3 series. Non-negative values are
// symbol indices.
constexpr int32_t kUnfilledSlot = -1;  // block damaged or missing -> GAP
constexpr int32_t kGapSlot = -2;       // explicit GAP from the gap bitmap

void AppendLittleEndian(std::string& out, uint64_t value, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint64_t ReadLittleEndian(const std::string& blob, size_t offset, int bytes) {
  uint64_t value = 0;
  for (int i = 0; i < bytes; ++i) {
    value |= static_cast<uint64_t>(
                 static_cast<unsigned char>(blob[offset + static_cast<size_t>(i)]))
             << (8 * i);
  }
  return value;
}

// Checks the pack preconditions shared by every wire version and reports
// the (constant) timestamp step, 0 for a single-sample series.
Status ValidateFixedCadence(const SymbolicSeries& series, int64_t* step_out) {
  if (series.empty()) {
    return FailedPreconditionError("cannot pack an empty series");
  }
  if (series.size() > UINT32_MAX) {
    return InvalidArgumentError("series too long for the wire format");
  }
  int64_t step = 0;
  if (series.size() > 1) {
    if (__builtin_sub_overflow(series[1].timestamp, series[0].timestamp,
                               &step)) {
      return InvalidArgumentError("timestamp span overflows int64");
    }
    if (step <= 0) {
      return InvalidArgumentError("non-increasing timestamps");
    }
    for (size_t i = 2; i < series.size(); ++i) {
      int64_t delta = 0;
      if (__builtin_sub_overflow(series[i].timestamp, series[i - 1].timestamp,
                                 &delta) ||
          delta != step) {
        return InvalidArgumentError(
            "irregular cadence at index " + std::to_string(i) +
            "; pack gapless segments separately");
      }
    }
  }
  *step_out = step;
  return Status::Ok();
}

// Optional gap bitmap + bit-packed value symbols for series slots
// [first, first + slot_count). The bitmap is emitted only when the block
// actually contains a GAP (`has_gaps`, signalled to the reader via the
// kBlockHasBitmap bit of the stored slot_count); a gapless block is pure
// value payload. The bit accumulator starts fresh so the block decodes
// with no outside state.
std::string PackBlockPayload(const SymbolicSeries& series, size_t first,
                             size_t slot_count, bool has_gaps) {
  std::string out;
  const int level = series.level();
  if (has_gaps) {
    uint8_t bitmap_byte = 0;
    int bits_in_byte = 0;
    for (size_t i = first; i < first + slot_count; ++i) {
      bitmap_byte = static_cast<uint8_t>(
          (bitmap_byte << 1) | (series[i].symbol.is_gap() ? 1u : 0u));
      if (++bits_in_byte == 8) {
        out.push_back(static_cast<char>(bitmap_byte));
        bitmap_byte = 0;
        bits_in_byte = 0;
      }
    }
    if (bits_in_byte > 0) {
      out.push_back(static_cast<char>(bitmap_byte << (8 - bits_in_byte)));
    }
  }
  uint32_t accumulator = 0;
  int bits_held = 0;
  for (size_t i = first; i < first + slot_count; ++i) {
    if (series[i].symbol.is_gap()) continue;
    accumulator = (accumulator << level) | series[i].symbol.index();
    bits_held += level;
    while (bits_held >= 8) {
      bits_held -= 8;
      out.push_back(static_cast<char>((accumulator >> bits_held) & 0xff));
    }
  }
  if (bits_held > 0) {
    out.push_back(static_cast<char>((accumulator << (8 - bits_held)) & 0xff));
  }
  return out;
}

struct V3Header {
  int level = 0;
  size_t count = 0;
  Timestamp start = 0;
  int64_t step = 0;
};

// Validates the 30-byte framed header (magic and version already checked by
// the caller). CRC failure is kDataLoss; a field that the CRC vouches for
// but that makes no sense is kInvalidArgument (the encoder never wrote it).
Status ParseV3Header(const std::string& blob, V3Header* header) {
  if (blob.size() < kFramedHeaderBytes) {
    return DataLossError("v3 blob shorter than framed header");
  }
  const uint32_t want_crc =
      static_cast<uint32_t>(ReadLittleEndian(blob, kHeaderBytes, 4));
  const uint32_t have_crc =
      io::Crc32c(std::string_view(blob.data(), kHeaderBytes));
  if (have_crc != want_crc) {
    return DataLossError("v3 header checksum mismatch");
  }
  header->level = static_cast<int>(static_cast<unsigned char>(blob[5]));
  if (header->level < 1 || header->level > kMaxSymbolLevel) {
    return InvalidArgumentError("level out of range");
  }
  header->count = static_cast<size_t>(ReadLittleEndian(blob, 6, 4));
  header->start = static_cast<Timestamp>(ReadLittleEndian(blob, 10, 8));
  header->step = static_cast<int64_t>(ReadLittleEndian(blob, 18, 8));
  if (header->count == 0) return InvalidArgumentError("empty payload");
  if (header->count > 1 && header->step <= 0) {
    return InvalidArgumentError("non-positive step");
  }
  if (header->count > 1) {
    int64_t span = 0;
    int64_t last = 0;
    if (__builtin_mul_overflow(header->step,
                               static_cast<int64_t>(header->count - 1),
                               &span) ||
        __builtin_add_overflow(header->start, span, &last)) {
      return InvalidArgumentError("timestamp range overflows int64");
    }
  }
  return Status::Ok();
}

// Parses the v3 block at `offset`, writing decoded slots into `slots`.
// `expected_first` pins the contiguity rule for the strict reader; salvage
// passes SIZE_MAX to accept any in-range placement. Damage (bad sync, bad
// CRC, bytes missing) is kDataLoss; CRC-clean nonsense is kInvalidArgument.
Status ParseV3Block(const std::string& blob, size_t offset,
                    const V3Header& header, size_t expected_first,
                    std::vector<int32_t>* slots, size_t* end_offset,
                    size_t* slots_done) {
  if (blob.size() < offset || blob.size() - offset < kBlockHeaderBytes) {
    return DataLossError("truncated block header");
  }
  if (std::memcmp(blob.data() + offset, kSyncMarker, sizeof(kSyncMarker)) !=
      0) {
    return DataLossError("missing sync marker");
  }
  const auto first_slot =
      static_cast<size_t>(ReadLittleEndian(blob, offset + 4, 4));
  const auto raw_slot_count =
      static_cast<uint32_t>(ReadLittleEndian(blob, offset + 8, 4));
  const bool has_bitmap = (raw_slot_count & kBlockHasBitmap) != 0;
  const auto slot_count =
      static_cast<size_t>(raw_slot_count & ~kBlockHasBitmap);
  const auto payload_len =
      static_cast<size_t>(ReadLittleEndian(blob, offset + 12, 4));
  const auto want_crc =
      static_cast<uint32_t>(ReadLittleEndian(blob, offset + 16, 4));
  if (payload_len > blob.size() - offset - kBlockHeaderBytes) {
    return DataLossError("block payload runs past end of blob");
  }
  uint32_t crc =
      io::Crc32c(std::string_view(blob.data() + offset + 4, 12));
  crc = io::Crc32c(
      std::string_view(blob.data() + offset + kBlockHeaderBytes, payload_len),
      crc);
  if (crc != want_crc) {
    return DataLossError("block checksum mismatch");
  }
  // The CRC holds, so from here every failure means a malformed encoding.
  if (slot_count == 0 || slot_count > kMaxBlockSlots) {
    return InvalidArgumentError("slot count out of range");
  }
  if (first_slot > header.count || slot_count > header.count - first_slot) {
    return InvalidArgumentError("block slots exceed series count");
  }
  if (expected_first != SIZE_MAX && first_slot != expected_first) {
    return InvalidArgumentError(
        "non-contiguous block: first slot " + std::to_string(first_slot) +
        ", expected " + std::to_string(expected_first));
  }
  const size_t bitmap_bytes = has_bitmap ? (slot_count + 7) / 8 : 0;
  if (payload_len < bitmap_bytes) {
    return InvalidArgumentError("payload shorter than gap bitmap");
  }
  const char* payload = blob.data() + offset + kBlockHeaderBytes;
  size_t gaps = 0;
  if (has_bitmap) {
    for (size_t i = 0; i < slot_count; ++i) {
      const auto byte = static_cast<unsigned char>(payload[i / 8]);
      gaps += (byte >> (7 - i % 8)) & 1u;
    }
    if (gaps == 0) {
      // The encoder only sets kBlockHasBitmap when the block has a GAP;
      // an all-zero bitmap is a non-canonical encoding it never wrote.
      return InvalidArgumentError("gap bitmap present but empty");
    }
    if (slot_count % 8 != 0) {
      const auto last = static_cast<unsigned char>(payload[bitmap_bytes - 1]);
      if ((last & ((1u << (8 - slot_count % 8)) - 1u)) != 0) {
        return InvalidArgumentError("nonzero padding in gap bitmap");
      }
    }
  }
  const size_t values = slot_count - gaps;
  const size_t expected_payload =
      bitmap_bytes +
      (values * static_cast<size_t>(header.level) + 7) / 8;
  if (payload_len != expected_payload) {
    return InvalidArgumentError("block payload size mismatch: have " +
                                std::to_string(payload_len) + ", want " +
                                std::to_string(expected_payload));
  }
  uint32_t accumulator = 0;
  int bits_held = 0;
  size_t byte_index = bitmap_bytes;
  const uint32_t mask = (1u << header.level) - 1;
  for (size_t i = 0; i < slot_count; ++i) {
    if (has_bitmap &&
        ((static_cast<unsigned char>(payload[i / 8]) >> (7 - i % 8)) & 1u)) {
      (*slots)[first_slot + i] = kGapSlot;
      continue;
    }
    while (bits_held < header.level) {
      accumulator =
          (accumulator << 8) |
          static_cast<unsigned char>(payload[byte_index++]);
      bits_held += 8;
    }
    (*slots)[first_slot + i] = static_cast<int32_t>(
        (accumulator >> (bits_held - header.level)) & mask);
    bits_held -= header.level;
  }
  *end_offset = offset + kBlockHeaderBytes + payload_len;
  *slots_done = slot_count;
  return Status::Ok();
}

// Turns the reassembled slot array into a series; kUnfilledSlot and
// kGapSlot both materialize as GAP symbols.
Result<SymbolicSeries> BuildSeriesFromSlots(const V3Header& header,
                                            const std::vector<int32_t>& slots) {
  SymbolicSeries series(header.level);
  for (size_t i = 0; i < slots.size(); ++i) {
    const Timestamp ts =
        header.start + static_cast<int64_t>(i) * header.step;
    if (slots[i] < 0) {
      SMETER_RETURN_IF_ERROR(series.Append({ts, Symbol::Gap(header.level)}));
      continue;
    }
    Result<Symbol> symbol =
        Symbol::Create(header.level, static_cast<uint32_t>(slots[i]));
    if (!symbol.ok()) return symbol.status();
    SMETER_RETURN_IF_ERROR(series.Append({ts, symbol.value()}));
  }
  return series;
}

// Strict v3 reader: blocks must tile [0, count) in order and the blob must
// end exactly at the final block.
Result<SymbolicSeries> UnpackFramed(const std::string& blob) {
  V3Header header;
  SMETER_RETURN_IF_ERROR(ParseV3Header(blob, &header));
  std::vector<int32_t> slots(header.count, kUnfilledSlot);
  size_t offset = kFramedHeaderBytes;
  size_t cursor = 0;
  size_t block_index = 0;
  while (cursor < header.count) {
    size_t end_offset = 0;
    size_t slots_done = 0;
    Status parsed = ParseV3Block(blob, offset, header, cursor, &slots,
                                 &end_offset, &slots_done);
    if (!parsed.ok()) {
      return Status(parsed.code(),
                    "v3 block " + std::to_string(block_index) +
                        " at offset " + std::to_string(offset) + ": " +
                        parsed.message());
    }
    cursor += slots_done;
    offset = end_offset;
    ++block_index;
  }
  if (offset != blob.size()) {
    return InvalidArgumentError("trailing bytes after final v3 block");
  }
  return BuildSeriesFromSlots(header, slots);
}

}  // namespace

int64_t PackedPayloadBits(size_t count, int level) {
  return static_cast<int64_t>(count) * level;
}

size_t PackedSizeBytes(size_t count, int level) {
  size_t payload_bits = count * static_cast<size_t>(level);
  return kHeaderBytes + (payload_bits + 7) / 8;
}

size_t PackedSizeBytesWithGaps(size_t count, size_t gaps, int level) {
  size_t payload_bits = (count - gaps) * static_cast<size_t>(level);
  return kHeaderBytes + (count + 7) / 8 + (payload_bits + 7) / 8;
}

Result<std::string> PackSymbolicSeries(const SymbolicSeries& series) {
  int64_t step = 0;
  SMETER_RETURN_IF_ERROR(ValidateFixedCadence(series, &step));
  const size_t gaps = series.GapCount();

  std::string out;
  out.reserve(gaps == 0
                  ? PackedSizeBytes(series.size(), series.level())
                  : PackedSizeBytesWithGaps(series.size(), gaps,
                                            series.level()));
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(gaps == 0 ? kVersionGapless
                                            : kVersionWithGaps));
  out.push_back(static_cast<char>(series.level()));
  AppendLittleEndian(out, static_cast<uint32_t>(series.size()), 4);
  AppendLittleEndian(out, static_cast<uint64_t>(series[0].timestamp), 8);
  AppendLittleEndian(out, static_cast<uint64_t>(step), 8);

  if (gaps > 0) {
    // Version 2: presence bitmap (MSB-first, bit set = GAP), then the value
    // symbols only — a gap has no alphabet index to pack.
    uint8_t bitmap_byte = 0;
    int bits_in_byte = 0;
    for (const SymbolicSample& s : series) {
      bitmap_byte = static_cast<uint8_t>(
          (bitmap_byte << 1) | (s.symbol.is_gap() ? 1u : 0u));
      if (++bits_in_byte == 8) {
        out.push_back(static_cast<char>(bitmap_byte));
        bitmap_byte = 0;
        bits_in_byte = 0;
      }
    }
    if (bits_in_byte > 0) {
      out.push_back(
          static_cast<char>(bitmap_byte << (8 - bits_in_byte)));
    }
  }

  // MSB-first bit packing of the value symbols.
  uint32_t accumulator = 0;
  int bits_held = 0;
  const int level = series.level();
  for (const SymbolicSample& s : series) {
    if (s.symbol.is_gap()) continue;
    accumulator = (accumulator << level) | s.symbol.index();
    bits_held += level;
    while (bits_held >= 8) {
      bits_held -= 8;
      out.push_back(static_cast<char>((accumulator >> bits_held) & 0xff));
    }
  }
  if (bits_held > 0) {
    out.push_back(
        static_cast<char>((accumulator << (8 - bits_held)) & 0xff));
  }
  return out;
}

Result<std::string> PackSymbolicSeriesFramed(const SymbolicSeries& series,
                                             size_t max_block_slots) {
  if (max_block_slots == 0 || max_block_slots > kMaxBlockSlots) {
    return InvalidArgumentError("max_block_slots out of range");
  }
  int64_t step = 0;
  SMETER_RETURN_IF_ERROR(ValidateFixedCadence(series, &step));

  std::string out;
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kVersionFramed));
  out.push_back(static_cast<char>(series.level()));
  AppendLittleEndian(out, static_cast<uint32_t>(series.size()), 4);
  AppendLittleEndian(out, static_cast<uint64_t>(series[0].timestamp), 8);
  AppendLittleEndian(out, static_cast<uint64_t>(step), 8);
  AppendLittleEndian(out, io::Crc32c(std::string_view(out.data(), out.size())),
                     4);

  for (size_t first = 0; first < series.size(); first += max_block_slots) {
    const size_t slot_count =
        std::min(max_block_slots, series.size() - first);
    bool has_gaps = false;
    for (size_t i = first; i < first + slot_count && !has_gaps; ++i) {
      has_gaps = series[i].symbol.is_gap();
    }
    const std::string payload =
        PackBlockPayload(series, first, slot_count, has_gaps);
    std::string fields;
    AppendLittleEndian(fields, static_cast<uint32_t>(first), 4);
    AppendLittleEndian(
        fields,
        static_cast<uint32_t>(slot_count) | (has_gaps ? kBlockHasBitmap : 0u),
        4);
    AppendLittleEndian(fields, static_cast<uint32_t>(payload.size()), 4);
    uint32_t crc = io::Crc32c(fields);
    crc = io::Crc32c(payload, crc);
    out.append(kSyncMarker, sizeof(kSyncMarker));
    out += fields;
    AppendLittleEndian(out, crc, 4);
    out += payload;
  }
  return out;
}

Result<SymbolicSeries> UnpackSymbolicSeries(const std::string& blob) {
  if (blob.size() < kHeaderBytes) {
    return InvalidArgumentError("blob shorter than header");
  }
  if (std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return InvalidArgumentError("bad magic");
  }
  uint8_t version = static_cast<uint8_t>(blob[4]);
  if (version == kVersionFramed) return UnpackFramed(blob);
  if (version != kVersionGapless && version != kVersionWithGaps) {
    return UnimplementedError("unsupported version " +
                              std::to_string(version));
  }
  int level = static_cast<int>(static_cast<unsigned char>(blob[5]));
  if (level < 1 || level > kMaxSymbolLevel) {
    return InvalidArgumentError("level out of range");
  }
  size_t count = static_cast<size_t>(ReadLittleEndian(blob, 6, 4));
  Timestamp start = static_cast<Timestamp>(ReadLittleEndian(blob, 10, 8));
  int64_t step = static_cast<int64_t>(ReadLittleEndian(blob, 18, 8));
  if (count == 0) return InvalidArgumentError("empty payload");
  if (count > 1 && step <= 0) {
    return InvalidArgumentError("non-positive step");
  }
  // An adversarial (start, step, count) triple can push the last timestamp
  // past int64 — reject the blob instead of overflowing (UB) below.
  if (count > 1) {
    int64_t span = 0;
    int64_t last = 0;
    if (__builtin_mul_overflow(step, static_cast<int64_t>(count - 1), &span) ||
        __builtin_add_overflow(start, span, &last)) {
      return InvalidArgumentError("timestamp range overflows int64");
    }
  }
  // Version 2 carries a presence bitmap between the header and the payload;
  // decode it (and the gap count it implies) before sizing the payload.
  std::vector<bool> is_gap;
  size_t gaps = 0;
  size_t payload_start = kHeaderBytes;
  if (version == kVersionWithGaps) {
    const size_t bitmap_bytes = (count + 7) / 8;
    if (blob.size() < kHeaderBytes + bitmap_bytes) {
      return InvalidArgumentError("blob shorter than gap bitmap");
    }
    is_gap.resize(count);
    for (size_t i = 0; i < count; ++i) {
      const auto byte = static_cast<unsigned char>(
          blob[kHeaderBytes + i / 8]);
      const bool gap = ((byte >> (7 - i % 8)) & 1u) != 0;
      is_gap[i] = gap;
      gaps += gap ? 1 : 0;
    }
    // Trailing pad bits of the final bitmap byte must be zero — anything
    // else is a malformed (or ambiguous) encoding.
    if (count % 8 != 0) {
      const auto last = static_cast<unsigned char>(
          blob[kHeaderBytes + bitmap_bytes - 1]);
      if ((last & ((1u << (8 - count % 8)) - 1u)) != 0) {
        return InvalidArgumentError("nonzero padding in gap bitmap");
      }
    }
    if (gaps == 0) {
      // A gapless series packs as version 1; a version-2 blob claiming no
      // gaps is not something the encoder emits.
      return InvalidArgumentError("version 2 blob with empty gap bitmap");
    }
    payload_start = kHeaderBytes + bitmap_bytes;
  }
  size_t expected = version == kVersionWithGaps
                        ? PackedSizeBytesWithGaps(count, gaps, level)
                        : PackedSizeBytes(count, level);
  if (blob.size() != expected) {
    return InvalidArgumentError("payload size mismatch: have " +
                                std::to_string(blob.size()) + ", want " +
                                std::to_string(expected));
  }

  SymbolicSeries series(level);
  uint32_t accumulator = 0;
  int bits_held = 0;
  size_t byte_index = payload_start;
  const uint32_t mask = (1u << level) - 1;
  for (size_t i = 0; i < count; ++i) {
    const Timestamp ts = start + static_cast<int64_t>(i) * step;
    if (version == kVersionWithGaps && is_gap[i]) {
      SMETER_RETURN_IF_ERROR(series.Append({ts, Symbol::Gap(level)}));
      continue;
    }
    while (bits_held < level) {
      accumulator = (accumulator << 8) |
                    static_cast<unsigned char>(blob[byte_index++]);
      bits_held += 8;
    }
    uint32_t index = (accumulator >> (bits_held - level)) & mask;
    bits_held -= level;
    Result<Symbol> symbol = Symbol::Create(level, index);
    if (!symbol.ok()) return symbol.status();
    SMETER_RETURN_IF_ERROR(series.Append({ts, symbol.value()}));
  }
  return series;
}

Result<SymbolicSeries> SalvageSymbolicSeries(const std::string& blob,
                                             SalvageSummary* summary) {
  if (blob.size() < kHeaderBytes ||
      std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return DataLossError("not a recognizable symbol blob");
  }
  if (static_cast<uint8_t>(blob[4]) != kVersionFramed) {
    return InvalidArgumentError(
        "salvage requires a v3 framed blob; v1/v2 have no block checksums");
  }
  V3Header header;
  SMETER_RETURN_IF_ERROR(ParseV3Header(blob, &header));

  std::vector<int32_t> slots(header.count, kUnfilledSlot);
  size_t recovered_blocks = 0;
  const std::string_view sync(kSyncMarker, sizeof(kSyncMarker));
  size_t pos = kFramedHeaderBytes;
  // Re-lock onto the stream at every sync marker: a block that checks out
  // places itself via its own first_slot field, so damage in one block
  // never shifts the slots recovered from its neighbors.
  while (pos < blob.size()) {
    const size_t found = blob.find(sync.data(), pos, sync.size());
    if (found == std::string::npos) break;
    size_t end_offset = 0;
    size_t slots_done = 0;
    Status parsed = ParseV3Block(blob, found, header, SIZE_MAX, &slots,
                                 &end_offset, &slots_done);
    if (parsed.ok()) {
      ++recovered_blocks;
      pos = end_offset;
    } else {
      // Not a real block (or a damaged one): resume the scan one byte in,
      // so a sync marker later in this region is still found.
      pos = found + 1;
    }
  }

  if (summary != nullptr) {
    size_t recovered_slots = 0;
    for (int32_t slot : slots) {
      recovered_slots += slot == kUnfilledSlot ? 0 : 1;
    }
    summary->total_slots = header.count;
    summary->recovered_slots = recovered_slots;
    summary->lost_slots = header.count - recovered_slots;
    summary->recovered_blocks = recovered_blocks;
  }
  return BuildSeriesFromSlots(header, slots);
}

}  // namespace smeter
