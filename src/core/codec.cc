#include "core/codec.h"

#include <cstring>
#include <vector>

namespace smeter {
namespace {

constexpr char kMagic[4] = {'S', 'M', 'S', 'Y'};
constexpr uint8_t kVersionGapless = 1;
constexpr uint8_t kVersionWithGaps = 2;
constexpr size_t kHeaderBytes = 4 + 1 + 1 + 4 + 8 + 8;

void AppendLittleEndian(std::string& out, uint64_t value, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint64_t ReadLittleEndian(const std::string& blob, size_t offset, int bytes) {
  uint64_t value = 0;
  for (int i = 0; i < bytes; ++i) {
    value |= static_cast<uint64_t>(
                 static_cast<unsigned char>(blob[offset + static_cast<size_t>(i)]))
             << (8 * i);
  }
  return value;
}

}  // namespace

int64_t PackedPayloadBits(size_t count, int level) {
  return static_cast<int64_t>(count) * level;
}

size_t PackedSizeBytes(size_t count, int level) {
  size_t payload_bits = count * static_cast<size_t>(level);
  return kHeaderBytes + (payload_bits + 7) / 8;
}

size_t PackedSizeBytesWithGaps(size_t count, size_t gaps, int level) {
  size_t payload_bits = (count - gaps) * static_cast<size_t>(level);
  return kHeaderBytes + (count + 7) / 8 + (payload_bits + 7) / 8;
}

Result<std::string> PackSymbolicSeries(const SymbolicSeries& series) {
  if (series.empty()) {
    return FailedPreconditionError("cannot pack an empty series");
  }
  if (series.size() > UINT32_MAX) {
    return InvalidArgumentError("series too long for the wire format");
  }
  const size_t gaps = series.GapCount();
  int64_t step = 0;
  if (series.size() > 1) {
    if (__builtin_sub_overflow(series[1].timestamp, series[0].timestamp,
                               &step)) {
      return InvalidArgumentError("timestamp span overflows int64");
    }
    if (step <= 0) {
      return InvalidArgumentError("non-increasing timestamps");
    }
    for (size_t i = 2; i < series.size(); ++i) {
      int64_t delta = 0;
      if (__builtin_sub_overflow(series[i].timestamp, series[i - 1].timestamp,
                                 &delta) ||
          delta != step) {
        return InvalidArgumentError(
            "irregular cadence at index " + std::to_string(i) +
            "; pack gapless segments separately");
      }
    }
  }

  std::string out;
  out.reserve(gaps == 0
                  ? PackedSizeBytes(series.size(), series.level())
                  : PackedSizeBytesWithGaps(series.size(), gaps,
                                            series.level()));
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(gaps == 0 ? kVersionGapless
                                            : kVersionWithGaps));
  out.push_back(static_cast<char>(series.level()));
  AppendLittleEndian(out, static_cast<uint32_t>(series.size()), 4);
  AppendLittleEndian(out, static_cast<uint64_t>(series[0].timestamp), 8);
  AppendLittleEndian(out, static_cast<uint64_t>(step), 8);

  if (gaps > 0) {
    // Version 2: presence bitmap (MSB-first, bit set = GAP), then the value
    // symbols only — a gap has no alphabet index to pack.
    uint8_t bitmap_byte = 0;
    int bits_in_byte = 0;
    for (const SymbolicSample& s : series) {
      bitmap_byte = static_cast<uint8_t>(
          (bitmap_byte << 1) | (s.symbol.is_gap() ? 1u : 0u));
      if (++bits_in_byte == 8) {
        out.push_back(static_cast<char>(bitmap_byte));
        bitmap_byte = 0;
        bits_in_byte = 0;
      }
    }
    if (bits_in_byte > 0) {
      out.push_back(
          static_cast<char>(bitmap_byte << (8 - bits_in_byte)));
    }
  }

  // MSB-first bit packing of the value symbols.
  uint32_t accumulator = 0;
  int bits_held = 0;
  const int level = series.level();
  for (const SymbolicSample& s : series) {
    if (s.symbol.is_gap()) continue;
    accumulator = (accumulator << level) | s.symbol.index();
    bits_held += level;
    while (bits_held >= 8) {
      bits_held -= 8;
      out.push_back(static_cast<char>((accumulator >> bits_held) & 0xff));
    }
  }
  if (bits_held > 0) {
    out.push_back(
        static_cast<char>((accumulator << (8 - bits_held)) & 0xff));
  }
  return out;
}

Result<SymbolicSeries> UnpackSymbolicSeries(const std::string& blob) {
  if (blob.size() < kHeaderBytes) {
    return InvalidArgumentError("blob shorter than header");
  }
  if (std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return InvalidArgumentError("bad magic");
  }
  uint8_t version = static_cast<uint8_t>(blob[4]);
  if (version != kVersionGapless && version != kVersionWithGaps) {
    return UnimplementedError("unsupported version " +
                              std::to_string(version));
  }
  int level = static_cast<int>(static_cast<unsigned char>(blob[5]));
  if (level < 1 || level > kMaxSymbolLevel) {
    return InvalidArgumentError("level out of range");
  }
  size_t count = static_cast<size_t>(ReadLittleEndian(blob, 6, 4));
  Timestamp start = static_cast<Timestamp>(ReadLittleEndian(blob, 10, 8));
  int64_t step = static_cast<int64_t>(ReadLittleEndian(blob, 18, 8));
  if (count == 0) return InvalidArgumentError("empty payload");
  if (count > 1 && step <= 0) {
    return InvalidArgumentError("non-positive step");
  }
  // An adversarial (start, step, count) triple can push the last timestamp
  // past int64 — reject the blob instead of overflowing (UB) below.
  if (count > 1) {
    int64_t span = 0;
    int64_t last = 0;
    if (__builtin_mul_overflow(step, static_cast<int64_t>(count - 1), &span) ||
        __builtin_add_overflow(start, span, &last)) {
      return InvalidArgumentError("timestamp range overflows int64");
    }
  }
  // Version 2 carries a presence bitmap between the header and the payload;
  // decode it (and the gap count it implies) before sizing the payload.
  std::vector<bool> is_gap;
  size_t gaps = 0;
  size_t payload_start = kHeaderBytes;
  if (version == kVersionWithGaps) {
    const size_t bitmap_bytes = (count + 7) / 8;
    if (blob.size() < kHeaderBytes + bitmap_bytes) {
      return InvalidArgumentError("blob shorter than gap bitmap");
    }
    is_gap.resize(count);
    for (size_t i = 0; i < count; ++i) {
      const auto byte = static_cast<unsigned char>(
          blob[kHeaderBytes + i / 8]);
      const bool gap = ((byte >> (7 - i % 8)) & 1u) != 0;
      is_gap[i] = gap;
      gaps += gap ? 1 : 0;
    }
    // Trailing pad bits of the final bitmap byte must be zero — anything
    // else is a malformed (or ambiguous) encoding.
    if (count % 8 != 0) {
      const auto last = static_cast<unsigned char>(
          blob[kHeaderBytes + bitmap_bytes - 1]);
      if ((last & ((1u << (8 - count % 8)) - 1u)) != 0) {
        return InvalidArgumentError("nonzero padding in gap bitmap");
      }
    }
    if (gaps == 0) {
      // A gapless series packs as version 1; a version-2 blob claiming no
      // gaps is not something the encoder emits.
      return InvalidArgumentError("version 2 blob with empty gap bitmap");
    }
    payload_start = kHeaderBytes + bitmap_bytes;
  }
  size_t expected = version == kVersionWithGaps
                        ? PackedSizeBytesWithGaps(count, gaps, level)
                        : PackedSizeBytes(count, level);
  if (blob.size() != expected) {
    return InvalidArgumentError("payload size mismatch: have " +
                                std::to_string(blob.size()) + ", want " +
                                std::to_string(expected));
  }

  SymbolicSeries series(level);
  uint32_t accumulator = 0;
  int bits_held = 0;
  size_t byte_index = payload_start;
  const uint32_t mask = (1u << level) - 1;
  for (size_t i = 0; i < count; ++i) {
    const Timestamp ts = start + static_cast<int64_t>(i) * step;
    if (version == kVersionWithGaps && is_gap[i]) {
      SMETER_RETURN_IF_ERROR(series.Append({ts, Symbol::Gap(level)}));
      continue;
    }
    while (bits_held < level) {
      accumulator = (accumulator << 8) |
                    static_cast<unsigned char>(blob[byte_index++]);
      bits_held += 8;
    }
    uint32_t index = (accumulator >> (bits_held - level)) & mask;
    bits_held -= level;
    Result<Symbol> symbol = Symbol::Create(level, index);
    if (!symbol.ok()) return symbol.status();
    SMETER_RETURN_IF_ERROR(series.Append({ts, symbol.value()}));
  }
  return series;
}

}  // namespace smeter
