// Horizontal segmentation (Definition 3): TimeSeries -> SymbolicSeries
// through a LookupTable, and the inverse decoding through the table's
// reconstruction values.
//
// Encode/Decode are thin wrappers over the SoA batch kernels in
// core/batch_encoder.h (gather the value column, EncodeBatch, zip the
// timestamps back); call the kernels directly when the data is already a
// flat array. For many households at once, see core/fleet_encoder.h.
//
// The full paper pipeline "vertical then horizontal" is provided as
// EncodePipeline for convenience; it is exactly
// Encode(VerticalSegmentByWindow(...)).

#ifndef SMETER_CORE_ENCODER_H_
#define SMETER_CORE_ENCODER_H_

#include "common/status.h"
#include "core/lookup_table.h"
#include "core/symbolic_series.h"
#include "core/time_series.h"
#include "core/vertical.h"

namespace smeter {

// Encodes every sample of `series` with `table` at the table's finest level
// (H(S, L) of Definition 3).
Result<SymbolicSeries> Encode(const TimeSeries& series,
                              const LookupTable& table);

// Encodes at a coarser `level` (<= table.level()).
Result<SymbolicSeries> EncodeAtLevel(const TimeSeries& series,
                                     const LookupTable& table, int level);

// Decodes a symbolic series back to real values using `mode`. Symbols must
// not be finer than the table.
Result<TimeSeries> Decode(const SymbolicSeries& series,
                          const LookupTable& table, ReconstructionMode mode);

struct PipelineOptions {
  // Vertical segmentation window; the paper uses 900 (15 min) and 3600 (1 h).
  int64_t window_seconds = 900;
  WindowOptions window;
};

// Vertical then horizontal segmentation in one call.
Result<SymbolicSeries> EncodePipeline(const TimeSeries& raw,
                                      const LookupTable& table,
                                      const PipelineOptions& options);

}  // namespace smeter

#endif  // SMETER_CORE_ENCODER_H_
