// Horizontal segmentation (Definition 3): TimeSeries -> SymbolicSeries
// through a LookupTable, and the inverse decoding through the table's
// reconstruction values.
//
// Encode/Decode are thin wrappers over the SoA batch kernels in
// core/batch_encoder.h (gather the value column, EncodeBatch, zip the
// timestamps back); call the kernels directly when the data is already a
// flat array. For many households at once, see core/fleet_encoder.h.
//
// The full paper pipeline "vertical then horizontal" is provided as
// EncodePipeline for convenience; it is exactly
// Encode(VerticalSegmentByWindow(...)).

#ifndef SMETER_CORE_ENCODER_H_
#define SMETER_CORE_ENCODER_H_

#include "common/status.h"
#include "core/lookup_table.h"
#include "core/symbolic_series.h"
#include "core/time_series.h"
#include "core/vertical.h"

namespace smeter {

// Encodes every sample of `series` with `table` at the table's finest level
// (H(S, L) of Definition 3).
Result<SymbolicSeries> Encode(const TimeSeries& series,
                              const LookupTable& table);

// Encodes at a coarser `level` (<= table.level()).
Result<SymbolicSeries> EncodeAtLevel(const TimeSeries& series,
                                     const LookupTable& table, int level);

// Decodes a symbolic series back to real values using `mode`. Symbols must
// not be finer than the table. GAP symbols produce no output sample — the
// reconstructed series simply has a hole at that timestamp, which is the
// honest inverse of a missing window.
Result<TimeSeries> Decode(const SymbolicSeries& series,
                          const LookupTable& table, ReconstructionMode mode);

struct PipelineOptions {
  // Vertical segmentation window; the paper uses 900 (15 min) and 3600 (1 h).
  int64_t window_seconds = 900;
  WindowOptions window;
};

// Vertical then horizontal segmentation in one call.
Result<SymbolicSeries> EncodePipeline(const TimeSeries& raw,
                                      const LookupTable& table,
                                      const PipelineOptions& options);

// Per-trace data-quality summary of a gap-aware encode.
struct EncodeQuality {
  size_t windows_valid = 0;
  size_t windows_partial = 0;  // aggregated below min_coverage
  size_t windows_gap = 0;      // no readings; encoded as GAP symbols
  size_t windows_total() const {
    return windows_valid + windows_partial + windows_gap;
  }
  // Fraction of windows with no data (0 for an empty trace).
  double gap_ratio() const {
    const size_t total = windows_total();
    return total == 0 ? 0.0
                      : static_cast<double>(windows_gap) /
                            static_cast<double>(total);
  }
};

struct QualityEncoding {
  SymbolicSeries symbols;
  EncodeQuality quality;
};

// Gap-aware pipeline: vertical segmentation that keeps every aligned
// window (missing ones become GAP symbols, under-covered ones are encoded
// but counted as partial), then horizontal segmentation. The output always
// has a fixed window cadence, so it packs into one wire blob even when the
// raw trace has outages. Identical to EncodePipeline on a gapless,
// fully-covered trace.
Result<QualityEncoding> EncodePipelineWithGaps(const TimeSeries& raw,
                                               const LookupTable& table,
                                               const PipelineOptions& options);

}  // namespace smeter

#endif  // SMETER_CORE_ENCODER_H_
