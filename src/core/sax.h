// Classic SAX (Lin et al., DMKD 2007) — the closest prior approach, used
// here as a baseline and ablation reference.
//
// SAX z-normalizes the series, applies Piecewise Aggregate Approximation
// (PAA, the analogue of vertical segmentation), and discretizes with
// breakpoints from the *Gaussian* quantile table. The paper argues both
// choices are wrong for smart-meter data: the distribution is log-normal,
// and per-house normalization erases consumption magnitude (Figure 3).
// Implementing SAX faithfully lets the benches demonstrate exactly that.

#ifndef SMETER_CORE_SAX_H_
#define SMETER_CORE_SAX_H_

#include <vector>

#include "common/status.h"
#include "core/symbolic_series.h"
#include "core/time_series.h"

namespace smeter {

struct SaxOptions {
  // Alphabet size 2^level (SAX allows any size; we restrict to powers of
  // two so SAX words are comparable with the paper's binary symbols).
  int level = 4;
  // Number of raw samples averaged per PAA frame.
  size_t paa_frame = 900;
  // If false, skip z-normalization (for the Figure-3 ablation).
  bool normalize = true;
};

// Gaussian breakpoints beta_1..beta_{a-1} splitting N(0,1) into `a`
// equiprobable regions (see common/normal.h for the inverse CDF used).
// Errors for a < 2.
Result<std::vector<double>> GaussianBreakpoints(int a);

// Encodes `series` as a SAX word. The output timestamps are the last raw
// timestamp of each PAA frame (matching VerticalSegmentByCount). A trailing
// partial frame is dropped. Errors on empty input, a constant series with
// normalize=true (zero variance), or a bad level.
Result<SymbolicSeries> SaxEncode(const TimeSeries& series,
                                 const SaxOptions& options);

// MINDIST lower-bounding distance between two equal-length SAX words
// produced with the same options (Lin et al., Eq. 6). `original_length` is
// the pre-PAA length n.
Result<double> SaxMinDist(const SymbolicSeries& a, const SymbolicSeries& b,
                          size_t original_length);

}  // namespace smeter

#endif  // SMETER_CORE_SAX_H_
