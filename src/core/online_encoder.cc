#include "core/online_encoder.h"

#include <algorithm>
#include <cmath>

namespace smeter {

Result<OnlineEncoder> OnlineEncoder::Create(
    const OnlineEncoderOptions& options) {
  if (options.level < 1 || options.level > kMaxSymbolLevel) {
    return InvalidArgumentError("level out of range");
  }
  if (options.warmup_seconds <= 0) {
    return InvalidArgumentError("warmup_seconds must be > 0");
  }
  if (options.window_seconds <= 0) {
    return InvalidArgumentError("window_seconds must be > 0");
  }
  if (options.window.sample_period_seconds <= 0) {
    return InvalidArgumentError("sample_period_seconds must be > 0");
  }
  if (options.warmup_seconds < options.window_seconds) {
    return InvalidArgumentError("warm-up shorter than one window");
  }
  if (options.drift.has_value() && options.rebuild_history_windows == 0) {
    return InvalidArgumentError("rebuild_history_windows must be > 0");
  }
  return OnlineEncoder(options);
}

OnlineEncoder::OnlineEncoder(const OnlineEncoderOptions& options)
    : options_(options) {}

Result<std::vector<EncoderEvent>> OnlineEncoder::Push(Sample sample) {
  if (!std::isfinite(sample.value)) {
    return InvalidArgumentError("non-finite value");
  }
  if (first_timestamp_.has_value() && sample.timestamp < last_timestamp_) {
    return InvalidArgumentError("timestamp regresses");
  }
  if (!first_timestamp_.has_value()) first_timestamp_ = sample.timestamp;
  last_timestamp_ = sample.timestamp;

  std::vector<EncoderEvent> events;

  // Aligned window for this sample (floor division, negative-safe).
  Timestamp ws = sample.timestamp / options_.window_seconds *
                 options_.window_seconds;
  if (ws > sample.timestamp) ws -= options_.window_seconds;

  if (have_window_ && ws != window_start_) {
    SMETER_RETURN_IF_ERROR(SettleWindow(events));
  }
  if (!have_window_ || ws != window_start_) {
    have_window_ = true;
    window_start_ = ws;
    window_count_ = 0;
    window_sum_ = 0.0;
  }
  if (window_count_ == 0) {
    window_min_ = sample.value;
    window_max_ = sample.value;
  } else {
    window_min_ = std::min(window_min_, sample.value);
    window_max_ = std::max(window_max_, sample.value);
  }
  ++window_count_;
  window_sum_ += sample.value;
  return events;
}

Result<std::vector<EncoderEvent>> OnlineEncoder::Flush() {
  std::vector<EncoderEvent> events;
  if (have_window_) {
    SMETER_RETURN_IF_ERROR(SettleWindow(events));
    have_window_ = false;
  }
  return events;
}

Status OnlineEncoder::SettleWindow(std::vector<EncoderEvent>& events) {
  if (window_count_ == 0) return Status::Ok();
  const double expected =
      static_cast<double>(options_.window_seconds) /
      static_cast<double>(options_.window.sample_period_seconds);
  double coverage = static_cast<double>(window_count_) / expected;
  if (coverage + 1e-12 < options_.window.min_coverage) {
    window_count_ = 0;
    window_sum_ = 0.0;
    return Status::Ok();
  }
  double value = 0.0;
  switch (options_.window.aggregation) {
    case Aggregation::kMean:
      value = window_sum_ / static_cast<double>(window_count_);
      break;
    case Aggregation::kSum:
      value = window_sum_;
      break;
    case Aggregation::kMin:
      value = window_min_;
      break;
    case Aggregation::kMax:
      value = window_max_;
      break;
  }
  window_count_ = 0;
  window_sum_ = 0.0;
  return EmitAggregate(window_start_ + options_.window_seconds, value, events);
}

Status OnlineEncoder::EmitAggregate(Timestamp window_end, double value,
                                    std::vector<EncoderEvent>& events) {
  history_.push_back(value);
  while (history_.size() > options_.rebuild_history_windows) {
    history_.pop_front();
  }

  if (!table_.has_value()) {
    // A window belongs to the warm-up (historical) span iff it ends within
    // it. Warm-up completes once a window reaches the span's end.
    if (window_end - *first_timestamp_ <= options_.warmup_seconds) {
      warmup_aggregates_.push_back(value);
      if (window_end - *first_timestamp_ >= options_.warmup_seconds) {
        SMETER_RETURN_IF_ERROR(BuildTable(warmup_aggregates_, events));
        warmup_aggregates_.clear();
      }
      return Status::Ok();
    }
    // A gap spanned the warm-up boundary: the span elapsed without a
    // window landing exactly on it. Train on what warm-up collected and
    // fall through to encode this aggregate as the first symbol.
    if (warmup_aggregates_.empty()) {
      return FailedPreconditionError(
          "warm-up span contained no aggregated data");
    }
    SMETER_RETURN_IF_ERROR(BuildTable(warmup_aggregates_, events));
    warmup_aggregates_.clear();
  }

  Symbol symbol = table_->Encode(value);
  EncoderEvent ev;
  ev.type = EncoderEvent::Type::kSymbol;
  ev.table_version = table_version_;
  ev.symbol = {window_end, symbol};
  events.push_back(ev);

  if (drift_.has_value()) {
    drift_->Observe(symbol.index());
    if (drift_->DriftDetected()) {
      std::vector<double> training(history_.begin(), history_.end());
      SMETER_RETURN_IF_ERROR(BuildTable(training, events));
    }
  }
  return Status::Ok();
}

Status OnlineEncoder::BuildTable(const std::vector<double>& training,
                                 std::vector<EncoderEvent>& events) {
  LookupTableOptions table_options;
  table_options.method = options_.method;
  table_options.level = options_.level;
  Result<LookupTable> table = LookupTable::Build(training, table_options);
  if (!table.ok()) return table.status();
  table_ = std::move(table.value());
  ++table_version_;

  if (options_.drift.has_value()) {
    if (drift_.has_value()) {
      SMETER_RETURN_IF_ERROR(drift_->Rebase(table_->bucket_counts()));
    } else {
      Result<DriftDetector> detector =
          DriftDetector::Create(table_->bucket_counts(), *options_.drift);
      if (!detector.ok()) return detector.status();
      drift_ = std::move(detector.value());
    }
  }

  EncoderEvent ev;
  ev.type = EncoderEvent::Type::kTableReady;
  ev.table_version = table_version_;
  events.push_back(ev);
  return Status::Ok();
}

}  // namespace smeter
