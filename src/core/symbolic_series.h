// A symbolic time series: the output of horizontal segmentation.
//
// Every symbol in one series has the same resolution (level); Section 2
// fixes both the temporal window and the alphabet per stream precisely so
// that downstream algorithms see a uniform representation. Down-conversion
// to a coarser resolution is lossless-by-construction (Section 4).

#ifndef SMETER_CORE_SYMBOLIC_SERIES_H_
#define SMETER_CORE_SYMBOLIC_SERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "core/symbol.h"
#include "core/time_series.h"

namespace smeter {

// One encoded measurement: the paper's \hat{s}_i = (t_i, \hat{v}_i).
struct SymbolicSample {
  Timestamp timestamp = 0;
  Symbol symbol;

  friend bool operator==(const SymbolicSample& a, const SymbolicSample& b) {
    return a.timestamp == b.timestamp && a.symbol == b.symbol;
  }
};

class SymbolicSeries {
 public:
  // An empty series at the given resolution.
  explicit SymbolicSeries(int level = 1) : level_(level) {}

  // Bulk construction: validates the invariants (every symbol at `level`,
  // timestamps non-decreasing) in one pass instead of per-Append, then
  // adopts the vector. This is the batch-encoder path; it avoids both the
  // per-sample Status plumbing and the push_back reallocation churn.
  static Result<SymbolicSeries> FromSamples(
      int level, std::vector<SymbolicSample> samples);

  // Appends a sample; the symbol's level must match the series' level and
  // timestamps must be non-decreasing.
  Status Append(SymbolicSample sample);

  // Pre-allocates capacity for `n` samples (Append still validates each).
  void Reserve(size_t n) { samples_.reserve(n); }

  int level() const { return level_; }
  bool empty() const { return samples_.empty(); }
  size_t size() const { return samples_.size(); }
  const SymbolicSample& operator[](size_t i) const {
    SMETER_DCHECK_LT(i, samples_.size());
    return samples_[i];
  }
  const std::vector<SymbolicSample>& samples() const { return samples_; }

  std::vector<SymbolicSample>::const_iterator begin() const {
    return samples_.begin();
  }
  std::vector<SymbolicSample>::const_iterator end() const {
    return samples_.end();
  }

  // Returns the sub-series with timestamps in [range.begin, range.end).
  SymbolicSeries Slice(const TimeRange& range) const;

  // Returns the same series at a coarser resolution (each symbol's bit
  // string truncated). Errors if `level` > level().
  Result<SymbolicSeries> Coarsen(int level) const;

  // Renders the series as a string of bit groups, e.g. "010 110 001"
  // (GAP symbols render as underscores).
  std::string ToBitString() const;

  // Per-symbol-index occurrence counts (size 2^level). GAP symbols are not
  // part of the value alphabet and are excluded; see GapCount().
  std::vector<size_t> Histogram() const;

  // Number of GAP (missing-window) symbols in the series.
  size_t GapCount() const;

 private:
  int level_;
  std::vector<SymbolicSample> samples_;
};

}  // namespace smeter

#endif  // SMETER_CORE_SYMBOLIC_SERIES_H_
