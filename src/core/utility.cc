#include "core/utility.h"

#include <algorithm>
#include <cmath>

#include "core/quantile.h"

namespace smeter {

Result<std::vector<double>> LloydMaxSeparators(
    const std::vector<double>& training, const LloydMaxOptions& options) {
  if (options.level < 1 || options.level > kMaxSymbolLevel) {
    return InvalidArgumentError("level out of range");
  }
  if (training.empty()) {
    return FailedPreconditionError("Lloyd-Max needs training data");
  }
  const size_t k = size_t{1} << options.level;

  std::vector<double> sorted = training;
  std::sort(sorted.begin(), sorted.end());
  const double range = sorted.back() - sorted.front();
  if (range <= 0.0) {
    // Degenerate constant data: all separators collapse onto the value.
    return std::vector<double>(k - 1, sorted.front());
  }

  // Initialize with the equal-frequency separators.
  Result<std::vector<double>> init =
      EqualFrequencySeparators(sorted, k - 1);
  if (!init.ok()) return init.status();
  std::vector<double> separators = std::move(init.value());

  // Prefix sums over the sorted data for O(1) range centroids.
  std::vector<double> prefix(sorted.size() + 1, 0.0);
  for (size_t i = 0; i < sorted.size(); ++i) {
    prefix[i + 1] = prefix[i] + sorted[i];
  }

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // (a) Representatives: centroid of each bucket's training mass
    // (buckets follow Definition 3: value <= separator).
    std::vector<double> representatives(k, 0.0);
    size_t begin = 0;
    for (size_t bucket = 0; bucket < k; ++bucket) {
      size_t end =
          bucket + 1 < k
              ? static_cast<size_t>(
                    std::upper_bound(sorted.begin(), sorted.end(),
                                     separators[bucket]) -
                    sorted.begin())
              : sorted.size();
      if (end > begin) {
        representatives[bucket] =
            (prefix[end] - prefix[begin]) / static_cast<double>(end - begin);
      } else {
        // Empty bucket: place its representative between its neighbours'
        // boundary values so it can attract mass next iteration.
        double lo = bucket == 0 ? sorted.front() : separators[bucket - 1];
        double hi = bucket + 1 == k ? sorted.back() : separators[bucket];
        representatives[bucket] = 0.5 * (lo + hi);
      }
      begin = end;
    }

    // (b) Separators: midpoints of adjacent representatives.
    double max_move = 0.0;
    for (size_t i = 0; i + 1 < k; ++i) {
      double updated = 0.5 * (representatives[i] + representatives[i + 1]);
      max_move = std::max(max_move, std::abs(updated - separators[i]));
      separators[i] = updated;
    }
    // Keep the separator sequence sorted (guards degenerate oscillation).
    std::sort(separators.begin(), separators.end());
    if (max_move <= options.tolerance * range) break;
  }
  return separators;
}

Result<LookupTable> BuildLloydMaxTable(const std::vector<double>& training,
                                       const LloydMaxOptions& options) {
  Result<std::vector<double>> separators =
      LloydMaxSeparators(training, options);
  if (!separators.ok()) return separators.status();
  auto [min_it, max_it] =
      std::minmax_element(training.begin(), training.end());
  Result<LookupTable> table = LookupTable::FromSeparators(
      std::move(separators.value()), *min_it, *max_it);
  if (!table.ok()) return table.status();
  // Reconstruct-with-kRangeMean needs the per-bucket training statistics.
  SMETER_RETURN_IF_ERROR(table->AttachTrainingData(training));
  return table;
}

Result<double> MeanSquaredDistortion(const LookupTable& table,
                                     const std::vector<double>& values,
                                     ReconstructionMode mode) {
  if (values.empty()) return FailedPreconditionError("no values");
  double sum = 0.0;
  for (double v : values) {
    Result<double> decoded = table.Reconstruct(table.Encode(v), mode);
    if (!decoded.ok()) return decoded.status();
    double d = v - decoded.value();
    sum += d * d;
  }
  return sum / static_cast<double>(values.size());
}

}  // namespace smeter
