#include "core/vertical.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace smeter {
namespace {

// Incrementally combines values under one aggregation mode.
class Accumulator {
 public:
  explicit Accumulator(Aggregation mode) : mode_(mode) { Reset(); }

  void Reset() {
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
  }

  void Add(double v) {
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  size_t count() const { return count_; }

  double Value() const {
    // Contract: an empty window has no aggregate (mean would be 0/0, min
    // and max would be infinities that Append then rejects confusingly).
    SMETER_DCHECK_GT(count_, 0u);
    switch (mode_) {
      case Aggregation::kMean:
        return sum_ / static_cast<double>(count_);
      case Aggregation::kSum:
        return sum_;
      case Aggregation::kMin:
        return min_;
      case Aggregation::kMax:
        return max_;
    }
    return sum_;
  }

 private:
  Aggregation mode_;
  size_t count_;
  double sum_;
  double min_;
  double max_;
};

}  // namespace

Result<TimeSeries> VerticalSegmentByCount(const TimeSeries& series, size_t n,
                                          const VerticalOptions& options) {
  if (n == 0) return InvalidArgumentError("aggregation count n must be > 0");
  TimeSeries out;
  Accumulator acc(options.aggregation);
  for (size_t i = 0; i < series.size(); ++i) {
    acc.Add(series[i].value);
    if (acc.count() == n) {
      // Definition 2 stamps the aggregate with the last raw timestamp.
      SMETER_RETURN_IF_ERROR(out.Append({series[i].timestamp, acc.Value()}));
      acc.Reset();
    }
  }
  return out;
}

Result<TimeSeries> VerticalSegmentByWindow(const TimeSeries& series,
                                           int64_t window_seconds,
                                           const WindowOptions& options) {
  if (window_seconds <= 0) {
    return InvalidArgumentError("window_seconds must be > 0");
  }
  if (options.sample_period_seconds <= 0) {
    return InvalidArgumentError("sample_period_seconds must be > 0");
  }
  if (options.min_coverage < 0.0 || options.min_coverage > 1.0) {
    return InvalidArgumentError("min_coverage must be in [0, 1]");
  }
  const double expected =
      static_cast<double>(window_seconds) /
      static_cast<double>(options.sample_period_seconds);

  TimeSeries out;
  Accumulator acc(options.aggregation);
  bool have_window = false;
  Timestamp window_start = 0;

  auto flush = [&]() -> Status {
    if (!have_window || acc.count() == 0) return Status::Ok();
    double coverage = static_cast<double>(acc.count()) / expected;
    if (coverage + 1e-12 >= options.min_coverage) {
      SMETER_RETURN_IF_ERROR(
          out.Append({window_start + window_seconds, acc.Value()}));
    }
    acc.Reset();
    return Status::Ok();
  };

  for (const Sample& s : series) {
    // Align windows to multiples of window_seconds (floor division for
    // possibly-negative timestamps).
    Timestamp ws = s.timestamp / window_seconds * window_seconds;
    if (ws > s.timestamp) ws -= window_seconds;
    if (!have_window || ws != window_start) {
      SMETER_RETURN_IF_ERROR(flush());
      window_start = ws;
      have_window = true;
    }
    acc.Add(s.value);
  }
  SMETER_RETURN_IF_ERROR(flush());
  return out;
}

Result<std::vector<AggregatedWindow>> VerticalSegmentByWindowWithGaps(
    const TimeSeries& series, int64_t window_seconds,
    const GapAwareWindowOptions& options) {
  if (window_seconds <= 0) {
    return InvalidArgumentError("window_seconds must be > 0");
  }
  if (options.window.sample_period_seconds <= 0) {
    return InvalidArgumentError("sample_period_seconds must be > 0");
  }
  if (options.window.min_coverage < 0.0 || options.window.min_coverage > 1.0) {
    return InvalidArgumentError("min_coverage must be in [0, 1]");
  }
  std::vector<AggregatedWindow> out;
  if (series.empty()) return out;

  const auto align = [window_seconds](Timestamp t) {
    Timestamp ws = t / window_seconds * window_seconds;
    if (ws > t) ws -= window_seconds;
    return ws;
  };
  const Timestamp first_window = align(series.front().timestamp);
  const Timestamp last_window = align(series.back().timestamp);
  // Windows from first to last inclusive; the subtraction cannot overflow
  // for any series a TimeSeries can hold (timestamps non-decreasing), but
  // the count can still be astronomically large for sparse traces.
  const uint64_t num_windows =
      static_cast<uint64_t>(last_window - first_window) /
          static_cast<uint64_t>(window_seconds) +
      1;
  if (num_windows > options.max_windows) {
    return InvalidArgumentError(
        "gap-aware segmentation would emit " + std::to_string(num_windows) +
        " windows (max " + std::to_string(options.max_windows) +
        "); the trace is too sparse for this window size");
  }
  out.reserve(static_cast<size_t>(num_windows));

  const double expected =
      static_cast<double>(window_seconds) /
      static_cast<double>(options.window.sample_period_seconds);
  Accumulator acc(options.window.aggregation);
  Timestamp window_start = first_window;

  auto flush = [&]() {
    AggregatedWindow w;
    w.timestamp = window_start + window_seconds;
    w.coverage = static_cast<double>(acc.count()) / expected;
    if (acc.count() == 0) {
      w.quality = WindowQuality::kGap;
      w.value = std::numeric_limits<double>::quiet_NaN();
    } else {
      w.quality = (w.coverage + 1e-12 >= options.window.min_coverage)
                      ? WindowQuality::kValid
                      : WindowQuality::kPartial;
      w.value = acc.Value();
    }
    out.push_back(w);
    acc.Reset();
  };

  for (const Sample& s : series) {
    const Timestamp ws = align(s.timestamp);
    // Emit every window up to the sample's, the intervening ones as gaps.
    while (window_start < ws) {
      flush();
      window_start += window_seconds;
    }
    acc.Add(s.value);
  }
  flush();
  return out;
}

}  // namespace smeter
