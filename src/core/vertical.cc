#include "core/vertical.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace smeter {
namespace {

// Incrementally combines values under one aggregation mode.
class Accumulator {
 public:
  explicit Accumulator(Aggregation mode) : mode_(mode) { Reset(); }

  void Reset() {
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
  }

  void Add(double v) {
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  size_t count() const { return count_; }

  double Value() const {
    // Contract: an empty window has no aggregate (mean would be 0/0, min
    // and max would be infinities that Append then rejects confusingly).
    SMETER_DCHECK_GT(count_, 0u);
    switch (mode_) {
      case Aggregation::kMean:
        return sum_ / static_cast<double>(count_);
      case Aggregation::kSum:
        return sum_;
      case Aggregation::kMin:
        return min_;
      case Aggregation::kMax:
        return max_;
    }
    return sum_;
  }

 private:
  Aggregation mode_;
  size_t count_;
  double sum_;
  double min_;
  double max_;
};

}  // namespace

Result<TimeSeries> VerticalSegmentByCount(const TimeSeries& series, size_t n,
                                          const VerticalOptions& options) {
  if (n == 0) return InvalidArgumentError("aggregation count n must be > 0");
  TimeSeries out;
  Accumulator acc(options.aggregation);
  for (size_t i = 0; i < series.size(); ++i) {
    acc.Add(series[i].value);
    if (acc.count() == n) {
      // Definition 2 stamps the aggregate with the last raw timestamp.
      SMETER_RETURN_IF_ERROR(out.Append({series[i].timestamp, acc.Value()}));
      acc.Reset();
    }
  }
  return out;
}

Result<TimeSeries> VerticalSegmentByWindow(const TimeSeries& series,
                                           int64_t window_seconds,
                                           const WindowOptions& options) {
  if (window_seconds <= 0) {
    return InvalidArgumentError("window_seconds must be > 0");
  }
  if (options.sample_period_seconds <= 0) {
    return InvalidArgumentError("sample_period_seconds must be > 0");
  }
  if (options.min_coverage < 0.0 || options.min_coverage > 1.0) {
    return InvalidArgumentError("min_coverage must be in [0, 1]");
  }
  const double expected =
      static_cast<double>(window_seconds) /
      static_cast<double>(options.sample_period_seconds);

  TimeSeries out;
  Accumulator acc(options.aggregation);
  bool have_window = false;
  Timestamp window_start = 0;

  auto flush = [&]() -> Status {
    if (!have_window || acc.count() == 0) return Status::Ok();
    double coverage = static_cast<double>(acc.count()) / expected;
    if (coverage + 1e-12 >= options.min_coverage) {
      SMETER_RETURN_IF_ERROR(
          out.Append({window_start + window_seconds, acc.Value()}));
    }
    acc.Reset();
    return Status::Ok();
  };

  for (const Sample& s : series) {
    // Align windows to multiples of window_seconds (floor division for
    // possibly-negative timestamps).
    Timestamp ws = s.timestamp / window_seconds * window_seconds;
    if (ws > s.timestamp) ws -= window_seconds;
    if (!have_window || ws != window_start) {
      SMETER_RETURN_IF_ERROR(flush());
      window_start = ws;
      have_window = true;
    }
    acc.Add(s.value);
  }
  SMETER_RETURN_IF_ERROR(flush());
  return out;
}

}  // namespace smeter
