#include "core/symbolic_index.h"

#include <algorithm>
#include <cmath>

namespace smeter {

Result<double> SymbolRangeGap(const Symbol& a, const Symbol& b,
                              const LookupTable& table) {
  Result<double> a_lo = table.RangeLow(a);
  if (!a_lo.ok()) return a_lo.status();
  Result<double> a_hi = table.RangeHigh(a);
  if (!a_hi.ok()) return a_hi.status();
  Result<double> b_lo = table.RangeLow(b);
  if (!b_lo.ok()) return b_lo.status();
  Result<double> b_hi = table.RangeHigh(b);
  if (!b_hi.ok()) return b_hi.status();
  if (*b_lo > *a_hi) return *b_lo - *a_hi;
  if (*a_lo > *b_hi) return *a_lo - *b_hi;
  return 0.0;
}

Result<double> WordLowerBoundDistance(const std::vector<Symbol>& a,
                                      const std::vector<Symbol>& b,
                                      const LookupTable& table) {
  if (a.size() != b.size()) {
    return InvalidArgumentError("word lengths differ");
  }
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    Result<double> gap = SymbolRangeGap(a[i], b[i], table);
    if (!gap.ok()) return gap.status();
    sum += gap.value() * gap.value();
  }
  return std::sqrt(sum);
}

Result<SymbolicIndex> SymbolicIndex::Create(LookupTable table,
                                            size_t word_length,
                                            const Options& options) {
  if (word_length == 0) {
    return InvalidArgumentError("word_length must be > 0");
  }
  if (options.prune_level < 1 || options.prune_level > table.level()) {
    return InvalidArgumentError("prune_level outside table levels");
  }
  return SymbolicIndex(std::move(table), word_length, options);
}

Status SymbolicIndex::ValidateWord(const std::vector<Symbol>& word) const {
  if (word.size() != word_length_) {
    return InvalidArgumentError("word length " + std::to_string(word.size()) +
                                " != " + std::to_string(word_length_));
  }
  for (const Symbol& s : word) {
    if (s.level() != table_.level()) {
      return InvalidArgumentError("word symbols must be finest-level");
    }
  }
  return Status::Ok();
}

std::vector<uint32_t> SymbolicIndex::CoarseSignature(
    const std::vector<Symbol>& word) const {
  std::vector<uint32_t> signature;
  signature.reserve(word.size());
  for (const Symbol& s : word) {
    signature.push_back(s.Coarsen(options_.prune_level).value().index());  // lint: checked: words are validated finest-level
  }
  return signature;
}

Status SymbolicIndex::Insert(uint64_t id, std::vector<Symbol> word) {
  SMETER_RETURN_IF_ERROR(ValidateWord(word));
  if (words_.count(id) > 0) {
    return InvalidArgumentError("duplicate id " + std::to_string(id));
  }
  buckets_[CoarseSignature(word)].push_back(id);
  words_.emplace(id, std::move(word));
  return Status::Ok();
}

Status SymbolicIndex::InsertValues(uint64_t id,
                                   const std::vector<double>& values) {
  std::vector<Symbol> word;
  word.reserve(values.size());
  for (double v : values) word.push_back(table_.Encode(v));
  return Insert(id, std::move(word));
}

Result<std::vector<IndexMatch>> SymbolicIndex::NearestNeighbors(
    const std::vector<Symbol>& query, size_t k) const {
  SMETER_RETURN_IF_ERROR(ValidateWord(query));
  if (k == 0) return InvalidArgumentError("k must be > 0");

  // The query's coarse word, reused for every bucket bound.
  std::vector<Symbol> coarse_query;
  coarse_query.reserve(query.size());
  for (const Symbol& s : query) {
    coarse_query.push_back(s.Coarsen(options_.prune_level).value());
  }

  std::vector<IndexMatch> best;  // kept sorted ascending, size <= k
  last_buckets_examined_ = 0;
  for (const auto& [signature, ids] : buckets_) {
    // Bucket-level lower bound from the coarse signature.
    double bucket_bound_sq = 0.0;
    for (size_t i = 0; i < signature.size(); ++i) {
      Symbol coarse =
          Symbol::Create(options_.prune_level, signature[i]).value();  // lint: checked: query validated finest-level
      Result<double> gap = SymbolRangeGap(coarse_query[i], coarse, table_);
      if (!gap.ok()) return gap.status();
      bucket_bound_sq += gap.value() * gap.value();
    }
    double bucket_bound = std::sqrt(bucket_bound_sq);
    if (best.size() == k && bucket_bound > best.back().distance) {
      continue;  // no member can beat the current k-th best
    }
    ++last_buckets_examined_;

    for (uint64_t id : ids) {
      Result<double> distance =
          WordLowerBoundDistance(query, words_.at(id), table_);
      if (!distance.ok()) return distance.status();
      IndexMatch match{id, distance.value()};
      auto pos = std::upper_bound(
          best.begin(), best.end(), match, [](const IndexMatch& a,
                                              const IndexMatch& b) {
            if (a.distance != b.distance) return a.distance < b.distance;
            return a.id < b.id;
          });
      best.insert(pos, match);
      if (best.size() > k) best.pop_back();
    }
  }
  return best;
}

Result<std::vector<IndexMatch>> SymbolicIndex::NearestNeighborsValues(
    const std::vector<double>& query_values, size_t k) const {
  std::vector<Symbol> query;
  query.reserve(query_values.size());
  for (double v : query_values) query.push_back(table_.Encode(v));
  return NearestNeighbors(query, k);
}

Result<std::vector<IndexMatch>> SymbolicIndex::RangeQuery(
    const std::vector<Symbol>& query, double radius) const {
  SMETER_RETURN_IF_ERROR(ValidateWord(query));
  if (radius < 0.0) return InvalidArgumentError("radius must be >= 0");
  std::vector<IndexMatch> matches;
  for (const auto& [id, word] : words_) {
    Result<double> distance = WordLowerBoundDistance(query, word, table_);
    if (!distance.ok()) return distance.status();
    if (distance.value() <= radius) {
      matches.push_back({id, distance.value()});
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const IndexMatch& a, const IndexMatch& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  return matches;
}

}  // namespace smeter
