// Reconstruction-quality metrics: how much information the symbolization
// loses, measured as MAE / RMSE / MAPE between a real-valued series and the
// decoded symbolic series over matching timestamps.

#ifndef SMETER_CORE_RECONSTRUCTION_H_
#define SMETER_CORE_RECONSTRUCTION_H_

#include "common/status.h"
#include "core/lookup_table.h"
#include "core/symbolic_series.h"
#include "core/time_series.h"

namespace smeter {

struct ReconstructionError {
  double mae = 0.0;   // mean absolute error
  double rmse = 0.0;  // root mean squared error
  double max_abs = 0.0;
  size_t count = 0;
};

// Compares two real-valued series sample-by-sample. Series must have equal
// length and matching timestamps.
Result<ReconstructionError> CompareSeries(const TimeSeries& reference,
                                          const TimeSeries& reconstructed);

// Encodes `reference` with `table`, decodes with `mode`, and reports the
// round-trip error. This is the per-(method, k) loss an operator would
// consult before picking an alphabet size.
Result<ReconstructionError> RoundTripError(const TimeSeries& reference,
                                           const LookupTable& table,
                                           ReconstructionMode mode);

// Mean absolute error between aligned value vectors (used by the
// forecasting benches). Errors on size mismatch or empty input.
Result<double> MeanAbsoluteError(const std::vector<double>& truth,
                                 const std::vector<double>& predicted);

}  // namespace smeter

#endif  // SMETER_CORE_RECONSTRUCTION_H_
