#include "core/time_series.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace smeter {

Result<TimeSeries> TimeSeries::FromSamples(std::vector<Sample> samples) {
  for (size_t i = 0; i < samples.size(); ++i) {
    if (!std::isfinite(samples[i].value)) {
      return InvalidArgumentError("non-finite value at index " +
                                  std::to_string(i));
    }
    if (i > 0 && samples[i].timestamp < samples[i - 1].timestamp) {
      return InvalidArgumentError("timestamps regress at index " +
                                  std::to_string(i));
    }
  }
  TimeSeries series;
  series.samples_ = std::move(samples);
  return series;
}

TimeSeries TimeSeries::FromValues(const std::vector<double>& values,
                                  Timestamp start, int64_t step) {
  TimeSeries series;
  series.samples_.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    series.samples_.push_back(
        {start + static_cast<int64_t>(i) * step, values[i]});
  }
  return series;
}

Status TimeSeries::Append(Sample sample) {
  if (!std::isfinite(sample.value)) {
    return InvalidArgumentError("non-finite value");
  }
  if (!samples_.empty() && sample.timestamp < samples_.back().timestamp) {
    return InvalidArgumentError("timestamp regresses");
  }
  samples_.push_back(sample);
  return Status::Ok();
}

std::vector<double> TimeSeries::Values() const {
  std::vector<double> values;
  values.reserve(samples_.size());
  for (const Sample& s : samples_) values.push_back(s.value);
  return values;
}

TimeSeries TimeSeries::Slice(const TimeRange& range) const {
  auto lo = std::lower_bound(
      samples_.begin(), samples_.end(), range.begin,
      [](const Sample& s, Timestamp t) { return s.timestamp < t; });
  auto hi = std::lower_bound(
      lo, samples_.end(), range.end,
      [](const Sample& s, Timestamp t) { return s.timestamp < t; });
  TimeSeries out;
  out.samples_.assign(lo, hi);
  return out;
}

std::vector<TimeRange> TimeSeries::FindGaps(int64_t max_spacing) const {
  std::vector<TimeRange> gaps;
  for (size_t i = 1; i < samples_.size(); ++i) {
    int64_t spacing = samples_[i].timestamp - samples_[i - 1].timestamp;
    if (spacing > max_spacing) {
      gaps.push_back({samples_[i - 1].timestamp, samples_[i].timestamp});
    }
  }
  return gaps;
}

Result<double> TimeSeries::MinValue() const {
  if (samples_.empty()) return FailedPreconditionError("empty series");
  double m = samples_.front().value;
  for (const Sample& s : samples_) m = std::min(m, s.value);
  return m;
}

Result<double> TimeSeries::MaxValue() const {
  if (samples_.empty()) return FailedPreconditionError("empty series");
  double m = samples_.front().value;
  for (const Sample& s : samples_) m = std::max(m, s.value);
  return m;
}

Result<double> TimeSeries::MeanValue() const {
  if (samples_.empty()) return FailedPreconditionError("empty series");
  double sum = 0.0;
  for (const Sample& s : samples_) sum += s.value;
  return sum / static_cast<double>(samples_.size());
}

Result<TimeSeries> SumAligned(const TimeSeries& a, const TimeSeries& b) {
  if (a.size() != b.size()) {
    return InvalidArgumentError("series sizes differ: " +
                                std::to_string(a.size()) + " vs " +
                                std::to_string(b.size()));
  }
  std::vector<Sample> out;
  out.reserve(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].timestamp != b[i].timestamp) {
      return InvalidArgumentError("timestamps differ at index " +
                                  std::to_string(i));
    }
    out.push_back({a[i].timestamp, a[i].value + b[i].value});
  }
  return TimeSeries::FromSamples(std::move(out));
}

}  // namespace smeter
