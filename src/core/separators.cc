#include "core/separators.h"

#include <algorithm>
#include <cmath>

#include "core/quantile.h"
#include "core/symbol.h"

namespace smeter {

std::string SeparatorMethodName(SeparatorMethod method) {
  switch (method) {
    case SeparatorMethod::kUniform:
      return "uniform";
    case SeparatorMethod::kMedian:
      return "median";
    case SeparatorMethod::kDistinctMedian:
      return "distinctmedian";
    case SeparatorMethod::kCustom:
      return "custom";
  }
  return "unknown";
}

Result<std::vector<double>> LearnSeparators(const std::vector<double>& training,
                                            SeparatorMethod method,
                                            int level) {
  if (level < 1 || level > kMaxSymbolLevel) {
    return InvalidArgumentError("alphabet level must be in [1, " +
                                std::to_string(kMaxSymbolLevel) + "]");
  }
  if (training.empty()) {
    return FailedPreconditionError("separator learning needs training data");
  }
  for (size_t i = 0; i < training.size(); ++i) {
    if (!std::isfinite(training[i])) {
      return InvalidArgumentError("training value at index " +
                                  std::to_string(i) +
                                  " is not finite: " +
                                  std::to_string(training[i]));
    }
  }
  const size_t k = size_t{1} << level;

  switch (method) {
    case SeparatorMethod::kUniform: {
      // beta_i = i * max / k  (Section 2.2a: uniform division of [0, max]).
      // The method's domain is [0, max]; a negative reading would make the
      // separator sequence decrease, which breaks every consumer of the
      // table, so reject it here rather than UB later.
      double min = *std::min_element(training.begin(), training.end());
      if (min < 0.0) {
        return InvalidArgumentError(
            "uniform separators need non-negative readings, got " +
            std::to_string(min));
      }
      double max = *std::max_element(training.begin(), training.end());
      std::vector<double> seps;
      seps.reserve(k - 1);
      for (size_t i = 1; i < k; ++i) {
        seps.push_back(max * static_cast<double>(i) / static_cast<double>(k));
      }
      return seps;
    }
    case SeparatorMethod::kMedian:
      return EqualFrequencySeparators(training, k - 1);
    case SeparatorMethod::kDistinctMedian:
      return DistinctEqualFrequencySeparators(training, k - 1);
    case SeparatorMethod::kCustom:
      return InvalidArgumentError(
          "custom separators are supplied directly, not learned");
  }
  return InternalError("unhandled separator method");
}

}  // namespace smeter
