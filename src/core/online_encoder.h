// The sensor-side online conversion pipeline of Section 2.
//
// Phase 1 (warm-up): raw samples are buffered until `warmup_seconds` of
// historical data has been observed ("the first horizontal segmentation has
// to be performed before the system can start to process any data"; the
// experiments use the first two days). The lookup table is then built and
// emitted — this models "the lookup table is built once at the sensor level
// and then sent to the aggregation server before starting to send the
// symbolic data".
//
// Phase 2 (streaming): samples are vertically aggregated into aligned
// windows; each completed window is horizontally segmented and a symbol is
// emitted. Optionally a DriftDetector watches the emitted symbols and, when
// the value distribution shifts too much, the table is rebuilt from a
// recent-value buffer and re-emitted with a bumped version (Section 4's
// on-the-fly table modification).

#ifndef SMETER_CORE_ONLINE_ENCODER_H_
#define SMETER_CORE_ONLINE_ENCODER_H_

#include <deque>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/drift.h"
#include "core/encoder.h"
#include "core/lookup_table.h"

namespace smeter {

// One output of the online encoder, in emission order.
struct EncoderEvent {
  enum class Type {
    // A (re)built lookup table is ready to ship; `table_version` increments
    // each rebuild. The table itself is read via OnlineEncoder::table().
    kTableReady,
    // One symbol for one completed vertical window.
    kSymbol,
  };
  Type type = Type::kSymbol;
  int table_version = 0;
  SymbolicSample symbol;  // valid when type == kSymbol
};

struct OnlineEncoderOptions {
  // Horizontal-segmentation configuration.
  SeparatorMethod method = SeparatorMethod::kMedian;
  int level = 4;
  // Warm-up (historical) span before the first table is built. The paper
  // recommends a span covering typical behaviour (day+night, week+weekend).
  int64_t warmup_seconds = 2 * kSecondsPerDay;
  // Vertical window.
  int64_t window_seconds = 900;
  WindowOptions window;
  // When set, watch for drift and rebuild the table from the last
  // `rebuild_history_windows` aggregated values when it fires.
  std::optional<DriftOptions> drift;
  size_t rebuild_history_windows = 2 * 96;  // two days of 15-min windows
};

class OnlineEncoder {
 public:
  static Result<OnlineEncoder> Create(const OnlineEncoderOptions& options);

  // Feeds one raw sample (timestamps must not regress). Returns the events
  // this sample triggered (possibly none: warm-up, or mid-window).
  Result<std::vector<EncoderEvent>> Push(Sample sample);

  // Flushes the current partial window (end of stream). May emit a final
  // symbol if the window meets min_coverage.
  Result<std::vector<EncoderEvent>> Flush();

  // The current lookup table; empty until the warm-up completes.
  const std::optional<LookupTable>& table() const { return table_; }
  int table_version() const { return table_version_; }
  bool warmed_up() const { return table_.has_value(); }

 private:
  explicit OnlineEncoder(const OnlineEncoderOptions& options);

  // Handles a completed aggregated value: encode, track drift, maybe
  // rebuild.
  Status EmitAggregate(Timestamp window_end, double value,
                       std::vector<EncoderEvent>& events);
  // Closes the current window: emits its aggregate if coverage suffices.
  Status SettleWindow(std::vector<EncoderEvent>& events);
  Status BuildTable(const std::vector<double>& training,
                    std::vector<EncoderEvent>& events);

  OnlineEncoderOptions options_;

  // Warm-up state: aggregated window values collected before the first
  // table exists; they become the table's training data.
  std::vector<double> warmup_aggregates_;
  std::optional<Timestamp> first_timestamp_;

  // Streaming vertical-aggregation state.
  bool have_window_ = false;
  Timestamp window_start_ = 0;
  size_t window_count_ = 0;
  double window_sum_ = 0.0;
  double window_min_ = 0.0;
  double window_max_ = 0.0;
  Timestamp last_timestamp_ = 0;

  // Table state.
  std::optional<LookupTable> table_;
  int table_version_ = 0;
  std::optional<DriftDetector> drift_;
  // Recent aggregated values, for rebuilds.
  std::deque<double> history_;
};

}  // namespace smeter

#endif  // SMETER_CORE_ONLINE_ENCODER_H_
