#include "core/fsck.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "common/io.h"
#include "core/archive_store.h"
#include "core/codec.h"
#include "core/fleet_manifest.h"
#include "core/lookup_table.h"

namespace smeter {
namespace {

namespace fs = std::filesystem;

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

std::string JsonEscape(const std::string& value) {
  std::string out;
  for (char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Renames a damaged artifact to `<path>.corrupt` so it is out of the
// archive's read path but still available for forensics.
Status QuarantineFile(const std::string& path) {
  std::error_code error;
  fs::rename(path, path + ".corrupt", error);
  if (error) {
    return InternalError("cannot quarantine " + path + ": " +
                         error.message());
  }
  return Status::Ok();
}

Status RemoveFile(const std::string& path) {
  std::error_code error;
  fs::remove(path, error);
  if (error) {
    return InternalError("cannot remove " + path + ": " + error.message());
  }
  return Status::Ok();
}

}  // namespace

Result<FsckReport> FsckArchive(const std::string& dir,
                               const FsckOptions& options) {
  FsckReport report;
  report.dir = dir;
  report.repair_attempted = options.repair;

  std::error_code error;
  if (!fs::is_directory(dir, error) || error) {
    return NotFoundError("not a directory: " + dir);
  }
  std::vector<std::string> names;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, error)) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  if (error) {
    return InternalError("cannot walk " + dir + ": " + error.message());
  }
  std::sort(names.begin(), names.end());
  const std::set<std::string> present(names.begin(), names.end());

  auto add_issue = [&](std::string path, std::string kind,
                       std::string detail) -> FsckIssue& {
    FsckIssue issue;
    issue.path = std::move(path);
    issue.kind = std::move(kind);
    issue.detail = std::move(detail);
    report.issues.push_back(std::move(issue));
    return report.issues.back();
  };
  // Runs one repair action and records the outcome on `issue`; a failing
  // repair leaves the issue unrepaired with the failure in `detail`.
  auto repair_with = [&](FsckIssue& issue, const std::string& action,
                         const Status& outcome) {
    if (outcome.ok()) {
      issue.repaired = true;
      issue.action = action;
    } else {
      issue.detail += "; repair failed: " + outcome.message();
    }
  };

  // Households whose artifacts turned out damaged or missing; their
  // manifest records must be dropped so --resume re-encodes them.
  std::set<std::string> dropped_households;

  // --- query-store checks (archive_store.h layout) ---------------------
  // Top-level store files the household loop below must not misread, and
  // that must not make a pure store directory demand a fleet manifest.
  size_t store_files = 0;

  // Checks one append-log-framed store file (store.index, rollup.tab,
  // current.tab/.log). Returns the parsed contents when the framing is
  // intact (torn tails included — their valid prefix is usable); damage is
  // reported as `<kind_prefix>_...` issues with truncate/quarantine
  // repairs.
  auto check_append_log =
      [&](const std::string& rel, const std::string& kind_prefix)
      -> std::optional<io::AppendLogContents> {
    const std::string path = dir + "/" + rel;
    ++report.files_checked;
    ++store_files;
    Result<io::AppendLogContents> log = io::ReadAppendLog(path);
    if (!log.ok()) {
      FsckIssue& issue =
          add_issue(rel, "corrupt_" + kind_prefix, log.status().ToString());
      if (options.repair) {
        repair_with(issue, "quarantined", QuarantineFile(path));
      }
      return std::nullopt;
    }
    if (log->corrupt_midfile) {
      FsckIssue& issue =
          add_issue(rel, "corrupt_" + kind_prefix,
                    "record checksum mismatch before the tail");
      if (options.repair) {
        repair_with(issue, "quarantined", QuarantineFile(path));
      }
      return std::nullopt;
    }
    if (log->torn_tail) {
      FsckIssue& issue = add_issue(
          rel, "torn_" + kind_prefix,
          "torn tail after " + std::to_string(log->valid_bytes) +
              " valid bytes (crash mid-append)");
      if (options.repair) {
        repair_with(issue, "truncated",
                    io::TruncateFile(path, log->valid_bytes));
      }
    }
    return std::move(*log);
  };

  if (present.count(kStoreIndexFile) > 0) {
    (void)check_append_log(kStoreIndexFile, "store_index");
  }
  for (const char* current_name : {kCurrentTableFile, kCurrentLogFile}) {
    if (present.count(current_name) > 0) {
      (void)check_append_log(current_name, "current");
    }
  }

  // Partition directories: verify every segment, then grade the rollup —
  // parse-clean AND fresh. A rollup older than a segment (a killed
  // store-build or a quarantined segment) serves stale aggregates, so it
  // is flagged and, under --repair, removed for `store-rollup` to rebuild.
  std::vector<std::pair<int64_t, std::string>> partition_dirs;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, error)) {
    if (!entry.is_directory()) continue;
    int64_t id = 0;
    const std::string name = entry.path().filename().string();
    if (IsPartitionDirName(name, &id)) partition_dirs.emplace_back(id, name);
  }
  std::sort(partition_dirs.begin(), partition_dirs.end());
  for (const auto& [id, pdir] : partition_dirs) {
    ++report.partitions_checked;
    const std::string pdir_path = dir + "/" + pdir;
    std::vector<std::string> segments;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(pdir_path, error)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (EndsWith(name, kSegmentSuffix)) segments.push_back(name);
    }
    std::sort(segments.begin(), segments.end());

    bool partition_clean = true;
    bool rollup_stale = false;
    fs::file_time_type newest_segment = fs::file_time_type::min();
    for (const std::string& segment : segments) {
      const std::string rel = pdir + "/" + segment;
      const std::string path = dir + "/" + rel;
      ++report.files_checked;
      ++store_files;
      std::error_code time_error;
      fs::file_time_type mtime = fs::last_write_time(path, time_error);
      if (!time_error && mtime > newest_segment) newest_segment = mtime;
      Result<std::string> blob = io::ReadFileToString(path);
      Status verified = blob.status();
      if (blob.ok()) {
        Result<SymbolicSeries> series = UnpackSymbolicSeries(*blob);
        verified = series.ok() ? Status::Ok() : series.status();
      }
      if (verified.ok()) {
        ++report.segments_ok;
        continue;
      }
      partition_clean = false;
      rollup_stale = true;  // the rollup still counts the damaged meter
      FsckIssue& issue =
          add_issue(rel, "corrupt_segment", verified.ToString());
      if (options.repair) {
        repair_with(issue, "quarantined", QuarantineFile(path));
      }
    }
    if (partition_clean) ++report.partitions_ok;

    const std::string rollup_rel = pdir + "/" + kRollupTableFile;
    const std::string rollup_path = dir + "/" + rollup_rel;
    std::error_code exists_error;
    if (!fs::exists(rollup_path, exists_error)) {
      // Segments without a rollup (a killed build, or a previous repair):
      // aggregates over this partition fail until store-rollup runs.
      if (!segments.empty()) {
        add_issue(rollup_rel, "stale_rollup",
                  "partition has segments but no rollup table; run "
                  "store-rollup to rebuild");
      }
      continue;
    }
    std::optional<io::AppendLogContents> rollup =
        check_append_log(rollup_rel, "rollup");
    if (!rollup.has_value()) continue;  // quarantined; rebuild rebuilds it
    bool rows_ok = !rollup->torn_tail && !rollup->records.empty();
    for (const std::string& line : rollup->records) {
      if (!ParseRollupRow(line).has_value()) {
        rows_ok = false;
        FsckIssue& issue = add_issue(rollup_rel, "corrupt_rollup",
                                     "unparseable rollup row");
        if (options.repair) {
          repair_with(issue, "quarantined", QuarantineFile(rollup_path));
        }
        break;
      }
    }
    std::error_code time_error;
    fs::file_time_type rollup_mtime =
        fs::last_write_time(rollup_path, time_error);
    if (!rollup_stale && !time_error && !segments.empty() &&
        rollup_mtime < newest_segment) {
      rollup_stale = true;
    }
    if (rollup_stale) {
      FsckIssue& issue = add_issue(
          rollup_rel, "stale_rollup",
          "rollup is older than the partition's segments (or covers a "
          "quarantined one); run store-rollup to rebuild");
      if (options.repair) {
        repair_with(issue, "removed", RemoveFile(rollup_path));
      }
    } else if (rows_ok) {
      ++report.rollups_ok;
    }
  }

  // Spools checked this pass. They are client-side artifacts: a directory
  // of nothing but spools (a client's spool dir fsck'd directly) is not an
  // archive and must not be asked to produce a fleet manifest.
  size_t spool_files = 0;

  for (const std::string& name : names) {
    const std::string path = dir + "/" + name;
    if (EndsWith(name, io::kTmpSuffix)) {
      FsckIssue& issue = add_issue(
          name, "stray_tmp", "leftover scratch file from an interrupted write");
      if (options.repair) repair_with(issue, "removed", RemoveFile(path));
      continue;
    }
    if (EndsWith(name, ".spool")) {
      // Client upload spools parked in the archive dir (or a spool dir
      // fsck'd directly). Triage at the append-log framing level only —
      // record semantics belong to the client SDK, which re-validates on
      // resume. A torn tail is the signature of a crash mid-append: safe
      // to truncate, the client re-spools the lost suffix. Mid-file CRC
      // damage means the file can no longer be trusted as a whole, so it
      // is quarantined like any other corrupt artifact.
      ++report.files_checked;
      ++spool_files;
      Result<io::AppendLogContents> log = io::ReadAppendLog(path);
      if (!log.ok()) {
        FsckIssue& issue =
            add_issue(name, "corrupt_spool", log.status().ToString());
        if (options.repair) {
          repair_with(issue, "quarantined", QuarantineFile(path));
        }
        continue;
      }
      if (log->corrupt_midfile || log->records.empty()) {
        FsckIssue& issue = add_issue(
            name, "corrupt_spool",
            log->corrupt_midfile
                ? "record checksum mismatch before the tail"
                : "no intact records (torn or empty beyond the magic)");
        if (options.repair) {
          repair_with(issue, "quarantined", QuarantineFile(path));
        }
        continue;
      }
      if (log->torn_tail) {
        FsckIssue& issue = add_issue(
            name, "torn_spool",
            "torn tail after " + std::to_string(log->valid_bytes) +
                " valid bytes (crash mid-append)");
        if (options.repair) {
          repair_with(issue, "truncated",
                      io::TruncateFile(path, log->valid_bytes));
        }
        continue;
      }
      ++report.spools_ok;
      continue;
    }
    const bool is_symbols = EndsWith(name, ".symbols");
    const bool is_table = EndsWith(name, ".table");
    if (!is_symbols && !is_table) continue;
    ++report.files_checked;
    const std::string household = name.substr(0, name.rfind('.'));
    Result<std::string> blob = io::ReadFileToString(path);
    Status verified = blob.status();
    if (blob.ok()) {
      if (is_symbols) {
        Result<SymbolicSeries> series = UnpackSymbolicSeries(*blob);
        verified = series.ok() ? Status::Ok() : series.status();
      } else {
        Result<LookupTable> table = LookupTable::Deserialize(*blob);
        verified = table.ok() ? Status::Ok() : table.status();
      }
    }
    if (verified.ok()) {
      if (is_symbols) {
        ++report.symbols_ok;
      } else {
        ++report.tables_ok;
      }
      continue;
    }
    FsckIssue& issue =
        add_issue(name, is_symbols ? "corrupt_symbols" : "corrupt_table",
                  verified.ToString());
    dropped_households.insert(household);
    if (options.repair) {
      repair_with(issue, "quarantined", QuarantineFile(path));
    }
  }

  // The manifest: framing, record CRCs, and the cross-check that every
  // ok/degraded record still has its artifacts on disk.
  const std::string manifest_path =
      dir + "/" + std::string(kFleetManifestFile);
  ManifestContents manifest;
  bool manifest_unusable = false;
  if (present.count(kFleetManifestFile) > 0) {
    ++report.files_checked;
    Result<ManifestContents> loaded = LoadFleetManifest(manifest_path);
    if (!loaded.ok()) {
      manifest_unusable = true;
      FsckIssue& issue = add_issue(kFleetManifestFile, "invalid_manifest",
                                   loaded.status().ToString());
      if (options.repair) {
        repair_with(issue, "rewritten",
                    io::AtomicWriteFile(manifest_path, BuildManifestLog({})));
      }
    } else {
      manifest = std::move(*loaded);
      report.manifest_records = manifest.reports.size();
    }
  } else if (report.files_checked > spool_files + store_files) {
    // Artifacts with no checkpoint at all: resume cannot skip anything.
    FsckIssue& issue =
        add_issue(kFleetManifestFile, "missing_artifact",
                  "archive has artifacts but no manifest");
    manifest_unusable = true;
    if (options.repair) {
      repair_with(issue, "rewritten",
                  io::AtomicWriteFile(manifest_path, BuildManifestLog({})));
    }
  }

  // Leftover per-shard checkpoint logs (fleet.manifest.shard<k>): a
  // sharded ingest daemon was killed before Finalize could union them into
  // the main manifest. Their valid records are merged here (main manifest
  // wins on duplicates) so --repair leaves one authoritative manifest and
  // removes the logs — the same union ArchiveSink::Open(resume) performs.
  std::vector<std::string> shard_logs;
  {
    const std::string shard_prefix =
        std::string(kFleetManifestFile) + ".shard";
    for (const std::string& name : names) {
      if (name.rfind(shard_prefix, 0) == 0) shard_logs.push_back(name);
    }
  }
  std::vector<size_t> shard_issue_index;

  if (!manifest_unusable && !manifest.missing) {
    std::set<std::string> known;
    for (const HouseholdReport& record : manifest.reports) {
      known.insert(record.name);
    }
    for (const std::string& name : shard_logs) {
      ++report.files_checked;
      Result<ManifestContents> contents = LoadFleetManifest(dir + "/" + name);
      size_t merged = 0;
      std::string detail =
          "leftover per-shard checkpoint log from an interrupted sharded "
          "run";
      if (contents.ok()) {
        // Torn/corrupt shard logs contribute their valid prefix, same as
        // the main manifest's resume policy.
        for (const HouseholdReport& record : contents->reports) {
          if (record.outcome == HouseholdOutcome::kQuarantined) continue;
          if (!known.insert(record.name).second) continue;
          manifest.reports.push_back(record);
          ++merged;
        }
        detail += "; " + std::to_string(merged) + " record(s) to merge";
      } else {
        detail += "; unreadable: " + contents.status().message();
      }
      add_issue(name, "shard_manifest", std::move(detail));
      shard_issue_index.push_back(report.issues.size() - 1);
    }
    report.manifest_records = manifest.reports.size();

    for (const HouseholdReport& record : manifest.reports) {
      if (record.outcome == HouseholdOutcome::kQuarantined) continue;
      if (dropped_households.count(record.name) > 0) continue;
      for (const std::string& suffix : {std::string(".table"),
                                        std::string(".symbols")}) {
        if (present.count(record.name + suffix) > 0) continue;
        FsckIssue& issue = add_issue(
            record.name + suffix, "missing_artifact",
            "manifest lists household '" + record.name +
                "' as finished but the file is gone");
        dropped_households.insert(record.name);
        if (options.repair) {
          // The drop itself happens in the manifest rewrite below; record
          // the intent here so the issue reads as handled.
          issue.repaired = true;
          issue.action = "dropped_record";
        }
      }
    }

    FsckIssue* damage_issue = nullptr;
    if (manifest.corrupt_midfile) {
      damage_issue = &add_issue(
          kFleetManifestFile, "corrupt_manifest",
          "record failed its checksum before end-of-file; records after "
          "the damage are untrusted");
    } else if (manifest.torn_tail) {
      damage_issue = &add_issue(
          kFleetManifestFile, "torn_manifest",
          "partial trailing record (interrupted append)");
    }

    if (options.repair) {
      const bool drop_records = !dropped_households.empty();
      const bool merge_shards = !shard_logs.empty();
      if (manifest.corrupt_midfile || drop_records || merge_shards) {
        // Rewrite the log from the surviving records; --resume re-encodes
        // everything that no longer has a trustworthy checkpoint.
        std::vector<HouseholdReport> kept;
        for (const HouseholdReport& record : manifest.reports) {
          if (dropped_households.count(record.name) > 0) continue;
          kept.push_back(record);
        }
        Status rewritten =
            io::AtomicWriteFile(manifest_path, BuildManifestLog(kept));
        if (damage_issue != nullptr) {
          repair_with(*damage_issue, "rewritten", rewritten);
        }
        for (size_t index : shard_issue_index) {
          // A shard log counts as merged only once the unioned manifest is
          // durable and the log is gone.
          FsckIssue& issue = report.issues[index];
          if (rewritten.ok()) {
            repair_with(issue, "merged", RemoveFile(dir + "/" + issue.path));
          } else {
            issue.detail += "; manifest rewrite failed";
          }
        }
        if (!rewritten.ok()) {
          // The dropped_record issues above claimed success; retract.
          for (FsckIssue& issue : report.issues) {
            if (issue.action == "dropped_record") {
              issue.repaired = false;
              issue.action = "";
              issue.detail += "; manifest rewrite failed";
            }
          }
        }
      } else if (manifest.torn_tail) {
        repair_with(*damage_issue, "truncated",
                    io::TruncateFile(manifest_path, manifest.valid_bytes));
      }
    }
  }

  return report;
}

std::string FsckReportToJson(const FsckReport& report) {
  std::string out = "{\"dir\":\"" + JsonEscape(report.dir) + "\"";
  out += ",\"clean\":" + std::string(report.clean() ? "true" : "false");
  out += ",\"files_checked\":" + std::to_string(report.files_checked);
  out += ",\"symbols_ok\":" + std::to_string(report.symbols_ok);
  out += ",\"tables_ok\":" + std::to_string(report.tables_ok);
  out += ",\"spools_ok\":" + std::to_string(report.spools_ok);
  out += ",\"manifest_records\":" + std::to_string(report.manifest_records);
  out += ",\"partitions_checked\":" +
         std::to_string(report.partitions_checked);
  out += ",\"partitions_ok\":" + std::to_string(report.partitions_ok);
  out += ",\"rollups_ok\":" + std::to_string(report.rollups_ok);
  out += ",\"segments_ok\":" + std::to_string(report.segments_ok);
  out += ",\"repair_attempted\":" +
         std::string(report.repair_attempted ? "true" : "false");
  out += ",\"exit_code\":" + std::to_string(FsckExitCode(report));
  out += ",\"issues\":[";
  for (size_t i = 0; i < report.issues.size(); ++i) {
    const FsckIssue& issue = report.issues[i];
    if (i > 0) out += ",";
    out += "{\"path\":\"" + JsonEscape(issue.path) + "\"";
    out += ",\"kind\":\"" + JsonEscape(issue.kind) + "\"";
    out += ",\"detail\":\"" + JsonEscape(issue.detail) + "\"";
    out += ",\"repaired\":" + std::string(issue.repaired ? "true" : "false");
    out += ",\"action\":\"" + JsonEscape(issue.action) + "\"}";
  }
  out += "]}\n";
  return out;
}

int FsckExitCode(const FsckReport& report) {
  if (report.issues.empty()) return 0;
  for (const FsckIssue& issue : report.issues) {
    if (!issue.repaired) return 4;
  }
  return 1;
}

}  // namespace smeter
