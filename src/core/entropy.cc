#include "core/entropy.h"

#include <cmath>

namespace smeter {

Result<double> EntropyBits(const std::vector<size_t>& counts) {
  size_t total = 0;
  for (size_t c : counts) total += c;
  if (total == 0) return FailedPreconditionError("entropy of empty counts");
  double h = 0.0;
  for (size_t c : counts) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

Result<double> SymbolEntropyBits(const SymbolicSeries& series) {
  return EntropyBits(series.Histogram());
}

Result<double> NormalizedSymbolEntropy(const SymbolicSeries& series) {
  Result<double> h = SymbolEntropyBits(series);
  if (!h.ok()) return h.status();
  return h.value() / static_cast<double>(series.level());
}

}  // namespace smeter
