// Empirical quantiles and running statistics.
//
// The separator-learning methods of Section 2.2 need k-quantiles of all
// values (`median`) and k-quantiles of the *distinct* values
// (`distinctmedian`). Figure 4 additionally tracks accumulative mean /
// median / median-of-distinct statistics as data streams in; RunningStats
// provides that.

#ifndef SMETER_CORE_QUANTILE_H_
#define SMETER_CORE_QUANTILE_H_

#include <map>
#include <vector>

#include "common/status.h"

namespace smeter {

// Returns the q-quantile (q in [0, 1]) of `values` using linear
// interpolation between order statistics (type-7, the common default).
// Errors on empty input or q outside [0, 1].
Result<double> Quantile(std::vector<double> values, double q);

// Returns the `count` interior separators that split `values` into
// `count + 1` equal-frequency buckets, i.e. quantiles at i/(count+1).
// Values are copied and sorted internally.
Result<std::vector<double>> EqualFrequencySeparators(
    const std::vector<double>& values, size_t count);

// Same, over the set of distinct values (each distinct value counted once).
Result<std::vector<double>> DistinctEqualFrequencySeparators(
    const std::vector<double>& values, size_t count);

// Streaming statistics over a value stream: count, mean, min, max, median,
// and median of distinct values. Exact (keeps a value->count map), which is
// fine at smart-meter scale where the value domain is bounded.
class RunningStats {
 public:
  // Adds one observation.
  void Add(double value);

  size_t count() const { return count_; }
  double mean() const;
  double min() const;
  double max() const;

  // Median over all observations seen so far. Errors when empty.
  Result<double> Median() const;

  // Median over the distinct values seen so far. Errors when empty.
  Result<double> DistinctMedian() const;

  // General quantile over all observations (q in [0,1]).
  Result<double> RunningQuantile(double q) const;

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  // value -> multiplicity; ordered so quantiles are a prefix walk.
  std::map<double, size_t> histogram_;
};

}  // namespace smeter

#endif  // SMETER_CORE_QUANTILE_H_
