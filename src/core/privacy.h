// Privacy metrics for symbolic streams.
//
// The paper motivates symbols partly as privacy protection: "smart meter
// data contains very detailed energy consumption measurement which can
// lead to customer privacy breach". These helpers quantify the obscuring
// effect:
//
//  * event obscurity — what fraction of appliance switch events (large
//    power jumps in the raw 1 Hz stream, the signal NILM attacks use) is
//    still visible as a symbol change in the encoded stream;
//  * conditional entropy — how unpredictable the symbol stream remains
//    given the previous symbol (a fully predictable stream reveals the
//    household routine even through coarse symbols).

#ifndef SMETER_CORE_PRIVACY_H_
#define SMETER_CORE_PRIVACY_H_

#include "common/status.h"
#include "core/symbolic_series.h"
#include "core/time_series.h"

namespace smeter {

struct EventObscurityOptions {
  // A raw event is a jump of at least this many watts between consecutive
  // samples (appliance turn-on/off signatures).
  double jump_threshold_watts = 500.0;
  // The vertical window the symbols were produced with; used to map raw
  // timestamps onto symbol windows.
  int64_t window_seconds = 900;
};

struct EventObscurityReport {
  size_t raw_events = 0;
  // Events whose surrounding windows carry *different* symbols (an
  // observer of the symbol stream can tell something switched).
  size_t visible_events = 0;
  // visible / raw; 0 when there are no raw events.
  double visibility = 0.0;
};

// Measures how many raw jump events survive into `symbols` (produced from
// `raw` via the paper's pipeline at `options.window_seconds`). An event
// inside a single window, or in a window with no emitted symbol, is
// invisible by construction.
Result<EventObscurityReport> EvaluateEventObscurity(
    const TimeSeries& raw, const SymbolicSeries& symbols,
    const EventObscurityOptions& options = {});

// First-order conditional entropy H(S_t | S_{t-1}) of the symbol stream in
// bits, from empirical bigram frequencies. Errors on fewer than two
// symbols.
Result<double> ConditionalEntropyBits(const SymbolicSeries& series);

}  // namespace smeter

#endif  // SMETER_CORE_PRIVACY_H_
