// Anomaly scoring on symbol streams.
//
// Section 4 notes the median segmentation behaves like a low-pass filter
// and is not ideal "for detecting small variations" — but *large* routine
// deviations (a heater left on, a vacation, meter tampering) are exactly
// what a utility wants flagged, and they remain detectable from the 4-bit
// stream alone. The detector fits a time-of-day-conditioned bigram model
//
//   P(s_t | s_{t-1}, hour-bucket(t))
//
// on a reference window and scores new symbols by surprisal
// -log2 P(...); an exponential moving average of surprisal above a
// threshold marks an anomalous region. Everything operates on symbols, so
// the server never needs the raw data — analytics on the compact,
// privacy-preserving representation, the paper's whole point.

#ifndef SMETER_CORE_ANOMALY_H_
#define SMETER_CORE_ANOMALY_H_

#include <vector>

#include "common/status.h"
#include "core/symbolic_series.h"

namespace smeter {

struct AnomalyOptions {
  // Number of time-of-day buckets conditioning the bigram model (e.g. 4 =
  // night/morning/afternoon/evening). Must divide 24.
  int time_buckets = 4;
  // Laplace smoothing for unseen transitions.
  double smoothing = 0.5;
  // EMA coefficient for the running surprisal.
  double ema_alpha = 0.2;
  // A region is anomalous while the surprisal EMA exceeds
  // `threshold_bits` (symbol-level surprisal, in bits).
  double threshold_bits = 4.0;
};

struct AnomalyScore {
  Timestamp timestamp = 0;
  // Surprisal of this symbol, -log2 P(s_t | s_{t-1}, bucket), in bits.
  double surprisal_bits = 0.0;
  // The smoothed (EMA) surprisal used for flagging.
  double smoothed_bits = 0.0;
  bool anomalous = false;
};

class AnomalyDetector {
 public:
  // Fits the conditioned bigram model on `reference` (typical behaviour;
  // at least two symbols). Errors on invalid options.
  static Result<AnomalyDetector> Fit(const SymbolicSeries& reference,
                                     const AnomalyOptions& options = {});

  // Scores every symbol of `stream` (same level as the reference).
  Result<std::vector<AnomalyScore>> Score(const SymbolicSeries& stream) const;

  // Convenience: the maximal anomalous sub-ranges of `stream`, merged.
  Result<std::vector<TimeRange>> AnomalousRanges(
      const SymbolicSeries& stream) const;

  int level() const { return level_; }

 private:
  AnomalyDetector(int level, const AnomalyOptions& options)
      : level_(level), options_(options) {}

  size_t BucketOf(Timestamp t) const;
  size_t CellOf(size_t bucket, uint32_t previous, uint32_t current) const;

  int level_;
  AnomalyOptions options_;
  // Transition counts, indexed [bucket][prev][current] (flattened), plus
  // per-(bucket, prev) totals for normalization.
  std::vector<double> counts_;
  std::vector<double> totals_;
};

}  // namespace smeter

#endif  // SMETER_CORE_ANOMALY_H_
