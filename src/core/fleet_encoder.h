// Fleet-scale encoding: shards N households across a thread pool, builds
// one lookup table per household (the paper's per-customer tables — each
// sensor learns its own separators from its own history), and runs the
// vertical+horizontal pipeline on every trace.
//
// This is the aggregation-server-side counterpart of the per-sensor
// encoder: the workload Section 1 motivates ("millions of customers"
// emitting 1 Hz data) is embarrassingly parallel across households, so
// throughput scales with the pool size while each household's output stays
// bit-identical to a serial EncodePipeline call.

#ifndef SMETER_CORE_FLEET_ENCODER_H_
#define SMETER_CORE_FLEET_ENCODER_H_

#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/encoder.h"
#include "core/lookup_table.h"
#include "core/symbolic_series.h"
#include "core/time_series.h"

namespace smeter {

struct FleetEncodeOptions {
  // Per-household table construction (Section 2.2 separator learning).
  LookupTableOptions table;
  // Vertical window + encode (Definitions 2 and 3).
  PipelineOptions pipeline;
  // Learn each household's table from only the first `history_seconds` of
  // its trace — the paper trains tables on the first two days and encodes
  // the rest. 0 = learn from the whole trace.
  int64_t history_seconds = 0;
};

// One household's encoding: its personal table plus its symbol stream.
struct HouseholdEncoding {
  LookupTable table;
  SymbolicSeries symbols;
};

// Encodes every household, using `pool` to spread households across
// threads (nullptr = serial). Results arrive in input order regardless of
// scheduling. On failure the error names the offending household and is
// deterministic: the lowest-indexed failing household wins, exactly as a
// serial loop would report.
Result<std::vector<HouseholdEncoding>> EncodeFleet(
    const std::vector<TimeSeries>& households,
    const FleetEncodeOptions& options, ThreadPool* pool = nullptr);

}  // namespace smeter

#endif  // SMETER_CORE_FLEET_ENCODER_H_
