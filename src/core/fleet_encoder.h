// Fleet-scale encoding: shards N households across a thread pool, builds
// one lookup table per household (the paper's per-customer tables — each
// sensor learns its own separators from its own history), and runs the
// vertical+horizontal pipeline on every trace.
//
// This is the aggregation-server-side counterpart of the per-sensor
// encoder: the workload Section 1 motivates ("millions of customers"
// emitting 1 Hz data) is embarrassingly parallel across households, so
// throughput scales with the pool size while each household's output stays
// bit-identical to a serial EncodePipeline call.
//
// Two entry points with different failure models:
//   EncodeFleet          — all-or-nothing. Any failing household fails the
//                          run (lowest-indexed failure wins, as a serial
//                          loop would report). Right for benchmarks and
//                          pipelines where partial output is useless.
//   EncodeFleetTolerant  — per-household quarantine. A failing household is
//                          retried with exponential backoff and, if it
//                          never succeeds, quarantined; the other
//                          households encode normally and the run reports
//                          per-household outcomes. Right for ingestion,
//                          where one meter's corrupt file must not discard
//                          a fleet's worth of good data.

#ifndef SMETER_CORE_FLEET_ENCODER_H_
#define SMETER_CORE_FLEET_ENCODER_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "core/encoder.h"
#include "core/lookup_table.h"
#include "core/symbolic_series.h"
#include "core/time_series.h"

namespace smeter {

// Retry policy for EncodeFleetTolerant. An "attempt" is the whole
// per-household unit of work: load result check, table build, encode, and
// the sink callback — a transient write failure retries the same way a
// transient read failure does.
struct RetryOptions {
  // Extra attempts after the first failure (0 = fail fast).
  int max_retries = 2;
  // Backoff before retry k (1-based) is initial_backoff_ms *
  // backoff_multiplier^(k-1).
  int64_t initial_backoff_ms = 100;
  double backoff_multiplier = 2.0;
  // Sleep hook, for tests: receives the backoff in milliseconds. Defaults
  // to std::this_thread::sleep_for; inject a recorder to keep tests
  // wall-clock free.
  std::function<void(int64_t)> sleep_ms;
};

struct FleetEncodeOptions {
  // Per-household table construction (Section 2.2 separator learning).
  LookupTableOptions table;
  // Vertical window + encode (Definitions 2 and 3).
  PipelineOptions pipeline;
  // Learn each household's table from only the first `history_seconds` of
  // its trace — the paper trains tables on the first two days and encodes
  // the rest. 0 = learn from the whole trace.
  int64_t history_seconds = 0;
  // Tolerant path only: encode through EncodePipelineWithGaps, so a trace
  // with outages produces GAP symbols (and a degraded outcome) instead of
  // an error.
  bool gap_aware = false;
  // Tolerant path only: retry policy for failing households.
  RetryOptions retry;
};

// One household's encoding: its personal table plus its symbol stream.
struct HouseholdEncoding {
  LookupTable table;
  SymbolicSeries symbols;
};

// Encodes every household, using `pool` to spread households across
// threads (nullptr = serial). Results arrive in input order regardless of
// scheduling. On failure the error names the offending household and is
// deterministic: the lowest-indexed failing household wins, exactly as a
// serial loop would report.
Result<std::vector<HouseholdEncoding>> EncodeFleet(
    const std::vector<TimeSeries>& households,
    const FleetEncodeOptions& options, ThreadPool* pool = nullptr);

// One household heading into the tolerant encoder. The trace is a Result
// so a failed load (unreadable file, malformed CSV) flows into the same
// quarantine machinery as an encode failure, instead of aborting before
// the fleet call.
struct FleetInput {
  std::string name;
  Result<TimeSeries> trace;
};

enum class HouseholdOutcome {
  kOk = 0,       // encoded cleanly, no gaps, first attempt
  kDegraded,     // encoded, but with gap/partial windows or after retries
  kQuarantined,  // all attempts failed; no output for this household
};

std::string HouseholdOutcomeToString(HouseholdOutcome outcome);

// Per-household result of a tolerant fleet run.
struct HouseholdReport {
  std::string name;
  HouseholdOutcome outcome = HouseholdOutcome::kQuarantined;
  // Attempts actually made (>= 1; > 1 means retries happened).
  int attempts = 0;
  // The final error for a quarantined household; OK otherwise.
  Status error;
  // Window-quality counts (all-valid unless gap_aware was set).
  EncodeQuality quality;
  // The encoding, present unless quarantined. Absent when a sink consumed
  // the outputs (see HouseholdSink below) to keep fleet-scale memory flat.
  std::optional<HouseholdEncoding> encoding;
};

// Fleet-level rollup of a tolerant run.
struct FleetQualityReport {
  size_t households_ok = 0;
  size_t households_degraded = 0;
  size_t households_quarantined = 0;
  size_t windows_total = 0;
  size_t windows_gap = 0;
  size_t total() const {
    return households_ok + households_degraded + households_quarantined;
  }
  double gap_ratio() const {
    return windows_total == 0 ? 0.0
                              : static_cast<double>(windows_gap) /
                                    static_cast<double>(windows_total);
  }
};

FleetQualityReport SummarizeFleet(const std::vector<HouseholdReport>& reports);

// Renders the fleet report as a stable, human-readable JSON document:
// the rollup counts plus a per-household array with outcome, attempts,
// gap ratio, and the quarantine error message.
std::string FleetQualityReportToJson(
    const FleetQualityReport& summary,
    const std::vector<HouseholdReport>& reports);

// Optional per-household output hook, called once per successful attempt
// (from the encoding thread) with the household's index, its in-progress
// report (name, attempts, and quality are valid; outcome and error are
// finalized only after the sink returns), and the encoding. A non-OK
// return fails that attempt — it retries under the same policy as an
// encode failure. When a sink is provided the encoding is handed to it and
// NOT kept in the report, so a large fleet streams to disk instead of
// accumulating in memory. Sinks run concurrently under a pool; they must
// be thread-safe across distinct households.
using HouseholdSink =
    std::function<Status(size_t index, const HouseholdReport& report,
                         const HouseholdEncoding& encoding)>;

// Live progress of a tolerant fleet run. Encoding lanes record each
// household's final outcome as it lands; any other thread (a CLI status
// line, the daemon's stats dump) may snapshot the counts mid-run. All
// mutable state sits behind one annotated mutex, so the cross-thread
// contract is machine-checked (DESIGN.md §13).
class FleetProgress {
 public:
  struct Snapshot {
    size_t completed = 0;    // households with a final outcome
    size_t ok = 0;
    size_t degraded = 0;
    size_t quarantined = 0;
    size_t retries = 0;      // attempts beyond each household's first
  };

  // Called once per household by the encoding lane that finished it.
  void Record(HouseholdOutcome outcome, int attempts) REQUIRES(!mutex_);
  Snapshot Get() const REQUIRES(!mutex_);

 private:
  mutable Mutex mutex_;
  Snapshot counts_ GUARDED_BY(mutex_);
};

// Encodes the fleet with per-household fault isolation: every household
// gets up to 1 + retry.max_retries attempts, failures are quarantined
// rather than propagated, and the run itself only fails on infrastructure
// errors (never on a household's data). Reports arrive in input order.
// `progress`, when non-null, receives one Record per finished household
// and may be polled concurrently from other threads.
Result<std::vector<HouseholdReport>> EncodeFleetTolerant(
    const std::vector<FleetInput>& inputs, const FleetEncodeOptions& options,
    ThreadPool* pool = nullptr, const HouseholdSink& sink = nullptr,
    FleetProgress* progress = nullptr);

}  // namespace smeter

#endif  // SMETER_CORE_FLEET_ENCODER_H_
