// The lookup table L = (A, B) of Definition 3: an alphabet of hierarchical
// binary symbols plus the separators that map real values to symbols, and a
// per-symbol representative value for reconstruction.
//
// A table built at level L simultaneously defines tables at every level
// l <= L (the separator sets nest, Figure 1), so a sensor can emit
// high-resolution symbols and consumers can compare or coarsen them freely
// (Section 4's flexibility discussion).
//
// The paper builds the table once at the sensor from historical data and
// ships it to the aggregation server before streaming symbols; Serialize /
// Deserialize implement that wire format.

#ifndef SMETER_CORE_LOOKUP_TABLE_H_
#define SMETER_CORE_LOOKUP_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/separators.h"
#include "core/symbol.h"

namespace smeter {

// How a symbol is mapped back to a real value.
enum class ReconstructionMode {
  // Center of the symbol's value range — the paper's symbol "semantics" in
  // the forecasting experiment (Section 3.2).
  kRangeCenter,
  // Average of the training values that fell into the range — the paper's
  // lookup-table construction in Section 2. Falls back to the range center
  // for ranges no training value hit.
  kRangeMean,
};

struct LookupTableOptions {
  SeparatorMethod method = SeparatorMethod::kMedian;
  // Alphabet size is 2^level; the paper sweeps level 1..4 (k = 2..16).
  int level = 4;
};

class LookupTable {
 public:
  // Learns separators from `training` values (Section 2.2) and records the
  // per-range training means for reconstruction.
  static Result<LookupTable> Build(const std::vector<double>& training,
                                   const LookupTableOptions& options);

  // Builds a table from expert-provided separators (e.g. the two-symbol
  // low/high segmentation of Section 3.2). `separators.size() + 1` must be
  // a power of two; separators must be non-decreasing. `domain_min/max`
  // bound the outermost ranges for reconstruction.
  static Result<LookupTable> FromSeparators(std::vector<double> separators,
                                            double domain_min,
                                            double domain_max);

  // The finest level this table supports.
  int level() const { return level_; }
  uint32_t alphabet_size() const { return 1u << level_; }
  SeparatorMethod method() const { return method_; }
  double domain_min() const { return domain_min_; }
  double domain_max() const { return domain_max_; }

  // Definition 3: maps a value to its finest-level symbol. Values outside
  // [domain_min, domain_max] clamp to the first/last symbol (rules i, ii).
  // The value must not be NaN (contract-checked in debug/sanitizer builds);
  // use EncodeChecked on paths fed by untrusted readings.
  Symbol Encode(double value) const;

  // Encode with the NaN contract surfaced as a Status instead of a crash.
  // (+Inf/-Inf clamp to the last/first symbol like any out-of-domain value.)
  Result<Symbol> EncodeChecked(double value) const;

  // Maps a value to its symbol at a coarser `level` in [1, level()].
  // Identical to Encode(value).Coarsen(level) — the nesting property.
  Result<Symbol> EncodeAtLevel(double value, int level) const;

  // Value-range bounds of a symbol (at any level <= level()).
  Result<double> RangeLow(const Symbol& symbol) const;
  Result<double> RangeHigh(const Symbol& symbol) const;

  // Representative value of a symbol under `mode`.
  Result<double> Reconstruct(const Symbol& symbol,
                             ReconstructionMode mode) const;

  // Finest-level interior separators (size alphabet_size() - 1).
  const std::vector<double>& separators() const { return separators_; }

  // Interior separators of the level-`l` table (the nested subset).
  Result<std::vector<double>> SeparatorsAtLevel(int l) const;

  // Number of training values that fell into each finest-level range.
  const std::vector<size_t>& bucket_counts() const { return bucket_counts_; }

  // Mean training value per finest-level range (0 where the count is 0).
  // Always finite — the running-mean accumulation stays inside the hull of
  // the training data, so Serialize round-trips even for values near
  // DBL_MAX.
  const std::vector<double>& bucket_means() const { return bucket_means_; }

  // Recomputes the per-bucket reconstruction statistics from `training`
  // (Build does this automatically; FromSeparators leaves them empty).
  Status AttachTrainingData(const std::vector<double>& training);

  // Wire format: a small line-oriented text blob, versioned. Serialize
  // emits "smeter-lookup-table v2", which ends with a mandatory
  // `crc32c <8 hex>` footer over every preceding byte — any bit flip or
  // truncation fails Deserialize with kDataLoss. Legacy v1 blobs (no
  // footer) remain readable.
  std::string Serialize() const;
  static Result<LookupTable> Deserialize(const std::string& text);

 private:
  LookupTable() = default;

  void ComputeBucketStats(const std::vector<double>& training);

  SeparatorMethod method_ = SeparatorMethod::kCustom;
  int level_ = 1;
  std::vector<double> separators_;  // finest level, size 2^level - 1
  double domain_min_ = 0.0;
  double domain_max_ = 0.0;
  // Per finest-level bucket: training-value mean and count (mean is 0 when
  // count is 0; Reconstruct falls back to the range center then).
  std::vector<double> bucket_means_;
  std::vector<size_t> bucket_counts_;
};

}  // namespace smeter

#endif  // SMETER_CORE_LOOKUP_TABLE_H_
