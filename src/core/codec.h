// Bit-packed wire format for symbolic series — the §2.3 numbers made
// concrete: a day of 16-symbol / 15-minute data must serialize to 384 bits
// of payload (48 bytes) plus a fixed-size header.
//
// Layout (little-endian):
//   magic   "SMSY"            4 bytes
//   version u8                (1 = gapless, 2 = with GAP symbols)
//   level   u8                bits per symbol
//   count   u32               number of symbols (gaps included)
//   start   i64               timestamp of the first symbol
//   step    i64               seconds between consecutive symbols
//   gapmap  ceil(count/8) bytes, MSB-first, bit set = GAP   (version 2 only)
//   payload ceil(values*level/8) bytes, value symbols packed MSB-first,
//           where values = count minus the gap positions
//
// A gapless series always packs as version 1 (bit-identical to the
// pre-GAP format); a series containing GAP symbols packs as version 2.
//
// Only fixed-cadence series are packable; a missing window must be an
// explicit GAP symbol (the gap-aware pipeline emits those), not an absent
// timestamp. Pack rejects irregular series — send those as separate
// segments.
//
// Version 3 — the crash-safe framed format (PackSymbolicSeriesFramed):
//   header  the 26 bytes above with version = 3,
//           followed by u32 crc32c of those 26 bytes   (30 bytes total)
//   blocks  each covering a contiguous run of slots:
//     sync        4 bytes  F5 'S' 'M' 'B'  (resynchronization marker)
//     first_slot  u32      index of the block's first slot
//     slot_count  u32      low 31 bits: slots in this block
//                          (1..kMaxBlockSlots); high bit set iff the
//                          payload opens with a gap bitmap
//     payload_len u32      bytes of payload that follow the CRC
//     crc         u32      crc32c over the 12 field bytes + payload
//     payload     gap bitmap (ceil(slot_count/8), MSB-first, set = GAP)
//                 — present only when the block contains a GAP; gapless
//                 blocks skip it so clean data pays just the 20-byte
//                 header per block —
//                 then value symbols bit-packed MSB-first, `level` bits
//                 each; the bit accumulator resets at every block edge so
//                 blocks decode independently
//   Blocks tile [0, count) in order with no gaps or trailing bytes.
//
// Every byte of a v3 blob is covered by a checksum, so UnpackSymbolicSeries
// pinpoints the damaged block (index and byte offset) instead of returning
// garbage, and SalvageSymbolicSeries re-locks onto the sync markers to
// recover every intact block, representing the destroyed slots as GAP runs.

#ifndef SMETER_CORE_CODEC_H_
#define SMETER_CORE_CODEC_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/symbolic_series.h"

namespace smeter {

// Slots per v3 block unless the caller asks otherwise: small enough that a
// damaged block loses at most ~43 hours of 15-minute data, large enough
// that the 20-byte block header is noise (~1% overhead at level 4 on
// gapless data, which omits the per-block gap bitmap).
inline constexpr size_t kDefaultBlockSlots = 4096;
// Hard ceiling on slot_count; a larger value in a block header is damage.
inline constexpr size_t kMaxBlockSlots = 32768;

// Serializes a fixed-cadence symbolic series. Errors on an empty series or
// non-constant timestamp spacing (a single-sample series is fine, with
// `step` recorded as 0).
Result<std::string> PackSymbolicSeries(const SymbolicSeries& series);

// Serializes as the checksummed v3 framed format. Same cadence rules as
// PackSymbolicSeries. `max_block_slots` caps slots per block
// (1..kMaxBlockSlots); the default suits archive files, tests use small
// blocks to exercise many frames.
Result<std::string> PackSymbolicSeriesFramed(
    const SymbolicSeries& series, size_t max_block_slots = kDefaultBlockSlots);

// Parses a blob produced by PackSymbolicSeries or PackSymbolicSeriesFramed
// (the version byte selects the grammar). Validates magic, version, level
// range, and payload size; for v3 additionally verifies the header CRC and
// every block CRC, failing with StatusCode::kDataLoss naming the damaged
// block and its byte offset.
Result<SymbolicSeries> UnpackSymbolicSeries(const std::string& blob);

// What SalvageSymbolicSeries managed to recover.
struct SalvageSummary {
  size_t total_slots = 0;      // count from the (verified) header
  size_t recovered_slots = 0;  // slots covered by blocks that passed CRC
  size_t lost_slots = 0;       // slots returned as GAP because their block
                               // was damaged (total - recovered)
  size_t recovered_blocks = 0;
};

// Best-effort recovery for a damaged v3 blob: verifies the header, then
// scans for sync markers and decodes every block whose checksum holds,
// returning a full-length series in which slots from damaged or missing
// blocks are GAP symbols. Errors (kDataLoss) only when the header itself is
// too damaged to trust — without level/count/start/step there is no
// timebase to rebuild onto. Also accepts an undamaged v3 blob, returning
// the same series as UnpackSymbolicSeries.
Result<SymbolicSeries> SalvageSymbolicSeries(const std::string& blob,
                                             SalvageSummary* summary = nullptr);

// Payload bits for `count` symbols at `level` bits each (the §2.3 figure,
// excluding the header).
int64_t PackedPayloadBits(size_t count, int level);

// Total wire size in bytes (header + payload) for a gapless (version 1)
// blob.
size_t PackedSizeBytes(size_t count, int level);

// Total wire size in bytes for a version-2 blob of `count` slots of which
// `gaps` are GAP symbols (header + gap bitmap + value payload).
size_t PackedSizeBytesWithGaps(size_t count, size_t gaps, int level);

}  // namespace smeter

#endif  // SMETER_CORE_CODEC_H_
