// Bit-packed wire format for symbolic series — the §2.3 numbers made
// concrete: a day of 16-symbol / 15-minute data must serialize to 384 bits
// of payload (48 bytes) plus a fixed-size header.
//
// Layout (little-endian):
//   magic   "SMSY"            4 bytes
//   version u8                (1 = gapless, 2 = with GAP symbols)
//   level   u8                bits per symbol
//   count   u32               number of symbols (gaps included)
//   start   i64               timestamp of the first symbol
//   step    i64               seconds between consecutive symbols
//   gapmap  ceil(count/8) bytes, MSB-first, bit set = GAP   (version 2 only)
//   payload ceil(values*level/8) bytes, value symbols packed MSB-first,
//           where values = count minus the gap positions
//
// A gapless series always packs as version 1 (bit-identical to the
// pre-GAP format); a series containing GAP symbols packs as version 2.
//
// Only fixed-cadence series are packable; a missing window must be an
// explicit GAP symbol (the gap-aware pipeline emits those), not an absent
// timestamp. Pack rejects irregular series — send those as separate
// segments.

#ifndef SMETER_CORE_CODEC_H_
#define SMETER_CORE_CODEC_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/symbolic_series.h"

namespace smeter {

// Serializes a fixed-cadence symbolic series. Errors on an empty series or
// non-constant timestamp spacing (a single-sample series is fine, with
// `step` recorded as 0).
Result<std::string> PackSymbolicSeries(const SymbolicSeries& series);

// Parses a blob produced by PackSymbolicSeries. Validates magic, version,
// level range, and payload size.
Result<SymbolicSeries> UnpackSymbolicSeries(const std::string& blob);

// Payload bits for `count` symbols at `level` bits each (the §2.3 figure,
// excluding the header).
int64_t PackedPayloadBits(size_t count, int level);

// Total wire size in bytes (header + payload) for a gapless (version 1)
// blob.
size_t PackedSizeBytes(size_t count, int level);

// Total wire size in bytes for a version-2 blob of `count` slots of which
// `gaps` are GAP symbols (header + gap bitmap + value payload).
size_t PackedSizeBytesWithGaps(size_t count, size_t gaps, int level);

}  // namespace smeter

#endif  // SMETER_CORE_CODEC_H_
