// The storage model of Section 2.3.
//
// Raw storage: one IEEE double (64 bit) per sample at the meter rate
// (~680 kB/day at 1 Hz). Symbolic storage: `level` bits per vertical
// window (16 symbols @ 15 min -> 96 * 4 = 384 bit/day), plus the lookup
// table, which is shipped once and amortized over its lifetime.

#ifndef SMETER_CORE_COMPRESSION_H_
#define SMETER_CORE_COMPRESSION_H_

#include <cstdint>

#include "common/status.h"

namespace smeter {

struct CompressionModelOptions {
  // Input sampling period (1 s in the paper).
  int64_t sample_period_seconds = 1;
  // Vertical aggregation window (900 or 3600 in the paper).
  int64_t window_seconds = 900;
  // Bits per symbol = log2(alphabet size); the paper sweeps 1..4.
  int symbol_bits = 4;
  // Bits per raw sample (double).
  int raw_sample_bits = 64;
  // Days the lookup table is amortized over (0 = ignore table cost).
  double table_amortization_days = 0.0;
  // Serialized lookup-table size in bits (only used when amortizing).
  int64_t table_bits = 0;
};

struct CompressionReport {
  double raw_bits_per_day = 0.0;
  double symbolic_bits_per_day = 0.0;  // includes amortized table share
  double ratio = 0.0;                  // raw / symbolic
};

// Evaluates the Section 2.3 model. Errors on non-positive periods/windows,
// symbol_bits outside [1, 64], or a window smaller than the sample period.
Result<CompressionReport> EvaluateCompression(
    const CompressionModelOptions& options);

}  // namespace smeter

#endif  // SMETER_CORE_COMPRESSION_H_
