#include "core/symbolic_series.h"

#include <algorithm>

namespace smeter {

Result<SymbolicSeries> SymbolicSeries::FromSamples(
    int level, std::vector<SymbolicSample> samples) {
  for (size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].symbol.level() != level) {
      return InvalidArgumentError(
          "symbol level " + std::to_string(samples[i].symbol.level()) +
          " != series level " + std::to_string(level) + " at index " +
          std::to_string(i));
    }
    if (i > 0 && samples[i].timestamp < samples[i - 1].timestamp) {
      return InvalidArgumentError("timestamp regresses at index " +
                                  std::to_string(i));
    }
  }
  SymbolicSeries out(level);
  out.samples_ = std::move(samples);
  return out;
}

Status SymbolicSeries::Append(SymbolicSample sample) {
  if (sample.symbol.level() != level_) {
    return InvalidArgumentError("symbol level " +
                                std::to_string(sample.symbol.level()) +
                                " != series level " + std::to_string(level_));
  }
  if (!samples_.empty() && sample.timestamp < samples_.back().timestamp) {
    return InvalidArgumentError("timestamp regresses");
  }
  samples_.push_back(sample);
  return Status::Ok();
}

SymbolicSeries SymbolicSeries::Slice(const TimeRange& range) const {
  auto lo = std::lower_bound(
      samples_.begin(), samples_.end(), range.begin,
      [](const SymbolicSample& s, Timestamp t) { return s.timestamp < t; });
  auto hi = std::lower_bound(
      lo, samples_.end(), range.end,
      [](const SymbolicSample& s, Timestamp t) { return s.timestamp < t; });
  SymbolicSeries out(level_);
  out.samples_.assign(lo, hi);
  return out;
}

Result<SymbolicSeries> SymbolicSeries::Coarsen(int level) const {
  if (level < 1 || level > level_) {
    return InvalidArgumentError("cannot coarsen level " +
                                std::to_string(level_) + " series to level " +
                                std::to_string(level));
  }
  SymbolicSeries out(level);
  out.samples_.reserve(samples_.size());
  for (const SymbolicSample& s : samples_) {
    Result<Symbol> coarse = s.symbol.Coarsen(level);
    if (!coarse.ok()) return coarse.status();
    out.samples_.push_back({s.timestamp, coarse.value()});
  }
  return out;
}

std::string SymbolicSeries::ToBitString() const {
  std::string out;
  for (size_t i = 0; i < samples_.size(); ++i) {
    if (i > 0) out += ' ';
    out += samples_[i].symbol.ToBits();
  }
  return out;
}

std::vector<size_t> SymbolicSeries::Histogram() const {
  std::vector<size_t> counts(size_t{1} << level_, 0);
  for (const SymbolicSample& s : samples_) {
    if (!s.symbol.is_gap()) ++counts[s.symbol.index()];
  }
  return counts;
}

size_t SymbolicSeries::GapCount() const {
  size_t gaps = 0;
  for (const SymbolicSample& s : samples_) {
    if (s.symbol.is_gap()) ++gaps;
  }
  return gaps;
}

}  // namespace smeter
