#include "core/fleet_encoder.h"

#include <optional>
#include <string>
#include <utility>

namespace smeter {
namespace {

Status AnnotateHousehold(size_t index, const Status& status) {
  return Status(status.code(), "household " + std::to_string(index) + ": " +
                                   status.message());
}

Result<HouseholdEncoding> EncodeHousehold(const TimeSeries& trace,
                                          const FleetEncodeOptions& options) {
  if (trace.empty()) return FailedPreconditionError("empty trace");
  TimeSeries training = trace;
  if (options.history_seconds > 0) {
    training = trace.Slice({trace.front().timestamp,
                            trace.front().timestamp + options.history_seconds});
    if (training.empty()) {
      return FailedPreconditionError("no training data in the history span");
    }
  }
  Result<LookupTable> table =
      LookupTable::Build(training.Values(), options.table);
  if (!table.ok()) return table.status();
  Result<SymbolicSeries> symbols =
      EncodePipeline(trace, *table, options.pipeline);
  if (!symbols.ok()) return symbols.status();
  return HouseholdEncoding{std::move(table.value()),
                           std::move(symbols.value())};
}

}  // namespace

Result<std::vector<HouseholdEncoding>> EncodeFleet(
    const std::vector<TimeSeries>& households,
    const FleetEncodeOptions& options, ThreadPool* pool) {
  // Slots, not a result vector: HouseholdEncoding is not default
  // constructible (LookupTable has no empty state), and each lane writes
  // only its own disjoint indices.
  std::vector<std::optional<HouseholdEncoding>> slots(households.size());
  auto encode_range = [&](size_t begin, size_t end) -> Status {
    for (size_t h = begin; h < end; ++h) {
      Result<HouseholdEncoding> encoded =
          EncodeHousehold(households[h], options);
      if (!encoded.ok()) return AnnotateHousehold(h, encoded.status());
      slots[h] = std::move(encoded.value());
    }
    return Status::Ok();
  };
  if (pool != nullptr) {
    // Grain 1: one household is already a large work item (a day of 1 Hz
    // data is 86400 samples), so per-chunk overhead is negligible and the
    // finest sharding keeps all lanes busy on uneven trace lengths.
    SMETER_RETURN_IF_ERROR(
        pool->ParallelFor(0, households.size(), 1, encode_range));
  } else {
    SMETER_RETURN_IF_ERROR(encode_range(0, households.size()));
  }
  std::vector<HouseholdEncoding> out;
  out.reserve(households.size());
  for (std::optional<HouseholdEncoding>& slot : slots) {
    out.push_back(std::move(*slot));
  }
  return out;
}

}  // namespace smeter
