#include "core/fleet_encoder.h"

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"

namespace smeter {
namespace {

Status AnnotateHousehold(size_t index, const Status& status) {
  return Status(status.code(), "household " + std::to_string(index) + ": " +
                                   status.message());
}

struct EncodedHousehold {
  HouseholdEncoding encoding;
  EncodeQuality quality;
};

Result<EncodedHousehold> EncodeHousehold(const TimeSeries& trace,
                                         const FleetEncodeOptions& options) {
  if (trace.empty()) return FailedPreconditionError("empty trace");
  TimeSeries training = trace;
  if (options.history_seconds > 0) {
    training = trace.Slice({trace.front().timestamp,
                            trace.front().timestamp + options.history_seconds});
    if (training.empty()) {
      return FailedPreconditionError("no training data in the history span");
    }
  }
  Result<LookupTable> table =
      LookupTable::Build(training.Values(), options.table);
  if (!table.ok()) return table.status();
  EncodedHousehold out{{std::move(table.value()), SymbolicSeries(1)}, {}};
  if (options.gap_aware) {
    Result<QualityEncoding> encoded =
        EncodePipelineWithGaps(trace, out.encoding.table, options.pipeline);
    if (!encoded.ok()) return encoded.status();
    out.quality = encoded->quality;
    out.encoding.symbols = std::move(encoded.value().symbols);
  } else {
    Result<SymbolicSeries> symbols =
        EncodePipeline(trace, out.encoding.table, options.pipeline);
    if (!symbols.ok()) return symbols.status();
    out.quality.windows_valid = symbols->size();
    out.encoding.symbols = std::move(symbols.value());
  }
  return out;
}

// One full attempt for one household: injection point, trace-load check,
// encode, then the sink. Any failing step fails the attempt as a unit, so
// the retry loop re-runs all of it.
Status AttemptHousehold(size_t index, const FleetInput& input,
                        const FleetEncodeOptions& options,
                        const HouseholdSink& sink, HouseholdReport* report,
                        std::optional<HouseholdEncoding>* kept) {
  SMETER_FAULT_POINT("fleet.household");
  if (!input.trace.ok()) return input.trace.status();
  Result<EncodedHousehold> encoded =
      EncodeHousehold(input.trace.value(), options);
  if (!encoded.ok()) return encoded.status();
  report->quality = encoded->quality;
  if (sink) {
    SMETER_RETURN_IF_ERROR(sink(index, *report, encoded->encoding));
    kept->reset();
  } else {
    *kept = std::move(encoded.value().encoding);
  }
  return Status::Ok();
}

int64_t BackoffMs(const RetryOptions& retry, int retry_number) {
  double backoff = static_cast<double>(retry.initial_backoff_ms);
  for (int i = 1; i < retry_number; ++i) backoff *= retry.backoff_multiplier;
  return static_cast<int64_t>(backoff);
}

void AppendJsonString(std::string& out, const std::string& value) {
  out.push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string FormatRatio(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

}  // namespace

Result<std::vector<HouseholdEncoding>> EncodeFleet(
    const std::vector<TimeSeries>& households,
    const FleetEncodeOptions& options, ThreadPool* pool) {
  // Slots, not a result vector: HouseholdEncoding is not default
  // constructible (LookupTable has no empty state), and each lane writes
  // only its own disjoint indices.
  std::vector<std::optional<HouseholdEncoding>> slots(households.size());
  auto encode_range = [&](size_t begin, size_t end) -> Status {
    for (size_t h = begin; h < end; ++h) {
      Result<EncodedHousehold> encoded =
          EncodeHousehold(households[h], options);
      if (!encoded.ok()) return AnnotateHousehold(h, encoded.status());
      slots[h] = std::move(encoded.value().encoding);
    }
    return Status::Ok();
  };
  if (pool != nullptr) {
    // Grain 1: one household is already a large work item (a day of 1 Hz
    // data is 86400 samples), so per-chunk overhead is negligible and the
    // finest sharding keeps all lanes busy on uneven trace lengths.
    SMETER_RETURN_IF_ERROR(
        pool->ParallelFor(0, households.size(), 1, encode_range));
  } else {
    SMETER_RETURN_IF_ERROR(encode_range(0, households.size()));
  }
  std::vector<HouseholdEncoding> out;
  out.reserve(households.size());
  for (std::optional<HouseholdEncoding>& slot : slots) {
    out.push_back(std::move(*slot));
  }
  return out;
}

std::string HouseholdOutcomeToString(HouseholdOutcome outcome) {
  switch (outcome) {
    case HouseholdOutcome::kOk:
      return "ok";
    case HouseholdOutcome::kDegraded:
      return "degraded";
    case HouseholdOutcome::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

void FleetProgress::Record(HouseholdOutcome outcome, int attempts) {
  MutexLock lock(mutex_);
  ++counts_.completed;
  switch (outcome) {
    case HouseholdOutcome::kOk:
      ++counts_.ok;
      break;
    case HouseholdOutcome::kDegraded:
      ++counts_.degraded;
      break;
    case HouseholdOutcome::kQuarantined:
      ++counts_.quarantined;
      break;
  }
  if (attempts > 1) counts_.retries += static_cast<size_t>(attempts - 1);
}

FleetProgress::Snapshot FleetProgress::Get() const {
  MutexLock lock(mutex_);
  return counts_;
}

Result<std::vector<HouseholdReport>> EncodeFleetTolerant(
    const std::vector<FleetInput>& inputs, const FleetEncodeOptions& options,
    ThreadPool* pool, const HouseholdSink& sink, FleetProgress* progress) {
  const RetryOptions& retry = options.retry;
  if (retry.max_retries < 0) {
    return InvalidArgumentError("max_retries must be >= 0");
  }
  if (retry.initial_backoff_ms < 0) {
    return InvalidArgumentError("initial_backoff_ms must be >= 0");
  }
  if (retry.backoff_multiplier < 1.0) {
    return InvalidArgumentError("backoff_multiplier must be >= 1.0");
  }
  std::function<void(int64_t)> sleep_ms = retry.sleep_ms;
  if (!sleep_ms) {
    sleep_ms = [](int64_t ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }

  std::vector<HouseholdReport> reports(inputs.size());
  // The range function never returns an error: every household failure is
  // captured in its own report, so ParallelFor's lowest-failing-chunk
  // contract is never exercised and all households always run.
  auto encode_range = [&](size_t begin, size_t end) -> Status {
    for (size_t h = begin; h < end; ++h) {
      HouseholdReport& report = reports[h];
      report.name = inputs[h].name;
      std::optional<HouseholdEncoding> kept;
      for (int attempt = 1; attempt <= 1 + retry.max_retries; ++attempt) {
        report.attempts = attempt;
        if (attempt > 1) sleep_ms(BackoffMs(retry, attempt - 1));
        Status attempted =
            AttemptHousehold(h, inputs[h], options, sink, &report, &kept);
        if (attempted.ok()) {
          const bool clean = attempt == 1 &&
                             report.quality.windows_partial == 0 &&
                             report.quality.windows_gap == 0;
          report.outcome = clean ? HouseholdOutcome::kOk
                                 : HouseholdOutcome::kDegraded;
          report.error = Status::Ok();
          report.encoding = std::move(kept);
          break;
        }
        report.outcome = HouseholdOutcome::kQuarantined;
        report.error = Status(attempted.code(), "household " + inputs[h].name +
                                                    ": " + attempted.message());
        report.encoding.reset();
      }
      // A quarantined household produced no output; don't let the window
      // counts of a half-succeeded attempt leak into the report.
      if (report.outcome == HouseholdOutcome::kQuarantined) {
        report.quality = EncodeQuality{};
      }
      if (progress != nullptr) {
        progress->Record(report.outcome, report.attempts);
      }
    }
    return Status::Ok();
  };
  if (pool != nullptr) {
    Status st = pool->ParallelFor(0, inputs.size(), 1, encode_range);
    SMETER_CHECK(st.ok());  // encode_range is infallible
  } else {
    Status st = encode_range(0, inputs.size());
    SMETER_CHECK(st.ok());
  }
  return reports;
}

FleetQualityReport SummarizeFleet(
    const std::vector<HouseholdReport>& reports) {
  FleetQualityReport summary;
  for (const HouseholdReport& r : reports) {
    switch (r.outcome) {
      case HouseholdOutcome::kOk:
        ++summary.households_ok;
        break;
      case HouseholdOutcome::kDegraded:
        ++summary.households_degraded;
        break;
      case HouseholdOutcome::kQuarantined:
        ++summary.households_quarantined;
        break;
    }
    if (r.outcome != HouseholdOutcome::kQuarantined) {
      summary.windows_total += r.quality.windows_total();
      summary.windows_gap += r.quality.windows_gap;
    }
  }
  return summary;
}

std::string FleetQualityReportToJson(
    const FleetQualityReport& summary,
    const std::vector<HouseholdReport>& reports) {
  std::string out = "{\n";
  out += "  \"households_ok\": " + std::to_string(summary.households_ok) +
         ",\n";
  out += "  \"households_degraded\": " +
         std::to_string(summary.households_degraded) + ",\n";
  out += "  \"households_quarantined\": " +
         std::to_string(summary.households_quarantined) + ",\n";
  out += "  \"windows_total\": " + std::to_string(summary.windows_total) +
         ",\n";
  out += "  \"windows_gap\": " + std::to_string(summary.windows_gap) + ",\n";
  out += "  \"gap_ratio\": " + FormatRatio(summary.gap_ratio()) + ",\n";
  out += "  \"households\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const HouseholdReport& r = reports[i];
    out += "    {\"name\": ";
    AppendJsonString(out, r.name);
    out += ", \"outcome\": ";
    AppendJsonString(out, HouseholdOutcomeToString(r.outcome));
    out += ", \"attempts\": " + std::to_string(r.attempts);
    out += ", \"windows_valid\": " + std::to_string(r.quality.windows_valid);
    out += ", \"windows_partial\": " +
           std::to_string(r.quality.windows_partial);
    out += ", \"windows_gap\": " + std::to_string(r.quality.windows_gap);
    out += ", \"gap_ratio\": " + FormatRatio(r.quality.gap_ratio());
    out += ", \"error\": ";
    AppendJsonString(out, r.error.ok() ? "" : r.error.ToString());
    out += i + 1 < reports.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace smeter
