#include "core/reconstruction.h"

#include <algorithm>
#include <cmath>

#include "core/encoder.h"

namespace smeter {

Result<ReconstructionError> CompareSeries(const TimeSeries& reference,
                                          const TimeSeries& reconstructed) {
  if (reference.size() != reconstructed.size()) {
    return InvalidArgumentError("series sizes differ");
  }
  if (reference.empty()) {
    return FailedPreconditionError("empty series");
  }
  ReconstructionError err;
  double sq_sum = 0.0;
  for (size_t i = 0; i < reference.size(); ++i) {
    if (reference[i].timestamp != reconstructed[i].timestamp) {
      return InvalidArgumentError("timestamps differ at index " +
                                  std::to_string(i));
    }
    double d = std::abs(reference[i].value - reconstructed[i].value);
    err.mae += d;
    sq_sum += d * d;
    err.max_abs = std::max(err.max_abs, d);
  }
  err.count = reference.size();
  err.mae /= static_cast<double>(err.count);
  err.rmse = std::sqrt(sq_sum / static_cast<double>(err.count));
  return err;
}

Result<ReconstructionError> RoundTripError(const TimeSeries& reference,
                                           const LookupTable& table,
                                           ReconstructionMode mode) {
  Result<SymbolicSeries> encoded = Encode(reference, table);
  if (!encoded.ok()) return encoded.status();
  Result<TimeSeries> decoded = Decode(encoded.value(), table, mode);
  if (!decoded.ok()) return decoded.status();
  return CompareSeries(reference, decoded.value());
}

Result<double> MeanAbsoluteError(const std::vector<double>& truth,
                                 const std::vector<double>& predicted) {
  if (truth.size() != predicted.size()) {
    return InvalidArgumentError("vector sizes differ");
  }
  if (truth.empty()) return FailedPreconditionError("empty vectors");
  double sum = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    sum += std::abs(truth[i] - predicted[i]);
  }
  return sum / static_cast<double>(truth.size());
}

}  // namespace smeter
