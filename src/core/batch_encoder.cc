#include "core/batch_encoder.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>

namespace smeter {
namespace {

// Chunk size for the once-per-chunk validation passes: big enough to
// amortize the scan, small enough to stay in L1 while the encode pass
// re-reads the same values.
constexpr size_t kChunk = 4096;

// The alphabet of a level, materialized once per batch call so the hot
// loop writes symbols by table lookup instead of through Result<Symbol>.
std::vector<Symbol> Alphabet(int level) {
  std::vector<Symbol> symbols;
  const uint32_t k = 1u << level;
  symbols.reserve(k);
  for (uint32_t i = 0; i < k; ++i) {
    symbols.push_back(Symbol::Create(level, i).value());  // lint: checked: i < 2^level is always a valid index
  }
  return symbols;
}

// What to do with a NaN reading: the strict kernels reject the batch, the
// gap-aware kernel emits the out-of-alphabet GAP symbol.
enum class NanPolicy { kReject, kGap };

Status EncodeBatchImpl(const LookupTable& table,
                       std::span<const double> values, int out_level,
                       NanPolicy nan_policy, Symbol* out) {
  const std::vector<Symbol> alphabet = Alphabet(out_level);
  const Symbol gap = Symbol::Gap(out_level);
  const double* separators = table.separators().data();
  const int level = table.level();
  const int shift = level - out_level;
  // Per-chunk scratch for the level-major descent below.
  uint32_t idx[kChunk];
  for (size_t base = 0; base < values.size(); base += kChunk) {
    const size_t n = std::min(kChunk, values.size() - base);
    const double* chunk = values.data() + base;
    // Validation once per chunk: OR-accumulate the NaN predicate instead
    // of branching per sample; comparisons against NaN are all false, so
    // an unvalidated NaN would silently encode as symbol 0.
    bool nan_seen = false;
    for (size_t i = 0; i < n; ++i) nan_seen |= std::isnan(chunk[i]);
    if (nan_seen && nan_policy == NanPolicy::kReject) {
      for (size_t i = 0; i < n; ++i) {
        if (std::isnan(chunk[i])) {
          return InvalidArgumentError("cannot encode a NaN reading (index " +
                                      std::to_string(base + i) + ")");
        }
      }
    }
    // Branchless lower_bound over the 2^level - 1 sorted separators,
    // level-major: one pass over the chunk per descent step. idx[i] ends
    // as the number of separators < chunk[i], which is Definition 3's
    // symbol index (the same index std::lower_bound yields in
    // LookupTable::Encode). Running the passes level-major instead of
    // sample-major turns each sample's chain of `level` dependent loads
    // into independent per-sample updates, so the loop is bound by load
    // throughput, not load latency.
    std::fill_n(idx, n, 0u);
    for (int b = level - 1; b >= 0; --b) {
      const uint32_t step = 1u << b;
      for (size_t i = 0; i < n; ++i) {
        idx[i] += (separators[idx[i] + step - 1] < chunk[i]) ? step : 0;
      }
    }
    if (nan_seen) {
      // Gap policy: a NaN descended to idx 0 (all comparisons false);
      // overwrite those lanes with the GAP symbol.
      for (size_t i = 0; i < n; ++i) {
        out[base + i] =
            std::isnan(chunk[i]) ? gap : alphabet[idx[i] >> shift];
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        out[base + i] = alphabet[idx[i] >> shift];
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Status EncodeBatch(const LookupTable& table, std::span<const double> values,
                   Symbol* out) {
  return EncodeBatchImpl(table, values, table.level(), NanPolicy::kReject,
                         out);
}

Result<std::vector<Symbol>> EncodeBatch(const LookupTable& table,
                                        std::span<const double> values) {
  std::vector<Symbol> out(values.size());
  SMETER_RETURN_IF_ERROR(EncodeBatch(table, values, out.data()));
  return out;
}

Status EncodeBatchAtLevel(const LookupTable& table,
                          std::span<const double> values, int level,
                          Symbol* out) {
  if (level < 1 || level > table.level()) {
    return InvalidArgumentError("encode level outside table range");
  }
  return EncodeBatchImpl(table, values, level, NanPolicy::kReject, out);
}

Status EncodeBatchWithGaps(const LookupTable& table,
                           std::span<const double> values, Symbol* out) {
  return EncodeBatchImpl(table, values, table.level(), NanPolicy::kGap, out);
}

Result<std::vector<Symbol>> EncodeBatchWithGaps(
    const LookupTable& table, std::span<const double> values) {
  std::vector<Symbol> out(values.size());
  SMETER_RETURN_IF_ERROR(EncodeBatchWithGaps(table, values, out.data()));
  return out;
}

Status DecodeBatch(const LookupTable& table, std::span<const Symbol> symbols,
                   ReconstructionMode mode, double* out) {
  if (symbols.empty()) return Status::Ok();
  const int level = symbols[0].level();
  if (level > table.level()) {
    return InvalidArgumentError("symbol finer than table");
  }
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Representative values per index, computed once per batch; the scalar
  // Reconstruct pins the semantics (range center / clamped range mean).
  const uint32_t k = 1u << level;
  std::vector<double> representatives(k);
  for (uint32_t i = 0; i < k; ++i) {
    Result<double> value =
        table.Reconstruct(Symbol::Create(level, i).value(), mode);  // lint: checked: i < 2^level is always a valid index
    if (!value.ok()) return value.status();
    representatives[i] = value.value();
  }
  for (size_t base = 0; base < symbols.size(); base += kChunk) {
    const size_t n = std::min(kChunk, symbols.size() - base);
    const Symbol* chunk = symbols.data() + base;
    bool mismatch = false;
    bool gap_seen = false;
    for (size_t i = 0; i < n; ++i) {
      mismatch |= (chunk[i].level() != level);
      gap_seen |= chunk[i].is_gap();
    }
    if (mismatch) {
      for (size_t i = 0; i < n; ++i) {
        if (chunk[i].level() != level) {
          return InvalidArgumentError(
              "mixed symbol levels in batch (index " +
              std::to_string(base + i) + ": level " +
              std::to_string(chunk[i].level()) + " vs " +
              std::to_string(level) + ")");
        }
      }
    }
    if (gap_seen) {
      // GAP symbols sit outside the representatives table; they decode to
      // NaN (the inverse of EncodeBatchWithGaps).
      for (size_t i = 0; i < n; ++i) {
        out[base + i] =
            chunk[i].is_gap() ? nan : representatives[chunk[i].index()];
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        out[base + i] = representatives[chunk[i].index()];
      }
    }
  }
  return Status::Ok();
}

Result<std::vector<double>> DecodeBatch(const LookupTable& table,
                                        std::span<const Symbol> symbols,
                                        ReconstructionMode mode) {
  std::vector<double> out(symbols.size());
  SMETER_RETURN_IF_ERROR(DecodeBatch(table, symbols, mode, out.data()));
  return out;
}

}  // namespace smeter
