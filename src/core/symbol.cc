#include "core/symbol.h"

#include <algorithm>

#include "common/check.h"

namespace smeter {

Result<Symbol> Symbol::Create(int level, uint32_t index) {
  if (level < 1 || level > kMaxSymbolLevel) {
    return InvalidArgumentError("symbol level must be in [1, " +
                                std::to_string(kMaxSymbolLevel) + "], got " +
                                std::to_string(level));
  }
  if (index >= (1u << level)) {
    return InvalidArgumentError("symbol index " + std::to_string(index) +
                                " out of range for level " +
                                std::to_string(level));
  }
  return Symbol(level, index);
}

Symbol Symbol::Gap(int level) {
  SMETER_CHECK_GE(level, 1);
  SMETER_CHECK_LE(level, kMaxSymbolLevel);
  return Symbol(level, kGapIndex);
}

Symbol Symbol::FromValidated(int level, uint32_t index) {
  SMETER_DCHECK(level >= 1 && level <= kMaxSymbolLevel);
  SMETER_DCHECK(index < (1u << level));
  return Symbol(level, index);
}

uint32_t Symbol::index() const {
  SMETER_DCHECK(!is_gap());
  return index_;
}

Result<Symbol> Symbol::FromBits(const std::string& bits) {
  if (bits.empty()) return InvalidArgumentError("empty symbol bit string");
  if (bits.size() > static_cast<size_t>(kMaxSymbolLevel)) {
    return InvalidArgumentError("symbol bit string too long: " + bits);
  }
  uint32_t index = 0;
  for (char c : bits) {
    if (c != '0' && c != '1') {
      return InvalidArgumentError("non-binary character in symbol: " + bits);
    }
    index = (index << 1) | static_cast<uint32_t>(c - '0');
  }
  return Symbol(static_cast<int>(bits.size()), index);
}

std::string Symbol::ToBits() const {
  if (is_gap()) return std::string(static_cast<size_t>(level_), '_');
  std::string bits(static_cast<size_t>(level_), '0');
  for (int i = 0; i < level_; ++i) {
    if ((index_ >> (level_ - 1 - i)) & 1u) bits[static_cast<size_t>(i)] = '1';
  }
  return bits;
}

Result<Symbol> Symbol::Coarsen(int level) const {
  if (level < 1 || level > level_) {
    return InvalidArgumentError("cannot coarsen level " +
                                std::to_string(level_) + " symbol to level " +
                                std::to_string(level));
  }
  if (is_gap()) return Symbol(level, kGapIndex);
  return Symbol(level, index_ >> (level_ - level));
}

bool Symbol::IsAncestorOf(const Symbol& other) const {
  if (is_gap() || other.is_gap()) return false;
  if (level_ > other.level_) return false;
  return (other.index_ >> (other.level_ - level_)) == index_;
}

int Symbol::Compare(const Symbol& other) const {
  if (is_gap() || other.is_gap()) return 0;
  // Compare the two ranges by aligning both to the finer level.
  int common = std::max(level_, other.level_);
  uint64_t a_lo = static_cast<uint64_t>(index_) << (common - level_);
  uint64_t a_hi = a_lo + (1ull << (common - level_)) - 1;
  uint64_t b_lo = static_cast<uint64_t>(other.index_)
                  << (common - other.level_);
  uint64_t b_hi = b_lo + (1ull << (common - other.level_)) - 1;
  if (a_hi < b_lo) return -1;
  if (b_hi < a_lo) return 1;
  return 0;  // overlapping => prefix-related
}

bool operator<(const Symbol& a, const Symbol& b) {
  // operator< requires same-level symbols; use Compare() across levels.
  SMETER_DCHECK_EQ(a.level_, b.level_);
  return a.index_ < b.index_;
}

}  // namespace smeter
