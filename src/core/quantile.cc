#include "core/quantile.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace smeter {
namespace {

// Type-7 quantile over sorted data.
double SortedQuantile(const std::vector<double>& sorted, double q) {
  const size_t n = sorted.size();
  if (n == 1) return sorted[0];
  double h = q * static_cast<double>(n - 1);
  size_t lo = static_cast<size_t>(h);
  if (lo >= n - 1) return sorted[n - 1];
  double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

Result<std::vector<double>> SeparatorsFromSorted(
    const std::vector<double>& sorted, size_t count) {
  std::vector<double> seps;
  seps.reserve(count);
  for (size_t i = 1; i <= count; ++i) {
    double q = static_cast<double>(i) / static_cast<double>(count + 1);
    seps.push_back(SortedQuantile(sorted, q));
  }
  return seps;
}

}  // namespace

Result<double> Quantile(std::vector<double> values, double q) {
  if (values.empty()) return FailedPreconditionError("quantile of empty data");
  if (q < 0.0 || q > 1.0) {
    return InvalidArgumentError("quantile q must be in [0, 1], got " +
                                std::to_string(q));
  }
  std::sort(values.begin(), values.end());
  return SortedQuantile(values, q);
}

Result<std::vector<double>> EqualFrequencySeparators(
    const std::vector<double>& values, size_t count) {
  if (values.empty()) {
    return FailedPreconditionError("separators from empty data");
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  return SeparatorsFromSorted(sorted, count);
}

Result<std::vector<double>> DistinctEqualFrequencySeparators(
    const std::vector<double>& values, size_t count) {
  if (values.empty()) {
    return FailedPreconditionError("separators from empty data");
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return SeparatorsFromSorted(sorted, count);
}

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++histogram_[value];
}

double RunningStats::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }

Result<double> RunningStats::RunningQuantile(double q) const {
  if (count_ == 0) return FailedPreconditionError("quantile of empty stream");
  if (q < 0.0 || q > 1.0) {
    return InvalidArgumentError("quantile q must be in [0, 1]");
  }
  double h = q * static_cast<double>(count_ - 1);
  size_t lo_rank = static_cast<size_t>(h);
  double frac = h - static_cast<double>(lo_rank);

  // Walk the ordered histogram to locate the order statistics at ranks
  // lo_rank and lo_rank + 1.
  double lo_value = 0.0;
  double hi_value = 0.0;
  bool have_lo = false;
  size_t cumulative = 0;
  for (const auto& [value, multiplicity] : histogram_) {
    size_t next = cumulative + multiplicity;
    if (!have_lo && lo_rank < next) {
      lo_value = value;
      have_lo = true;
      if (lo_rank + 1 < next || frac == 0.0) {
        hi_value = value;
        break;
      }
      cumulative = next;
      continue;
    }
    if (have_lo) {
      hi_value = value;
      break;
    }
    cumulative = next;
  }
  return lo_value + frac * (hi_value - lo_value);
}

Result<double> RunningStats::Median() const { return RunningQuantile(0.5); }

Result<double> RunningStats::DistinctMedian() const {
  if (count_ == 0) return FailedPreconditionError("median of empty stream");
  const size_t n = histogram_.size();
  double h = 0.5 * static_cast<double>(n - 1);
  size_t lo_rank = static_cast<size_t>(h);
  double frac = h - static_cast<double>(lo_rank);
  auto it = histogram_.begin();
  std::advance(it, static_cast<long>(lo_rank));
  double lo_value = it->first;
  if (frac == 0.0) return lo_value;
  ++it;
  return lo_value + frac * (it->first - lo_value);
}

}  // namespace smeter
