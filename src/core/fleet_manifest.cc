#include "core/fleet_manifest.h"

#include <cctype>
#include <utility>

#include "common/io.h"
#include "common/string_util.h"

namespace smeter {
namespace {

std::optional<std::string> JsonStringField(const std::string& record,
                                           const std::string& key) {
  const std::string marker = "\"" + key + "\":\"";
  size_t start = record.find(marker);
  if (start == std::string::npos) return std::nullopt;
  start += marker.size();
  std::string value;
  for (size_t i = start; i < record.size(); ++i) {
    if (record[i] == '\\' && i + 1 < record.size()) {
      value.push_back(record[++i]);
    } else if (record[i] == '"') {
      return value;
    } else {
      value.push_back(record[i]);
    }
  }
  return std::nullopt;  // unterminated string
}

std::optional<int64_t> JsonIntField(const std::string& record,
                                    const std::string& key) {
  const std::string marker = "\"" + key + "\":";
  size_t start = record.find(marker);
  if (start == std::string::npos) return std::nullopt;
  start += marker.size();
  size_t end = start;
  while (end < record.size() &&
         (std::isdigit(static_cast<unsigned char>(record[end])) ||
          record[end] == '-')) {
    ++end;
  }
  if (end == start) return std::nullopt;
  Result<int64_t> parsed = ParseInt(record.substr(start, end - start));
  if (!parsed.ok()) return std::nullopt;
  return parsed.value();
}

std::string JsonEscape(const std::string& value) {
  std::string out;
  for (char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string ManifestRecord(const HouseholdReport& report) {
  return "{\"name\":\"" + JsonEscape(report.name) + "\",\"status\":\"" +
         HouseholdOutcomeToString(report.outcome) +
         "\",\"attempts\":" + std::to_string(report.attempts) +
         ",\"windows_valid\":" +
         std::to_string(report.quality.windows_valid) +
         ",\"windows_partial\":" +
         std::to_string(report.quality.windows_partial) +
         ",\"windows_gap\":" + std::to_string(report.quality.windows_gap) +
         "}";
}

std::optional<HouseholdReport> ParseManifestRecord(
    const std::string& record) {
  if (record.empty() || record.back() != '}') return std::nullopt;
  std::optional<std::string> name = JsonStringField(record, "name");
  std::optional<std::string> status = JsonStringField(record, "status");
  std::optional<int64_t> attempts = JsonIntField(record, "attempts");
  std::optional<int64_t> valid = JsonIntField(record, "windows_valid");
  std::optional<int64_t> partial = JsonIntField(record, "windows_partial");
  std::optional<int64_t> gap = JsonIntField(record, "windows_gap");
  if (!name || !status || !attempts || !valid || !partial || !gap) {
    return std::nullopt;
  }
  HouseholdReport report;
  report.name = *name;
  if (*status == "ok") {
    report.outcome = HouseholdOutcome::kOk;
  } else if (*status == "degraded") {
    report.outcome = HouseholdOutcome::kDegraded;
  } else if (*status == "quarantined") {
    report.outcome = HouseholdOutcome::kQuarantined;
  } else {
    return std::nullopt;
  }
  report.attempts = static_cast<int>(*attempts);
  report.quality.windows_valid = static_cast<size_t>(*valid);
  report.quality.windows_partial = static_cast<size_t>(*partial);
  report.quality.windows_gap = static_cast<size_t>(*gap);
  return report;
}

std::string BuildManifestLog(const std::vector<HouseholdReport>& reports) {
  std::vector<std::string> records;
  records.reserve(reports.size());
  for (const HouseholdReport& report : reports) {
    records.push_back(ManifestRecord(report));
  }
  return io::BuildAppendLog(records);
}

Result<ManifestContents> LoadFleetManifest(const std::string& path) {
  ManifestContents contents;
  Result<io::AppendLogContents> log = io::ReadAppendLog(path);
  if (!log.ok()) {
    if (log.status().code() == StatusCode::kNotFound) {
      contents.missing = true;
      return contents;
    }
    return log.status();
  }
  contents.valid_bytes = log->valid_bytes;
  contents.torn_tail = log->torn_tail;
  contents.corrupt_midfile = log->corrupt_midfile;
  for (const std::string& record : log->records) {
    std::optional<HouseholdReport> report = ParseManifestRecord(record);
    if (!report) continue;
    contents.reports.push_back(std::move(*report));
  }
  return contents;
}

std::map<std::string, HouseholdReport> CarriedHouseholds(
    const ManifestContents& contents) {
  std::map<std::string, HouseholdReport> carried;
  for (const HouseholdReport& report : contents.reports) {
    if (report.outcome == HouseholdOutcome::kQuarantined) continue;
    carried[report.name] = report;
  }
  return carried;
}

}  // namespace smeter
