// Utility-driven horizontal segmentation (Section 4 future work): "a
// utility-driven horizontal segmentation method that could optimize the
// performances of a chosen analytics".
//
// For reconstruction-oriented analytics the optimal quantizer is the
// classic Lloyd-Max construction: alternate between (a) setting each
// symbol's representative to the centroid of its range's training mass and
// (b) moving each separator to the midpoint of adjacent representatives,
// which provably converges to a local minimum of the expected squared
// reconstruction error. The paper's uniform method minimizes nothing;
// median maximizes entropy; Lloyd-Max minimizes distortion — three points
// on the utility spectrum the ablation bench compares.

#ifndef SMETER_CORE_UTILITY_H_
#define SMETER_CORE_UTILITY_H_

#include <vector>

#include "common/status.h"
#include "core/lookup_table.h"

namespace smeter {

struct LloydMaxOptions {
  // Alphabet size is 2^level.
  int level = 4;
  size_t max_iterations = 100;
  // Stop when no separator moves by more than this fraction of the data
  // range between iterations.
  double tolerance = 1e-6;
};

// Runs Lloyd-Max on `training`, returning the k-1 interior separators.
// Initialization is the equal-frequency (median) solution, which is a good
// starting point on heavy-tailed data. Errors on empty input or a bad
// level.
Result<std::vector<double>> LloydMaxSeparators(
    const std::vector<double>& training, const LloydMaxOptions& options = {});

// Convenience: a ready LookupTable (method kCustom) built from the
// Lloyd-Max separators with training-bucket statistics attached.
Result<LookupTable> BuildLloydMaxTable(const std::vector<double>& training,
                                       const LloydMaxOptions& options = {});

// Expected squared reconstruction error of `table` over `values` using the
// given reconstruction mode — the quantity Lloyd-Max minimizes; exposed so
// callers (and tests) can compare tables on equal footing.
Result<double> MeanSquaredDistortion(const LookupTable& table,
                                     const std::vector<double>& values,
                                     ReconstructionMode mode);

}  // namespace smeter

#endif  // SMETER_CORE_UTILITY_H_
