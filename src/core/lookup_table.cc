#include "core/lookup_table.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/io.h"
#include "common/string_util.h"

namespace smeter {
namespace {

bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

int LevelForAlphabetSize(size_t k) {
  int level = 0;
  while ((size_t{1} << level) < k) ++level;
  return level;
}

// Footer appended by Serialize (v2): "crc32c " + 8 lowercase hex digits of
// the CRC-32C over every preceding byte, newline-terminated. A table blob
// that loses any suffix loses (part of) this line, so truncation is always
// detected, not just bit flips.
std::string Crc32cHex(uint32_t crc) {
  static const char kHex[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[crc & 0xfu];
    crc >>= 4;
  }
  return out;
}

bool ParseCrc32cHex(std::string_view hex, uint32_t* crc) {
  if (hex.size() != 8) return false;
  uint32_t value = 0;
  for (char c : hex) {
    uint32_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint32_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | nibble;
  }
  *crc = value;
  return true;
}

}  // namespace

Result<LookupTable> LookupTable::Build(const std::vector<double>& training,
                                       const LookupTableOptions& options) {
  SMETER_FAULT_POINT("table.build");
  Result<std::vector<double>> seps =
      LearnSeparators(training, options.method, options.level);
  if (!seps.ok()) return seps.status();

  LookupTable table;
  table.method_ = options.method;
  table.level_ = options.level;
  table.separators_ = std::move(seps.value());
  auto [min_it, max_it] = std::minmax_element(training.begin(), training.end());
  // The uniform method's domain starts at zero by construction (2.2a).
  table.domain_min_ =
      options.method == SeparatorMethod::kUniform ? 0.0 : *min_it;
  table.domain_max_ = *max_it;
  table.ComputeBucketStats(training);
  return table;
}

Result<LookupTable> LookupTable::FromSeparators(std::vector<double> separators,
                                                double domain_min,
                                                double domain_max) {
  const size_t k = separators.size() + 1;
  if (k == 1) {
    // A one-symbol alphabet has level 0, which the Symbol type (and the
    // wire format's level byte) cannot represent; it also carries zero
    // information, so reject it instead of producing a degenerate table.
    return InvalidArgumentError(
        "alphabet needs at least one separator (k = 1 is degenerate)");
  }
  if (!IsPowerOfTwo(k)) {
    return InvalidArgumentError(
        "alphabet size (separators + 1) must be a power of two, got " +
        std::to_string(k));
  }
  if (k > (size_t{1} << kMaxSymbolLevel)) {
    return InvalidArgumentError("alphabet too large");
  }
  for (double s : separators) {
    if (!std::isfinite(s)) {
      return InvalidArgumentError("separators must be finite");
    }
  }
  if (!std::is_sorted(separators.begin(), separators.end())) {
    return InvalidArgumentError("separators must be non-decreasing");
  }
  if (!std::isfinite(domain_min) || !std::isfinite(domain_max)) {
    return InvalidArgumentError("domain bounds must be finite");
  }
  if (domain_min > domain_max) {
    return InvalidArgumentError("domain_min > domain_max");
  }
  if (separators.front() < domain_min || separators.back() > domain_max) {
    // Separators partition [domain_min, domain_max]; one outside the domain
    // would invert a symbol's [RangeLow, RangeHigh] interval.
    return InvalidArgumentError("separators outside domain bounds");
  }
  LookupTable table;
  table.method_ = SeparatorMethod::kCustom;
  table.level_ = LevelForAlphabetSize(k);
  table.separators_ = std::move(separators);
  table.domain_min_ = domain_min;
  table.domain_max_ = domain_max;
  table.bucket_means_.assign(k, 0.0);
  table.bucket_counts_.assign(k, 0);
  return table;
}

Status LookupTable::AttachTrainingData(const std::vector<double>& training) {
  if (training.empty()) {
    return FailedPreconditionError("no training data");
  }
  for (double v : training) {
    if (!std::isfinite(v)) {
      return InvalidArgumentError("training data contains non-finite values");
    }
  }
  ComputeBucketStats(training);
  return Status::Ok();
}

void LookupTable::ComputeBucketStats(const std::vector<double>& training) {
  const size_t k = alphabet_size();
  bucket_counts_.assign(k, 0);
  bucket_means_.assign(k, 0.0);
  for (double v : training) {
    uint32_t idx = Encode(v).index();
    const double n = static_cast<double>(++bucket_counts_[idx]);
    // Running convex combination instead of sum/count: the mean stays inside
    // the hull of the data, so finite values near DBL_MAX cannot overflow the
    // accumulator and poison Serialize with an inf. The clamp covers the
    // last-ulp rounding case when both operands sit at ±DBL_MAX.
    constexpr double kMax = std::numeric_limits<double>::max();
    bucket_means_[idx] = std::clamp(
        bucket_means_[idx] * ((n - 1.0) / n) + v / n, -kMax, kMax);
  }
}

Symbol LookupTable::Encode(double value) const {
  // Contract: a NaN reading has no defined bucket; callers on untrusted
  // paths must use EncodeChecked instead.
  SMETER_DCHECK(!std::isnan(value));
  // Definition 3 rule (iii): symbol j iff beta_{j-1} < v <= beta_j, with
  // rules (i)/(ii) clamping the extremes. lower_bound gives the first
  // separator >= value, which is exactly that j.
  auto it = std::lower_bound(separators_.begin(), separators_.end(), value);
  uint32_t index = static_cast<uint32_t>(it - separators_.begin());
  Result<Symbol> symbol = Symbol::Create(level_, index);
  // index <= separators_.size() == 2^level - 1, always valid.
  return symbol.value();  // lint: checked: index <= 2^level - 1 above
}

Result<Symbol> LookupTable::EncodeChecked(double value) const {
  if (std::isnan(value)) {
    return InvalidArgumentError("cannot encode a NaN reading");
  }
  return Encode(value);
}

Result<Symbol> LookupTable::EncodeAtLevel(double value, int level) const {
  if (level < 1 || level > level_) {
    return InvalidArgumentError("level " + std::to_string(level) +
                                " outside [1, " + std::to_string(level_) +
                                "]");
  }
  return Encode(value).Coarsen(level);
}

Result<double> LookupTable::RangeLow(const Symbol& symbol) const {
  if (symbol.is_gap()) {
    return InvalidArgumentError("GAP symbol has no value range");
  }
  if (symbol.level() > level_) {
    return InvalidArgumentError("symbol finer than table");
  }
  if (symbol.index() == 0) return domain_min_;
  // The symbol covers finest indices [index << d, ...]; its lower bound is
  // the separator just before its first finest bucket.
  int d = level_ - symbol.level();
  size_t first = static_cast<size_t>(symbol.index()) << d;
  return SMETER_CHECKED_AT(separators_, first - 1);
}

Result<double> LookupTable::RangeHigh(const Symbol& symbol) const {
  if (symbol.is_gap()) {
    return InvalidArgumentError("GAP symbol has no value range");
  }
  if (symbol.level() > level_) {
    return InvalidArgumentError("symbol finer than table");
  }
  if (symbol.index() + 1 == (1u << symbol.level())) return domain_max_;
  int d = level_ - symbol.level();
  size_t last = (static_cast<size_t>(symbol.index() + 1) << d) - 1;
  return SMETER_CHECKED_AT(separators_, last);
}

Result<double> LookupTable::Reconstruct(const Symbol& symbol,
                                        ReconstructionMode mode) const {
  Result<double> lo = RangeLow(symbol);
  if (!lo.ok()) return lo.status();
  Result<double> hi = RangeHigh(symbol);
  if (!hi.ok()) return hi.status();
  // The representative value must land inside [lo, hi]; accumulation
  // rounding can overshoot by an ulp (found by the fuzz harness), and
  // lo + hi can overflow for domains near DBL_MAX, so every return is the
  // overflow-safe midpoint or mean clamped into the range.
  const double center =
      std::clamp(0.5 * lo.value() + 0.5 * hi.value(), lo.value(), hi.value());
  if (mode == ReconstructionMode::kRangeCenter) {
    return center;
  }
  // Weighted mean of the finest buckets under this symbol, accumulated as a
  // running convex combination so it stays finite.
  int d = level_ - symbol.level();
  size_t first = static_cast<size_t>(symbol.index()) << d;
  size_t count = size_t{1} << d;
  double mean = 0.0;
  size_t n = 0;
  for (size_t i = first; i < first + count; ++i) {
    const size_t c = bucket_counts_[i];
    if (c == 0) continue;
    n += c;
    const double w = static_cast<double>(c) / static_cast<double>(n);
    mean = mean * (1.0 - w) + bucket_means_[i] * w;
  }
  if (n == 0) return center;
  return std::clamp(mean, lo.value(), hi.value());  // lint: checked: lo/hi .ok()-guarded at function top
}

Result<std::vector<double>> LookupTable::SeparatorsAtLevel(int l) const {
  if (l < 1 || l > level_) {
    return InvalidArgumentError("level outside table range");
  }
  std::vector<double> seps;
  size_t step = size_t{1} << (level_ - l);
  for (size_t i = step; i < separators_.size() + 1; i += step) {
    seps.push_back(separators_[i - 1]);
  }
  return seps;
}

std::string LookupTable::Serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << "smeter-lookup-table v2\n";
  out << "method " << SeparatorMethodName(method_) << "\n";
  out << "level " << level_ << "\n";
  out << "domain " << domain_min_ << " " << domain_max_ << "\n";
  out << "separators";
  for (double s : separators_) out << " " << s;
  out << "\nmeans";
  for (double m : bucket_means_) out << " " << m;
  out << "\ncounts";
  for (size_t c : bucket_counts_) out << " " << c;
  out << "\n";
  std::string body = out.str();
  body += "crc32c " + Crc32cHex(io::Crc32c(body)) + "\n";
  return body;
}

Result<LookupTable> LookupTable::Deserialize(const std::string& text) {
  const size_t first_eol = text.find('\n');
  const std::string_view first_line =
      Trim(first_eol == std::string::npos
               ? std::string_view(text)
               : std::string_view(text).substr(0, first_eol));
  std::string body = text;
  if (first_line == "smeter-lookup-table v2") {
    // v2 carries a mandatory CRC footer over everything before it. Verify
    // before parsing a single field: a blob that fails here is damaged
    // (kDataLoss), and any truncation destroys the footer line itself.
    const size_t footer = text.rfind("\ncrc32c ");
    if (footer == std::string::npos) {
      return DataLossError("v2 lookup table missing crc32c footer");
    }
    const size_t footer_line = footer + 1;  // keep the preceding '\n' in body
    // The footer must be the exact canonical trailer Serialize emits —
    // "crc32c " + 8 hex digits + '\n', ending the blob. Anything looser
    // would let a flipped byte in the trailer itself slip through.
    const std::string_view footer_text =
        std::string_view(text).substr(footer_line);
    constexpr std::string_view kFooterPrefix = "crc32c ";
    uint32_t want_crc = 0;
    if (footer_text.size() != kFooterPrefix.size() + 9 ||
        footer_text.substr(0, kFooterPrefix.size()) != kFooterPrefix ||
        footer_text.back() != '\n' ||
        !ParseCrc32cHex(
            footer_text.substr(kFooterPrefix.size(), 8), &want_crc)) {
      return DataLossError("malformed crc32c footer");
    }
    body = text.substr(0, footer_line);
    if (io::Crc32c(body) != want_crc) {
      return DataLossError("lookup table checksum mismatch");
    }
  } else if (first_line != "smeter-lookup-table v1") {
    // v1 is the legacy, pre-checksum format and stays readable.
    return InvalidArgumentError("not a smeter lookup table blob");
  }
  std::vector<std::string> lines = Split(body, '\n');
  if (lines.size() < 7) {
    return InvalidArgumentError("lookup table blob too short");
  }
  LookupTable table;

  auto fields = [](const std::string& line) { return Split(std::string(Trim(line)), ' '); };

  std::vector<std::string> method_f = fields(lines[1]);
  if (method_f.size() != 2 || method_f[0] != "method") {
    return InvalidArgumentError("bad method line");
  }
  if (method_f[1] == "uniform") {
    table.method_ = SeparatorMethod::kUniform;
  } else if (method_f[1] == "median") {
    table.method_ = SeparatorMethod::kMedian;
  } else if (method_f[1] == "distinctmedian") {
    table.method_ = SeparatorMethod::kDistinctMedian;
  } else if (method_f[1] == "custom") {
    table.method_ = SeparatorMethod::kCustom;
  } else {
    return InvalidArgumentError("unknown method: " + method_f[1]);
  }

  std::vector<std::string> level_f = fields(lines[2]);
  if (level_f.size() != 2 || level_f[0] != "level") {
    return InvalidArgumentError("bad level line");
  }
  Result<int64_t> level = ParseInt(level_f[1]);
  if (!level.ok()) return level.status();
  if (*level < 1 || *level > kMaxSymbolLevel) {
    return InvalidArgumentError("level out of range");
  }
  table.level_ = static_cast<int>(*level);
  const size_t k = size_t{1} << table.level_;

  std::vector<std::string> domain_f = fields(lines[3]);
  if (domain_f.size() != 3 || domain_f[0] != "domain") {
    return InvalidArgumentError("bad domain line");
  }
  Result<double> dmin = ParseDouble(domain_f[1]);
  Result<double> dmax = ParseDouble(domain_f[2]);
  if (!dmin.ok()) return dmin.status();
  if (!dmax.ok()) return dmax.status();
  if (!std::isfinite(*dmin) || !std::isfinite(*dmax) || *dmin > *dmax) {
    return InvalidArgumentError("bad domain bounds");
  }
  table.domain_min_ = *dmin;
  table.domain_max_ = *dmax;

  auto parse_doubles = [&](const std::string& line, const std::string& tag,
                           size_t expect,
                           std::vector<double>& out) -> Status {
    std::vector<std::string> f = fields(line);
    if (f.empty() || f[0] != tag) {
      return InvalidArgumentError("bad " + tag + " line");
    }
    if (f.size() != expect + 1) {
      return InvalidArgumentError(tag + " count mismatch");
    }
    out.clear();
    for (size_t i = 1; i < f.size(); ++i) {
      Result<double> v = ParseDouble(f[i]);
      if (!v.ok()) return v.status();
      out.push_back(*v);
    }
    return Status::Ok();
  };

  SMETER_RETURN_IF_ERROR(
      parse_doubles(lines[4], "separators", k - 1, table.separators_));
  for (double s : table.separators_) {
    if (!std::isfinite(s)) {
      return InvalidArgumentError("non-finite separator");
    }
  }
  if (!std::is_sorted(table.separators_.begin(), table.separators_.end())) {
    return InvalidArgumentError("separators not sorted");
  }
  if (table.separators_.front() < table.domain_min_ ||
      table.separators_.back() > table.domain_max_) {
    return InvalidArgumentError("separators outside domain bounds");
  }
  SMETER_RETURN_IF_ERROR(
      parse_doubles(lines[5], "means", k, table.bucket_means_));
  for (double m : table.bucket_means_) {
    if (!std::isfinite(m)) {
      return InvalidArgumentError("non-finite bucket mean");
    }
  }

  std::vector<std::string> count_f = fields(lines[6]);
  if (count_f.size() != k + 1 || count_f[0] != "counts") {
    return InvalidArgumentError("bad counts line");
  }
  table.bucket_counts_.clear();
  for (size_t i = 1; i < count_f.size(); ++i) {
    Result<int64_t> c = ParseInt(count_f[i]);
    if (!c.ok()) return c.status();
    if (*c < 0) return InvalidArgumentError("negative bucket count");
    table.bucket_counts_.push_back(static_cast<size_t>(*c));
  }
  return table;
}

}  // namespace smeter
