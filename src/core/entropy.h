// Entropy of symbol streams.
//
// Section 2.2 states the median method "aims to maximize the entropy of the
// generated symbols"; Section 4 uses entropy as the lens for why median
// suits classification. These helpers quantify that: a median table drives
// the symbol distribution toward uniform (entropy -> level bits), while a
// uniform table on log-normal data concentrates mass in the low symbols.

#ifndef SMETER_CORE_ENTROPY_H_
#define SMETER_CORE_ENTROPY_H_

#include <vector>

#include "common/status.h"
#include "core/symbolic_series.h"

namespace smeter {

// Shannon entropy (bits) of a discrete distribution given by counts.
// Zero-count cells contribute nothing. Errors if all counts are zero.
Result<double> EntropyBits(const std::vector<size_t>& counts);

// Entropy (bits) of the symbol distribution of `series`. Maximum possible
// is series.level() bits.
Result<double> SymbolEntropyBits(const SymbolicSeries& series);

// Normalized entropy in [0, 1]: SymbolEntropyBits / level.
Result<double> NormalizedSymbolEntropy(const SymbolicSeries& series);

}  // namespace smeter

#endif  // SMETER_CORE_ENTROPY_H_
