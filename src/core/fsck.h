// Integrity checker for a fleet archive directory (`smeter fsck`).
//
// Walks one encode-fleet output directory and verifies every artifact the
// durable-storage layer protects:
//
//   fleet.manifest   append-log framing and per-record CRC32C; torn tails
//                    (crash signature) and mid-file corruption are distinct
//   *.symbols        wire-format parse including v3 header/block checksums
//   *.table          lookup-table parse including the v2 crc32c footer
//   *.spool          client upload spools: append-log framing and record
//                    CRC32C (torn tails are truncated, mid-file damage is
//                    quarantined; record semantics stay with the client SDK)
//   *.tmp            stray scratch files from an interrupted AtomicWriteFile
//   cross-check      every ok/degraded manifest record must have its
//                    .table and .symbols on disk
//
// Query-store awareness (archive_store.h layouts, `smeter store-build`):
//
//   store.index      append-log framing and per-record CRC32C; torn tails
//                    are truncated, mid-file damage quarantined (a
//                    store-build rebuilds the index)
//   p<id>/*.seg      partition segments: full v3 parse including block
//                    checksums; damaged segments are quarantined
//   p<id>/rollup.tab pre-computed rollup rows: framing + row parse; torn
//                    tails truncated, damage quarantined. A rollup older
//                    than any segment in its partition (or covering a
//                    quarantined segment) is STALE: flagged, and repair
//                    removes it so `store-rollup` rebuilds it
//   current.tab/.log hot current-table logs (also written by a live
//                    ingestd): framing checks, torn tails truncated,
//                    damage quarantined
//
// In repair mode the fixes are deliberately conservative: quarantine a
// damaged artifact (rename to <file>.corrupt), drop its manifest record,
// truncate a torn manifest tail, rewrite a damaged manifest from its valid
// records, delete stray tmp files. Repair never fabricates data — the
// dropped households are simply re-encoded by `encode-fleet --resume`, so
// repair + resume converges to the archive a clean run would have written.
//
// Exit codes follow fsck(8) conventions:
//   0  clean
//   1  problems found and repaired (run `encode-fleet --resume` next)
//   4  problems found and left unrepaired (or unrepairable)

#ifndef SMETER_CORE_FSCK_H_
#define SMETER_CORE_FSCK_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace smeter {

struct FsckOptions {
  // Fix what can be fixed (quarantine, truncate, rewrite, delete) instead
  // of only reporting.
  bool repair = false;
};

struct FsckIssue {
  std::string path;  // file name relative to the archive directory
  // One of: corrupt_symbols, corrupt_table, torn_manifest,
  // corrupt_manifest, invalid_manifest, missing_artifact, stray_tmp,
  // torn_spool, corrupt_spool, corrupt_segment, torn_rollup,
  // corrupt_rollup, stale_rollup, torn_store_index, corrupt_store_index,
  // torn_current, corrupt_current.
  std::string kind;
  std::string detail;    // human-readable specifics (e.g. which block)
  bool repaired = false;
  std::string action;    // what repair did: quarantined, truncated,
                         // rewritten, removed, dropped_record; empty if
                         // nothing was done
};

struct FsckReport {
  std::string dir;
  size_t files_checked = 0;
  size_t symbols_ok = 0;
  size_t tables_ok = 0;
  size_t spools_ok = 0;
  size_t manifest_records = 0;
  // Query-store findings: a partition is ok when every segment in it
  // verified; a rollup is ok when its rows parsed clean AND it is not
  // stale relative to the partition's segments.
  size_t partitions_checked = 0;
  size_t partitions_ok = 0;
  size_t rollups_ok = 0;
  size_t segments_ok = 0;
  bool repair_attempted = false;
  std::vector<FsckIssue> issues;

  bool clean() const { return issues.empty(); }
};

// Checks (and with options.repair, repairs) the archive at `dir`. Errors
// only when the directory itself cannot be walked or a repair action
// fails; integrity findings are returned in the report, not as errors.
Result<FsckReport> FsckArchive(const std::string& dir,
                               const FsckOptions& options);

// Machine-readable JSON rendering of a report (single object, stable key
// order, newline-terminated).
std::string FsckReportToJson(const FsckReport& report);

// fsck(8)-style process exit code for `report` (see file comment).
int FsckExitCode(const FsckReport& report);

}  // namespace smeter

#endif  // SMETER_CORE_FSCK_H_
