// Variable-length binary symbols (Section 2, Figure 1).
//
// The paper's alphabet is built by recursively halving the value range:
// level 1 has symbols '0' and '1', level 2 has '00'..'11', and so on. A
// symbol is therefore a path in a binary tree, identified here by
// (level, index): level = number of bits, index = the bits read as an
// unsigned integer. The alphabet only has a *partial* order across levels —
// '0' "covers" both '00' and '01' (prefix relation), while '0' and '10' are
// ordered ('0' < '10') and '0' vs '01' are related by refinement, not order.

#ifndef SMETER_CORE_SYMBOL_H_
#define SMETER_CORE_SYMBOL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace smeter {

// Maximum supported resolution: 2^12 = 4096 symbols, far beyond the paper's
// 16 (the paper notes too many symbols defeats the purpose).
inline constexpr int kMaxSymbolLevel = 12;

// One symbol of the hierarchical binary alphabet.
//
// Value type; totally ordered only within one level. Across levels, use
// IsAncestorOf / Comparable helpers.
class Symbol {
 public:
  Symbol() : level_(1), index_(0) {}

  // `level` in [1, kMaxSymbolLevel]; `index` in [0, 2^level).
  // Invalid combinations are reported via Create().
  static Result<Symbol> Create(int level, uint32_t index);

  // Parses a bit string such as "0101". Errors on empty, too long, or
  // non-binary input.
  static Result<Symbol> FromBits(const std::string& bits);

  int level() const { return level_; }
  uint32_t index() const { return index_; }

  // Alphabet size at this symbol's level (2^level).
  uint32_t AlphabetSize() const { return 1u << level_; }

  // Renders the symbol as its bit string, e.g. (3, 5) -> "101".
  std::string ToBits() const;

  // Drops resolution to `level` (a prefix of the bit string). Errors if
  // `level` exceeds this symbol's level or is < 1.
  Result<Symbol> Coarsen(int level) const;

  // True if this symbol's range contains `other`'s range, i.e. this
  // symbol's bits are a (non-strict) prefix of `other`'s.
  bool IsAncestorOf(const Symbol& other) const;

  // Cross-resolution comparison (Section 4: "lower resolution symbols can
  // be compared to higher resolution ones"). Returns:
  //   -1 if every value under *this precedes every value under `other`,
  //   +1 for the converse,
  //    0 if the ranges are related by refinement (one is a prefix of the
  //      other) or equal.
  int Compare(const Symbol& other) const;

  // Total order *within a level*; mixing levels is a bug guarded by assert.
  friend bool operator<(const Symbol& a, const Symbol& b);
  friend bool operator==(const Symbol& a, const Symbol& b) {
    return a.level_ == b.level_ && a.index_ == b.index_;
  }

 private:
  Symbol(int level, uint32_t index) : level_(level), index_(index) {}

  int level_;
  uint32_t index_;
};

}  // namespace smeter

#endif  // SMETER_CORE_SYMBOL_H_
