// Variable-length binary symbols (Section 2, Figure 1).
//
// The paper's alphabet is built by recursively halving the value range:
// level 1 has symbols '0' and '1', level 2 has '00'..'11', and so on. A
// symbol is therefore a path in a binary tree, identified here by
// (level, index): level = number of bits, index = the bits read as an
// unsigned integer. The alphabet only has a *partial* order across levels —
// '0' "covers" both '00' and '01' (prefix relation), while '0' and '10' are
// ordered ('0' < '10') and '0' vs '01' are related by refinement, not order.

#ifndef SMETER_CORE_SYMBOL_H_
#define SMETER_CORE_SYMBOL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace smeter {

// Maximum supported resolution: 2^12 = 4096 symbols, far beyond the paper's
// 16 (the paper notes too many symbols defeats the purpose).
inline constexpr int kMaxSymbolLevel = 12;

// One symbol of the hierarchical binary alphabet.
//
// Value type; totally ordered only within one level. Across levels, use
// IsAncestorOf / Comparable helpers.
//
// Besides the 2^level value symbols, every level has one out-of-alphabet
// GAP symbol (Symbol::Gap) standing for a window with no usable readings —
// real fleets deliver gappy data, and dropping the window would silently
// break the fixed cadence the wire format and downstream alignment rely
// on. A GAP carries a level (so it travels in a SymbolicSeries) but no
// value range: Encode never produces it from a reading, index() on it is a
// contract violation, and histograms/entropy skip it.
class Symbol {
 public:
  Symbol() : level_(1), index_(0) {}

  // `level` in [1, kMaxSymbolLevel]; `index` in [0, 2^level).
  // Invalid combinations are reported via Create(). GAP symbols are only
  // constructible via Gap().
  static Result<Symbol> Create(int level, uint32_t index);

  // The GAP (missing-window) symbol at `level`. `level` must be in
  // [1, kMaxSymbolLevel] (contract-checked).
  static Symbol Gap(int level);

  // Bulk-ingest fast path: a value symbol from an (level, index) pair the
  // caller has already range-checked for the whole batch, skipping the
  // per-symbol Result<> of Create(). Contract (DCHECK'd): `level` in
  // [1, kMaxSymbolLevel], `index` < 2^level.
  static Symbol FromValidated(int level, uint32_t index);

  // Parses a bit string such as "0101". Errors on empty, too long, or
  // non-binary input.
  static Result<Symbol> FromBits(const std::string& bits);

  int level() const { return level_; }
  // The value-symbol index. Contract: !is_gap() — a GAP has no position in
  // the value alphabet, and indexing an array of 2^level entries with it
  // would read out of bounds.
  uint32_t index() const;

  // True for the out-of-alphabet GAP symbol.
  bool is_gap() const { return index_ == kGapIndex; }

  // Alphabet size at this symbol's level (2^level).
  uint32_t AlphabetSize() const { return 1u << level_; }

  // Renders the symbol as its bit string, e.g. (3, 5) -> "101"; a GAP
  // renders as level underscores, e.g. "___".
  std::string ToBits() const;

  // Drops resolution to `level` (a prefix of the bit string). Errors if
  // `level` exceeds this symbol's level or is < 1. A GAP coarsens to the
  // GAP of the coarser level (a window with no data has no data at any
  // resolution).
  Result<Symbol> Coarsen(int level) const;

  // True if this symbol's range contains `other`'s range, i.e. this
  // symbol's bits are a (non-strict) prefix of `other`'s. A GAP has no
  // range: false whenever either side is a GAP.
  bool IsAncestorOf(const Symbol& other) const;

  // Cross-resolution comparison (Section 4: "lower resolution symbols can
  // be compared to higher resolution ones"). Returns:
  //   -1 if every value under *this precedes every value under `other`,
  //   +1 for the converse,
  //    0 if the ranges are related by refinement (one is a prefix of the
  //      other) or equal.
  // A GAP has no value range, so it is unordered against everything: 0.
  int Compare(const Symbol& other) const;

  // Total order *within a level*; mixing levels is a bug guarded by assert.
  // The GAP sorts after every value symbol of its level.
  friend bool operator<(const Symbol& a, const Symbol& b);
  friend bool operator==(const Symbol& a, const Symbol& b) {
    return a.level_ == b.level_ && a.index_ == b.index_;
  }

 private:
  // Sentinel index for the GAP symbol; deliberately far outside any
  // alphabet (max level is 12 -> max valid index 4095).
  static constexpr uint32_t kGapIndex = 0xffffffffu;

  Symbol(int level, uint32_t index) : level_(level), index_(index) {}

  int level_;
  uint32_t index_;
};

}  // namespace smeter

#endif  // SMETER_CORE_SYMBOL_H_
