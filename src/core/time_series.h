// Time-series primitives (Definition 1 of the paper).
//
// A time series is an ordered sequence of (timestamp, value) samples with
// non-decreasing timestamps. Timestamps are integer seconds since an
// arbitrary epoch; smart meters in the paper sample at 1 Hz, but nothing in
// the library requires a fixed rate — gap handling is explicit.

#ifndef SMETER_CORE_TIME_SERIES_H_
#define SMETER_CORE_TIME_SERIES_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace smeter {

// Seconds since an arbitrary epoch.
using Timestamp = int64_t;

inline constexpr int64_t kSecondsPerDay = 86400;
inline constexpr int64_t kSecondsPerHour = 3600;

// One measurement: the paper's two-tuple s_i = (t_i, v_i).
struct Sample {
  Timestamp timestamp = 0;
  double value = 0.0;

  friend bool operator==(const Sample& a, const Sample& b) {
    return a.timestamp == b.timestamp && a.value == b.value;
  }
};

// A half-open timestamp interval [begin, end).
struct TimeRange {
  Timestamp begin = 0;
  Timestamp end = 0;

  int64_t duration() const { return end - begin; }
  bool Contains(Timestamp t) const { return t >= begin && t < end; }
};

// An ordered sequence of samples.
//
// Invariant: timestamps are non-decreasing (equal timestamps are allowed,
// matching Definition 1's "t_i no earlier than t_j for j <= i").
// Append() enforces this; bulk construction validates via FromSamples().
class TimeSeries {
 public:
  TimeSeries() = default;

  // Validates ordering; returns InvalidArgument on a timestamp regression
  // or a non-finite value.
  static Result<TimeSeries> FromSamples(std::vector<Sample> samples);

  // Builds a gapless 1-sample-per-`step`-seconds series starting at `start`.
  static TimeSeries FromValues(const std::vector<double>& values,
                               Timestamp start = 0, int64_t step = 1);

  // Appends one sample; returns InvalidArgument if it would violate the
  // ordering invariant or carries a non-finite value.
  Status Append(Sample sample);

  bool empty() const { return samples_.empty(); }
  size_t size() const { return samples_.size(); }
  const Sample& operator[](size_t i) const {
    SMETER_DCHECK_LT(i, samples_.size());
    return samples_[i];
  }
  const std::vector<Sample>& samples() const { return samples_; }

  std::vector<Sample>::const_iterator begin() const { return samples_.begin(); }
  std::vector<Sample>::const_iterator end() const { return samples_.end(); }

  // Contract: the series must be non-empty.
  const Sample& front() const {
    SMETER_DCHECK(!samples_.empty());
    return samples_.front();
  }
  const Sample& back() const {
    SMETER_DCHECK(!samples_.empty());
    return samples_.back();
  }

  // Copies out the value column.
  std::vector<double> Values() const;

  // Returns the sub-series with timestamps in [range.begin, range.end).
  TimeSeries Slice(const TimeRange& range) const;

  // Returns maximal gaps: intervals between consecutive samples whose
  // spacing exceeds `max_spacing` seconds.
  std::vector<TimeRange> FindGaps(int64_t max_spacing) const;

  // Total seconds covered by samples assuming each sample covers
  // `sample_period` seconds. Used for the paper's ">= 20 h of data per day"
  // day-selection rule.
  int64_t CoverageSeconds(int64_t sample_period) const {
    return static_cast<int64_t>(samples_.size()) * sample_period;
  }

  // Min/max/mean of the value column; error on an empty series.
  Result<double> MinValue() const;
  Result<double> MaxValue() const;
  Result<double> MeanValue() const;

 private:
  std::vector<Sample> samples_;
};

// Element-wise sum of two series defined on the same timestamps (the paper
// sums the two REDD mains channels into a house total). Timestamps must
// match exactly; returns InvalidArgument otherwise.
Result<TimeSeries> SumAligned(const TimeSeries& a, const TimeSeries& b);

}  // namespace smeter

#endif  // SMETER_CORE_TIME_SERIES_H_
