#include "core/drift.h"

#include <cmath>

namespace smeter {
namespace {

// Laplace-smoothed proportions from raw counts.
std::vector<double> SmoothedFractions(const std::vector<size_t>& counts) {
  const double k = static_cast<double>(counts.size());
  double total = 0.0;
  for (size_t c : counts) total += static_cast<double>(c);
  std::vector<double> fractions(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    fractions[i] = (static_cast<double>(counts[i]) + 1.0) / (total + k);
  }
  return fractions;
}

}  // namespace

Result<DriftDetector> DriftDetector::Create(
    std::vector<size_t> reference_counts, const DriftOptions& options) {
  if (reference_counts.empty()) {
    return InvalidArgumentError("reference_counts empty");
  }
  size_t total = 0;
  for (size_t c : reference_counts) total += c;
  if (total == 0) {
    return InvalidArgumentError("reference_counts all zero");
  }
  if (options.window_size == 0 || options.min_samples == 0) {
    return InvalidArgumentError("window_size and min_samples must be > 0");
  }
  if (options.psi_threshold <= 0.0) {
    return InvalidArgumentError("psi_threshold must be > 0");
  }
  return DriftDetector(std::move(reference_counts), options);
}

DriftDetector::DriftDetector(std::vector<size_t> reference_counts,
                             const DriftOptions& options)
    : options_(options),
      reference_fraction_(SmoothedFractions(reference_counts)),
      recent_counts_(reference_counts.size(), 0) {}

void DriftDetector::Observe(uint32_t symbol_index) {
  if (symbol_index >= recent_counts_.size()) return;  // ignore foreign symbol
  window_.push_back(symbol_index);
  ++recent_counts_[symbol_index];
  if (window_.size() > options_.window_size) {
    --recent_counts_[window_.front()];
    window_.pop_front();
  }
}

double DriftDetector::Psi() const {
  if (window_.size() < options_.min_samples) return 0.0;
  std::vector<double> recent = SmoothedFractions(recent_counts_);
  double psi = 0.0;
  for (size_t i = 0; i < recent.size(); ++i) {
    psi += (recent[i] - reference_fraction_[i]) *
           std::log(recent[i] / reference_fraction_[i]);
  }
  return psi;
}

Status DriftDetector::Rebase(std::vector<size_t> reference_counts) {
  if (reference_counts.size() != recent_counts_.size()) {
    return InvalidArgumentError("reference size changed");
  }
  size_t total = 0;
  for (size_t c : reference_counts) total += c;
  if (total == 0) return InvalidArgumentError("reference_counts all zero");
  reference_fraction_ = SmoothedFractions(reference_counts);
  recent_counts_.assign(recent_counts_.size(), 0);
  window_.clear();
  return Status::Ok();
}

}  // namespace smeter
