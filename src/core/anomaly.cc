#include "core/anomaly.h"

#include <cmath>

namespace smeter {

size_t AnomalyDetector::BucketOf(Timestamp t) const {
  int64_t second_of_day = ((t % kSecondsPerDay) + kSecondsPerDay) %
                          kSecondsPerDay;
  int64_t bucket_span = kSecondsPerDay / options_.time_buckets;
  return static_cast<size_t>(second_of_day / bucket_span);
}

size_t AnomalyDetector::CellOf(size_t bucket, uint32_t previous,
                               uint32_t current) const {
  size_t k = size_t{1} << level_;
  return (bucket * k + previous) * k + current;
}

Result<AnomalyDetector> AnomalyDetector::Fit(const SymbolicSeries& reference,
                                             const AnomalyOptions& options) {
  if (options.time_buckets < 1 || 24 % options.time_buckets != 0) {
    return InvalidArgumentError("time_buckets must divide 24");
  }
  if (options.smoothing <= 0.0) {
    return InvalidArgumentError("smoothing must be > 0");
  }
  if (options.ema_alpha <= 0.0 || options.ema_alpha > 1.0) {
    return InvalidArgumentError("ema_alpha must be in (0, 1]");
  }
  if (options.threshold_bits <= 0.0) {
    return InvalidArgumentError("threshold_bits must be > 0");
  }
  if (reference.size() < 2) {
    return FailedPreconditionError("reference needs at least two symbols");
  }

  AnomalyDetector detector(reference.level(), options);
  size_t k = size_t{1} << reference.level();
  size_t buckets = static_cast<size_t>(options.time_buckets);
  detector.counts_.assign(buckets * k * k, 0.0);
  detector.totals_.assign(buckets * k, 0.0);
  for (size_t i = 1; i < reference.size(); ++i) {
    size_t bucket = detector.BucketOf(reference[i].timestamp);
    uint32_t previous = reference[i - 1].symbol.index();
    uint32_t current = reference[i].symbol.index();
    detector.counts_[detector.CellOf(bucket, previous, current)] += 1.0;
    detector.totals_[bucket * k + previous] += 1.0;
  }
  return detector;
}

Result<std::vector<AnomalyScore>> AnomalyDetector::Score(
    const SymbolicSeries& stream) const {
  if (stream.level() != level_) {
    return InvalidArgumentError("stream level differs from reference");
  }
  const size_t k = size_t{1} << level_;
  const double k_double = static_cast<double>(k);

  std::vector<AnomalyScore> scores;
  scores.reserve(stream.size());
  double ema = 0.0;
  bool ema_started = false;
  for (size_t i = 0; i < stream.size(); ++i) {
    AnomalyScore score;
    score.timestamp = stream[i].timestamp;
    if (i == 0) {
      score.surprisal_bits = 0.0;  // no context for the first symbol
    } else {
      size_t bucket = BucketOf(stream[i].timestamp);
      uint32_t previous = stream[i - 1].symbol.index();
      uint32_t current = stream[i].symbol.index();
      double count = counts_[CellOf(bucket, previous, current)];
      double total = totals_[bucket * k + previous];
      double p = (count + options_.smoothing) /
                 (total + options_.smoothing * k_double);
      score.surprisal_bits = -std::log2(p);
    }
    if (!ema_started) {
      ema = score.surprisal_bits;
      ema_started = true;
    } else {
      ema = options_.ema_alpha * score.surprisal_bits +
            (1.0 - options_.ema_alpha) * ema;
    }
    score.smoothed_bits = ema;
    score.anomalous = ema > options_.threshold_bits;
    scores.push_back(score);
  }
  return scores;
}

Result<std::vector<TimeRange>> AnomalyDetector::AnomalousRanges(
    const SymbolicSeries& stream) const {
  Result<std::vector<AnomalyScore>> scores = Score(stream);
  if (!scores.ok()) return scores.status();
  std::vector<TimeRange> ranges;
  bool open = false;
  Timestamp begin = 0;
  Timestamp last = 0;
  for (const AnomalyScore& score : *scores) {
    if (score.anomalous) {
      if (!open) {
        open = true;
        begin = score.timestamp;
      }
      last = score.timestamp;
    } else if (open) {
      ranges.push_back({begin, last + 1});
      open = false;
    }
  }
  if (open) ranges.push_back({begin, last + 1});
  return ranges;
}

}  // namespace smeter
