// Similarity search over symbolic words — an iSAX-flavoured index (Shieh &
// Keogh, KDD'08, the paper's closest related work) adapted to the paper's
// empirical lookup tables instead of Gaussian breakpoints.
//
// Words are fixed-length sequences of same-level symbols under one shared
// LookupTable (e.g. one word per day: 24 hourly symbols). The distance is
// the range-gap lower bound: for two symbols, the gap between their value
// ranges (0 when ranges touch); for words, the L2 combination. Because
// coarsening only widens ranges, the distance computed at a coarser level
// lower-bounds the fine distance — which is exactly what makes iSAX-style
// bucket pruning sound.
//
// The index groups words by their coarse (level-`prune_level`) signature;
// a k-NN query evaluates one bound per bucket and skips buckets that
// cannot beat the current k-th best.

#ifndef SMETER_CORE_SYMBOLIC_INDEX_H_
#define SMETER_CORE_SYMBOLIC_INDEX_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/lookup_table.h"
#include "core/symbol.h"

namespace smeter {

// Distance between the value ranges of two same-table symbols: 0 when the
// ranges overlap or touch, else the gap between them. Symbols may have
// different levels (cross-resolution comparison, Section 4).
Result<double> SymbolRangeGap(const Symbol& a, const Symbol& b,
                              const LookupTable& table);

// Lower-bounding L2 distance between equal-length words.
Result<double> WordLowerBoundDistance(const std::vector<Symbol>& a,
                                      const std::vector<Symbol>& b,
                                      const LookupTable& table);

struct IndexMatch {
  uint64_t id = 0;
  double distance = 0.0;

  friend bool operator==(const IndexMatch&, const IndexMatch&) = default;
};

class SymbolicIndex {
 public:
  struct Options {
    // Words are grouped by their symbols coarsened to this level.
    int prune_level = 1;
  };

  // `table` defines the value ranges; `word_length` the symbols per word.
  static Result<SymbolicIndex> Create(LookupTable table, size_t word_length,
                                      const Options& options);
  static Result<SymbolicIndex> Create(LookupTable table, size_t word_length) {
    return Create(std::move(table), word_length, Options());
  }

  // Inserts a word of `word_length` finest-level symbols. Duplicate ids
  // are rejected.
  Status Insert(uint64_t id, std::vector<Symbol> word);

  // Convenience: encode a vector of raw values through the table first.
  Status InsertValues(uint64_t id, const std::vector<double>& values);

  size_t size() const { return words_.size(); }
  size_t num_buckets() const { return buckets_.size(); }

  // The k nearest stored words to `query` (ties by lower id), sorted by
  // ascending distance. `query` must have word_length finest-level
  // symbols. Returns fewer than k when the index is smaller.
  Result<std::vector<IndexMatch>> NearestNeighbors(
      const std::vector<Symbol>& query, size_t k) const;
  Result<std::vector<IndexMatch>> NearestNeighborsValues(
      const std::vector<double>& query_values, size_t k) const;

  // All stored words within `radius` of `query`, sorted by distance.
  Result<std::vector<IndexMatch>> RangeQuery(const std::vector<Symbol>& query,
                                             double radius) const;

  // Buckets inspected by the last NearestNeighbors call — exposes the
  // pruning effectiveness for tests and benches.
  size_t last_buckets_examined() const { return last_buckets_examined_; }

 private:
  SymbolicIndex(LookupTable table, size_t word_length,
                const Options& options)
      : table_(std::move(table)),
        word_length_(word_length),
        options_(options) {}

  Status ValidateWord(const std::vector<Symbol>& word) const;
  std::vector<uint32_t> CoarseSignature(const std::vector<Symbol>& word) const;

  LookupTable table_;
  size_t word_length_;
  Options options_;
  // id -> word storage.
  std::map<uint64_t, std::vector<Symbol>> words_;
  // coarse signature -> member ids.
  std::map<std::vector<uint32_t>, std::vector<uint64_t>> buckets_;
  mutable size_t last_buckets_examined_ = 0;
};

}  // namespace smeter

#endif  // SMETER_CORE_SYMBOLIC_INDEX_H_
