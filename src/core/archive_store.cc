#include "core/archive_store.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/string_util.h"
#include "core/codec.h"
#include "core/symbol.h"

namespace smeter {
namespace {

namespace fs = std::filesystem;

std::string JsonEscape(const std::string& value) {
  std::string out;
  for (char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::optional<std::string> JsonStringField(const std::string& record,
                                           const std::string& key) {
  const std::string marker = "\"" + key + "\":\"";
  size_t start = record.find(marker);
  if (start == std::string::npos) return std::nullopt;
  start += marker.size();
  std::string value;
  for (size_t i = start; i < record.size(); ++i) {
    if (record[i] == '\\' && i + 1 < record.size()) {
      value.push_back(record[++i]);
    } else if (record[i] == '"') {
      return value;
    } else {
      value.push_back(record[i]);
    }
  }
  return std::nullopt;
}

std::optional<int64_t> JsonIntField(const std::string& record,
                                    const std::string& key) {
  const std::string marker = "\"" + key + "\":";
  size_t start = record.find(marker);
  if (start == std::string::npos) return std::nullopt;
  start += marker.size();
  size_t end = start;
  while (end < record.size() &&
         (std::isdigit(static_cast<unsigned char>(record[end])) ||
          record[end] == '-')) {
    ++end;
  }
  if (end == start) return std::nullopt;
  Result<int64_t> parsed = ParseInt(record.substr(start, end - start));
  if (!parsed.ok()) return std::nullopt;
  return *parsed;
}

// The bracketed uint64 list of a histogram field, e.g. "h":[1,0,3].
std::optional<std::vector<uint64_t>> JsonUintListField(
    const std::string& record, const std::string& key) {
  const std::string marker = "\"" + key + "\":[";
  size_t pos = record.find(marker);
  if (pos == std::string::npos) return std::nullopt;
  pos += marker.size();
  std::vector<uint64_t> values;
  std::string digits;
  for (; pos < record.size(); ++pos) {
    const char c = record[pos];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digits.push_back(c);
      continue;
    }
    if (c == ',' || c == ']') {
      if (!digits.empty()) {
        Result<int64_t> parsed = ParseInt(digits);
        if (!parsed.ok() || *parsed < 0) return std::nullopt;
        values.push_back(static_cast<uint64_t>(*parsed));
        digits.clear();
      } else if (c == ',') {
        return std::nullopt;  // ",," or "[," — malformed
      }
      if (c == ']') return values;
      continue;
    }
    return std::nullopt;  // anything else inside the list is malformed
  }
  return std::nullopt;  // unterminated list
}

// The store-index header record, first in store.index.
std::string IndexHeaderRecord(int64_t partition_seconds) {
  return "{\"format\":1,\"psec\":" + std::to_string(partition_seconds) + "}";
}

std::string PartitionRecord(const PartitionInfo& info) {
  return "{\"partition\":" + std::to_string(info.id) +
         ",\"start\":" + std::to_string(info.start) +
         ",\"end\":" + std::to_string(info.end) +
         ",\"meters\":" + std::to_string(info.meters) +
         ",\"segment_bytes\":" + std::to_string(info.segment_bytes) + "}";
}

std::optional<PartitionInfo> ParsePartitionRecord(const std::string& record) {
  std::optional<int64_t> id = JsonIntField(record, "partition");
  std::optional<int64_t> start = JsonIntField(record, "start");
  std::optional<int64_t> end = JsonIntField(record, "end");
  std::optional<int64_t> meters = JsonIntField(record, "meters");
  std::optional<int64_t> bytes = JsonIntField(record, "segment_bytes");
  if (!id || !start || !end || !meters || !bytes || *meters < 0 ||
      *bytes < 0) {
    return std::nullopt;
  }
  PartitionInfo info;
  info.id = *id;
  info.start = *start;
  info.end = *end;
  info.meters = static_cast<uint64_t>(*meters);
  info.segment_bytes = static_cast<uint64_t>(*bytes);
  return info;
}

Status EnsureDir(const std::string& dir) {
  std::error_code error;
  fs::create_directories(dir, error);
  if (error) {
    return InternalError("cannot create " + dir + ": " + error.message());
  }
  return Status::Ok();
}

// The slot cadence a packed segment would record: the slice-local step, or
// 0 for a single-slot segment (matching the codec header convention, so
// rollups rebuilt from unpacked segments are bit-identical).
int64_t SliceStep(const SymbolicSeries& slice) {
  if (slice.size() < 2) return 0;
  return slice[1].timestamp - slice[0].timestamp;
}

RollupRow RollupFromSlice(const std::string& meter,
                          const SymbolicSeries& slice) {
  RollupRow row;
  row.meter = meter;
  row.level = slice.level();
  row.start = slice.empty() ? 0 : slice[0].timestamp;
  row.step = SliceStep(slice);
  row.windows = slice.size();
  row.gaps = slice.GapCount();
  std::vector<size_t> hist = slice.Histogram();
  row.histogram.assign(hist.begin(), hist.end());
  return row;
}

// Lists the meters of an archive directory: every *.symbols stem, sorted,
// so the build order (and therefore every store byte) is deterministic.
Result<std::vector<std::string>> ListArchiveMeters(
    const std::string& archive_dir) {
  std::error_code error;
  if (!fs::is_directory(archive_dir, error) || error) {
    return NotFoundError("not a directory: " + archive_dir);
  }
  std::vector<std::string> meters;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(archive_dir, error)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const std::string suffix = ".symbols";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    meters.push_back(name.substr(0, name.size() - suffix.size()));
  }
  if (error) {
    return InternalError("cannot walk " + archive_dir + ": " +
                         error.message());
  }
  std::sort(meters.begin(), meters.end());
  return meters;
}

// Lists the partition ids present on disk (p<id> directories), sorted.
Result<std::vector<int64_t>> ListPartitionDirs(const std::string& store_dir) {
  std::error_code error;
  if (!fs::is_directory(store_dir, error) || error) {
    return NotFoundError("not a directory: " + store_dir);
  }
  std::vector<int64_t> ids;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(store_dir, error)) {
    if (!entry.is_directory()) continue;
    int64_t id = 0;
    if (IsPartitionDirName(entry.path().filename().string(), &id)) {
      ids.push_back(id);
    }
  }
  if (error) {
    return InternalError("cannot walk " + store_dir + ": " + error.message());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

// Builds rollup.tab bytes from rows (sorted by meter for determinism).
std::string BuildRollupLog(std::vector<RollupRow> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const RollupRow& a, const RollupRow& b) {
              return a.meter < b.meter;
            });
  std::vector<std::string> records;
  records.reserve(rows.size());
  for (const RollupRow& row : rows) {
    records.push_back(RollupRowRecord(row));
  }
  return io::BuildAppendLog(records);
}

}  // namespace

bool IsPartitionDirName(const std::string& name, int64_t* id_out) {
  const std::string prefix = kPartitionDirPrefix;
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix)) {
    return false;
  }
  const std::string digits = name.substr(prefix.size());
  size_t i = digits[0] == '-' ? 1 : 0;
  if (i >= digits.size()) return false;
  for (; i < digits.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(digits[i]))) return false;
  }
  Result<int64_t> parsed = ParseInt(digits);
  if (!parsed.ok()) return false;
  if (id_out != nullptr) *id_out = *parsed;
  return true;
}

int64_t PartitionIdFor(Timestamp timestamp, int64_t partition_seconds) {
  SMETER_CHECK_GT(partition_seconds, 0);
  int64_t q = timestamp / partition_seconds;
  if (timestamp % partition_seconds != 0 && timestamp < 0) --q;
  return q;
}

std::vector<uint64_t> FoldHistogram(const std::vector<uint64_t>& hist,
                                    int from_level, int to_level) {
  SMETER_CHECK_GE(to_level, 1);
  SMETER_CHECK_LE(to_level, from_level);
  SMETER_CHECK_EQ(hist.size(), size_t{1} << from_level);
  const int shift = from_level - to_level;
  std::vector<uint64_t> folded(size_t{1} << to_level, 0);
  for (size_t i = 0; i < hist.size(); ++i) {
    folded[i >> shift] += hist[i];
  }
  return folded;
}

std::string RollupRowRecord(const RollupRow& row) {
  std::string out = "{\"meter\":\"" + JsonEscape(row.meter) +
                    "\",\"level\":" + std::to_string(row.level) +
                    ",\"start\":" + std::to_string(row.start) +
                    ",\"step\":" + std::to_string(row.step) +
                    ",\"windows\":" + std::to_string(row.windows) +
                    ",\"gaps\":" + std::to_string(row.gaps) + ",\"hist\":[";
  for (size_t i = 0; i < row.histogram.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(row.histogram[i]);
  }
  out += "]}";
  return out;
}

std::optional<RollupRow> ParseRollupRow(const std::string& record) {
  std::optional<std::string> meter = JsonStringField(record, "meter");
  std::optional<int64_t> level = JsonIntField(record, "level");
  std::optional<int64_t> start = JsonIntField(record, "start");
  std::optional<int64_t> step = JsonIntField(record, "step");
  std::optional<int64_t> windows = JsonIntField(record, "windows");
  std::optional<int64_t> gaps = JsonIntField(record, "gaps");
  std::optional<std::vector<uint64_t>> hist =
      JsonUintListField(record, "hist");
  if (!meter || !level || !start || !step || !windows || !gaps || !hist) {
    return std::nullopt;
  }
  if (*level < 1 || *level > kMaxSymbolLevel ||
      hist->size() != (size_t{1} << *level) || *windows < 0 || *gaps < 0 ||
      *gaps > *windows) {
    return std::nullopt;
  }
  RollupRow row;
  row.meter = std::move(*meter);
  row.level = static_cast<int>(*level);
  row.start = *start;
  row.step = *step;
  row.windows = static_cast<uint64_t>(*windows);
  row.gaps = static_cast<uint64_t>(*gaps);
  row.histogram = std::move(*hist);
  return row;
}

std::string CurrentRecordJson(const CurrentRecord& record) {
  return "{\"meter\":\"" + JsonEscape(record.meter) +
         "\",\"ts\":" + std::to_string(record.timestamp) +
         ",\"level\":" + std::to_string(record.level) +
         ",\"symbol\":" + std::to_string(record.symbol) + "}";
}

std::optional<CurrentRecord> ParseCurrentRecord(const std::string& record) {
  std::optional<std::string> meter = JsonStringField(record, "meter");
  std::optional<int64_t> ts = JsonIntField(record, "ts");
  std::optional<int64_t> level = JsonIntField(record, "level");
  std::optional<int64_t> symbol = JsonIntField(record, "symbol");
  if (!meter || !ts || !level || !symbol) return std::nullopt;
  if (*level < 1 || *level > kMaxSymbolLevel || *symbol < 0 ||
      *symbol > kStoreGapSymbol ||
      (*symbol != kStoreGapSymbol && *symbol >= (int64_t{1} << *level))) {
    return std::nullopt;
  }
  CurrentRecord out;
  out.meter = std::move(*meter);
  out.timestamp = *ts;
  out.level = static_cast<int>(*level);
  out.symbol = static_cast<uint16_t>(*symbol);
  return out;
}

// --- CurrentTableWriter -----------------------------------------------------

CurrentTableWriter::CurrentTableWriter(const std::string& dir)
    : log_path_(dir + "/" + kCurrentLogFile) {}

Result<std::unique_ptr<CurrentTableWriter>> CurrentTableWriter::Open(
    const std::string& dir) {
  SMETER_RETURN_IF_ERROR(EnsureDir(dir));
  const std::string path = dir + "/" + kCurrentLogFile;
  std::error_code error;
  if (!fs::exists(path, error)) {
    SMETER_RETURN_IF_ERROR(io::AtomicWriteFile(path, io::BuildAppendLog({})));
  }
  Result<io::AppendLogWriter> log = io::AppendLogWriter::OpenForAppend(path);
  if (!log.ok()) return log.status();
  auto writer = std::unique_ptr<CurrentTableWriter>(
      new CurrentTableWriter(dir));
  MutexLock lock(writer->mutex_);
  writer->log_.emplace(std::move(*log));
  return writer;
}

Status CurrentTableWriter::Update(const CurrentRecord& record) {
  SMETER_FAULT_POINT("store.current.append");
  MutexLock lock(mutex_);
  if (!log_.has_value()) {
    return FailedPreconditionError("current log is closed");
  }
  return log_->Append(CurrentRecordJson(record));
}

Status CurrentTableWriter::Close() {
  MutexLock lock(mutex_);
  if (!log_.has_value()) return Status::Ok();
  Status closed = log_->Close();
  log_.reset();
  return closed;
}

// --- builder ----------------------------------------------------------------

Result<StoreBuildReport> BuildArchiveStore(const std::string& archive_dir,
                                           const std::string& store_dir,
                                           const StoreBuildOptions& options) {
  if (options.partition_seconds <= 0) {
    return InvalidArgumentError("partition_seconds must be positive");
  }
  Result<std::vector<std::string>> meters = ListArchiveMeters(archive_dir);
  if (!meters.ok()) return meters.status();
  SMETER_RETURN_IF_ERROR(EnsureDir(store_dir));

  StoreBuildReport report;
  // Per-partition accumulation: rollup rows and index stats.
  std::map<int64_t, std::vector<RollupRow>> rollups;
  std::map<int64_t, PartitionInfo> index;
  std::vector<CurrentRecord> current;

  for (const std::string& meter : *meters) {
    Result<std::string> blob =
        io::ReadFileToString(archive_dir + "/" + meter + ".symbols");
    if (!blob.ok()) {
      ++report.meters_skipped;
      continue;
    }
    Result<SymbolicSeries> series = UnpackSymbolicSeries(*blob);
    if (!series.ok()) {
      ++report.meters_skipped;
      continue;
    }
    if (series->empty()) {
      ++report.meters_skipped;
      continue;
    }
    ++report.meters;
    const Timestamp first = (*series)[0].timestamp;
    const Timestamp last = (*series)[series->size() - 1].timestamp;
    const int64_t first_id = PartitionIdFor(first, options.partition_seconds);
    const int64_t last_id = PartitionIdFor(last, options.partition_seconds);
    for (int64_t id = first_id; id <= last_id; ++id) {
      TimeRange range;
      range.begin = id * options.partition_seconds;
      range.end = (id + 1) * options.partition_seconds;
      SymbolicSeries slice = series->Slice(range);
      if (slice.empty()) continue;
      Result<std::string> packed =
          PackSymbolicSeriesFramed(slice, options.max_block_slots);
      if (!packed.ok()) return packed.status();
      const std::string part_dir =
          store_dir + "/" + kPartitionDirPrefix + std::to_string(id);
      SMETER_RETURN_IF_ERROR(EnsureDir(part_dir));
      SMETER_FAULT_POINT("store.segment.write");
      SMETER_RETURN_IF_ERROR(io::AtomicWriteFile(
          part_dir + "/" + meter + kSegmentSuffix, *packed));
      ++report.segments_written;
      report.segment_bytes += packed->size();
      rollups[id].push_back(RollupFromSlice(meter, slice));
      PartitionInfo& info = index[id];
      info.id = id;
      info.start = range.begin;
      info.end = range.end;
      ++info.meters;
      info.segment_bytes += packed->size();
    }
    CurrentRecord latest;
    latest.meter = meter;
    latest.timestamp = last;
    latest.level = series->level();
    const Symbol& symbol = (*series)[series->size() - 1].symbol;
    latest.symbol = symbol.is_gap()
                        ? kStoreGapSymbol
                        : static_cast<uint16_t>(symbol.index());
    current.push_back(std::move(latest));
  }

  for (auto& [id, rows] : rollups) {
    const std::string part_dir =
        store_dir + "/" + kPartitionDirPrefix + std::to_string(id);
    SMETER_FAULT_POINT("store.rollup.write");
    SMETER_RETURN_IF_ERROR(io::AtomicWriteFile(
        part_dir + "/" + kRollupTableFile, BuildRollupLog(std::move(rows))));
  }
  report.partitions = index.size();

  std::vector<std::string> index_records;
  index_records.push_back(IndexHeaderRecord(options.partition_seconds));
  for (const auto& [id, info] : index) {
    index_records.push_back(PartitionRecord(info));
  }
  SMETER_FAULT_POINT("store.index.write");
  SMETER_RETURN_IF_ERROR(io::AtomicWriteFile(
      store_dir + "/" + kStoreIndexFile, io::BuildAppendLog(index_records)));

  // Current table: compacted snapshot (meters already name-sorted), and a
  // fresh empty log — the snapshot supersedes any appended updates.
  std::vector<std::string> current_records;
  current_records.reserve(current.size());
  for (const CurrentRecord& record : current) {
    current_records.push_back(CurrentRecordJson(record));
  }
  SMETER_RETURN_IF_ERROR(
      io::AtomicWriteFile(store_dir + "/" + kCurrentTableFile,
                          io::BuildAppendLog(current_records)));
  SMETER_RETURN_IF_ERROR(io::AtomicWriteFile(
      store_dir + "/" + kCurrentLogFile, io::BuildAppendLog({})));
  return report;
}

Result<size_t> RebuildRollups(const std::string& store_dir) {
  Result<std::vector<int64_t>> ids = ListPartitionDirs(store_dir);
  if (!ids.ok()) return ids.status();
  size_t rebuilt = 0;
  for (int64_t id : *ids) {
    const std::string part_dir =
        store_dir + "/" + kPartitionDirPrefix + std::to_string(id);
    std::error_code error;
    std::vector<std::string> segs;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(part_dir, error)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      const std::string suffix = kSegmentSuffix;
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        segs.push_back(name.substr(0, name.size() - suffix.size()));
      }
    }
    if (error) {
      return InternalError("cannot walk " + part_dir + ": " +
                           error.message());
    }
    std::sort(segs.begin(), segs.end());
    std::vector<RollupRow> rows;
    for (const std::string& meter : segs) {
      Result<std::string> blob = io::ReadFileToString(
          part_dir + "/" + meter + kSegmentSuffix);
      if (!blob.ok()) return blob.status();
      Result<SymbolicSeries> slice = UnpackSymbolicSeries(*blob);
      if (!slice.ok()) {
        return DataLossError("segment " + part_dir + "/" + meter +
                             kSegmentSuffix + ": " +
                             slice.status().message());
      }
      rows.push_back(RollupFromSlice(meter, *slice));
    }
    SMETER_FAULT_POINT("store.rollup.write");
    const std::string rollup_path = part_dir + "/" + kRollupTableFile;
    SMETER_RETURN_IF_ERROR(io::AtomicWriteFile(
        rollup_path, BuildRollupLog(std::move(rows))));
    // Freshness is judged by mtime (fsck's stale_rollup check): a segment
    // carrying a future timestamp (clock skew, restored backup) must not
    // keep a just-rebuilt rollup permanently "stale".
    fs::file_time_type newest = fs::file_time_type::min();
    for (const std::string& meter : segs) {
      std::error_code time_error;
      fs::file_time_type mtime = fs::last_write_time(
          part_dir + "/" + meter + kSegmentSuffix, time_error);
      if (!time_error && mtime > newest) newest = mtime;
    }
    std::error_code time_error;
    fs::file_time_type rollup_mtime =
        fs::last_write_time(rollup_path, time_error);
    if (!time_error && newest > rollup_mtime) {
      fs::last_write_time(rollup_path, newest, time_error);
    }
    ++rebuilt;
  }
  return rebuilt;
}

Result<size_t> DropPartitionsBefore(const std::string& store_dir,
                                    Timestamp cutoff) {
  Result<io::AppendLogContents> log =
      io::ReadAppendLog(store_dir + "/" + kStoreIndexFile);
  if (!log.ok()) return log.status();
  if (log->records.empty()) {
    return DataLossError("store index has no header record");
  }
  std::optional<int64_t> psec = JsonIntField(log->records[0], "psec");
  if (!psec || *psec <= 0) {
    return DataLossError("store index header is malformed");
  }
  std::vector<std::string> kept;
  kept.push_back(log->records[0]);
  size_t dropped = 0;
  for (size_t i = 1; i < log->records.size(); ++i) {
    std::optional<PartitionInfo> info =
        ParsePartitionRecord(log->records[i]);
    if (!info) continue;  // unparseable entries are dropped from the index
    if (info->end <= cutoff) {
      const std::string part_dir =
          store_dir + "/" + kPartitionDirPrefix + std::to_string(info->id);
      std::error_code error;
      fs::remove_all(part_dir, error);
      if (error) {
        return InternalError("cannot remove " + part_dir + ": " +
                             error.message());
      }
      ++dropped;
      continue;
    }
    kept.push_back(log->records[i]);
  }
  SMETER_FAULT_POINT("store.index.write");
  SMETER_RETURN_IF_ERROR(io::AtomicWriteFile(
      store_dir + "/" + kStoreIndexFile, io::BuildAppendLog(kept)));
  return dropped;
}

// --- ArchiveStore -----------------------------------------------------------

ArchiveStore::ArchiveStore(std::string dir, std::string current_dir,
                           int64_t partition_seconds,
                           std::vector<PartitionInfo> partitions)
    : dir_(std::move(dir)),
      current_dir_(std::move(current_dir)),
      partition_seconds_(partition_seconds),
      partitions_(std::move(partitions)) {}

Result<std::unique_ptr<ArchiveStore>> ArchiveStore::Open(
    const std::string& store_dir, const ArchiveStoreOptions& options) {
  Result<io::AppendLogContents> log =
      io::ReadAppendLog(store_dir + "/" + kStoreIndexFile);
  if (!log.ok()) return log.status();
  if (log->corrupt_midfile) {
    return DataLossError("store index is corrupt mid-file; run fsck");
  }
  if (log->records.empty()) {
    return DataLossError("store index has no header record");
  }
  std::optional<int64_t> psec = JsonIntField(log->records[0], "psec");
  std::optional<int64_t> format = JsonIntField(log->records[0], "format");
  if (!psec || *psec <= 0 || !format || *format != 1) {
    return DataLossError("store index header is malformed");
  }
  std::vector<PartitionInfo> partitions;
  for (size_t i = 1; i < log->records.size(); ++i) {
    std::optional<PartitionInfo> info =
        ParsePartitionRecord(log->records[i]);
    if (!info) {
      return DataLossError("store index record " + std::to_string(i) +
                           " is malformed");
    }
    // Retention may have raced a stale index copy; skip vanished
    // partitions rather than failing every query.
    std::error_code error;
    if (!fs::is_directory(store_dir + "/" + kPartitionDirPrefix +
                              std::to_string(info->id),
                          error)) {
      continue;
    }
    partitions.push_back(*info);
  }
  std::sort(partitions.begin(), partitions.end(),
            [](const PartitionInfo& a, const PartitionInfo& b) {
              return a.id < b.id;
            });
  std::string current_dir =
      options.current_dir.empty() ? store_dir : options.current_dir;
  return std::unique_ptr<ArchiveStore>(new ArchiveStore(
      store_dir, std::move(current_dir), *psec, std::move(partitions)));
}

std::string ArchiveStore::PartitionDir(int64_t partition_id) const {
  return dir_ + "/" + kPartitionDirPrefix + std::to_string(partition_id);
}

Status ArchiveStore::RefreshCurrent() {
  const std::string tab = current_dir_ + "/" + kCurrentTableFile;
  const std::string log = current_dir_ + "/" + kCurrentLogFile;
  std::error_code error;
  int64_t bytes = 0;
  for (const std::string& path : {tab, log}) {
    const uintmax_t size = fs::file_size(path, error);
    if (!error) bytes += static_cast<int64_t>(size);
    error.clear();
  }
  if (bytes == current_bytes_seen_) return Status::Ok();
  std::map<std::string, CurrentRecord> fresh;
  for (const std::string& path : {tab, log}) {
    Result<io::AppendLogContents> contents = io::ReadAppendLog(path);
    if (!contents.ok()) {
      if (contents.status().code() == StatusCode::kNotFound) continue;
      return contents.status();
    }
    // A torn tail (ingest killed mid-append) just drops the last update;
    // mid-file corruption is quarantine territory, surface it.
    if (contents->corrupt_midfile) {
      return DataLossError("current table " + path +
                           " is corrupt mid-file; run fsck");
    }
    for (const std::string& record : contents->records) {
      std::optional<CurrentRecord> parsed = ParseCurrentRecord(record);
      if (!parsed) continue;
      auto it = fresh.find(parsed->meter);
      if (it == fresh.end() || parsed->timestamp >= it->second.timestamp) {
        fresh[parsed->meter] = std::move(*parsed);
      }
    }
  }
  current_ = std::move(fresh);
  current_bytes_seen_ = bytes;
  ++current_refreshes_;
  return Status::Ok();
}

Result<PointValue> ArchiveStore::Latest(const std::string& meter) {
  SMETER_RETURN_IF_ERROR(RefreshCurrent());
  auto it = current_.find(meter);
  if (it == current_.end()) {
    return NotFoundError("meter '" + meter + "' has no current value");
  }
  PointValue value;
  value.timestamp = it->second.timestamp;
  value.level = it->second.level;
  value.symbol = it->second.symbol;
  return value;
}

size_t ArchiveStore::CurrentMeters() {
  Status refreshed = RefreshCurrent();
  if (!refreshed.ok()) return current_.size();
  return current_.size();
}

Result<SymbolicSeries> ArchiveStore::ReadSegment(int64_t partition_id,
                                                 const std::string& meter) {
  SMETER_FAULT_POINT("store.segment.read");
  Result<std::string> blob = io::ReadFileToString(
      PartitionDir(partition_id) + "/" + meter + kSegmentSuffix);
  if (!blob.ok()) return blob.status();
  ++segments_read_;
  Result<SymbolicSeries> series = UnpackSymbolicSeries(*blob);
  if (!series.ok()) {
    return DataLossError("segment p" + std::to_string(partition_id) + "/" +
                         meter + kSegmentSuffix + ": " +
                         series.status().message());
  }
  return series;
}

Result<const std::vector<RollupRow>*> ArchiveStore::Rollups(
    int64_t partition_id) {
  auto cached = rollup_cache_.find(partition_id);
  if (cached != rollup_cache_.end()) return &cached->second;
  Result<io::AppendLogContents> log = io::ReadAppendLog(
      PartitionDir(partition_id) + "/" + kRollupTableFile);
  if (!log.ok()) return log.status();
  if (!log->clean()) {
    return DataLossError("rollup table of partition " +
                         std::to_string(partition_id) +
                         " is damaged; run fsck");
  }
  std::vector<RollupRow> rows;
  for (const std::string& record : log->records) {
    std::optional<RollupRow> row = ParseRollupRow(record);
    if (!row) {
      return DataLossError("rollup row of partition " +
                           std::to_string(partition_id) + " is malformed");
    }
    rows.push_back(std::move(*row));
  }
  auto [it, inserted] =
      rollup_cache_.emplace(partition_id, std::move(rows));
  (void)inserted;
  return &it->second;
}

Result<RangeScanResult> ArchiveStore::Scan(const std::string& meter,
                                           TimeRange range, int level,
                                           size_t max_symbols) {
  if (range.end <= range.begin) {
    return InvalidArgumentError("empty scan range");
  }
  if (level < 0 || level > kMaxSymbolLevel) {
    return InvalidArgumentError("scan level out of range");
  }
  if (max_symbols == 0) {
    return InvalidArgumentError("max_symbols must be positive");
  }
  const int64_t first_id = PartitionIdFor(range.begin, partition_seconds_);
  const int64_t last_id = PartitionIdFor(range.end - 1, partition_seconds_);

  RangeScanResult result;
  result.level = level;
  bool started = false;
  Timestamp next_expected = 0;
  for (const PartitionInfo& partition : partitions_) {
    if (partition.id < first_id || partition.id > last_id) continue;
    Result<SymbolicSeries> segment = ReadSegment(partition.id, meter);
    if (!segment.ok()) {
      if (segment.status().code() == StatusCode::kNotFound) continue;
      return segment.status();
    }
    SymbolicSeries slice = segment->Slice(range);
    if (slice.empty()) continue;
    if (level == 0) {
      result.level = slice.level();
    } else if (level > slice.level()) {
      return InvalidArgumentError(
          "requested level " + std::to_string(level) +
          " is finer than the meter's native level " +
          std::to_string(slice.level()));
    } else if (level < slice.level()) {
      Result<SymbolicSeries> coarse = slice.Coarsen(level);
      if (!coarse.ok()) return coarse.status();
      slice = std::move(*coarse);
    }
    const int64_t step = SliceStep(slice);
    if (!started) {
      result.start_timestamp = slice[0].timestamp;
      result.step_seconds = step;
      started = true;
    } else if (result.step_seconds == 0) {
      result.step_seconds = step != 0
                                ? step
                                : slice[0].timestamp - next_expected + 0;
    }
    // A hole between partitions (dropped or never-written segment) is
    // returned as GAP slots so the grid stays contiguous.
    if (started && result.step_seconds > 0 &&
        !result.symbols.empty()) {
      while (next_expected < slice[0].timestamp &&
             result.symbols.size() < max_symbols) {
        result.symbols.push_back(kStoreGapSymbol);
        next_expected += result.step_seconds;
      }
    }
    for (const SymbolicSample& sample : slice) {
      if (result.symbols.size() >= max_symbols) {
        result.truncated = true;
        return result;
      }
      result.symbols.push_back(
          sample.symbol.is_gap()
              ? kStoreGapSymbol
              : static_cast<uint16_t>(sample.symbol.index()));
      next_expected = sample.timestamp + (result.step_seconds > 0
                                              ? result.step_seconds
                                              : step);
    }
  }
  if (!started) {
    return NotFoundError("meter '" + meter + "' has no data in range");
  }
  return result;
}

Result<FleetAggregate> ArchiveStore::Aggregate(TimeRange range, int level) {
  if (range.end <= range.begin) {
    return InvalidArgumentError("empty aggregate range");
  }
  if (level < 1 || level > kMaxSymbolLevel) {
    return InvalidArgumentError("aggregate level out of range");
  }
  FleetAggregate aggregate;
  aggregate.level = level;
  aggregate.histogram.assign(size_t{1} << level, 0);
  std::set<std::string> meters;
  std::set<std::string> coarser;
  for (const PartitionInfo& partition : partitions_) {
    if (partition.end <= range.begin || partition.start >= range.end) {
      continue;
    }
    const bool covered =
        partition.start >= range.begin && partition.end <= range.end;
    Result<const std::vector<RollupRow>*> rollups = Rollups(partition.id);
    if (!rollups.ok()) return rollups.status();
    if (covered) {
      ++aggregate.rollup_partitions;
      for (const RollupRow& row : **rollups) {
        if (row.level < level) {
          coarser.insert(row.meter);
          continue;
        }
        meters.insert(row.meter);
        aggregate.windows += row.windows;
        aggregate.gaps += row.gaps;
        std::vector<uint64_t> folded =
            FoldHistogram(row.histogram, row.level, level);
        for (size_t i = 0; i < folded.size(); ++i) {
          aggregate.histogram[i] += folded[i];
        }
      }
      continue;
    }
    // Edge partition: only part of it is inside the window, so the rollup
    // row over-counts; scan the segments and clip.
    ++aggregate.scanned_partitions;
    for (const RollupRow& row : **rollups) {
      if (row.level < level) {
        coarser.insert(row.meter);
        continue;
      }
      Result<SymbolicSeries> segment = ReadSegment(partition.id, row.meter);
      if (!segment.ok()) {
        if (segment.status().code() == StatusCode::kNotFound) continue;
        return segment.status();
      }
      SymbolicSeries slice = segment->Slice(range);
      if (slice.empty()) continue;
      meters.insert(row.meter);
      aggregate.windows += slice.size();
      aggregate.gaps += slice.GapCount();
      for (const SymbolicSample& sample : slice) {
        if (sample.symbol.is_gap()) continue;
        Result<Symbol> coarse = sample.symbol.Coarsen(level);
        if (!coarse.ok()) return coarse.status();
        ++aggregate.histogram[coarse->index()];
      }
    }
  }
  for (const std::string& meter : meters) coarser.erase(meter);
  aggregate.meters = meters.size();
  aggregate.meters_coarser = coarser.size();
  return aggregate;
}

}  // namespace smeter
