#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace smeter {
namespace {

size_t ResolveThreadCount(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

// Shared state of one ParallelFor call. Held by shared_ptr because helper
// tasks may be dequeued after the call has already completed (all chunks
// claimed by other lanes); they must still be able to read `next` safely.
struct ParallelForState {
  size_t begin = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  const std::function<Status(size_t, size_t)>* fn = nullptr;
  // The owning pool's in-flight gauge; bumped while a lane runs a chunk.
  std::atomic<size_t>* in_flight = nullptr;

  std::atomic<size_t> next{0};

  Mutex mutex;
  CondVar done;
  size_t completed GUARDED_BY(mutex) = 0;
  // Error from the lowest-indexed failing chunk — the one a serial loop
  // would report first.
  size_t first_error_chunk GUARDED_BY(mutex) = 0;
  Status first_error GUARDED_BY(mutex);
  bool has_error GUARDED_BY(mutex) = false;
};

// Claims chunks until none remain. Returns the number of chunks this lane
// ran; completion bookkeeping happens under the state mutex.
void DrainChunks(ParallelForState& state) {
  size_t ran = 0;
  size_t error_chunk = 0;
  Status error;
  bool failed = false;
  for (size_t chunk = state.next.fetch_add(1, std::memory_order_relaxed);
       chunk < state.num_chunks;
       chunk = state.next.fetch_add(1, std::memory_order_relaxed)) {
    const size_t lo = state.begin + chunk * state.grain;
    const size_t hi = lo + state.grain;
    state.in_flight->fetch_add(1, std::memory_order_relaxed);
    Status status = (*state.fn)(lo, hi);
    state.in_flight->fetch_sub(1, std::memory_order_relaxed);
    ++ran;
    if (!status.ok() && (!failed || chunk < error_chunk)) {
      failed = true;
      error_chunk = chunk;
      error = std::move(status);
    }
  }
  if (ran == 0) return;
  MutexLock lock(state.mutex);
  if (failed &&
      (!state.has_error || error_chunk < state.first_error_chunk)) {
    state.has_error = true;
    state.first_error_chunk = error_chunk;
    state.first_error = std::move(error);
  }
  state.completed += ran;
  if (state.completed == state.num_chunks) state.done.NotifyAll();
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t total = ResolveThreadCount(num_threads);
  workers_.reserve(total - 1);
  for (size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // Explicit loop (not a predicate lambda) so the analysis sees the
      // guarded reads under the held lock.
      while (!stopping_ && queue_.empty()) wake_.Wait(mutex_);
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

Status ThreadPool::ParallelFor(
    size_t begin, size_t end, size_t grain,
    const std::function<Status(size_t, size_t)>& fn) {
  if (end <= begin) return Status::Ok();
  if (grain == 0) grain = 1;
  const size_t count = end - begin;
  const size_t num_chunks = (count + grain - 1) / grain;

  // One chunk, or a pool with no workers: plain serial loop, no handoff.
  // Still no short-circuit — the class contract is that every chunk runs
  // even after a failure, at every pool size, so a ThreadPool(1) run is
  // observationally identical to a ThreadPool(8) run.
  if (num_chunks == 1 || workers_.empty()) {
    Status first_error;
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      const size_t lo = begin + chunk * grain;
      in_flight_.fetch_add(1, std::memory_order_relaxed);
      Status status = fn(lo, std::min(end, lo + grain));
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      if (!status.ok() && first_error.ok()) first_error = std::move(status);
    }
    return first_error;
  }

  auto state = std::make_shared<ParallelForState>();
  state->begin = begin;
  state->grain = grain;
  state->num_chunks = num_chunks;
  state->in_flight = &in_flight_;

  // DrainChunks hands fn a raw [lo, lo + grain) window; clamp the last
  // chunk's end here once instead of inside every lane.
  const std::function<Status(size_t, size_t)> clamped =
      [&fn, end](size_t lo, size_t hi) { return fn(lo, std::min(end, hi)); };
  state->fn = &clamped;

  // Enqueue at most one helper per worker; each helper drains chunks until
  // the shared counter runs out, so extra tasks beyond num_chunks - 1 would
  // only wake threads to do nothing.
  const size_t helpers = std::min(workers_.size(), num_chunks - 1);
  {
    MutexLock lock(mutex_);
    for (size_t i = 0; i < helpers; ++i) {
      queue_.emplace_back([state] { DrainChunks(*state); });
    }
  }
  if (helpers == 1) {
    wake_.NotifyOne();
  } else {
    wake_.NotifyAll();
  }

  // The calling thread is a lane too.
  DrainChunks(*state);

  MutexLock lock(state->mutex);
  while (state->completed != state->num_chunks) state->done.Wait(state->mutex);
  if (state->has_error) return state->first_error;
  return Status::Ok();
}

size_t ThreadPool::QueueDepth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: workers must not be joined during static
  // destruction, when other globals they could touch are already gone.
  static ThreadPool* shared = new ThreadPool(0);
  return *shared;
}

}  // namespace smeter
