// Wall-clock stopwatch used to report the paper's "processing time" series
// (Figures 5-7) and the micro-benchmarks' sanity prints.

#ifndef SMETER_COMMON_STOPWATCH_H_
#define SMETER_COMMON_STOPWATCH_H_

#include <chrono>

namespace smeter {

// Measures elapsed wall time in seconds. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace smeter

#endif  // SMETER_COMMON_STOPWATCH_H_
