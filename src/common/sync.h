// Annotated synchronization primitives for Clang Thread Safety Analysis.
//
// Every mutex in this codebase goes through the wrappers below so that the
// compiler — not just TSan at runtime — checks the locking contracts. The
// attribute macros expand to Clang's thread-safety attributes under Clang
// and to nothing elsewhere, so GCC builds are unaffected; the dedicated
// `thread-safety` CI job builds the whole tree with Clang and
// `-Wthread-safety -Werror` to keep the annotations honest (and a
// configure-time probe in CMakeLists.txt proves the analysis fires at
// all — see cmake/tsa_probe_bad.cc).
//
// The invariant linter (tools/lint_invariants.py) rejects any direct use
// of <mutex> / <condition_variable> primitives outside this header, so new
// shared state cannot silently opt out of the analysis.
//
// Model (see DESIGN.md §13 for the full write-up):
//   * `Mutex` + `MutexLock` + `CondVar` — data guarded by a real lock.
//     Annotate the data with GUARDED_BY(mu) and internal helpers with
//     REQUIRES(mu); public entry points that take the lock themselves are
//     annotated REQUIRES(!mu) (the lock is non-reentrant).
//   * `ThreadRole` + `ScopedThreadRole` — a zero-cost capability that
//     models single-writer ownership (the event-loop thread, a Session's
//     one writer). Claiming a role costs nothing at runtime; it is a
//     machine-checked comment. Methods that must only run on the owning
//     thread are annotated REQUIRES(role_); the owning thread claims the
//     role with a ScopedThreadRole at the ownership boundary.

#ifndef SMETER_COMMON_SYNC_H_
#define SMETER_COMMON_SYNC_H_

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Attribute macros (the canonical set from the Clang TSA documentation).
// ---------------------------------------------------------------------------

#if defined(__clang__) && (!defined(SWIG))
#define SMETER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SMETER_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

#define CAPABILITY(x) SMETER_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY SMETER_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) SMETER_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) SMETER_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  SMETER_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  SMETER_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  SMETER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SMETER_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) SMETER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SMETER_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) SMETER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SMETER_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  SMETER_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) SMETER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) SMETER_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) SMETER_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  SMETER_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace smeter {

// ---------------------------------------------------------------------------
// Mutex / MutexLock / CondVar
// ---------------------------------------------------------------------------

// A std::mutex the analysis knows about. Non-reentrant; prefer MutexLock
// over manual Lock/Unlock pairs.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock for a Mutex — the annotated std::lock_guard.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to the annotated Mutex. Wait() requires the
// mutex held, releases it while blocked, and reacquires before returning —
// exactly std::condition_variable semantics, but visible to the analysis.
//
// Note for callers: write waits as explicit loops over guarded state,
//     while (!predicate_over_guarded_members) cv.Wait(mu);
// not as predicate lambdas — the analysis checks the enclosing function,
// so the guarded reads must appear there, under the held lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// ---------------------------------------------------------------------------
// ThreadRole / ScopedThreadRole
// ---------------------------------------------------------------------------

// A capability with no runtime state: it models "this code runs on the
// thread that owns X" (the event-loop thread, a Session's single writer).
// Acquire/Release are free; the value is that methods annotated
// REQUIRES(role) refuse to compile unless the caller visibly claimed the
// role, which makes ownership handoffs explicit in the source.
class CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void Acquire() ACQUIRE() {}
  void Release() RELEASE() {}
};

// Scoped claim of a ThreadRole — assert "I am the owning thread" for the
// enclosing scope. Zero cost; purely a compile-time contract.
class SCOPED_CAPABILITY ScopedThreadRole {
 public:
  explicit ScopedThreadRole(ThreadRole& role) ACQUIRE(role) : role_(role) {
    role_.Acquire();
  }
  ~ScopedThreadRole() RELEASE() { role_.Release(); }

  ScopedThreadRole(const ScopedThreadRole&) = delete;
  ScopedThreadRole& operator=(const ScopedThreadRole&) = delete;

 private:
  ThreadRole& role_;
};

}  // namespace smeter

#endif  // SMETER_COMMON_SYNC_H_
