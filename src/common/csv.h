// Minimal CSV / delimiter-separated-values reading and writing.
//
// Supports arbitrary single-character delimiters (the REDD low_freq layout
// is space-separated), '#'-prefixed comment lines, and blank-line skipping.
// Quoting is not supported: smart-meter exports are purely numeric.

#ifndef SMETER_COMMON_CSV_H_
#define SMETER_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace smeter {

struct CsvOptions {
  char delimiter = ',';
  // Lines starting with this character (after trimming) are skipped.
  // '\0' disables comment handling.
  char comment_char = '#';
  bool skip_blank_lines = true;
};

// A fully-parsed delimiter-separated file.
struct CsvTable {
  std::vector<std::vector<std::string>> rows;
  // True when the final data row had no line terminator — the signature of
  // a truncated write (a crashed logger, a partial download). The row is
  // still parsed; loaders that cannot trust a torn record should drop
  // rows.back() when this is set.
  bool last_row_unterminated = false;

  size_t num_rows() const { return rows.size(); }
};

// Parses `content` (the full text of a file) into rows of string fields.
Result<CsvTable> ParseCsv(const std::string& content,
                          const CsvOptions& options = {});

// Reads and parses the file at `path`.
Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

// Writes rows to `path`, joining fields with `options.delimiter`.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    const CsvOptions& options = {});

}  // namespace smeter

#endif  // SMETER_COMMON_CSV_H_
