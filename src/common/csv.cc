#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace smeter {

Result<CsvTable> ParseCsv(const std::string& content,
                          const CsvOptions& options) {
  CsvTable table;
  // '\n', '\r', and "\r\n" are line *terminators*: "a\n" is one line, and a
  // final unterminated segment ("...\nabc") still counts but is flagged via
  // last_row_unterminated. The empty string has no lines.
  size_t line_start = 0;
  while (line_start < content.size()) {
    size_t line_end = content.find_first_of("\r\n", line_start);
    bool terminated = line_end != std::string::npos;
    if (!terminated) line_end = content.size();
    std::string_view line(content.data() + line_start, line_end - line_start);
    line_start = line_end;
    if (terminated) {
      // Swallow "\r\n" as a single terminator; a lone '\r' or '\n' also
      // ends the line (classic-Mac exports and CRLF files mid-stream both
      // parse the same as Unix line endings).
      ++line_start;
      if (content[line_end] == '\r' && line_start < content.size() &&
          content[line_start] == '\n') {
        ++line_start;
      }
    }

    std::string_view trimmed = Trim(line);
    if (options.skip_blank_lines && trimmed.empty()) continue;
    if (options.comment_char != '\0' && !trimmed.empty() &&
        trimmed.front() == options.comment_char) {
      continue;
    }
    table.rows.push_back(Split(line, options.delimiter));
    table.last_row_unterminated = !terminated;
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  SMETER_FAULT_POINT("csv.read");
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return InternalError("I/O error reading: " + path);
  return ParseCsv(buf.str(), options);
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return InternalError("cannot open file for writing: " + path);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << options.delimiter;
      out << row[i];
    }
    out << '\n';
  }
  out.flush();
  if (!out) return InternalError("I/O error writing: " + path);
  return Status::Ok();
}

}  // namespace smeter
