// Standard normal distribution helpers shared by SAX (Gaussian breakpoints)
// and C4.5 pruning (confidence bounds on binomial error rates).

#ifndef SMETER_COMMON_NORMAL_H_
#define SMETER_COMMON_NORMAL_H_

#include "common/status.h"

namespace smeter {

// Inverse standard normal CDF (Acklam's rational approximation,
// |relative error| < 1.15e-9). `p` must be in (0, 1).
Result<double> InverseNormalCdf(double p);

}  // namespace smeter

#endif  // SMETER_COMMON_NORMAL_H_
