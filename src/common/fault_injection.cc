#include "common/fault_injection.h"

#include <atomic>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/random.h"
#include "common/sync.h"

namespace smeter::fault {
namespace {

// Guards every mutable field of the active plan (counters and the RNG).
Mutex g_mutex;

struct PlanState {
  std::vector<FaultRule> rules;  // immutable after construction
  Rng rng GUARDED_BY(g_mutex);
  std::map<std::string, size_t, std::less<>> calls GUARDED_BY(g_mutex);
  std::map<std::string, size_t, std::less<>> injected GUARDED_BY(g_mutex);

  PlanState(std::vector<FaultRule> r, uint64_t seed)
      : rules(std::move(r)), rng(seed) {}
};

// The active plan. The pointer itself is atomic so the disabled fast path
// in Check() costs one relaxed load and no lock.
std::atomic<PlanState*> g_plan{nullptr};

bool SeamMatches(const std::string& pattern, std::string_view seam) {
  if (!pattern.empty() && pattern.back() == '*') {
    return seam.substr(0, pattern.size() - 1) ==
           std::string_view(pattern).substr(0, pattern.size() - 1);
  }
  return seam == pattern;
}

}  // namespace

bool Active() {
  return g_plan.load(std::memory_order_relaxed) != nullptr;
}

Status Check(std::string_view seam) {
  if (g_plan.load(std::memory_order_relaxed) == nullptr) return Status::Ok();
  MutexLock lock(g_mutex);
  PlanState* plan = g_plan.load(std::memory_order_relaxed);
  if (plan == nullptr) return Status::Ok();  // raced with teardown
  auto it = plan->calls.find(seam);
  if (it == plan->calls.end()) {
    it = plan->calls.emplace(std::string(seam), 0).first;
  }
  const size_t call = ++it->second;  // 1-based per-seam numbering
  for (const FaultRule& rule : plan->rules) {
    if (rule.corrupt_bits > 0) continue;  // corruption rules: MaybeCorrupt only
    if (!SeamMatches(rule.seam, seam)) continue;
    bool fire = false;
    if (rule.first_call > 0) {
      fire = call >= static_cast<size_t>(rule.first_call) &&
             (rule.last_call == 0 ||
              call <= static_cast<size_t>(rule.last_call));
    }
    if (!fire && rule.probability > 0.0) {
      fire = plan->rng.Uniform() < rule.probability;
    }
    if (!fire) continue;
    ++plan->injected[std::string(seam)];
    std::string message = rule.message.empty()
                              ? "injected fault at " + std::string(seam)
                              : rule.message;
    return Status(rule.code, std::move(message));
  }
  return Status::Ok();
}

bool MaybeCorrupt(std::string_view seam, std::string_view data,
                  std::string* out) {
  if (g_plan.load(std::memory_order_relaxed) == nullptr) return false;
  MutexLock lock(g_mutex);
  PlanState* plan = g_plan.load(std::memory_order_relaxed);
  if (plan == nullptr) return false;  // raced with teardown
  auto it = plan->calls.find(seam);
  if (it == plan->calls.end()) {
    it = plan->calls.emplace(std::string(seam), 0).first;
  }
  const size_t call = ++it->second;  // shared 1-based per-seam numbering
  for (const FaultRule& rule : plan->rules) {
    if (rule.corrupt_bits <= 0) continue;  // error rules belong to Check()
    if (!SeamMatches(rule.seam, seam)) continue;
    bool fire = false;
    if (rule.first_call > 0) {
      fire = call >= static_cast<size_t>(rule.first_call) &&
             (rule.last_call == 0 ||
              call <= static_cast<size_t>(rule.last_call));
    }
    if (!fire && rule.probability > 0.0) {
      fire = plan->rng.Uniform() < rule.probability;
    }
    if (!fire) continue;
    if (data.empty()) continue;  // nothing to damage; don't count an injection
    *out = std::string(data);
    // Flip distinct seeded bit offsets. Distinctness matters: flipping the
    // same bit twice restores it, which would under-deliver the promised
    // damage and could make a "corruption injected" test silently vacuous.
    const uint64_t total_bits = static_cast<uint64_t>(data.size()) * 8;
    const int flips = rule.corrupt_bits;
    std::vector<uint64_t> chosen;
    chosen.reserve(static_cast<size_t>(flips));
    while (chosen.size() < static_cast<size_t>(flips) &&
           chosen.size() < total_bits) {
      const uint64_t bit = plan->rng.UniformInt(total_bits);
      bool dup = false;
      for (uint64_t prev : chosen) dup = dup || prev == bit;
      if (dup) continue;
      chosen.push_back(bit);
      (*out)[bit / 8] = static_cast<char>(
          static_cast<unsigned char>((*out)[bit / 8]) ^ (1u << (bit % 8)));
    }
    ++plan->injected[std::string(seam)];
    return true;
  }
  return false;
}

ScopedFaultPlan::ScopedFaultPlan(std::vector<FaultRule> rules, uint64_t seed) {
  auto* state = new PlanState(std::move(rules), seed);
  MutexLock lock(g_mutex);
  PlanState* expected = nullptr;
  const bool installed =
      g_plan.compare_exchange_strong(expected, state,
                                     std::memory_order_relaxed);
  // Plans do not nest: a second live plan would make seam counters
  // ambiguous, which is a test bug worth failing loudly.
  SMETER_CHECK(installed);
}

ScopedFaultPlan::~ScopedFaultPlan() {
  PlanState* state = nullptr;
  {
    MutexLock lock(g_mutex);
    state = g_plan.exchange(nullptr, std::memory_order_relaxed);
  }
  delete state;
}

size_t ScopedFaultPlan::CallCount(const std::string& seam) const {
  MutexLock lock(g_mutex);
  PlanState* plan = g_plan.load(std::memory_order_relaxed);
  if (plan == nullptr) return 0;
  auto it = plan->calls.find(seam);
  return it == plan->calls.end() ? 0 : it->second;
}

size_t ScopedFaultPlan::InjectedCount(const std::string& seam) const {
  MutexLock lock(g_mutex);
  PlanState* plan = g_plan.load(std::memory_order_relaxed);
  if (plan == nullptr) return 0;
  auto it = plan->injected.find(seam);
  return it == plan->injected.end() ? 0 : it->second;
}

size_t ScopedFaultPlan::TotalInjected() const {
  MutexLock lock(g_mutex);
  PlanState* plan = g_plan.load(std::memory_order_relaxed);
  if (plan == nullptr) return 0;
  size_t total = 0;
  for (const auto& [seam, count] : plan->injected) total += count;
  return total;
}

}  // namespace smeter::fault
