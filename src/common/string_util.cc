#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace smeter {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

Result<double> ParseDouble(std::string_view text) {
  std::string_view trimmed = Trim(text);
  if (trimmed.empty()) return InvalidArgumentError("empty numeric field");
  std::string buf(trimmed);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return InvalidArgumentError("not a number: '" + buf + "'");
  }
  // strtod sets ERANGE for underflow too, but then returns the correctly
  // rounded subnormal (or zero) — a representable value, not an error.
  // Only magnitude overflow (±HUGE_VAL) is unrepresentable. Found by the
  // fuzz harness: Serialize can legitimately emit subnormal separators.
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    return OutOfRangeError("numeric overflow: '" + buf + "'");
  }
  return value;
}

Result<int64_t> ParseInt(std::string_view text) {
  std::string_view trimmed = Trim(text);
  if (trimmed.empty()) return InvalidArgumentError("empty integer field");
  std::string buf(trimmed);
  errno = 0;
  char* end = nullptr;
  int64_t value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return InvalidArgumentError("not an integer: '" + buf + "'");
  }
  if (errno == ERANGE) {
    return OutOfRangeError("integer overflow: '" + buf + "'");
  }
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace smeter
