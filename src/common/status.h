// Error-handling primitives for the smeter library.
//
// The library does not use exceptions. Fallible operations return a
// `Status`, or a `Result<T>` when they also produce a value:
//
//   smeter::Result<LookupTable> table = BuildLookupTable(...);
//   if (!table.ok()) return table.status();
//   Use(table.value());

#ifndef SMETER_COMMON_STATUS_H_
#define SMETER_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace smeter {

// Broad error categories, modeled after absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  // Stored data failed an integrity check (checksum mismatch, torn write,
  // truncated frame). Distinct from kInvalidArgument — the bytes were once
  // valid and have been damaged, so recovery tooling (fsck, salvage) applies.
  kDataLoss,
};

// Returns a human-readable name for `code`, e.g. "InvalidArgument".
std::string StatusCodeToString(StatusCode code);

// A lightweight success-or-error value. Default-constructed Status is OK.
//
// [[nodiscard]]: ignoring a returned Status silently swallows the error, so
// every call site must consume it (check it, propagate it, or SMETER_CHECK_OK
// it).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Convenience constructors mirroring absl's.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status DataLossError(std::string message);

namespace internal {
// Prints `message` (with the offending status, if any) and aborts. Lives in
// status.cc so the template below stays light; intentionally not the
// check.h machinery, which layers on top of this header.
[[noreturn]] void ResultAccessFailed(const char* message,
                                     const Status& status);
}  // namespace internal

// Holds either a value of type T or a non-OK Status.
//
// Accessing value() on an error Result is a programming error and aborts in
// every build mode — an unconditional branch here is cheaper than the
// use-after-invalid it would otherwise become.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so functions can `return value;` or
  // `return SomeError(...);` directly, as with absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      internal::ResultAccessFailed(
          "Result constructed from OK status without a value", status_);
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    if (!ok()) internal::ResultAccessFailed("value() on error Result", status_);
    return *value_;
  }
  T& value() & {
    if (!ok()) internal::ResultAccessFailed("value() on error Result", status_);
    return *value_;
  }
  T&& value() && {
    if (!ok()) internal::ResultAccessFailed("value() on error Result", status_);
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace smeter

// Propagates a non-OK Status from an expression, absl-style.
#define SMETER_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::smeter::Status _smeter_st = (expr);     \
    if (!_smeter_st.ok()) return _smeter_st;  \
  } while (false)

#endif  // SMETER_COMMON_STATUS_H_
