#include "common/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/fault_injection.h"

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#endif

namespace smeter::io {
namespace {

std::string ErrnoMessage(int err) {
  return std::error_code(err, std::generic_category()).message();
}

// --- CRC-32C ---------------------------------------------------------------

// Slice-by-8 tables for the Castagnoli polynomial (reflected 0x82F63B78).
// Built once at first use; ~8 KiB.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;
  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (size_t s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xffu];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

#if defined(__x86_64__)
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(
    std::string_view data, uint32_t crc) {
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  crc = ~crc;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc = static_cast<uint32_t>(_mm_crc32_u64(crc, chunk));
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p);
    ++p;
    --n;
  }
  return ~crc;
}

bool HasSse42() {
  static const bool has = __builtin_cpu_supports("sse4.2");
  return has;
}
#endif

}  // namespace

uint32_t Crc32cSoftware(std::string_view data, uint32_t crc) {
  const auto& t = Tables().t;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  crc = ~crc;
  while (n >= 8) {
    // One table lookup per byte, eight bytes per round; the XOR tree keeps
    // the dependency chain at one crc update per 8 bytes.
    const uint32_t low = crc ^ (static_cast<uint32_t>(p[0]) |
                                static_cast<uint32_t>(p[1]) << 8 |
                                static_cast<uint32_t>(p[2]) << 16 |
                                static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][low & 0xffu] ^ t[6][(low >> 8) & 0xffu] ^
          t[5][(low >> 16) & 0xffu] ^ t[4][low >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p) & 0xffu];
    ++p;
    --n;
  }
  return ~crc;
}

uint32_t Crc32c(std::string_view data, uint32_t crc) {
#if defined(__x86_64__)
  if (HasSse42()) return Crc32cHardware(data, crc);
#endif
  return Crc32cSoftware(data, crc);
}

// --- atomic writes ---------------------------------------------------------

namespace {

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError("write failed for " + path + ": " +
                           ErrnoMessage(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status FsyncFd(int fd, const std::string& what) {
  SMETER_FAULT_POINT("io.fsync");
  if (::fsync(fd) != 0) {
    return InternalError("fsync failed for " + what + ": " +
                         ErrnoMessage(errno));
  }
  return Status::Ok();
}

Status FsyncDirectoryOf(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  std::string dir = parent.empty() ? "." : parent.string();
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return InternalError("cannot open directory " + dir + ": " +
                         ErrnoMessage(errno));
  }
  Status synced = FsyncFd(fd, dir);
  ::close(fd);
  return synced;
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view content) {
  SMETER_FAULT_POINT("file.write");
  // The corruption seam: under a CorruptBytes plan the payload is copied
  // and bit-flipped before it reaches disk, simulating a storage-layer
  // flip that the durability protocol cannot prevent — only detect.
  std::string corrupted;
  std::string_view payload = content;
  if (fault::Active() &&
      fault::MaybeCorrupt("io.write", content, &corrupted)) {
    payload = corrupted;
  }

  const std::string tmp = path + kTmpSuffix;
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return InternalError("cannot open for writing: " + tmp + ": " +
                         ErrnoMessage(errno));
  }
  Status written = WriteAll(fd, payload, tmp);
  if (written.ok()) written = FsyncFd(fd, tmp);
  if (::close(fd) != 0 && written.ok()) {
    written = InternalError("close failed for " + tmp + ": " +
                            ErrnoMessage(errno));
  }
  if (written.ok()) {
    Status renamed = fault::Check("io.rename");
    if (renamed.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
      renamed = InternalError("rename " + tmp + " -> " + path + ": " +
                              ErrnoMessage(errno));
    }
    written = renamed;
  }
  if (!written.ok()) {
    ::unlink(tmp.c_str());
    return written;
  }
  // Durability of the rename itself: the directory entry must survive a
  // crash, or the "atomic" replace can roll back on reboot.
  return FsyncDirectoryOf(path);
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return NotFoundError("cannot open: " + path + ": " +
                         ErrnoMessage(errno));
  }
  std::string out;
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return InternalError("I/O error reading: " + path + ": " +
                           ErrnoMessage(err));
    }
    if (n == 0) break;
    out.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

// --- append log ------------------------------------------------------------

namespace {

void AppendU32Le(std::string& out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xffu));
  }
}

uint32_t ReadU32Le(const std::string& data, size_t offset) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(
                 data[offset + static_cast<size_t>(i)]))
             << (8 * i);
  }
  return value;
}

}  // namespace

std::string EncodeAppendRecord(std::string_view record) {
  std::string frame;
  frame.reserve(8 + record.size());
  AppendU32Le(frame, static_cast<uint32_t>(record.size()));
  AppendU32Le(frame, Crc32c(record));
  frame.append(record);
  return frame;
}

std::string BuildAppendLog(const std::vector<std::string>& records) {
  std::string out(kAppendLogMagic, kAppendLogMagicSize);
  for (const std::string& record : records) {
    out += EncodeAppendRecord(record);
  }
  return out;
}

Result<AppendLogContents> ReadAppendLog(const std::string& path) {
  Result<std::string> raw = ReadFileToString(path);
  if (!raw.ok()) return raw.status();
  const std::string& data = raw.value();
  if (data.size() < kAppendLogMagicSize ||
      data.compare(0, kAppendLogMagicSize, kAppendLogMagic) != 0) {
    return InvalidArgumentError("not an smeter append log: " + path);
  }
  AppendLogContents contents;
  size_t offset = kAppendLogMagicSize;
  contents.valid_bytes = offset;
  while (offset < data.size()) {
    bool frame_ok = data.size() - offset >= 8;
    uint32_t length = 0;
    if (frame_ok) {
      length = ReadU32Le(data, offset);
      frame_ok = length <= kMaxAppendRecordBytes &&
                 data.size() - offset - 8 >= length;
    }
    if (frame_ok) {
      const uint32_t want_crc = ReadU32Le(data, offset + 4);
      std::string_view payload(data.data() + offset + 8, length);
      frame_ok = Crc32c(payload) == want_crc;
      if (frame_ok) {
        contents.records.emplace_back(payload);
        offset += 8 + length;
        contents.valid_bytes = offset;
        continue;
      }
    }
    // The frame at `offset` is damaged. If its claimed extent reaches (or
    // overruns) end-of-file this is the torn-final-append signature;
    // a damaged frame with trustworthy bytes after it is mid-file
    // corruption. Either way nothing past this point is usable.
    const bool runs_to_eof = data.size() - offset < 8 ||
                             length > kMaxAppendRecordBytes ||
                             offset + 8 + length >= data.size();
    contents.torn_tail = runs_to_eof;
    contents.corrupt_midfile = !runs_to_eof;
    break;
  }
  return contents;
}

Status TruncateFile(const std::string& path, size_t size) {
  std::error_code error;
  std::filesystem::resize_file(path, size, error);
  if (error) {
    return InternalError("cannot truncate " + path + ": " + error.message());
  }
  return Status::Ok();
}

Result<AppendLogWriter> AppendLogWriter::OpenForAppend(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) {
    return InternalError("cannot open for appending: " + path + ": " +
                         ErrnoMessage(errno));
  }
  return AppendLogWriter(fd, path);
}

AppendLogWriter::AppendLogWriter(AppendLogWriter&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

AppendLogWriter& AppendLogWriter::operator=(
    AppendLogWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

AppendLogWriter::~AppendLogWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status AppendLogWriter::Append(std::string_view record) {
  SMETER_FAULT_POINT("manifest.append");
  if (fd_ < 0) return FailedPreconditionError("append log writer is closed");
  if (record.size() > kMaxAppendRecordBytes) {
    return InvalidArgumentError("append record too large");
  }
  // One write() for the whole frame: O_APPEND makes the frame land as a
  // contiguous unit, so a concurrent reader sees whole frames or a single
  // torn tail, never interleaved halves.
  std::string frame = EncodeAppendRecord(record);
  SMETER_RETURN_IF_ERROR(WriteAll(fd_, frame, path_));
  return FsyncFd(fd_, path_);
}

Status AppendLogWriter::Close() {
  if (fd_ < 0) return Status::Ok();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) {
    return InternalError("close failed for " + path_ + ": " +
                         ErrnoMessage(errno));
  }
  return Status::Ok();
}

}  // namespace smeter::io
