// Contract-checking macros for the smeter library.
//
// Two tiers, mirroring the usual CHECK/DCHECK split:
//
//   SMETER_CHECK(cond)        — always-on invariant; aborts with a message
//                               naming the file, line, and condition.
//   SMETER_DCHECK(cond)       — debug/sanitizer-build invariant; compiles to
//                               nothing in NDEBUG builds unless
//                               SMETER_FORCE_DCHECKS is defined (the
//                               sanitizer presets define it so fuzzing and
//                               ASan/UBSan runs keep the cheap contracts).
//   SMETER_CHECK_OK(expr)     — expr must yield an OK smeter::Status;
//                               aborts with the status message otherwise.
//
// Comparison forms (SMETER_CHECK_EQ/NE/LT/LE/GT/GE and DCHECK variants)
// exist so failure messages include both operand values.
//
// These macros are for *programming errors* — broken invariants that no
// caller input should be able to trigger. Anything reachable from untrusted
// input (file contents, wire blobs, user parameters) must return a Status
// instead; the fuzz harnesses treat an abort as a crash, which keeps the
// distinction honest.
//
// `CheckedIndex` / `CheckedFinite` are checked-accessor helpers for hot
// paths that historically indexed or clamped silently.

#ifndef SMETER_COMMON_CHECK_H_
#define SMETER_COMMON_CHECK_H_

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>

#include "common/status.h"

namespace smeter {
namespace internal {

// Prints `message` to stderr and aborts. Marked noreturn so control-flow
// analysis (and the optimizer) knows a failed check does not fall through.
[[noreturn]] void CheckFailed(const char* file, int line,
                              const std::string& message);

// Stringifies a pair of operands for comparison-check failures.
template <typename A, typename B>
std::string FormatOperands(const char* a_text, const A& a, const char* op,
                           const char* b_text, const B& b) {
  std::ostringstream out;
  out << a_text << " " << op << " " << b_text << " (" << a << " vs " << b
      << ")";
  return out.str();
}

}  // namespace internal

// True when SMETER_DCHECK is active in this translation unit.
#if !defined(NDEBUG) || defined(SMETER_FORCE_DCHECKS)
inline constexpr bool kDchecksEnabled = true;
#else
inline constexpr bool kDchecksEnabled = false;
#endif

// Bounds-checked indexing: aborts (always, even in release builds) instead
// of reading out of bounds. Use in code where an out-of-range index means a
// broken internal invariant, not bad input.
template <typename Container>
decltype(auto) CheckedIndex(Container& c, size_t i, const char* file,
                            int line) {
  if (i >= c.size()) {
    internal::CheckFailed(
        file, line,
        "index " + std::to_string(i) + " out of range for size " +
            std::to_string(c.size()));
  }
  return c[i];
}

// NaN/Inf guard for values that must be finite by construction.
inline double CheckedFinite(double v, const char* what, const char* file,
                            int line) {
  if (!std::isfinite(v)) {
    internal::CheckFailed(file, line,
                          std::string(what) + " must be finite, got " +
                              std::to_string(v));
  }
  return v;
}

}  // namespace smeter

#define SMETER_CHECK(cond)                                            \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::smeter::internal::CheckFailed(__FILE__, __LINE__,             \
                                      "check failed: " #cond);        \
    }                                                                 \
  } while (false)

#define SMETER_CHECK_OK(expr)                                         \
  do {                                                                \
    ::smeter::Status _smeter_check_st = (expr);                       \
    if (!_smeter_check_st.ok()) {                                     \
      ::smeter::internal::CheckFailed(                                \
          __FILE__, __LINE__,                                         \
          "check failed: (" #expr ") is " +                           \
              _smeter_check_st.ToString());                           \
    }                                                                 \
  } while (false)

#define SMETER_CHECK_OP(a, op, b)                                     \
  do {                                                                \
    if (!((a)op(b))) {                                                \
      ::smeter::internal::CheckFailed(                                \
          __FILE__, __LINE__,                                         \
          "check failed: " +                                          \
              ::smeter::internal::FormatOperands(#a, (a), #op, #b,    \
                                                 (b)));               \
    }                                                                 \
  } while (false)

#define SMETER_CHECK_EQ(a, b) SMETER_CHECK_OP(a, ==, b)
#define SMETER_CHECK_NE(a, b) SMETER_CHECK_OP(a, !=, b)
#define SMETER_CHECK_LT(a, b) SMETER_CHECK_OP(a, <, b)
#define SMETER_CHECK_LE(a, b) SMETER_CHECK_OP(a, <=, b)
#define SMETER_CHECK_GT(a, b) SMETER_CHECK_OP(a, >, b)
#define SMETER_CHECK_GE(a, b) SMETER_CHECK_OP(a, >=, b)

#if !defined(NDEBUG) || defined(SMETER_FORCE_DCHECKS)
#define SMETER_DCHECK(cond) SMETER_CHECK(cond)
#define SMETER_DCHECK_EQ(a, b) SMETER_CHECK_EQ(a, b)
#define SMETER_DCHECK_NE(a, b) SMETER_CHECK_NE(a, b)
#define SMETER_DCHECK_LT(a, b) SMETER_CHECK_LT(a, b)
#define SMETER_DCHECK_LE(a, b) SMETER_CHECK_LE(a, b)
#define SMETER_DCHECK_GT(a, b) SMETER_CHECK_GT(a, b)
#define SMETER_DCHECK_GE(a, b) SMETER_CHECK_GE(a, b)
#else
// Unevaluated in NDEBUG builds, but still "uses" the operands so variables
// referenced only from DCHECKs do not trip -Wunused.
#define SMETER_DCHECK(cond)          \
  do {                               \
    (void)sizeof(static_cast<bool>(cond)); \
  } while (false)
#define SMETER_DCHECK_EQ(a, b) SMETER_DCHECK((a) == (b))
#define SMETER_DCHECK_NE(a, b) SMETER_DCHECK((a) != (b))
#define SMETER_DCHECK_LT(a, b) SMETER_DCHECK((a) < (b))
#define SMETER_DCHECK_LE(a, b) SMETER_DCHECK((a) <= (b))
#define SMETER_DCHECK_GT(a, b) SMETER_DCHECK((a) > (b))
#define SMETER_DCHECK_GE(a, b) SMETER_DCHECK((a) >= (b))
#endif

// Bounds-checked element access with source location attached.
#define SMETER_CHECKED_AT(container, index) \
  ::smeter::CheckedIndex((container), (index), __FILE__, __LINE__)

// Finite-value guard with source location attached.
#define SMETER_CHECKED_FINITE(value) \
  ::smeter::CheckedFinite((value), #value, __FILE__, __LINE__)

#endif  // SMETER_COMMON_CHECK_H_
