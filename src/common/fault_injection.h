// Deterministic fault injection for Status-returning seams.
//
// Production code marks its fallible seams with a call to
// `fault::Check("seam.name")` (or the SMETER_FAULT_POINT macro, which
// wraps it in SMETER_RETURN_IF_ERROR). With no plan installed — the normal
// state — Check is a single relaxed atomic load returning OK, so seams are
// free to sit on I/O and per-household paths.
//
// Tests install a ScopedFaultPlan to flip chosen seams: fail the Nth call,
// a call range, every call, or each call with a fixed probability drawn
// from a seeded deterministic RNG. Per-seam call counters and injection
// counters are exposed so tests can assert a fault actually fired (a plan
// that never triggers is a test bug, not a pass).
//
// Threading: Check may be called concurrently from pool workers; counters
// and the RNG live behind one mutex. Call numbering is global across
// threads, so "fail the Nth call" is deterministic only when the seam is
// reached serially — parallel tests should key rules to per-item seam
// names (e.g. "pool.chunk.3") or assert scheduling-independent invariants.

#ifndef SMETER_COMMON_FAULT_INJECTION_H_
#define SMETER_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace smeter::fault {

// One injection rule. A call to Check(seam) fails when `seam` matches and
// either its (1-based, per-seam) call number falls in
// [first_call, last_call] or a probability draw fires.
struct FaultRule {
  // Exact seam name, or a prefix match when it ends with '*'
  // (e.g. "fleet.*" hits every fleet seam).
  std::string seam;
  // Call-range trigger: fail calls numbered [first_call, last_call].
  // first_call == 0 disables the range; last_call == 0 means "forever".
  // "Fail exactly the Nth call" is first_call == last_call == N.
  int first_call = 0;
  int last_call = 0;
  // Probability trigger: when > 0, each matching call fails with this
  // probability, drawn from the plan's seeded RNG. Mutually exclusive with
  // the call range in intent; if both are set the range is checked first.
  double probability = 0.0;
  // The injected error.
  StatusCode code = StatusCode::kInternal;
  std::string message;  // empty -> "injected fault at <seam>"
  // Corruption trigger: when > 0 this rule does not fail the call — it
  // flips this many bits of the payload offered to MaybeCorrupt(), at
  // offsets drawn from the plan's seeded RNG. Check() ignores corruption
  // rules, and MaybeCorrupt() ignores error rules, so one plan can mix
  // "this write fails" with "that write lands damaged".
  int corrupt_bits = 0;

  // Fails calls numbered [first, last] (last == 0 -> every call from
  // `first` on).
  static FaultRule FailCalls(std::string seam, int first, int last = 0) {
    FaultRule rule;
    rule.seam = std::move(seam);
    rule.first_call = first;
    rule.last_call = last;
    return rule;
  }
  // Fails each matching call with probability `p` from the plan's RNG.
  static FaultRule FailWithProbability(std::string seam, double p) {
    FaultRule rule;
    rule.seam = std::move(seam);
    rule.probability = p;
    return rule;
  }
  // Flips `bits` deterministic seeded bits in the payload of calls
  // numbered [first, last] to MaybeCorrupt(seam) (last == 0 -> every call
  // from `first` on).
  static FaultRule CorruptBytes(std::string seam, int bits, int first = 1,
                                int last = 0) {
    FaultRule rule;
    rule.seam = std::move(seam);
    rule.corrupt_bits = bits;
    rule.first_call = first;
    rule.last_call = last;
    return rule;
  }
  // Flips `bits` seeded bits with probability `p` per matching call.
  static FaultRule CorruptBytesWithProbability(std::string seam, int bits,
                                               double p) {
    FaultRule rule;
    rule.seam = std::move(seam);
    rule.corrupt_bits = bits;
    rule.probability = p;
    return rule;
  }
};

// Returns OK, or the injected error if the active plan decides this call
// fails. Seams are free-form dotted names ("csv.read", "fleet.household").
Status Check(std::string_view seam);

// True when a plan is installed (cheap; for code that wants to skip
// expensive seam-name construction in the common case).
bool Active();

// Corruption seam: when an active plan has a CorruptBytes rule matching
// `seam` that fires for this call, copies `data` into `*out` with the
// rule's bit flips applied (deterministic per plan seed) and returns true.
// Returns false — and leaves `*out` alone — otherwise. Counts toward the
// same per-seam call/injection counters as Check().
bool MaybeCorrupt(std::string_view seam, std::string_view data,
                  std::string* out);

// Installs a set of rules for the lifetime of the object. Plans do not
// nest: constructing a second ScopedFaultPlan while one is alive aborts
// (tests own the process-global injector one at a time).
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(std::vector<FaultRule> rules, uint64_t seed = 1);
  ~ScopedFaultPlan();

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  // Number of Check() calls that named exactly `seam` so far.
  size_t CallCount(const std::string& seam) const;
  // Number of those calls that failed.
  size_t InjectedCount(const std::string& seam) const;
  // Total injected failures across all seams.
  size_t TotalInjected() const;
};

}  // namespace smeter::fault

// Marks a fallible seam: propagates an injected error, otherwise falls
// through. Usage:  SMETER_FAULT_POINT("csv.read");
#define SMETER_FAULT_POINT(seam) \
  SMETER_RETURN_IF_ERROR(::smeter::fault::Check(seam))

#endif  // SMETER_COMMON_FAULT_INJECTION_H_
