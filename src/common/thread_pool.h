// A fixed-size worker pool with a data-parallel ParallelFor primitive.
//
// The pool exists for the fleet-scale workloads of the ROADMAP ("heavy
// traffic from millions of users"): encoding many households, training the
// trees of a random forest, running cross-validation folds. All of these
// are embarrassingly parallel loops over an index range, so the only
// primitive exposed is ParallelFor(begin, end, grain, fn).
//
// Ownership model: a ThreadPool is an ordinary object — create one, share
// it across as many ParallelFor calls (and calling threads) as you like,
// destroy it when done. Components that can use a pool take a
// `ThreadPool*` and treat nullptr as "run serially inline"; none of them
// own the pool. For convenience a lazily-created process-wide pool sized
// to the hardware is available via ThreadPool::Shared().
//
// Status propagation is deterministic: every chunk runs to completion even
// after another chunk has failed (no cancellation), and the error returned
// is the one from the lowest-indexed failing chunk — exactly the error a
// serial left-to-right loop would have hit first. This keeps parallel and
// serial execution observationally identical, which the determinism tests
// (parallel RandomForest == serial RandomForest) rely on.
//
// The library is exception-free by policy (see common/status.h); `fn` must
// report failure through its returned Status and must not throw.

#ifndef SMETER_COMMON_THREAD_POOL_H_
#define SMETER_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace smeter {

class ThreadPool {
 public:
  // A pool with `num_threads` total lanes of execution. The calling thread
  // of ParallelFor always participates as one lane, so the pool spawns
  // `num_threads - 1` background workers; ThreadPool(1) spawns none and
  // ParallelFor degenerates to a serial inline loop. `num_threads == 0`
  // means one lane per hardware thread.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total parallelism (background workers + the calling thread).
  size_t num_threads() const { return workers_.size() + 1; }

  // Splits [begin, end) into chunks of at most `grain` indices and runs
  // `fn(chunk_begin, chunk_end)` for each, using the calling thread plus
  // the pool's workers. Blocks until every chunk has run. Returns the
  // Status of the lowest-indexed failing chunk, or OK.
  //
  // `grain` 0 is treated as 1. fn is invoked concurrently from multiple
  // threads: it must be safe to run on disjoint chunks in parallel.
  // Reentrant calls (fn itself calling ParallelFor on the same pool) are
  // safe — the inner call's chunks run on the already-busy calling thread.
  Status ParallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<Status(size_t, size_t)>& fn)
      REQUIRES(!mutex_);

  // Observability counters, for load monitoring (the ingestion daemon's
  // stats dump) and for tests that assert scheduling behavior. Both are
  // instantaneous snapshots — racy by nature, exact only at quiescence.
  //
  // Helper tasks enqueued but not yet picked up by a worker.
  size_t QueueDepth() const REQUIRES(!mutex_);
  // Lanes (workers + participating callers) currently inside a chunk.
  size_t InFlight() const { return in_flight_.load(); }

  // A process-wide pool sized to the hardware, created on first use and
  // never destroyed (intentionally leaked so worker threads outlive static
  // destruction). Use for CLI-style entry points; tests and libraries that
  // care about sizing should create their own.
  static ThreadPool& Shared();

 private:
  void WorkerLoop() REQUIRES(!mutex_);

  mutable Mutex mutex_;
  CondVar wake_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool stopping_ GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
  std::atomic<size_t> in_flight_{0};
};

}  // namespace smeter

#endif  // SMETER_COMMON_THREAD_POOL_H_
