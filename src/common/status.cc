#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace smeter {

namespace internal {

void ResultAccessFailed(const char* message, const Status& status) {
  std::fprintf(stderr, "[smeter fatal] %s (status: %s)\n", message,
               status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

std::string StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return StatusCodeToString(code_) + ": " + message_;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}

}  // namespace smeter
