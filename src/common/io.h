// Durable file I/O primitives: checksums, atomic writes, and a
// checksummed append-only record log.
//
// Every artifact the pipeline persists (symbol blobs, lookup tables,
// quality reports, the fleet checkpoint manifest) goes through this layer,
// so a crash, torn write, or bit flip is either impossible to observe
// (atomic replace) or impossible to miss (CRC32C on every frame).
//
// Three pieces:
//
//   Crc32c           — CRC-32C (Castagnoli), the polynomial with hardware
//                      support on x86 (SSE4.2) and ARM. Slice-by-8 software
//                      fallback; the two implementations are bit-identical
//                      and the dispatch is per-process, not per-call.
//   AtomicWriteFile  — tmp file → write → fsync → rename → directory fsync.
//                      Readers see the old bytes or the new bytes, never a
//                      prefix. Fault seams: `file.write` (entry),
//                      `io.fsync`, `io.rename`; the `io.write` corruption
//                      seam lets tests flip bits in the payload en route to
//                      disk (fsck must catch every one of them).
//   Append log       — length-prefixed records, each with its own CRC32C,
//                      behind a magic header. An append-mode producer
//                      (the fleet manifest) survives kill -9 mid-append: a
//                      partial trailing record is detected and dropped by
//                      the reader instead of poisoning the whole log.
//
// All functions are Status-based and exception-free, like the rest of the
// tree. POSIX-only (the project targets Linux).

#ifndef SMETER_COMMON_IO_H_
#define SMETER_COMMON_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace smeter::io {

// CRC-32C of `data`, continuing from `crc` (pass the previous return value
// to checksum a buffer in pieces; 0 starts a fresh checksum). Uses the
// SSE4.2 instruction when the CPU has it, slice-by-8 otherwise.
uint32_t Crc32c(std::string_view data, uint32_t crc = 0);

// The portable slice-by-8 implementation, exposed so tests can pin the
// hardware path against it. Production code calls Crc32c.
uint32_t Crc32cSoftware(std::string_view data, uint32_t crc = 0);

// Suffix appended to `path` for the scratch file during AtomicWriteFile; a
// crash between create and rename leaves it behind, and fsck removes it.
inline constexpr char kTmpSuffix[] = ".tmp";

// Durably replaces `path` with `content`: write to `path + kTmpSuffix`,
// fsync, rename over `path`, fsync the parent directory. On any failure the
// previous contents of `path` are untouched and the tmp file is removed
// (when the failure is an error return; an actual crash can leave the tmp
// file, which is harmless and cleaned by fsck).
Status AtomicWriteFile(const std::string& path, std::string_view content);

// Reads a whole file. NotFound if it cannot be opened.
Result<std::string> ReadFileToString(const std::string& path);

// --- checksummed append log -------------------------------------------------
//
// Layout: 6-byte magic "SMLG1\n", then zero or more frames of
//   u32le payload_length | u32le crc32c(payload) | payload bytes
// A reader walks frames until the bytes run out; anything that does not
// frame-check (short header, short payload, CRC mismatch) ends the valid
// region. At end-of-file that is the expected kill -9 signature and is
// merely flagged; before end-of-file it means corruption.

inline constexpr char kAppendLogMagic[] = "SMLG1\n";
inline constexpr size_t kAppendLogMagicSize = sizeof(kAppendLogMagic) - 1;
// Upper bound on one record; a length field above this is corruption, not
// a real record, so the reader never allocates from a damaged length.
inline constexpr uint32_t kMaxAppendRecordBytes = 1u << 24;

// Serializes `records` as a complete log (magic + frames) for an atomic
// rewrite.
std::string BuildAppendLog(const std::vector<std::string>& records);

// One frame (length + CRC + payload), for incremental appends.
std::string EncodeAppendRecord(std::string_view record);

struct AppendLogContents {
  std::vector<std::string> records;  // every frame that checked out, in order
  // Bytes of magic + valid frames; the file can be truncated to this length
  // to drop a torn tail.
  size_t valid_bytes = 0;
  // A frame after the valid region failed to parse and ran to end-of-file:
  // the torn-final-write crash signature. Safe to truncate away.
  bool torn_tail = false;
  // A frame failed its CRC (or length check) with more bytes after it:
  // mid-file corruption, not a torn append. Everything from the damaged
  // frame on is untrusted.
  bool corrupt_midfile = false;
  bool clean() const { return !torn_tail && !corrupt_midfile; }
};

// Parses an append log. Errors only on unreadable files or a bad magic;
// damaged frames are reported through the flags above so callers can
// salvage the valid prefix.
Result<AppendLogContents> ReadAppendLog(const std::string& path);

// Truncates `path` to `size` bytes (for dropping a torn tail on resume).
Status TruncateFile(const std::string& path, size_t size);

// Appends checksummed frames to an existing log, fsyncing after each append
// so a record on disk is a durable checkpoint. Not thread-safe; callers
// serialize appends (the fleet sink holds a mutex).
class AppendLogWriter {
 public:
  // Opens `path` (which must already exist, e.g. written via
  // AtomicWriteFile with BuildAppendLog) for appending.
  static Result<AppendLogWriter> OpenForAppend(const std::string& path);

  AppendLogWriter(AppendLogWriter&& other) noexcept;
  AppendLogWriter& operator=(AppendLogWriter&& other) noexcept;
  AppendLogWriter(const AppendLogWriter&) = delete;
  AppendLogWriter& operator=(const AppendLogWriter&) = delete;
  ~AppendLogWriter();

  // Frames, writes, and fsyncs one record. Fault seams: `manifest.append`
  // (entry), `io.fsync`. Any failure is reported — a full disk or failed
  // flush can never silently drop a checkpoint record.
  Status Append(std::string_view record);

  // Closes the descriptor; further Appends fail. Also called by the
  // destructor (best-effort).
  Status Close();

 private:
  explicit AppendLogWriter(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

}  // namespace smeter::io

#endif  // SMETER_COMMON_IO_H_
