// Small string helpers shared across the library (splitting, trimming,
// numeric parsing with error reporting).

#ifndef SMETER_COMMON_STRING_UTIL_H_
#define SMETER_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace smeter {

// Splits `text` on `delim`. Keeps empty fields ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> Split(std::string_view text, char delim);

// Returns `text` without leading/trailing whitespace.
std::string_view Trim(std::string_view text);

// Parses a double / integer, rejecting trailing garbage and empty input.
Result<double> ParseDouble(std::string_view text);
Result<int64_t> ParseInt(std::string_view text);

// Returns true if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

// Lower-cases ASCII characters.
std::string ToLower(std::string_view text);

}  // namespace smeter

#endif  // SMETER_COMMON_STRING_UTIL_H_
