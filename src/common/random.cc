#include "common/random.h"

#include <cmath>

namespace smeter {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // splitmix64 expansion guarantees a non-degenerate xoshiro state even for
  // seed 0.
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  // Marsaglia polar method without caching, to keep the generator state the
  // only state.
  for (;;) {
    double u = Uniform(-1.0, 1.0);
    double v = Uniform(-1.0, 1.0);
    double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Gaussian(mu, sigma));
}

double Rng::Exponential(double rate) {
  // 1 - Uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - Uniform()) / rate;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ull); }

}  // namespace smeter
