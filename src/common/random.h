// Deterministic random number generation for simulators, samplers, and
// randomized learners.
//
// All stochastic components in the library take an explicit `Rng&` (or a
// seed) so that experiments are exactly reproducible across runs and
// platforms. The generator is xoshiro256++, seeded via splitmix64.

#ifndef SMETER_COMMON_RANDOM_H_
#define SMETER_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace smeter {

// A small, fast, deterministic PRNG (xoshiro256++).
//
// Not cryptographically secure. Copyable: copies continue the same stream
// independently, which is used to give each simulated household its own
// substream.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Returns the next raw 64-bit value.
  uint64_t Next();

  // Returns a uniform double in [0, 1).
  double Uniform();

  // Returns a uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Returns a uniform integer in [0, n). `n` must be > 0.
  uint64_t UniformInt(uint64_t n);

  // Returns a standard normal deviate (Box-Muller; one value per call).
  double Gaussian();

  // Returns a normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  // Returns a log-normal deviate: exp(N(mu, sigma)).
  double LogNormal(double mu, double sigma);

  // Returns an exponential deviate with the given rate (lambda > 0).
  double Exponential(double rate);

  // Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Returns a derived generator whose stream is independent of this one.
  // Advances this generator.
  Rng Fork();

  // Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace smeter

#endif  // SMETER_COMMON_RANDOM_H_
