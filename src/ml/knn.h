// k-nearest-neighbours classifier (Weka `IBk` analogue) for mixed nominal/
// numeric data — one of the "algorithms which usually work on nominal"
// inputs the paper's symbolic representation unlocks.
//
// Distance: Hamming (0/1 mismatch) on nominal attributes, range-normalized
// absolute difference on numeric attributes; a missing cell contributes
// the maximal per-attribute distance of 1 (Weka's convention).

#ifndef SMETER_ML_KNN_H_
#define SMETER_ML_KNN_H_

#include <vector>

#include "ml/classifier.h"

namespace smeter::ml {

struct KnnOptions {
  size_t k = 3;
  // Weight votes by 1/(distance + epsilon) instead of uniformly.
  bool distance_weighted = false;
};

class Knn : public Classifier {
 public:
  explicit Knn(const KnnOptions& options = {}) : options_(options) {}

  Status Train(const Dataset& data) override;
  Result<std::vector<double>> PredictDistribution(
      const std::vector<double>& row) const override;
  std::string Name() const override { return "IBk"; }

 private:
  double Distance(const std::vector<double>& a,
                  const std::vector<double>& b) const;

  KnnOptions options_;
  size_t num_classes_ = 0;
  size_t class_index_ = 0;
  std::vector<AttributeKind> kinds_;
  // Range normalization for numeric attributes.
  std::vector<double> numeric_min_;
  std::vector<double> numeric_inv_range_;
  std::vector<std::vector<double>> instances_;
  std::vector<size_t> labels_;
};

}  // namespace smeter::ml

#endif  // SMETER_ML_KNN_H_
