// Generic bagging meta-classifier (Weka `Bagging` analogue): trains N base
// learners on bootstrap resamples and averages their distributions. Works
// with any Classifier factory — e.g. bagged J48, which is the classical
// step between a single tree and the random forest.

#ifndef SMETER_ML_BAGGING_H_
#define SMETER_ML_BAGGING_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "ml/evaluation.h"

namespace smeter::ml {

struct BaggingOptions {
  size_t num_members = 10;
  uint64_t seed = 1;
  // Trains members on this pool when set (not owned; nullptr = serial).
  // Bootstrap bags are pre-drawn from the master stream, so the ensemble
  // is bit-identical for any pool size. The base factory is invoked
  // concurrently from pool threads and must be safe to call in parallel
  // (a lambda that only constructs a classifier is).
  ThreadPool* pool = nullptr;
};

class Bagging : public Classifier {
 public:
  Bagging(ClassifierFactory base_factory, const BaggingOptions& options = {})
      : base_factory_(std::move(base_factory)), options_(options) {}

  Status Train(const Dataset& data) override;
  Result<std::vector<double>> PredictDistribution(
      const std::vector<double>& row) const override;
  std::string Name() const override { return "Bagging"; }

  size_t num_members() const { return members_.size(); }

 private:
  ClassifierFactory base_factory_;
  BaggingOptions options_;
  std::vector<std::unique_ptr<Classifier>> members_;
  size_t num_classes_ = 0;
};

}  // namespace smeter::ml

#endif  // SMETER_ML_BAGGING_H_
