#include "ml/baseline.h"

namespace smeter::ml {

Status ZeroR::Train(const Dataset& data) {
  SMETER_RETURN_IF_ERROR(CheckTrainable(data));
  distribution_.assign(data.num_classes(), 0.0);
  for (size_t r = 0; r < data.num_instances(); ++r) {
    distribution_[data.ClassOf(r).value()] += 1.0;
  }
  for (double& v : distribution_) {
    v /= static_cast<double>(data.num_instances());
  }
  width_ = data.num_attributes();
  return Status::Ok();
}

Result<std::vector<double>> ZeroR::PredictDistribution(
    const std::vector<double>& row) const {
  if (distribution_.empty()) {
    return FailedPreconditionError("ZeroR not trained");
  }
  if (row.size() != width_) {
    return InvalidArgumentError("row width mismatch");
  }
  return distribution_;
}

}  // namespace smeter::ml
