#include "ml/bagging.h"

#include "common/random.h"

namespace smeter::ml {

Status Bagging::Train(const Dataset& data) {
  SMETER_RETURN_IF_ERROR(CheckTrainable(data));
  if (options_.num_members == 0) {
    return InvalidArgumentError("num_members must be > 0");
  }
  num_classes_ = data.num_classes();
  members_.clear();

  const size_t n = data.num_instances();
  Rng rng(options_.seed);
  for (size_t m = 0; m < options_.num_members; ++m) {
    std::vector<size_t> bag(n);
    for (size_t i = 0; i < n; ++i) {
      bag[i] = static_cast<size_t>(rng.UniformInt(n));
    }
    std::unique_ptr<Classifier> member = base_factory_();
    SMETER_RETURN_IF_ERROR(member->Train(data.Subset(bag)));
    members_.push_back(std::move(member));
  }
  return Status::Ok();
}

Result<std::vector<double>> Bagging::PredictDistribution(
    const std::vector<double>& row) const {
  if (members_.empty()) {
    return FailedPreconditionError("Bagging not trained");
  }
  std::vector<double> sum(num_classes_, 0.0);
  for (const auto& member : members_) {
    Result<std::vector<double>> dist = member->PredictDistribution(row);
    if (!dist.ok()) return dist.status();
    for (size_t c = 0; c < num_classes_; ++c) sum[c] += dist.value()[c];
  }
  for (double& v : sum) v /= static_cast<double>(members_.size());
  return sum;
}

}  // namespace smeter::ml
