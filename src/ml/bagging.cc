#include "ml/bagging.h"

#include "common/random.h"

namespace smeter::ml {

Status Bagging::Train(const Dataset& data) {
  SMETER_RETURN_IF_ERROR(CheckTrainable(data));
  if (options_.num_members == 0) {
    return InvalidArgumentError("num_members must be > 0");
  }
  num_classes_ = data.num_classes();
  members_.clear();

  const size_t n = data.num_instances();
  const size_t num_members = options_.num_members;

  // Bootstrap bags are drawn serially from the master stream (the same
  // order the serial loop consumes it), so member training can fan out
  // across the pool and stay bit-identical to serial.
  Rng rng(options_.seed);
  std::vector<std::vector<size_t>> bags(num_members);
  for (size_t m = 0; m < num_members; ++m) {
    bags[m].resize(n);
    for (size_t i = 0; i < n; ++i) {
      bags[m][i] = static_cast<size_t>(rng.UniformInt(n));
    }
  }

  std::vector<std::unique_ptr<Classifier>> members(num_members);
  auto train_range = [&](size_t begin, size_t end) -> Status {
    for (size_t m = begin; m < end; ++m) {
      std::unique_ptr<Classifier> member = base_factory_();
      SMETER_RETURN_IF_ERROR(member->Train(data.Subset(bags[m])));
      members[m] = std::move(member);
    }
    return Status::Ok();
  };
  if (options_.pool != nullptr) {
    SMETER_RETURN_IF_ERROR(
        options_.pool->ParallelFor(0, num_members, 1, train_range));
  } else {
    SMETER_RETURN_IF_ERROR(train_range(0, num_members));
  }
  members_ = std::move(members);
  return Status::Ok();
}

Result<std::vector<double>> Bagging::PredictDistribution(
    const std::vector<double>& row) const {
  if (members_.empty()) {
    return FailedPreconditionError("Bagging not trained");
  }
  std::vector<double> sum(num_classes_, 0.0);
  for (const auto& member : members_) {
    Result<std::vector<double>> dist = member->PredictDistribution(row);
    if (!dist.ok()) return dist.status();
    for (size_t c = 0; c < num_classes_; ++c) sum[c] += dist.value()[c];
  }
  for (double& v : sum) v /= static_cast<double>(members_.size());
  return sum;
}

}  // namespace smeter::ml
