#include "ml/arff.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace smeter::ml {
namespace {

// Quotes a token if written bare it would change meaning on re-read:
// delimiters and braces, quote characters, the escape character, `%`
// (comment when it starts a line), `?` (the missing-value marker), and
// whitespace (attribute-name/type delimiter). The writer and the reader
// below agree on backslash escapes for `'` and `\` inside quoted tokens —
// the round-trip closure the fuzz harness checks.
std::string QuoteIfNeeded(const std::string& token) {
  bool needs = token.empty() || token == "?";
  for (char c : token) {
    if (c == ' ' || c == '\t' || c == ',' || c == '{' || c == '}' ||
        c == '\'' || c == '"' || c == '\\' || c == '%') {
      needs = true;
    }
  }
  if (!needs) return token;
  std::string out = "'";
  for (char c : token) {
    if (c == '\'' || c == '\\') out += '\\';
    out += c;
  }
  out += "'";
  return out;
}

// Index of the quote closing the one at `start`, honoring backslash
// escapes; npos when unterminated.
size_t FindClosingQuote(std::string_view text, size_t start) {
  const char q = text[start];
  for (size_t i = start + 1; i < text.size(); ++i) {
    if (text[i] == '\\') {
      ++i;  // skip the escaped character
    } else if (text[i] == q) {
      return i;
    }
  }
  return std::string_view::npos;
}

// Splits on `delim`, but not inside single- or double-quoted segments
// (backslash escapes a character inside a quoted segment).
std::vector<std::string> SplitQuoted(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::string current;
  char quote = '\0';
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quote != '\0') {
      current += c;
      if (c == '\\' && i + 1 < text.size()) {
        current += text[++i];
      } else if (c == quote) {
        quote = '\0';
      }
      continue;
    }
    if (c == '\'' || c == '"') {
      quote = c;
      current += c;
      continue;
    }
    if (c == delim) {
      out.push_back(std::move(current));
      current.clear();
      continue;
    }
    current += c;
  }
  out.push_back(std::move(current));
  return out;
}

// Strips surrounding quotes and resolves backslash escapes.
std::string Unquote(std::string_view token) {
  if (token.size() >= 2 && (token.front() == '\'' || token.front() == '"') &&
      token.back() == token.front()) {
    std::string out;
    for (size_t i = 1; i + 1 < token.size(); ++i) {
      if (token[i] == '\\' && i + 2 < token.size()) {
        out += token[i + 1];
        ++i;
        continue;
      }
      out += token[i];
    }
    return out;
  }
  return std::string(token);
}

}  // namespace

std::string ToArff(const Dataset& data) {
  std::ostringstream out;
  out.precision(17);
  out << "@relation " << QuoteIfNeeded(data.relation()) << "\n\n";
  for (size_t a = 0; a < data.num_attributes(); ++a) {
    const Attribute& attr = data.attribute(a);
    out << "@attribute " << QuoteIfNeeded(attr.name()) << " ";
    if (attr.is_numeric()) {
      out << "numeric";
    } else {
      out << "{";
      for (size_t v = 0; v < attr.num_values(); ++v) {
        if (v > 0) out << ",";
        out << QuoteIfNeeded(attr.values()[v]);
      }
      out << "}";
    }
    out << "\n";
  }
  out << "\n@data\n";
  for (size_t r = 0; r < data.num_instances(); ++r) {
    for (size_t a = 0; a < data.num_attributes(); ++a) {
      if (a > 0) out << ",";
      double v = data.value(r, a);
      if (IsMissing(v)) {
        out << "?";
      } else if (data.attribute(a).is_nominal()) {
        out << QuoteIfNeeded(
            data.attribute(a).values()[static_cast<size_t>(v)]);
      } else {
        out << v;
      }
    }
    out << "\n";
  }
  return out.str();
}

Result<Dataset> FromArff(const std::string& text, int class_index) {
  std::vector<Attribute> attributes;
  std::string relation = "unnamed";
  bool in_data = false;
  std::vector<std::vector<double>> pending_rows;

  for (const std::string& raw_line : Split(text, '\n')) {
    std::string_view line = Trim(raw_line);
    if (line.empty() || line.front() == '%') continue;

    if (!in_data) {
      std::string lowered = ToLower(line.substr(0, 10));
      if (StartsWith(lowered, "@relation")) {
        relation = Unquote(Trim(line.substr(9)));
        continue;
      }
      if (StartsWith(lowered, "@data")) {
        in_data = true;
        continue;
      }
      if (StartsWith(lowered, "@attribute")) {
        std::string_view rest = Trim(line.substr(10));
        // Name: quoted or up to whitespace.
        std::string name;
        size_t pos = 0;
        if (!rest.empty() && (rest[0] == '\'' || rest[0] == '"')) {
          size_t close = FindClosingQuote(rest, 0);
          if (close == std::string_view::npos) {
            return InvalidArgumentError("unterminated attribute name quote");
          }
          name = Unquote(rest.substr(0, close + 1));
          pos = close + 1;
        } else {
          size_t space = rest.find_first_of(" \t");
          if (space == std::string_view::npos) {
            return InvalidArgumentError("attribute line missing type");
          }
          name = std::string(rest.substr(0, space));
          pos = space;
        }
        std::string_view type = Trim(rest.substr(pos));
        std::string type_lower = ToLower(type);
        if (StartsWith(type_lower, "numeric") ||
            StartsWith(type_lower, "real") ||
            StartsWith(type_lower, "integer")) {
          attributes.push_back(Attribute::Numeric(name));
        } else if (!type.empty() && type.front() == '{') {
          size_t close = type.rfind('}');
          if (close == std::string_view::npos) {
            return InvalidArgumentError("unterminated nominal value list");
          }
          std::vector<std::string> labels;
          for (const std::string& part :
               SplitQuoted(type.substr(1, close - 1), ',')) {
            labels.push_back(Unquote(Trim(part)));
          }
          if (labels.empty()) {
            return InvalidArgumentError("empty nominal value list");
          }
          attributes.push_back(Attribute::Nominal(name, std::move(labels)));
        } else {
          return UnimplementedError("unsupported ARFF attribute type: " +
                                    std::string(type));
        }
        continue;
      }
      return InvalidArgumentError("unexpected header line: " +
                                  std::string(line));
    }

    // Data section.
    std::vector<std::string> fields = SplitQuoted(line, ',');
    if (fields.size() != attributes.size()) {
      return InvalidArgumentError("data row width mismatch");
    }
    std::vector<double> row(fields.size(), kMissing);
    for (size_t a = 0; a < fields.size(); ++a) {
      std::string_view raw = Trim(fields[a]);
      // Only a bare `?` is the missing marker; a quoted `'?'` is a value.
      if (raw == "?") continue;
      std::string field = Unquote(raw);
      if (attributes[a].is_numeric()) {
        Result<double> v = ParseDouble(field);
        if (!v.ok()) return v.status();
        row[a] = *v;
      } else {
        Result<size_t> idx = attributes[a].IndexOf(field);
        if (!idx.ok()) return idx.status();
        row[a] = static_cast<double>(*idx);
      }
    }
    pending_rows.push_back(std::move(row));
  }

  if (attributes.empty()) {
    return InvalidArgumentError("ARFF has no attributes");
  }
  size_t cls = class_index < 0 ? attributes.size() - 1
                               : static_cast<size_t>(class_index);
  Result<Dataset> data = Dataset::Create(relation, attributes, cls);
  if (!data.ok()) return data.status();
  for (auto& row : pending_rows) {
    SMETER_RETURN_IF_ERROR(data->Add(std::move(row)));
  }
  return data;
}

Status WriteArffFile(const std::string& path, const Dataset& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return InternalError("cannot open for writing: " + path);
  out << ToArff(data);
  out.flush();
  if (!out) return InternalError("I/O error writing: " + path);
  return Status::Ok();
}

Result<Dataset> ReadArffFile(const std::string& path, int class_index) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return InternalError("I/O error reading: " + path);
  return FromArff(buf.str(), class_index);
}

}  // namespace smeter::ml
