// Kernel functions for the support-vector regressor.

#ifndef SMETER_ML_KERNEL_H_
#define SMETER_ML_KERNEL_H_

#include <vector>

#include "common/status.h"

namespace smeter::ml {

enum class KernelType {
  kRbf,     // exp(-gamma * ||x - y||^2)
  kLinear,  // x . y
};

struct KernelOptions {
  KernelType type = KernelType::kRbf;
  // RBF width; 0 means "auto" = 1 / dimensionality.
  double gamma = 0.0;
};

// Evaluates the kernel on two equal-length vectors. `gamma` must already be
// resolved (> 0) for RBF.
double KernelEval(const KernelOptions& options, const std::vector<double>& a,
                  const std::vector<double>& b);

// Resolves gamma == 0 to 1/dim; errors on dim == 0 or negative gamma.
Result<double> ResolveGamma(const KernelOptions& options, size_t dim);

}  // namespace smeter::ml

#endif  // SMETER_ML_KERNEL_H_
