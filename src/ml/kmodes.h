// K-modes clustering over nominal attributes — the actual "customer
// segmentation" task Section 3.1 motivates (the paper falls back to
// classification because REDD has only six houses; with symbols, proper
// unsupervised segmentation needs a nominal-attribute clusterer, which is
// exactly k-modes: k-means with Hamming distance and per-attribute modes).

#ifndef SMETER_ML_KMODES_H_
#define SMETER_ML_KMODES_H_

#include <vector>

#include "common/random.h"
#include "ml/instances.h"

namespace smeter::ml {

struct KModesOptions {
  size_t k = 3;
  size_t max_iterations = 100;
  // Independent restarts; the best (lowest total cost) run wins.
  size_t restarts = 5;
  uint64_t seed = 1;
};

class KModes {
 public:
  explicit KModes(const KModesOptions& options = {}) : options_(options) {}

  // Clusters `data` on its nominal non-class attributes (the class
  // attribute and numeric attributes are ignored; missing cells never
  // match any mode). Errors if no nominal attribute is usable or
  // k > #instances.
  Status Fit(const Dataset& data);

  // Cluster id per training row.
  const std::vector<size_t>& assignments() const { return assignments_; }

  // Total Hamming cost of the best run.
  double cost() const { return cost_; }

  // The cluster modes (category index per used attribute).
  const std::vector<std::vector<double>>& modes() const { return modes_; }

  // Assigns a new row (training schema) to the nearest mode.
  Result<size_t> Predict(const std::vector<double>& row) const;

 private:
  double Distance(const std::vector<double>& row,
                  const std::vector<double>& mode) const;

  KModesOptions options_;
  std::vector<size_t> attribute_indices_;  // nominal, non-class
  size_t schema_width_ = 0;
  std::vector<std::vector<double>> modes_;  // [cluster][used attribute]
  std::vector<size_t> assignments_;
  double cost_ = 0.0;
  bool fitted_ = false;
};

// Adjusted Rand index between two labelings of the same rows, in
// [-1, 1]; 1 = identical partitions, ~0 = random agreement. Used to score
// unsupervised segmentation against the known house identities.
Result<double> AdjustedRandIndex(const std::vector<size_t>& a,
                                 const std::vector<size_t>& b);

}  // namespace smeter::ml

#endif  // SMETER_ML_KMODES_H_
