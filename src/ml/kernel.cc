#include "ml/kernel.h"

#include <cmath>

namespace smeter::ml {

double KernelEval(const KernelOptions& options, const std::vector<double>& a,
                  const std::vector<double>& b) {
  switch (options.type) {
    case KernelType::kLinear: {
      double dot = 0.0;
      for (size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return dot;
    }
    case KernelType::kRbf: {
      double sq = 0.0;
      for (size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        sq += d * d;
      }
      return std::exp(-options.gamma * sq);
    }
  }
  return 0.0;
}

Result<double> ResolveGamma(const KernelOptions& options, size_t dim) {
  if (options.gamma < 0.0) return InvalidArgumentError("gamma must be >= 0");
  if (options.gamma > 0.0) return options.gamma;
  if (dim == 0) return InvalidArgumentError("zero-dimensional features");
  return 1.0 / static_cast<double>(dim);
}

}  // namespace smeter::ml
