#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>

namespace smeter::ml {
namespace {

std::vector<double> CountClasses(const Dataset& data,
                                 const std::vector<size_t>& rows) {
  std::vector<double> counts(data.num_classes(), 0.0);
  for (size_t r : rows) counts[data.ClassOf(r).value()] += 1.0;  // lint: checked: Dataset::Add validated the label
  return counts;
}

size_t Argmax(const std::vector<double>& v) {
  size_t best = 0;
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

bool IsPure(const std::vector<double>& counts) {
  size_t nonzero = 0;
  for (double c : counts) {
    if (c > 0.0) ++nonzero;
  }
  return nonzero <= 1;
}

}  // namespace

Status DecisionTree::Train(const Dataset& data) {
  SMETER_RETURN_IF_ERROR(CheckTrainable(data));
  schema_ = data.attributes();
  class_index_ = data.class_index();
  num_classes_ = data.num_classes();

  std::vector<size_t> rows(data.num_instances());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  Rng rng(options_.seed);
  root_ = BuildNode(data, rows, 0, rng);
  if (options_.prune) PruneNode(root_.get());
  return Status::Ok();
}

std::unique_ptr<DecisionTree::Node> DecisionTree::BuildNode(
    const Dataset& data, const std::vector<size_t>& rows, size_t depth,
    Rng& rng) {
  auto node = std::make_unique<Node>();
  node->class_counts = CountClasses(data, rows);
  node->majority_class = Argmax(node->class_counts);

  const bool depth_capped =
      options_.max_depth > 0 && depth >= options_.max_depth;
  if (rows.size() < 2 * options_.min_leaf || IsPure(node->class_counts) ||
      depth_capped) {
    return node;
  }

  // Candidate attributes: all, or a random subset of the non-class ones.
  std::vector<size_t> candidates;
  for (size_t a = 0; a < schema_.size(); ++a) {
    if (a != class_index_) candidates.push_back(a);
  }
  if (options_.random_feature_subset > 0 &&
      options_.random_feature_subset < candidates.size()) {
    rng.Shuffle(candidates);
    candidates.resize(options_.random_feature_subset);
  }

  std::optional<SplitCandidate> best;
  for (size_t attr : candidates) {
    std::optional<SplitCandidate> cand =
        schema_[attr].is_nominal()
            ? EvaluateNominalSplit(data, rows, attr, options_.min_leaf)
            : EvaluateNumericSplit(data, rows, attr, options_.min_leaf);
    if (!cand.has_value()) continue;
    double score = options_.use_gain_ratio ? cand->gain_ratio : cand->gain;
    double best_score = !best.has_value()
                            ? -1.0
                            : (options_.use_gain_ratio ? best->gain_ratio
                                                       : best->gain);
    if (score > best_score) best = cand;
  }
  if (!best.has_value()) return node;

  // Partition rows; missing values go to the most-populated branch.
  const size_t n_branches =
      best->is_numeric ? 2 : schema_[best->attribute].num_values();
  std::vector<std::vector<size_t>> partitions(n_branches);
  std::vector<size_t> missing_rows;
  for (size_t r : rows) {
    double v = data.value(r, best->attribute);
    if (IsMissing(v)) {
      missing_rows.push_back(r);
      continue;
    }
    size_t branch = best->is_numeric
                        ? (v <= best->threshold ? 0 : 1)
                        : static_cast<size_t>(v);
    partitions[branch].push_back(r);
  }
  size_t majority_branch = 0;
  for (size_t b = 1; b < n_branches; ++b) {
    if (partitions[b].size() > partitions[majority_branch].size()) {
      majority_branch = b;
    }
  }
  for (size_t r : missing_rows) partitions[majority_branch].push_back(r);

  node->is_leaf = false;
  node->attribute = best->attribute;
  node->numeric_split = best->is_numeric;
  node->threshold = best->threshold;
  node->majority_child = majority_branch;
  node->children.reserve(n_branches);
  for (size_t b = 0; b < n_branches; ++b) {
    if (partitions[b].empty()) {
      // Empty branch: a leaf predicting the parent's majority.
      auto leaf = std::make_unique<Node>();
      leaf->class_counts.assign(num_classes_, 0.0);
      leaf->majority_class = node->majority_class;
      node->children.push_back(std::move(leaf));
    } else {
      node->children.push_back(BuildNode(data, partitions[b], depth + 1, rng));
    }
  }
  return node;
}

double DecisionTree::PruneNode(Node* node) {
  double n = 0.0;
  for (double c : node->class_counts) n += c;
  double errors = n - node->class_counts[node->majority_class];
  double leaf_estimate =
      errors + PessimisticExtraErrors(n, errors, options_.pruning_confidence);
  if (node->is_leaf) return leaf_estimate;

  double subtree_estimate = 0.0;
  for (auto& child : node->children) {
    subtree_estimate += PruneNode(child.get());
  }
  // Replace the subtree by a leaf when the leaf's pessimistic error is no
  // worse (C4.5 subtree replacement; the +0.1 slack matches Weka).
  if (leaf_estimate <= subtree_estimate + 0.1) {
    node->is_leaf = true;
    node->children.clear();
    return leaf_estimate;
  }
  return subtree_estimate;
}

const DecisionTree::Node* DecisionTree::Route(
    const Node* node, const std::vector<double>& row) const {
  while (!node->is_leaf) {
    double v = row[node->attribute];
    size_t branch;
    if (IsMissing(v)) {
      branch = node->majority_child;
    } else if (node->numeric_split) {
      branch = v <= node->threshold ? 0 : 1;
    } else {
      branch = static_cast<size_t>(v);
      if (branch >= node->children.size()) branch = node->majority_child;
    }
    node = node->children[branch].get();
  }
  return node;
}

Result<std::vector<double>> DecisionTree::PredictDistribution(
    const std::vector<double>& row) const {
  if (root_ == nullptr) return FailedPreconditionError("tree not trained");
  if (row.size() != schema_.size()) {
    return InvalidArgumentError("row width mismatch");
  }
  const Node* leaf = Route(root_.get(), row);
  double total = 0.0;
  for (double c : leaf->class_counts) total += c;
  std::vector<double> dist(num_classes_, 0.0);
  if (total <= 0.0) {
    dist[leaf->majority_class] = 1.0;
  } else {
    // Laplace-smoothed leaf distribution.
    double denom = total + static_cast<double>(num_classes_);
    for (size_t c = 0; c < num_classes_; ++c) {
      dist[c] = (leaf->class_counts[c] + 1.0) / denom;
    }
  }
  return dist;
}

void DecisionTree::CollectStats(const Node* node, size_t depth, size_t* nodes,
                                size_t* leaves, size_t* max_depth) const {
  ++*nodes;
  *max_depth = std::max(*max_depth, depth);
  if (node->is_leaf) {
    ++*leaves;
    return;
  }
  for (const auto& child : node->children) {
    CollectStats(child.get(), depth + 1, nodes, leaves, max_depth);
  }
}

size_t DecisionTree::NumNodes() const {
  if (!root_) return 0;
  size_t nodes = 0, leaves = 0, depth = 0;
  CollectStats(root_.get(), 0, &nodes, &leaves, &depth);
  return nodes;
}

size_t DecisionTree::NumLeaves() const {
  if (!root_) return 0;
  size_t nodes = 0, leaves = 0, depth = 0;
  CollectStats(root_.get(), 0, &nodes, &leaves, &depth);
  return leaves;
}

size_t DecisionTree::Depth() const {
  if (!root_) return 0;
  size_t nodes = 0, leaves = 0, depth = 0;
  CollectStats(root_.get(), 0, &nodes, &leaves, &depth);
  return depth;
}

void DecisionTree::Render(const Node* node, size_t indent,
                          std::string* out) const {
  std::string pad(indent * 2, ' ');
  if (node->is_leaf) {
    const Attribute& cls = schema_[class_index_];
    std::string label = cls.is_nominal() && node->majority_class < cls.num_values()
                            ? cls.values()[node->majority_class]
                            : std::to_string(node->majority_class);
    *out += pad + "-> " + label + "\n";
    return;
  }
  const std::string& name = schema_[node->attribute].name();
  if (node->numeric_split) {
    *out += pad + name + " <= " + std::to_string(node->threshold) + "\n";
    Render(node->children[0].get(), indent + 1, out);
    *out += pad + name + " > " + std::to_string(node->threshold) + "\n";
    Render(node->children[1].get(), indent + 1, out);
  } else {
    for (size_t b = 0; b < node->children.size(); ++b) {
      *out += pad + name + " = " + schema_[node->attribute].values()[b] + "\n";
      Render(node->children[b].get(), indent + 1, out);
    }
  }
}

std::string DecisionTree::ToString() const {
  if (!root_) return "(untrained)";
  std::string out;
  Render(root_.get(), 0, &out);
  return out;
}

}  // namespace smeter::ml
