// Epsilon support-vector regression trained by SMO — the paper's raw-value
// forecasting baseline ("we use support vector machine for regression to
// forecast residential level consumption").
//
// The dual is solved in the symmetric beta parameterization
//   min 1/2 b^T K b + sum_u z_u p_u b_u
//   s.t. sum_u b_u = 0,   b_u in [0, C] (alpha half) or [-C, 0] (alpha*)
// with maximal-violating-pair working-set selection, which is the LibSVM
// formulation up to a change of variables. Features and target are
// standardized internally (as Weka's SMOreg does), so epsilon is expressed
// in target standard deviations.

#ifndef SMETER_ML_SVR_H_
#define SMETER_ML_SVR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ml/kernel.h"

namespace smeter::ml {

struct SvrOptions {
  KernelOptions kernel;
  double c = 1.0;              // box constraint
  double epsilon_tube = 0.1;   // insensitivity tube (standardized units)
  double tolerance = 1e-3;     // KKT violation stopping threshold
  size_t max_iterations = 200000;  // SMO pair updates
  bool standardize = true;
};

class Svr {
 public:
  explicit Svr(const SvrOptions& options = {}) : options_(options) {}

  // Trains on feature rows `x` (equal lengths) and targets `y`. Errors on
  // empty/ragged input or size mismatch.
  Status Train(const std::vector<std::vector<double>>& x,
               const std::vector<double>& y);

  // Predicts the target for one feature vector.
  Result<double> Predict(const std::vector<double>& x) const;

  size_t num_support_vectors() const { return support_.size(); }
  size_t iterations_used() const { return iterations_used_; }

 private:
  std::vector<double> Standardize(const std::vector<double>& x) const;

  SvrOptions options_;
  KernelOptions resolved_kernel_;
  size_t dim_ = 0;
  // Feature standardization.
  std::vector<double> feat_mean_;
  std::vector<double> feat_inv_std_;
  // Target standardization.
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  // Support vectors (standardized) and their beta coefficients.
  std::vector<std::vector<double>> support_;
  std::vector<double> beta_;
  double bias_ = 0.0;
  size_t iterations_used_ = 0;
  bool trained_ = false;
};

}  // namespace smeter::ml

#endif  // SMETER_ML_SVR_H_
