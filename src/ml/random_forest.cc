#include "ml/random_forest.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/random.h"

namespace smeter::ml {
namespace {

// One tree's contribution to the out-of-bag tally: the predicted
// distribution for every instance the tree's bootstrap missed.
using OobVotes = std::vector<std::pair<size_t, std::vector<double>>>;

}  // namespace

Status RandomForest::Train(const Dataset& data) {
  SMETER_RETURN_IF_ERROR(CheckTrainable(data));
  if (options_.num_trees == 0) {
    return InvalidArgumentError("num_trees must be > 0");
  }
  num_classes_ = data.num_classes();
  trees_.clear();

  size_t mtry = options_.features_per_node;
  if (mtry == 0) {
    // Weka's default: log2(#predictors) + 1.
    size_t predictors = data.num_attributes() - 1;
    mtry = predictors <= 1
               ? 1
               : static_cast<size_t>(
                     std::floor(std::log2(static_cast<double>(predictors)))) +
                     1;
  }

  const size_t n = data.num_instances();
  const size_t num_trees = options_.num_trees;

  // Draw every tree's bootstrap bag and RNG seed serially, in the exact
  // order a serial training loop consumes the master stream. Training can
  // then run in any order across threads and still be bit-identical to
  // serial: each tree's randomness is fully determined here.
  Rng rng(options_.seed);
  std::vector<std::vector<size_t>> bags(num_trees);
  std::vector<uint64_t> seeds(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    bags[t].resize(n);
    for (size_t i = 0; i < n; ++i) {
      bags[t][i] = static_cast<size_t>(rng.UniformInt(n));
    }
    seeds[t] = rng.Next();
  }

  std::vector<std::unique_ptr<DecisionTree>> trees(num_trees);
  std::vector<OobVotes> oob_per_tree(num_trees);
  auto train_range = [&](size_t begin, size_t end) -> Status {
    for (size_t t = begin; t < end; ++t) {
      std::vector<bool> in_bag(n, false);
      for (size_t i : bags[t]) in_bag[i] = true;
      Dataset sample = data.Subset(bags[t]);

      DecisionTreeOptions tree_options;
      tree_options.use_gain_ratio = false;  // RandomTree splits on raw gain
      tree_options.min_leaf = options_.min_leaf;
      tree_options.max_depth = options_.max_depth;
      tree_options.prune = false;
      tree_options.random_feature_subset = mtry;
      tree_options.seed = seeds[t];
      auto tree = std::make_unique<DecisionTree>(tree_options);
      SMETER_RETURN_IF_ERROR(tree->Train(sample));

      for (size_t i = 0; i < n; ++i) {
        if (in_bag[i]) continue;
        Result<std::vector<double>> dist =
            tree->PredictDistribution(data.row(i));
        if (!dist.ok()) return dist.status();
        oob_per_tree[t].emplace_back(i, std::move(dist.value()));
      }
      trees[t] = std::move(tree);
    }
    return Status::Ok();
  };
  if (options_.pool != nullptr) {
    SMETER_RETURN_IF_ERROR(
        options_.pool->ParallelFor(0, num_trees, 1, train_range));
  } else {
    SMETER_RETURN_IF_ERROR(train_range(0, num_trees));
  }
  trees_ = std::move(trees);

  // Merge out-of-bag tallies in tree order so the floating-point
  // accumulation order matches the serial loop exactly.
  std::vector<std::vector<double>> oob_votes(
      n, std::vector<double>(num_classes_, 0.0));
  for (size_t t = 0; t < num_trees; ++t) {
    for (const auto& [i, dist] : oob_per_tree[t]) {
      for (size_t c = 0; c < num_classes_; ++c) oob_votes[i][c] += dist[c];
    }
  }

  // Out-of-bag accuracy.
  size_t judged = 0, correct = 0;
  for (size_t i = 0; i < n; ++i) {
    double total = 0.0;
    for (double v : oob_votes[i]) total += v;
    if (total <= 0.0) continue;
    size_t best = 0;
    for (size_t c = 1; c < num_classes_; ++c) {
      if (oob_votes[i][c] > oob_votes[i][best]) best = c;
    }
    ++judged;
    if (best == data.ClassOf(i).value()) ++correct;  // lint: checked: Dataset::Add validated the label
  }
  oob_accuracy_ = judged == 0 ? std::numeric_limits<double>::quiet_NaN()
                              : static_cast<double>(correct) /
                                    static_cast<double>(judged);
  return Status::Ok();
}

Result<std::vector<double>> RandomForest::PredictDistribution(
    const std::vector<double>& row) const {
  if (trees_.empty()) return FailedPreconditionError("forest not trained");
  std::vector<double> sum(num_classes_, 0.0);
  for (const auto& tree : trees_) {
    Result<std::vector<double>> dist = tree->PredictDistribution(row);
    if (!dist.ok()) return dist.status();
    for (size_t c = 0; c < num_classes_; ++c) sum[c] += dist.value()[c];
  }
  for (double& v : sum) v /= static_cast<double>(trees_.size());
  return sum;
}

}  // namespace smeter::ml
