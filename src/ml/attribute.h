// Attribute metadata for ML datasets, mirroring Weka's nominal/numeric
// attribute model. Symbolic time series become *nominal* attributes (the
// paper's point: symbol streams unlock algorithms that need nominal or
// string inputs), raw series become numeric ones.

#ifndef SMETER_ML_ATTRIBUTE_H_
#define SMETER_ML_ATTRIBUTE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace smeter::ml {

enum class AttributeKind { kNumeric, kNominal };

class Attribute {
 public:
  static Attribute Numeric(std::string name);
  // `values` are the category labels; instance cells store indices into it.
  static Attribute Nominal(std::string name, std::vector<std::string> values);

  AttributeKind kind() const { return kind_; }
  bool is_nominal() const { return kind_ == AttributeKind::kNominal; }
  bool is_numeric() const { return kind_ == AttributeKind::kNumeric; }
  const std::string& name() const { return name_; }

  // Number of categories; 0 for numeric attributes.
  size_t num_values() const { return values_.size(); }
  const std::vector<std::string>& values() const { return values_; }

  // Category label for index `i`; errors for numeric attributes or
  // out-of-range indices.
  Result<std::string> ValueName(size_t i) const;

  // Index of category `label`; NotFound if absent or attribute is numeric.
  Result<size_t> IndexOf(const std::string& label) const;

 private:
  Attribute(AttributeKind kind, std::string name,
            std::vector<std::string> values)
      : kind_(kind), name_(std::move(name)), values_(std::move(values)) {}

  AttributeKind kind_;
  std::string name_;
  std::vector<std::string> values_;  // empty for numeric
};

}  // namespace smeter::ml

#endif  // SMETER_ML_ATTRIBUTE_H_
